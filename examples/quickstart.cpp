// Quickstart: build a small quantized network with the fluent API, lower
// it to a streaming pipeline, and run an image through the threaded
// dataflow engine — verifying the result against the golden reference
// executor, exactly as the test suite does.
#include <algorithm>
#include <iostream>

#include "dataflow/engine.h"
#include "io/synthetic.h"
#include "nn/reference.h"
#include "nn/summary.h"

int main() {
  using namespace qnn;

  // 1. Describe a network — one builder call per layer, like the paper's
  //    DFE manager (§III-B). 1-bit weights, 2-bit activations.
  NetworkSpec spec;
  spec.name = "quickstart";
  spec.input = Shape{16, 16, 3};  // 16x16 RGB image, 8-bit pixels
  spec.act_bits = 2;
  spec.conv(16, 3, /*stride=*/1, /*pad=*/1);
  spec.max_pool(2, 2);
  spec.residual(16);       // a ResNet basic block with a 16-bit skip stream
  spec.avg_pool_global();
  spec.dense(10, /*bn_act=*/false);  // 10-class logits

  // 2. Lower to the primitive streaming pipeline and attach parameters
  //    (seeded random here; see examples/train_quantized.cpp for trained).
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, /*seed=*/42);
  std::cout << summarize(pipeline) << "\n";

  // 3. Stream an image through the dataflow engine: one thread per kernel,
  //    pixels flow depth-first, layers compute concurrently.
  Rng rng(7);
  const IntTensor image = synthetic_image(16, 16, 3, rng);
  StreamEngine engine(pipeline, params);
  const IntTensor logits = engine.run_one(image);

  // 4. Cross-check against the layer-by-layer golden executor.
  const ReferenceExecutor reference(pipeline, params);
  const IntTensor expected = reference.run(image);
  std::cout << "streaming engine matches reference executor: "
            << (logits == expected ? "yes (bit-exact)" : "NO") << "\n";
  std::cout << "predicted class: " << ReferenceExecutor::argmax(logits)
            << "\n";

  // 5. Peek at the plumbing: what flowed over each stream.
  std::cout << "\nbusiest streams (values carried):\n";
  auto traffic = engine.stream_traffic();
  std::sort(traffic.begin(), traffic.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < 5 && i < traffic.size(); ++i) {
    std::cout << "  " << traffic[i].first << ": " << traffic[i].second
              << "\n";
  }
  return logits == expected ? 0 : 1;
}
