// VGG-like CNN on CIFAR-sized 32x32 inputs — the workload where the
// streaming DFE beats the GPU (Fig 5): streams a small batch through the
// threaded engine, verifies bit-exactness, and prints the DFE-vs-GPU
// comparison for this input size.
#include <iostream>

#include "dataflow/engine.h"
#include "io/synthetic.h"
#include "io/table.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"

int main() {
  using namespace qnn;
  const Pipeline pipeline = expand(models::vgg_like(32, 10, 2));
  const NetworkParams params = NetworkParams::random(pipeline, 7);

  // Stream a batch of synthetic CIFAR-sized images.
  const auto batch = synthetic_batch(8, 32, 32, 3, 123);
  StreamEngine engine(pipeline, params);
  const auto outputs = engine.run(batch);

  const ReferenceExecutor reference(pipeline, params);
  int mismatches = 0;
  std::cout << "image  top-1 class  bit-exact\n";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const IntTensor expected = reference.run(batch[i]);
    const bool ok = outputs[i] == expected;
    mismatches += !ok;
    std::cout << "  " << i << "      " << ReferenceExecutor::argmax(outputs[i])
              << "          " << (ok ? "yes" : "NO") << "\n";
  }

  std::cout << "\nDFE vs GPU at 32x32 (the paper's 12%-faster regime):\n";
  const auto dfe = estimate_fpga(pipeline);
  Table t({"platform", "ms/image", "power W", "energy mJ"});
  t.add_row({"DFE (1x Stratix V)", Table::num(1e3 * dfe.seconds_per_image),
             Table::num(dfe.power_w, 1),
             Table::num(1e3 * dfe.energy_per_image_j, 1)});
  for (const GpuSpec& gpu : {tesla_p100(), gtx1080()}) {
    const auto est = estimate_gpu(pipeline, gpu);
    t.add_row({gpu.name, Table::num(1e3 * est.seconds_per_image),
               Table::num(est.power_w, 1),
               Table::num(1e3 * est.energy_per_image_j, 1)});
  }
  t.print(std::cout);
  return mismatches == 0 ? 0 : 1;
}
