// Chaos-serving a DFE farm: the same replica pool as serve_farm, but one
// board is wedged mid-load by a seeded fault plan. Watch the healing
// timeline: the watchdog budget-cancels the hung run, the victims retry
// onto live replicas, the wedged board is quarantined (and the farm
// brownouts), probes fail while it stays wedged, and once the fault
// window closes a clean probe readmits it.
//
//   fault plan -> replica 0 hangs -> watchdog cancel -> retry elsewhere
//              -> quarantine -> brownout -> probe -> readmit -> healthy
//
// Everything is deterministic under the plan's seed: the same binary
// replays the same outage.
//
// Build & run:  ./chaos_serve
#include <chrono>
#include <iostream>
#include <thread>

#include "fault/fault.h"
#include "io/synthetic.h"
#include "models/zoo.h"
#include "serve/load_generator.h"
#include "serve/server.h"

int main() {
  using namespace qnn;

  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 1);
  SessionConfig session_config;
  session_config.fast_estimate = true;

  // The outage: replica 0's first registered kernel hangs at step 0 on
  // every run in the window [0, 3] — roughly its first few batches plus
  // the first quarantine probes — then the board "recovers".
  FaultEvent hang = FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
  hang.target_index = 0;
  hang.replica = 0;
  hang.last_run = 3;
  session_config.engine.faults.add(hang);

  ServerConfig cfg;
  cfg.replicas = 4;
  cfg.max_batch = 8;
  cfg.batch_timeout_us = 1000;
  cfg.queue_capacity = 256;
  cfg.run_budget_us = 20'000;   // watchdog cancels any run over 20 ms
  cfg.watchdog_period_us = 500;
  cfg.quarantine_after = 1;     // one budget cancel parks the board
  cfg.probation_probes = 2;     // two clean probes readmit it
  cfg.probe_period_us = 5'000;
  cfg.max_retries = 3;
  cfg.retry_backoff_us = 200;

  std::cout << "compiling " << cfg.replicas << " replicas of " << spec.name
            << " (replica 0 wedged by a seeded fault plan)...\n\n";
  DfeServer server(spec, params, cfg, session_config);

  const auto images = synthetic_batch(16, 12, 12, 3, 2);
  LoadGenerator gen(server, images);
  std::cout << "driving closed-loop load through the outage...\n";
  const LoadResult during = gen.closed_loop(/*clients=*/16,
                                            /*requests_per_client=*/8);
  std::cout << "  " << during.str() << "\n";

  // Give the probe loop time to readmit the recovered board, then show
  // that it serves again.
  for (int i = 0; i < 200; ++i) {
    if (server.replica_health(0) == ReplicaHealth::kHealthy) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::cout << "\nreplica 0 after the fault window: "
            << to_string(server.replica_health(0)) << "\n";
  const LoadResult after = gen.closed_loop(/*clients=*/8,
                                           /*requests_per_client=*/4);
  std::cout << "post-recovery load: " << after.str() << "\n\n";

  server.stop();
  std::cout << server.metrics_report() << "\nhealing timeline:\n";
  for (const std::string& event : server.metrics().events()) {
    std::cout << "  " << event << "\n";
  }
  return 0;
}
