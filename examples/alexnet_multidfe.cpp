// Quantized AlexNet across multiple DFEs: shows the FC-weight problem the
// paper's BRAM numbers imply (fc6's 37.7 Mbit bank cannot stay resident in
// FMem) and how the host-streaming path affects the timing budget.
#include <iostream>

#include "fpga/resource_model.h"
#include "io/table.h"
#include "models/zoo.h"
#include "perfmodel/fpga_estimate.h"
#include "sim/cycle_model.h"

int main() {
  using namespace qnn;
  const Pipeline pipeline = expand(models::alexnet(224, 1000, 2));
  const NetworkResources res = estimate_resources(pipeline);
  const FpgaRunEstimate est = estimate_fpga(pipeline);

  std::cout << "AlexNet, 1-bit weights / 2-bit activations, 224x224:\n"
            << "  runtime " << Table::num(1e3 * est.seconds_per_image, 1)
            << " ms (paper: 13.7), " << est.num_dfes
            << " DFEs (paper: 3), power " << Table::num(est.power_w, 1)
            << " W\n\n";

  std::cout << "weight banks (FMem budget per layer: 16 Mbit):\n";
  Table w({"layer", "weights (Kbit)", "resident", "BRAM blocks"});
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& node = pipeline.node(i);
    if (node.kind != NodeKind::Conv) continue;
    const auto& r = res.nodes[static_cast<std::size_t>(i)];
    w.add_row({node.name,
               Table::integer(node.filter_shape().total_weights() / 1000),
               r.weights_streamed ? "no (host-streamed)" : "yes",
               Table::integer(r.bram_blocks)});
  }
  w.print(std::cout);

  std::cout << "\nper-kernel cycle budget (one image):\n";
  Table t({"kernel", "busy cycles", "share of bottleneck"});
  const SimConfig cfg;
  const auto busy = analytic_busy_cycles(pipeline, cfg);
  const auto bottleneck = analytic_bottleneck_cycles(pipeline, cfg);
  for (const auto& [name, cycles] : busy) {
    if (cycles * 10 < bottleneck) continue;  // only the heavy kernels
    t.add_row({name, Table::integer(static_cast<std::int64_t>(cycles)),
               Table::num(100.0 * static_cast<double>(cycles) /
                              static_cast<double>(bottleneck),
                          1) +
                   "%"});
  }
  t.print(std::cout);
  std::cout << "\nReading: the first dense layer dominates — not by its "
               "arithmetic but by\nre-streaming its 37.7 Mbit weight bank "
               "from the host every image\n(32 bits per fabric clock). See "
               "DESIGN.md for why the paper's own BRAM\nbudget (34.6 Mbit "
               "total) forces this.\n";
  return 0;
}
