// qnn_tune: autotune a compile-time plan for a zoo model and cache it.
//
// The autotuner (plan/autotune.h) sweeps the CompiledPlan knob grid —
// executor kind, burst cap, adaptive per-edge bursts — ranking candidates
// with the sim/ cycle model and deciding among the leaders with a short
// live calibration run. Every candidate is proved deadlock-free by verify/
// before it may run. The winner is written to the plan cache keyed by
// (model hash, machine signature, SLO), so the next DfeSession / DfeServer
// cold start on this machine loads it instead of the default plan
// (observable as a "plan-cache-hit" event in the serving metrics).
//
//   ./qnn_tune                         # tune models::tiny, print the table
//   ./qnn_tune --model vgg --size 16   # another zoo model / input size
//   ./qnn_tune --cache /tmp/plans      # persist the winner (or set
//                                      # QNN_PLAN_CACHE)
//   ./qnn_tune --budget 20 --check     # bounded run; exit 1 if the tuned
//                                      # plan lost to the default on the
//                                      # deciding metric (CI gate)
#include <cstring>
#include <iostream>
#include <string>

#include "io/table.h"
#include "models/zoo.h"
#include "nn/params.h"
#include "plan/autotune.h"
#include "plan/cache.h"
#include "plan/json.h"

int main(int argc, char** argv) {
  using namespace qnn;
  std::string model = "tiny";
  std::string cache_dir = PlanCache::default_dir();
  int size = 0;  // 0 = the model's own default input size
  bool check = false;
  AutotuneConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      model = next();
    } else if (arg == "--size") {
      size = std::stoi(next());
    } else if (arg == "--cache") {
      cache_dir = next();
    } else if (arg == "--budget") {
      config.time_budget_s = std::stod(next());
    } else if (arg == "--slo") {
      config.slo_us = std::stoll(next());
    } else if (arg == "--micro") {
      config.calibration_micro_batch = std::stoi(next());
    } else if (arg == "--backend") {
      config.backend = next();
    } else if (arg == "--check") {
      check = true;
    } else {
      std::cerr << "unknown argument " << arg << "\n";
      return 2;
    }
  }

  NetworkSpec spec;
  if (model == "tiny") {
    spec = models::tiny(size > 0 ? size : 12, 4, 2);
  } else if (model == "vgg") {
    spec = models::vgg_like(size > 0 ? size : 32);
  } else if (model == "finn") {
    spec = models::finn_cnv();
  } else if (model == "alexnet") {
    spec = models::alexnet(size > 0 ? size : 224);
  } else {
    std::cerr << "unknown model \"" << model
              << "\" (try tiny, vgg, finn, alexnet)\n";
    return 2;
  }
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 11);

  std::cout << "tuning " << pipeline.name << " on " << machine_signature()
            << " (budget " << config.time_budget_s << " s, backend "
            << config.backend << ")\n\n";
  const AutotuneResult result = autotune(pipeline, params, config);

  Table t({"candidate", "executor", "burst", "adaptive", "fifo", "pool",
           "predicted fps", "measured fps"});
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const AutotuneCandidate& c = result.candidates[i];
    t.add_row({i == 0 ? "default" : std::to_string(i),
               to_string(c.plan.executor),
               Table::integer(static_cast<std::int64_t>(c.plan.burst)),
               c.plan.adaptive_burst ? "yes" : "no",
               Table::integer(static_cast<std::int64_t>(c.plan.fifo_capacity)),
               Table::integer(c.plan.pool_threads),
               c.verified ? Table::num(c.predicted_ips, 1) : "PRUNED",
               c.measured_ips > 0 ? Table::num(c.measured_ips, 1) : "-"});
  }
  t.print(std::cout);
  std::cout << "\n" << result.evaluated << " candidates verified, "
            << result.pruned << " pruned by the analyzer\n";
  std::cout << "winner: " << result.best.fingerprint() << " ("
            << to_string(result.best.executor) << ", burst "
            << result.best.burst
            << (result.best.adaptive_burst ? ", adaptive" : ", flat")
            << ", fifo " << result.best.fifo_capacity << ", pool "
            << result.best.pool_threads << ") — "
            << Table::num(result.best_ips, 1) << " fps vs "
            << Table::num(result.default_ips, 1) << " fps default ("
            << Table::num(result.default_ips > 0
                              ? result.best_ips / result.default_ips
                              : 1.0,
                          3)
            << "x)\n";

  const PlanCache cache(cache_dir);
  if (cache.enabled()) {
    if (cache.store(result.best)) {
      std::cout << "cached: " << cache.path_for(result.best.key) << "\n";
    } else {
      std::cerr << "failed to write " << cache.path_for(result.best.key)
                << "\n";
      return 1;
    }
  } else {
    std::cout << "plan cache disabled (pass --cache DIR or set "
                 "QNN_PLAN_CACHE to persist the winner)\n";
  }

  if (check && result.best_ips < result.default_ips) {
    // Structurally impossible (the default is candidate 0 and only a
    // strict improvement replaces it) — this is the CI tripwire for that
    // invariant.
    std::cerr << "CHECK FAILED: tuned plan lost to the default\n";
    return 1;
  }
  return 0;
}
