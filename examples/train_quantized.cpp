// End-to-end training example: train a quantized network with the
// straight-through estimator (1-bit weights, n-bit activations), fold its
// BatchNorm + activation into integer thresholds, and run the exported
// model on the streaming dataflow engine — the full deployment path of
// §III-B, at laptop scale.
#include <iostream>

#include "dataflow/engine.h"
#include "io/table.h"
#include "nn/reference.h"
#include "train/qat.h"

int main() {
  using namespace qnn;

  // An 8-class Gaussian-cluster task hard enough to separate activation
  // bit widths (see bench_ablation_actbits).
  const auto all = make_cluster_task(/*classes=*/8, /*dim=*/12,
                                     /*samples_per_class=*/150,
                                     /*spread=*/45.0, /*seed=*/7);
  const auto [train, test] = split_dataset(all, 0.7);
  std::cout << "dataset: " << train.size() << " train / " << test.size()
            << " test samples, " << all.classes << " classes\n\n";

  Table t({"act bits", "train-forward acc", "exported (thresholds) acc",
           "final loss"});
  for (int bits : {1, 2}) {
    QatConfig cfg;
    cfg.act_bits = bits;
    cfg.epochs = 50;
    cfg.seed = 11;
    const QatResult r = train_and_export(train, test, cfg);
    t.add_row({Table::integer(bits),
               Table::num(100.0 * r.train_accuracy, 1) + "%",
               Table::num(100.0 * r.exported_accuracy, 1) + "%",
               Table::num(r.final_loss, 3)});
  }
  t.print(std::cout);
  std::cout << "\n(The paper's motivating claim: 2-bit activations lift "
               "quantized AlexNet's\nImageNet top-1 from 41.8% to 51.03%.)"
               "\n\n";

  // Deploy the 2-bit model on the actual streaming engine.
  QatConfig cfg;
  cfg.act_bits = 2;
  cfg.epochs = 50;
  cfg.seed = 11;
  QatMlp mlp(train.dim, train.classes, cfg);
  mlp.fit(train);
  const auto [pipeline, params] = mlp.export_network();
  StreamEngine engine(pipeline, params);
  const ReferenceExecutor reference(pipeline, params);
  int correct = 0;
  int agree = 0;
  for (int i = 0; i < test.size(); ++i) {
    const IntTensor& img = test.images[static_cast<std::size_t>(i)];
    const IntTensor streamed = engine.run_one(img);
    agree += streamed == reference.run(img);
    correct += ReferenceExecutor::argmax(streamed) ==
               test.labels[static_cast<std::size_t>(i)];
  }
  std::cout << "streaming-engine deployment: accuracy "
            << Table::num(100.0 * correct / test.size(), 1) << "% on "
            << test.size() << " samples; " << agree << "/" << test.size()
            << " bit-exact vs reference\n";
  return agree == test.size() ? 0 : 1;
}
