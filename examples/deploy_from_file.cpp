// The paper's full deployment flow, end to end (§III-B):
//   1. train a quantized CNN (host side, straight-through estimator),
//   2. store weights + normalization parameters on the CPU side (a file),
//   3. "configure the DFEs": load, lower, partition, estimate,
//   4. stream images for inference.
#include <cstdio>
#include <iostream>

#include "host/session.h"
#include "nn/serialize.h"
#include "train/qat_cnn.h"

int main() {
  using namespace qnn;

  // 1. Train on a synthetic stripe-pattern task.
  const auto all = make_pattern_task(/*classes=*/4, 12, 12, 1,
                                     /*samples_per_class=*/60, /*seed=*/7);
  const auto [train, test] = split_dataset(all, 0.75);
  QatCnnConfig cfg;
  cfg.act_bits = 2;
  cfg.epochs = 20;
  cfg.seed = 3;
  QatCnn cnn(train.image, train.classes, cfg);
  const double loss = cnn.fit(train);
  std::cout << "trained: final loss " << loss << ", accuracy "
            << 100.0 * cnn.evaluate(test) << "% on held-out patterns\n\n";

  // 2. Store on the "CPU side".
  const std::string path = "/tmp/qnn_deployed_model.qnn";
  const auto [pipeline, params] = cnn.export_network();
  save_network(path, cnn.export_spec(), params);
  std::cout << "saved network to " << path << "\n\n";

  // 3. Configure the DFE platform from the stored file.
  DfeSession session = DfeSession::load(path);
  std::cout << session.report() << "\n";

  // 4. Stream the held-out images for inference.
  int correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    correct += session.classify(test.images[static_cast<std::size_t>(i)]) ==
               test.labels[static_cast<std::size_t>(i)];
  }
  std::cout << "deployed accuracy: " << 100.0 * correct / test.size()
            << "% over " << test.size() << " streamed images\n";
  std::remove(path.c_str());
  return 0;
}
