// qnn_verify: run the static dataflow-graph analyzer on a zoo model and
// print the full diagnostic report — the software analog of the Maxeler
// compile-time graph checks (see verify/graph_check.h and DESIGN.md).
//
//   qnn_verify [model] [input_size] [fifo_capacity]
//     model          resnet18 | resnet34 | resnet18_noskip | alexnet |
//                    vgg | finn | tiny                 (default resnet18)
//     input_size     pixels per side                  (default per model)
//     fifo_capacity  user FIFO depth in values, 0 = auto line-buffer
//                    sizing                           (default 0)
//
// Exit status: 0 when the graph verifies clean (warnings allowed),
// 1 when any error-severity diagnostic is present, 2 on bad usage.
#include <cstdlib>
#include <iostream>
#include <string>

#include "models/zoo.h"
#include "partition/partitioner.h"
#include "verify/graph_check.h"

int main(int argc, char** argv) {
  using namespace qnn;
  const std::string model = argc > 1 ? argv[1] : "resnet18";
  const int default_size =
      model == "vgg" ? 32 : (model == "finn" ? 32 : (model == "tiny" ? 12
                                                                     : 224));
  const int size = argc > 2 ? std::atoi(argv[2]) : default_size;
  const std::size_t fifo_capacity =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 0;

  NetworkSpec spec;
  if (model == "resnet18") {
    spec = models::resnet18(size, 1000, 2);
  } else if (model == "resnet34") {
    spec = models::resnet34(size, 1000, 2);
  } else if (model == "resnet18_noskip") {
    spec = models::resnet18_noskip(size, 1000, 2);
  } else if (model == "alexnet") {
    spec = models::alexnet(size, 1000, 2);
  } else if (model == "vgg") {
    spec = models::vgg_like(size, 10, 2);
  } else if (model == "finn") {
    spec = models::finn_cnv(10, 2);
  } else if (model == "tiny") {
    spec = models::tiny(size, 4, 2);
  } else {
    std::cerr << "unknown model '" << model
              << "' (use resnet18 | resnet34 | resnet18_noskip | alexnet | "
                 "vgg | finn | tiny)\n";
    return 2;
  }

  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, /*seed=*/1);
  EngineOptions options;
  options.fifo_capacity = fifo_capacity;

  // The same placement DfeSession::compile would use, so the report covers
  // the multi-DFE feasibility checks too.
  const PartitionConfig partition_config;
  const PartitionResult placement =
      partition_optimal(pipeline, partition_config);

  const Report report = verify_all(pipeline, &params, options, &placement,
                                   partition_config);

  const FifoPlan plan = plan_fifos(pipeline, options);
  std::cout << spec.name << ": " << pipeline.size() << " kernels, "
            << plan.streams.size() << " streams, "
            << plan.total_capacity() << " buffered values ("
            << (fifo_capacity == 0 ? std::string("auto line-buffer sizing")
                                   : "fifo_capacity = " +
                                         std::to_string(fifo_capacity))
            << ", burst " << plan.burst << "), " << placement.num_dfes()
            << " DFE(s)\n\n";

  const std::string findings = report.str();
  if (!findings.empty()) std::cout << findings << "\n";
  std::cout << report.summary() << "\n";
  return report.ok() ? 0 : 1;
}
