// qnn_verify: run the static dataflow-graph analyzer on a zoo model and
// print the full diagnostic report — the software analog of the Maxeler
// compile-time graph checks (see verify/graph_check.h and DESIGN.md).
//
//   qnn_verify [--json] [model] [input_size] [fifo_capacity]
//     --json         machine-readable report on stdout (one JSON object
//                    with ok/errors/warnings and every diagnostic); the
//                    human banner moves to stderr so stdout stays pure
//     model          resnet18 | resnet34 | resnet18_noskip | alexnet |
//                    vgg | finn | tiny                 (default resnet18)
//     input_size     pixels per side                  (default per model)
//     fifo_capacity  user FIFO depth in values, 0 = auto line-buffer
//                    sizing                           (default 0)
//
// Exit status (distinct, so CI can gate on warnings without parsing):
//   0  clean — no errors, no warnings (info notes allowed)
//   1  at least one error-severity diagnostic
//   2  bad usage (unknown model / flag)
//   3  warnings only — the graph runs, but something deserves a look
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "partition/partitioner.h"
#include "verify/graph_check.h"

int main(int argc, char** argv) {
  using namespace qnn;
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "' (only --json)\n";
      return 2;
    } else {
      args.push_back(arg);
    }
  }
  const std::string model = !args.empty() ? args[0] : "resnet18";
  const int default_size =
      model == "vgg" ? 32 : (model == "finn" ? 32 : (model == "tiny" ? 12
                                                                     : 224));
  const int size = args.size() > 1 ? std::atoi(args[1].c_str()) : default_size;
  const std::size_t fifo_capacity =
      args.size() > 2 ? static_cast<std::size_t>(std::atoll(args[2].c_str()))
                      : 0;

  NetworkSpec spec;
  if (model == "resnet18") {
    spec = models::resnet18(size, 1000, 2);
  } else if (model == "resnet34") {
    spec = models::resnet34(size, 1000, 2);
  } else if (model == "resnet18_noskip") {
    spec = models::resnet18_noskip(size, 1000, 2);
  } else if (model == "alexnet") {
    spec = models::alexnet(size, 1000, 2);
  } else if (model == "vgg") {
    spec = models::vgg_like(size, 10, 2);
  } else if (model == "finn") {
    spec = models::finn_cnv(10, 2);
  } else if (model == "tiny") {
    spec = models::tiny(size, 4, 2);
  } else {
    std::cerr << "unknown model '" << model
              << "' (use resnet18 | resnet34 | resnet18_noskip | alexnet | "
                 "vgg | finn | tiny)\n";
    return 2;
  }

  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, /*seed=*/1);
  EngineOptions options;
  options.fifo_capacity = fifo_capacity;

  // The same placement DfeSession::compile would use, so the report covers
  // the multi-DFE feasibility checks too.
  const PartitionConfig partition_config;
  const PartitionResult placement =
      partition_optimal(pipeline, partition_config);

  const Report report = verify_all(pipeline, &params, options, &placement,
                                   partition_config);

  const FifoPlan plan = plan_fifos(pipeline, options);
  std::ostream& banner = json ? std::cerr : std::cout;
  banner << spec.name << ": " << pipeline.size() << " kernels, "
         << plan.streams.size() << " streams, " << plan.total_capacity()
         << " buffered values ("
         << (fifo_capacity == 0
                 ? std::string("auto line-buffer sizing")
                 : "fifo_capacity = " + std::to_string(fifo_capacity))
         << ", burst " << plan.burst << "), " << placement.num_dfes()
         << " DFE(s)\n\n";

  if (json) {
    std::cout << report.json();
  } else {
    const std::string findings = report.str();
    if (!findings.empty()) std::cout << findings << "\n";
    std::cout << report.summary() << "\n";
  }
  if (!report.ok()) return 1;
  return report.warnings() > 0 ? 3 : 0;
}
