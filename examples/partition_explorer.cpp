// Partition explorer: a small CLI over the multi-DFE planner (§III-B6).
//
//   partition_explorer [model] [input_size] [fill]
//     model      resnet18 | alexnet | vgg          (default resnet18)
//     input_size pixels per side                   (default 224 / 32)
//     fill       max per-DFE utilization in (0,1]  (default 0.85)
#include <cstdlib>
#include <iostream>
#include <string>

#include "io/table.h"
#include "models/zoo.h"
#include "partition/partitioner.h"

int main(int argc, char** argv) {
  using namespace qnn;
  const std::string model = argc > 1 ? argv[1] : "resnet18";
  const int default_size = model == "vgg" ? 32 : 224;
  const int size = argc > 2 ? std::atoi(argv[2]) : default_size;
  const double fill = argc > 3 ? std::atof(argv[3]) : 0.85;

  NetworkSpec spec;
  if (model == "resnet18") {
    spec = models::resnet18(size, 1000, 2);
  } else if (model == "alexnet") {
    spec = models::alexnet(size, 1000, 2);
  } else if (model == "vgg") {
    spec = models::vgg_like(size, 10, 2);
  } else {
    std::cerr << "unknown model '" << model
              << "' (use resnet18 | alexnet | vgg)\n";
    return 2;
  }

  const Pipeline pipeline = expand(spec);
  PartitionConfig cfg;
  cfg.fill = fill;
  PartitionResult plan;
  try {
    plan = partition_optimal(pipeline, cfg);
  } catch (const Error& e) {
    std::cerr << "partitioning failed: " << e.what() << "\n";
    return 1;
  }

  std::cout << spec.name << " on " << plan.num_dfes()
            << " DFE(s), fill budget " << fill << ", throughput "
            << Table::num(plan.images_per_second, 1) << " fps, link slowdown "
            << Table::num(plan.link_slowdown, 4) << "\n\n";

  Table t({"DFE", "kernels", "LUT", "FF", "BRAM", "util"});
  for (std::size_t k = 0; k < plan.dfes.size(); ++k) {
    const auto& d = plan.dfes[k];
    t.add_row({Table::integer(static_cast<std::int64_t>(k)),
               pipeline.node(d.first_node).name + " .. " +
                   pipeline.node(d.last_node).name,
               Table::integer(static_cast<std::int64_t>(d.luts)),
               Table::integer(static_cast<std::int64_t>(d.ffs)),
               Table::integer(d.bram_blocks), Table::num(d.utilization, 2)});
  }
  t.print(std::cout);

  if (!plan.cuts.empty()) {
    std::cout << "\nMaxRing links:\n";
    for (const auto& cut : plan.cuts) {
      std::cout << "  after " << pipeline.node(cut.after_node).name << ": "
                << Table::num(cut.required_mbps, 1) << " Mbps ("
                << cut.streams.size() << " stream(s), "
                << (cut.feasible ? "feasible" : "OVERSUBSCRIBED") << ")\n";
      for (const auto& s : cut.streams) {
        std::cout << "      " << s.name << ": " << s.values_per_image
                  << " x " << s.bits << "b per image\n";
      }
    }
  }
  return 0;
}
