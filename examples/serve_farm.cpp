// Serving a DFE farm: compile one network into a pool of replicated
// sessions, put the admission-controlled micro-batching server in front of
// it, and drive it with an open-loop Poisson workload — the host-side
// picture of a rack of dataflow boards behind a request queue.
//
//   admission queue -> micro-batcher -> replica pool -> metrics
//
// Build & run:  ./serve_farm
#include <iostream>

#include "io/synthetic.h"
#include "models/zoo.h"
#include "serve/load_generator.h"
#include "serve/server.h"

int main() {
  using namespace qnn;

  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 1);
  SessionConfig session_config;
  session_config.fast_estimate = true;

  ServerConfig cfg;
  cfg.replicas = 4;            // four modeled DFE boards
  cfg.max_batch = 8;           // micro-batch closes at 8 requests...
  cfg.batch_timeout_us = 1000; // ...or 1 ms after it opens
  cfg.queue_capacity = 64;     // bounded admission: reject, don't queue forever
  cfg.default_deadline_us = 100000;  // 100 ms per-request deadline

  std::cout << "compiling " << cfg.replicas << " replicas of " << spec.name
            << "...\n";
  DfeServer server(spec, params, cfg, session_config);
  std::cout << server.replica(0).report() << "\n";

  // One synchronous request end to end.
  const auto images = synthetic_batch(8, 12, 12, 3, 2);
  const InferenceResult one = server.submit(images.front());
  std::cout << "single request: " << to_string(one.status) << ", class "
            << [&] {
                 int best = 0;
                 for (std::int64_t i = 1; i < one.logits.size(); ++i) {
                   if (one.logits[i] > one.logits[best]) {
                     best = static_cast<int>(i);
                   }
                 }
                 return best;
               }()
            << ", " << one.total_us << " us end to end\n\n";

  // Open-loop Poisson traffic: arrivals do not wait for completions, so
  // this measures the farm at a fixed offered rate.
  LoadGenerator gen(server, images);
  std::cout << "driving 2000 qps of Poisson traffic (600 requests)...\n";
  const LoadResult burst = gen.open_loop(2000.0, 600, /*seed=*/3);
  std::cout << "  " << burst.str() << "\n\n";

  server.stop();
  std::cout << server.metrics_report();
  return 0;
}
