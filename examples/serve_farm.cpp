// Serving a DFE farm: compile one network into a MIXED pool of replicas —
// fast engine boards, a deliberately slow scalar-reference tier for
// best-effort overflow, and a cycle-simulator shadow replica that mirrors
// a fraction of live traffic for bit-exact comparison — then put the
// admission-controlled micro-batching server in front of it and drive it
// with an open-loop Poisson workload.
//
//   admission queue -> deadline-class router -> mixed replica pool
//                                            -> shadow mirror -> metrics
//
// Tight requests (deadline <= tight_deadline_us) only ever run on the
// fast tier; best-effort work may overflow onto the slow tier; the shadow
// replica never answers a client.
//
// Build & run:  ./serve_farm
//               ./serve_farm --auto-pool   # derive the pool shape from
//                                          # backend costs + the traffic
//                                          # model (plan/pool_shape.h)
#include <cstring>
#include <iostream>

#include "backend/backend.h"
#include "io/synthetic.h"
#include "models/zoo.h"
#include "plan/pool_shape.h"
#include "serve/load_generator.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace qnn;
  bool auto_pool = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--auto-pool") == 0) auto_pool = true;
  }

  const NetworkSpec spec = models::tiny(12, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 1);
  SessionConfig session_config;
  session_config.fast_estimate = true;

  ServerConfig cfg;
  if (auto_pool) {
    // Cost-aware sizing: derive {backend, count} from each backend's
    // relative per-image cost and the traffic model below, instead of
    // hand-picking the slice counts.
    PoolShapeConfig shape;
    shape.target_qps = 2000.0;   // the Poisson rate driven further down
    shape.tight_fraction = 0.3;  // rough share of tight-deadline traffic
    shape.replica_qps = 1500.0;  // one engine replica on this tiny model
    std::cout << "auto pool (target " << shape.target_qps << " qps):\n";
    for (const PoolSlice& s : shape_pool(shape, backend_registry())) {
      std::cout << "  " << s.count << " x " << s.backend << "\n";
      cfg.pool.push_back({s.backend, s.count});
    }
  } else {
    cfg.pool = {{"engine", 2},      // two fast modeled DFE boards
                {"reference", 1},   // one slow scalar tier (best-effort)
                {"simulator", 1}};  // one shadow replica (mirror-only)
  }
  cfg.max_batch = 8;            // micro-batch closes at 8 requests...
  cfg.batch_timeout_us = 1000;  // ...or 1 ms after it opens
  cfg.queue_capacity = 64;  // bounded admission: reject, don't queue forever
  cfg.default_deadline_us = 100000;  // 100 ms per-request deadline
  cfg.tight_deadline_us = 20000;     // <= 20 ms means fast-tier-only
  cfg.shadow_fraction = 0.25;        // mirror 1 in 4 served requests

  std::cout << "compiling a mixed pool of " << spec.name << " replicas...\n";
  DfeServer server(spec, params, cfg, session_config);
  for (int i = 0; i < server.replicas(); ++i) {
    const Backend& b = server.replica(i).backend();
    std::cout << "  replica " << i << ": " << b.name() << " ("
              << to_string(b.tier()) << " tier) — " << b.info().description
              << "\n";
  }
  std::cout << "\n" << server.replica(0).report() << "\n";

  // One synchronous request end to end.
  const auto images = synthetic_batch(8, 12, 12, 3, 2);
  const InferenceResult one = server.submit(images.front());
  std::cout << "single request: " << to_string(one.status) << ", class "
            << [&] {
                 int best = 0;
                 for (std::int64_t i = 1; i < one.logits.size(); ++i) {
                   if (one.logits[i] > one.logits[best]) {
                     best = static_cast<int>(i);
                   }
                 }
                 return best;
               }()
            << ", " << one.total_us << " us end to end, served by replica "
            << one.replica << " ["
            << server.replica(one.replica).backend().name() << "]\n\n";

  // A tight request: the router will only consider the fast tier.
  const InferenceResult tight =
      server.submit(images.front(), /*deadline_us=*/10000);
  std::cout << "tight request (10 ms deadline): " << to_string(tight.status)
            << ", served by replica " << tight.replica << " ["
            << server.replica(tight.replica).backend().name() << "/"
            << to_string(server.replica(tight.replica).backend().tier())
            << "]\n\n";

  // Open-loop Poisson traffic: arrivals do not wait for completions, so
  // this measures the farm at a fixed offered rate.
  LoadGenerator gen(server, images);
  std::cout << "driving 2000 qps of Poisson traffic (600 requests)...\n";
  const LoadResult burst = gen.open_loop(2000.0, 600, /*seed=*/3);
  std::cout << "  " << burst.str() << "\n\n";

  server.stop();  // drains the queue and the shadow mirror
  std::cout << server.metrics_report();
  return 0;
}
