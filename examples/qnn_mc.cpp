// qnn_mc — explore the stream/scheduler protocol with the model checker.
//
//   qnn_mc [--pipes N] [--workers W] [--values K] [--capacity C]
//          [--bound P] [--budget E] [--millis MS] [--no-sleep-sets]
//          [--keep-going] [--mutate fence|restep|notify]
//
// Explores every interleaving (within the stated preemption bound and
// execution budget) of N producer->stream->consumer pipelines driven by W
// virtual workers through the production RingCore/ReadyProtocol
// templates, and prints the findings as QNN-D6xx diagnostics. --mutate
// runs a deliberately broken protocol variant, which must FAIL — the
// checker checking itself.
//
// Exit codes: 0 clean, 1 violations found, 2 usage error.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "mc/harness.h"

namespace {

void usage() {
  std::cerr
      << "usage: qnn_mc [--pipes N] [--workers W] [--values K]\n"
         "              [--capacity C] [--bound P] [--budget E]\n"
         "              [--millis MS] [--no-sleep-sets] [--keep-going]\n"
         "              [--mutate fence|restep|notify]\n";
}

}  // namespace

int main(int argc, char** argv) {
  qnn::mc::Scenario s;
  std::string mutate;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pipes") {
      s.pipes = std::atoi(next());
    } else if (arg == "--workers") {
      s.workers = std::atoi(next());
    } else if (arg == "--values") {
      s.values = std::atoi(next());
    } else if (arg == "--capacity") {
      s.capacity = std::atoi(next());
    } else if (arg == "--bound") {
      s.budget.preemption_bound = std::atoi(next());
    } else if (arg == "--budget") {
      s.budget.max_executions =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--millis") {
      s.budget.max_millis = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--no-sleep-sets") {
      s.budget.sleep_sets = false;
    } else if (arg == "--keep-going") {
      s.budget.stop_on_first = false;
    } else if (arg == "--mutate") {
      mutate = next();
    } else {
      usage();
      return 2;
    }
  }
  if (s.pipes < 1 || s.workers < 1 || s.values < 1 || s.capacity < 1) {
    usage();
    return 2;
  }

  qnn::mc::Model::Result result;
  if (mutate.empty()) {
    result = qnn::mc::check_protocol(s);
  } else if (mutate == "fence") {
    result = qnn::mc::check_protocol_mutated<qnn::mc::MutSkipWakeFence>(s);
  } else if (mutate == "restep") {
    result = qnn::mc::check_protocol_mutated<qnn::mc::MutSkipRestep>(s);
  } else if (mutate == "notify") {
    result = qnn::mc::check_protocol_mutated<qnn::mc::MutDropNotify>(s);
  } else {
    usage();
    return 2;
  }

  qnn::Report report;
  qnn::mc::to_report(s, result, report);
  std::cout << report.str() << report.summary() << '\n';
  return report.ok() ? 0 : 1;
}
