// Full-size ResNet-18 for 224x224 classification (Table I), the paper's
// headline network: reports the multi-DFE partitioning, cycle-accurate
// timing, resources, power and energy — then actually streams an image
// through the threaded engine and checks it against the reference.
#include <iostream>

#include "dataflow/engine.h"
#include "io/synthetic.h"
#include "io/table.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "perfmodel/fpga_estimate.h"

int main() {
  using namespace qnn;
  const Pipeline pipeline = expand(models::resnet18(224, 1000, 2));
  std::cout << "ResNet-18 (Table I): " << pipeline.size() << " kernels, "
            << pipeline.total_weight_bits() / 8 / 1024
            << " KiB of binarized weights\n\n";

  const FpgaRunEstimate est = estimate_fpga(pipeline);
  std::cout << "DFE estimate @105 MHz:\n"
            << "  clocks/picture : " << est.clocks_per_image
            << "  (paper: ~1.85e6)\n"
            << "  runtime        : " << Table::num(1e3 * est.seconds_per_image)
            << " ms  (paper: 16.1 ms)\n"
            << "  throughput     : " << Table::num(est.images_per_second, 1)
            << " fps\n"
            << "  DFEs           : " << est.num_dfes << "  (paper: 3)\n"
            << "  system power   : " << Table::num(est.power_w, 1) << " W\n"
            << "  energy/image   : "
            << Table::num(1e3 * est.energy_per_image_j, 1) << " mJ\n\n";

  Table t({"DFE", "kernels", "LUT", "FF", "BRAM blocks", "utilization"});
  for (std::size_t k = 0; k < est.partition.dfes.size(); ++k) {
    const auto& d = est.partition.dfes[k];
    t.add_row({Table::integer(static_cast<std::int64_t>(k)),
               pipeline.node(d.first_node).name + " .. " +
                   pipeline.node(d.last_node).name,
               Table::integer(static_cast<std::int64_t>(d.luts)),
               Table::integer(static_cast<std::int64_t>(d.ffs)),
               Table::integer(d.bram_blocks), Table::num(d.utilization, 2)});
  }
  t.print(std::cout);
  for (const auto& cut : est.partition.cuts) {
    std::cout << "MaxRing cut after " << pipeline.node(cut.after_node).name
              << ": " << Table::num(cut.required_mbps, 1)
              << " Mbps over " << cut.streams.size() << " stream(s)\n";
  }

  std::cout << "\nstreaming one synthetic 224x224 image through the "
               "threaded engine...\n";
  const NetworkParams params = NetworkParams::random(pipeline, 2024);
  Rng rng(5);
  const IntTensor image = synthetic_image(224, 224, 3, rng);
  StreamEngine engine(pipeline, params);
  const IntTensor logits = engine.run_one(image);
  const ReferenceExecutor reference(pipeline, params);
  const bool ok = logits == reference.run(image);
  std::cout << "bit-exact vs reference executor: " << (ok ? "yes" : "NO")
            << "; top-1 class = " << ReferenceExecutor::argmax(logits)
            << " of 1000\n";
  return ok ? 0 : 1;
}
