#include "fpga/resource_model.h"

#include <algorithm>
#include <cmath>

namespace qnn {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Depth-first line buffer of a window kernel (§III-B1b), in bits.
std::int64_t line_buffer_bits(const Node& n) {
  const std::int64_t wp = n.in.w + 2 * n.pad;
  return static_cast<std::int64_t>(n.in.c) * (wp * (n.k - 1) + n.k) *
         n.in_bits;
}

std::int64_t pixel_bits(const Shape& s, int bits) {
  return static_cast<std::int64_t>(s.c) * bits;
}

int fifo_blocks(const Node& n, const ResourceCosts& c,
                const BramGeometry& g) {
  const std::int64_t bits =
      static_cast<std::int64_t>(c.stream_fifo_depth_pixels) *
      pixel_bits(n.out, n.out_bits);
  return static_cast<int>(ceil_div(bits, g.block_bits));
}

}  // namespace

int weight_cache_blocks(const FilterShape& f, const BramGeometry& g) {
  QNN_CHECK(f.valid(), "invalid filter shape");
  // One cache address holds one filter: the entry is K*K*I bits wide, and
  // the cache holds O entries. Blocks tile width-first at the widest port
  // configuration; depth is quantized to the 512-entry minimum.
  const std::int64_t width_blocks =
      ceil_div(f.weights_per_filter(), g.max_width);
  const std::int64_t depth_blocks = ceil_div(f.out_c, g.min_depth);
  return static_cast<int>(width_blocks * depth_blocks);
}

double weight_cache_waste(const FilterShape& f, const BramGeometry& g) {
  const double allocated =
      static_cast<double>(weight_cache_blocks(f, g)) * g.block_bits;
  return 1.0 - static_cast<double>(f.total_weights()) / allocated;
}

NetworkResources estimate_resources(const Pipeline& pipeline,
                                    const ResourceCosts& costs,
                                    const BramGeometry& geometry) {
  pipeline.validate();
  NetworkResources net;
  net.nodes.reserve(static_cast<std::size_t>(pipeline.size()));

  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    NodeResources r;
    r.name = n.name;
    r.kind = n.kind;

    const std::int64_t in_px = pixel_bits(n.in, n.in_bits);
    const std::int64_t out_px = pixel_bits(n.out, n.out_bits);

    switch (n.kind) {
      case NodeKind::Conv: {
        const std::int64_t window_bits =
            static_cast<std::int64_t>(n.k) * n.k * n.in.c * n.in_bits;
        const std::int64_t dp =
            std::min<std::int64_t>(window_bits, costs.datapath_bits);
        r.line_buffer_bits = line_buffer_bits(n);
        r.luts = static_cast<double>(dp) * costs.lut_per_datapath_bit +
                 static_cast<double>(r.line_buffer_bits) *
                     costs.lut_per_linebuffer_bit +
                 static_cast<double>(in_px + out_px) *
                     costs.lut_per_stream_bit +
                 costs.lut_kernel_overhead;
        r.ffs = static_cast<double>(r.line_buffer_bits) *
                    costs.ff_per_linebuffer_bit +
                static_cast<double>(dp) * costs.ff_per_datapath_bit +
                static_cast<double>(in_px + out_px) *
                    costs.ff_per_stream_bit +
                costs.ff_kernel_overhead;
        const FilterShape f = n.filter_shape();
        if (f.total_weights() > costs.weight_cache_capacity_bits) {
          // Host-streamed bank (FMem cannot hold it): a double-buffered
          // 64-filter staging window stays on chip so streaming overlaps
          // with the application of the previous batch.
          r.weights_streamed = true;
          const std::int64_t staging =
              2 * std::min<std::int64_t>(64, f.out_c) *
              f.weights_per_filter();
          r.bram_blocks +=
              static_cast<int>(ceil_div(staging, geometry.block_bits));
        } else {
          r.weight_bits = f.total_weights();
          r.bram_blocks += weight_cache_blocks(f, geometry);
        }
        break;
      }
      case NodeKind::MaxPool:
      case NodeKind::AvgPool: {
        r.line_buffer_bits = line_buffer_bits(n);
        r.luts = static_cast<double>(n.in.c) * n.in_bits *
                     costs.lut_per_pool_channel_bit +
                 static_cast<double>(r.line_buffer_bits) *
                     costs.lut_per_linebuffer_bit +
                 static_cast<double>(in_px + out_px) *
                     costs.lut_per_stream_bit +
                 costs.lut_kernel_overhead;
        r.ffs = static_cast<double>(r.line_buffer_bits) *
                    costs.ff_per_linebuffer_bit +
                static_cast<double>(in_px + out_px) *
                    costs.ff_per_stream_bit +
                costs.ff_kernel_overhead;
        break;
      }
      case NodeKind::BnAct: {
        // One n-level comparator + 2^n -> 1 mux per channel (§III-B3),
        // sized by the pre-activation width it compares against.
        r.luts = static_cast<double>(n.in.c) * n.in_bits *
                     costs.lut_per_threshold_channel_bit +
                 static_cast<double>(in_px + out_px) *
                     costs.lut_per_stream_bit +
                 costs.lut_kernel_overhead;
        r.ffs = static_cast<double>(in_px + out_px) *
                    costs.ff_per_stream_bit +
                costs.ff_kernel_overhead;
        // Folded parameter cache: one 64-bit word per channel (§III-B1a).
        r.bram_blocks += static_cast<int>(
            ceil_div(64, geometry.max_width) *
            ceil_div(n.in.c, geometry.min_depth));
        break;
      }
      case NodeKind::Add: {
        // Skip-connection infrastructure (§III-B5): one adder per channel
        // plus the delay-compensation buffer — one convolution line
        // buffer's worth of 16-bit values — realized in registers with
        // its access muxing.
        const std::int64_t wp = n.in.w + 2;
        r.skip_buffer_bits =
            static_cast<std::int64_t>(n.in.c) * (wp * 2 + 3) * 16;
        r.luts = static_cast<double>(n.in.c) * n.out_bits *
                     costs.lut_per_adder_bit +
                 static_cast<double>(r.skip_buffer_bits) *
                     costs.lut_per_skipbuffer_bit +
                 static_cast<double>(in_px + out_px) *
                     costs.lut_per_stream_bit +
                 costs.lut_kernel_overhead;
        r.ffs = static_cast<double>(r.skip_buffer_bits) *
                    costs.ff_per_skipbuffer_bit +
                static_cast<double>(in_px + out_px) *
                    costs.ff_per_stream_bit +
                costs.ff_kernel_overhead;
        break;
      }
    }
    r.bram_blocks += fifo_blocks(n, costs, geometry);

    net.luts += r.luts;
    net.ffs += r.ffs;
    net.bram_blocks += r.bram_blocks;
    net.nodes.push_back(std::move(r));
  }
  return net;
}

int NetworkResources::devices_needed(const FpgaDevice& dev,
                                     double fill) const {
  QNN_CHECK(fill > 0.0 && fill <= 1.0, "fill factor out of range");
  const double by_lut = luts / (fill * static_cast<double>(dev.luts));
  const double by_ff = ffs / (fill * static_cast<double>(dev.ffs));
  const double by_bram = static_cast<double>(bram_blocks) /
                         (fill * static_cast<double>(dev.bram_blocks));
  const double need = std::max({by_lut, by_ff, by_bram, 1.0});
  return static_cast<int>(std::ceil(need - 1e-9));
}

double NetworkResources::utilization(const FpgaDevice& dev) const {
  return std::max({luts / static_cast<double>(dev.luts),
                   ffs / static_cast<double>(dev.ffs),
                   static_cast<double>(bram_blocks) /
                       static_cast<double>(dev.bram_blocks)});
}

}  // namespace qnn
