// FPGA device and board database (Table II of the paper, §IV-B4).
#pragma once

#include <string>

namespace qnn {

/// Block RAM geometry of the Stratix V M20K: 20 Kbit blocks whose widest
/// port configuration is 512 x 40 — the paper's "minimal depth of a BRAM is
/// 512" (§III-B1a), the root of the >= 25% weight-cache waste.
struct BramGeometry {
  int block_bits = 20480;
  int min_depth = 512;
  int max_width = 40;
};

struct FpgaDevice {
  std::string name;
  std::int64_t luts = 0;       // ALM-equivalent LUT count
  std::int64_t ffs = 0;        // flip-flops
  int bram_blocks = 0;         // M20K blocks
  BramGeometry bram{};
  double clock_hz = 105e6;     // achievable fabric clock for this design

  [[nodiscard]] std::int64_t bram_kbits() const {
    return static_cast<std::int64_t>(bram_blocks) * bram.block_bits / 1000;
  }
};

/// DFE board: one FPGA plus host link and measured board power envelope.
struct DfeBoard {
  std::string name;
  FpgaDevice fpga;
  double idle_power_w = 0.0;     // board power with the fabric configured
  double max_power_w = 0.0;      // board power at full utilization
  double maxring_gbps = 0.0;     // DFE-to-DFE link rate
};

/// Intel Stratix V 5SGSD8 (Table IIb): 262400 ALMs, 2567 M20K, 1050K FFs.
[[nodiscard]] inline FpgaDevice stratix_v_5sgsd8() {
  FpgaDevice d;
  d.name = "Stratix V 5SGSD8";
  d.luts = 262400;
  d.ffs = 1050000;
  d.bram_blocks = 2567;
  d.clock_hz = 105e6;
  return d;
}

/// Stratix 10 projection used in §IV-B4: ~5x the clock, ~2.7x the fabric.
[[nodiscard]] inline FpgaDevice stratix_10_projection() {
  FpgaDevice d;
  d.name = "Stratix 10 (projection)";
  d.luts = 702720;
  d.ffs = 2810880;
  d.bram_blocks = 11721;
  d.clock_hz = 105e6 * 5;
  return d;
}

/// Maxeler MAX4 (Maia) DFE: Stratix V fabric. The board power envelope is
/// anchored to the paper's measurements: ~12 W for a mostly full VGG-like
/// design (Table IVa) and "at least 15x" below GPUs for all VGG workloads.
[[nodiscard]] inline DfeBoard max4_maia() {
  DfeBoard b;
  b.name = "MAX4 Maia DFE";
  b.fpga = stratix_v_5sgsd8();
  b.idle_power_w = 7.5;
  b.max_power_w = 16.0;
  b.maxring_gbps = 4.0;  // "up to several Gbps" (§III-B6)
  return b;
}

}  // namespace qnn
