// Parametric FPGA resource model: LUTs, flip-flops and M20K block RAM per
// streaming kernel, rolled up per network and per DFE.
//
// The model mirrors the hardware structures of §III-B:
//  * Weight caches: one address holds all K*K*I sign bits of a filter and
//    the cache has O entries (§III-B1a). M20K blocks only come in fixed
//    width/depth configurations (widest: 512 x 40), so a cache allocates
//    ceil(K*K*I / 40) * ceil(O / 512) blocks — with O <= 384 at least 25%
//    of every block is wasted, exactly the paper's observation.
//  * BatchNorm caches: 2 folded parameters stored as one 64-bit word per
//    output channel (§III-B1a).
//  * Feature-map line buffers: depth-first scan buffers of
//    I * (W_padded*(K-1) + K) * bits flip-flop bits (§III-B1b).
//  * XNOR-popcount datapath: LUT cost proportional to the bit-products the
//    array evaluates per clock (capped by the datapath width that also
//    determines timing in sim/cycle_model.h).
//  * Threshold units: an n-input comparator + 2^n -> 1 mux per channel
//    (§III-B3).
//  * Skip infrastructure: one adder per channel plus a delay buffer the
//    size of one convolution line buffer at 16-bit width (§III-B5).
//  * Stream FIFOs: inter-kernel buffering realized in block RAM.
//
// Free constants live in ResourceCosts and are calibrated once against the
// three synthesized designs the paper reports (Tables III and IVb); see
// fpga/calibration notes in the .cpp. Every benchmark reads this model —
// no benchmark hard-codes paper numbers for our side of a comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.h"
#include "nn/pipeline.h"

namespace qnn {

struct ResourceCosts {
  /// Bit-products the XNOR-popcount array evaluates per clock (must match
  /// the SimConfig used for timing).
  int datapath_bits = 1152;
  /// Weight banks above this size are host-streamed, not cached (same
  /// threshold as SimConfig::weight_cache_capacity_bits).
  std::int64_t weight_cache_capacity_bits = 16'000'000;

  // --- LUT cost factors (ALM-equivalents) ------------------------------
  // Calibrated against the paper's three synthesized designs (Tables III
  // and IVb) under the Fig 6 constraint that resources grow only mildly
  // with input size (which bounds the line-buffer coefficients). The fit
  // reproduces all six published LUT/FF totals; the ResNet-18 surplus over
  // AlexNet is carried by the 16-bit skip-path machinery, matching the
  // paper's own attribution ("ResNet-18 requires ~75% more LUTs", §IV-B2).
  double lut_per_linebuffer_bit = 0.10;  // window muxing over the buffer
  double lut_per_datapath_bit = 0.42;    // xnor + popcount compressor tree
  double lut_per_threshold_channel_bit = 0.20;  // comparator + mux, per
                                                // channel and input bit
  double lut_per_adder_bit = 0.55;       // skip adders, per channel bit
  double lut_per_pool_channel_bit = 0.65;  // max/sum reduction per channel
  double lut_per_stream_bit = 0.604;     // pixel-parallel stream plumbing
  double lut_per_skipbuffer_bit = 0.167; // delay-line addressing/muxing
  double lut_kernel_overhead = 4076.0;   // control FSM, counters, padding

  // --- FF cost factors --------------------------------------------------
  // Pixel-parallel streams are registered at every kernel boundary, which
  // makes the per-stream-bit and per-kernel terms the dominant FF costs
  // (same calibration as above).
  double ff_per_linebuffer_bit = 0.20;
  double ff_per_datapath_bit = 0.95;     // popcount pipeline registers
  double ff_per_stream_bit = 1.272;      // kernel I/O registers per pixel bit
  double ff_per_skipbuffer_bit = 0.321;  // 16-bit delay-line storage share
  double ff_kernel_overhead = 8944.0;

  // --- BRAM -------------------------------------------------------------
  int stream_fifo_depth_pixels = 96;     // inter-kernel FIFO depth
};

/// Resource usage of one kernel (pipeline node).
struct NodeResources {
  std::string name;
  NodeKind kind{};
  double luts = 0.0;
  double ffs = 0.0;
  int bram_blocks = 0;
  std::int64_t weight_bits = 0;       // raw cached weight bits (0 if streamed)
  bool weights_streamed = false;
  std::int64_t line_buffer_bits = 0;  // FF-resident feature-map buffer
  std::int64_t skip_buffer_bits = 0;  // Add nodes: delay buffer size
};

struct NetworkResources {
  std::vector<NodeResources> nodes;
  double luts = 0.0;
  double ffs = 0.0;
  int bram_blocks = 0;

  [[nodiscard]] double bram_kbits(const BramGeometry& g = {}) const {
    return static_cast<double>(bram_blocks) * g.block_bits / 1000.0;
  }
  /// Number of devices needed if utilization is capped at `fill` of every
  /// resource class (LUTs usually bind first, as in §IV-B2).
  [[nodiscard]] int devices_needed(const FpgaDevice& dev,
                                   double fill = 0.85) const;
  /// Fraction of the binding resource consumed on one device.
  [[nodiscard]] double utilization(const FpgaDevice& dev) const;
};

/// Number of M20K blocks a resident weight cache occupies (§III-B1a).
[[nodiscard]] int weight_cache_blocks(const FilterShape& f,
                                      const BramGeometry& g = {});

/// Fraction of allocated weight-cache bits that are wasted by the fixed
/// block geometry (>= 0.25 whenever O <= 384, per the paper).
[[nodiscard]] double weight_cache_waste(const FilterShape& f,
                                        const BramGeometry& g = {});

/// Estimate resources of every kernel in the pipeline.
[[nodiscard]] NetworkResources estimate_resources(
    const Pipeline& pipeline, const ResourceCosts& costs = {},
    const BramGeometry& geometry = {});

}  // namespace qnn
