// Compiled-plan consistency lint: prove a CompiledPlan still means what it
// says before the engine is armed with it.
//
// A CompiledPlan is a frozen artifact (plan/compiled_plan.h) that travels:
// it is serialized into the plan cache, reloaded on server cold starts, and
// copied across a replica pool. Three things can silently go wrong on that
// journey, and each has its own stable diagnostic:
//
//   QNN-D305  the plan no longer describes this deployment — stale model
//             hash, wrong format version, or structurally corrupt FIFO
//             streams (out-of-range node indices, zero capacities). The
//             offending FIELD is named in the message so a cache operator
//             can see *what* drifted, not just that something did.
//   QNN-D611  machine drift — the plan was tuned on a different host shape
//             (PlanKey::machine vs machine_signature()). The plan still
//             runs bit-exactly, but its executor/pinning/burst knobs were
//             chosen for another core count, so this is a warning.
//   QNN-D612  burst/FIFO skew after deserialization — a per-stream burst
//             larger than its own FIFO, or link_bursts that disagree with
//             the bursts frozen in `fifos`. The engine clamps the former at
//             runtime (QNN-D302) and the link models silently price the
//             latter, which is exactly why a corrupted file needs a loud
//             static finding instead.
//
// lint_pool_pinning covers the deployment-side hazard the plan itself
// cannot see: when a replica pool pins worker threads, every replica's core
// window [pin_offset, pin_offset + threads) must be disjoint, or two
// engines time-share the same cores and the pool's throughput collapses to
// a fraction of one replica's (QNN-D610).
//
// DfeSession/DfeServer run lint_plan on every cache-loaded plan before
// arming the engine; a plan that fails the lint is treated as a cache MISS
// (the cache contract says a corrupt entry must never break a cold start).
// verify_graph() runs the same lint on explicitly supplied plans, where an
// error fails construction like any other QNN-Dxxx error.
#pragma once

#include <string>
#include <vector>

#include "nn/pipeline.h"
#include "plan/compiled_plan.h"
#include "verify/report.h"

namespace qnn {

/// Re-verify `plan` against `pipeline` and this machine: QNN-D305 (stale /
/// corrupt, offending field named), QNN-D611 (machine drift, warning),
/// QNN-D612 (burst/FIFO skew). Appends findings; emits an info-severity
/// QNN-D305 line when the plan is fully consistent (mirroring how QNN-D301
/// reports a proved capacity).
void lint_plan(const Pipeline& pipeline, const CompiledPlan& plan,
               Report& report);

/// One replica's pinned core window inside a pool.
struct ReplicaPinWindow {
  std::string label;        // e.g. "replica 2 (backend 'engine')"
  unsigned pin_offset = 0;  // first core the replica's worker 0 binds to
  unsigned threads = 0;     // window width in cores; 0 = window unknown
};

/// Check that every pair of pinned replica windows is disjoint and that the
/// pool fits the machine. Overlap is QNN-D610 (warning: correctness is
/// unaffected, throughput is not); a pool extending past the last hardware
/// core also gets QNN-D610 because the engine wraps pins modulo the core
/// count, which IS an overlap in disguise. `hardware_cores` <= 0 means
/// "use this machine's core count".
void lint_pool_pinning(const std::vector<ReplicaPinWindow>& windows,
                       Report& report, int hardware_cores = 0);

}  // namespace qnn
