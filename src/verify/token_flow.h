// Exact token-flow feasibility proof for a planned FIFO graph.
//
// The whole-feature-map rule (plan/fifo_plan.h) is a *sufficient* skip
// capacity: with one full map of buffering the skip path can always run an
// image ahead, whatever the regular path does. It is not *necessary* — the
// skip FIFO only has to absorb the regular path's true lag, which for most
// residual blocks is a fraction of the map (the K-1 rows the window
// scanners retain, plus the planned FIFO depths between fork and adder).
// The analyzer used to reject every below-bound capacity outright; this
// module decides those cases exactly instead.
//
// Method: a self-timed simulation of the pipeline as the timed marked
// graph the engine actually executes. Every planned stream is a place
// with its planned capacity; every kernel is a transition whose exact
// consume/produce behavior is taken from dataflow/kernels.cpp — window
// kernels replay their WindowScanner geometry (padding positions consume
// no input; a completed window emits all O responses at once), adders
// consume pairwise, forks replicate only when every branch has room. The
// network is a Kahn process network, so its outcome is schedule
// independent: a greedy maximal-progress run reaches the unique least
// fixed point, and batching whole runs of values per firing changes cost,
// never the verdict (Kahn monotonicity).
//
// Burst machinery makes the implementation *slightly* laxer than the pure
// network: a kernel's InBurst drains its FIFO up to one burst early and
// its OutStage holds one burst's responses past a full ring
// (dataflow/kernels.h). Whether that slack is realized depends on how the
// scheduler interleaves refills, so the simulation brackets the engine
// between two exact models:
//
//   tight  — no slack counted. Completion here is a proof: every real
//            schedule has at least this much buffering, and growing
//            buffers never creates a deadlock in a Kahn network.
//   slack  — every burst buffer counted at full size. Deadlock here is a
//            refutation: no schedule can see more buffering than this.
//
// tight-deadlock + slack-completion is the honest in-between: the graph
// lives or dies on scheduler luck (QNN-D304), and the capacity must grow.
#pragma once

#include <cstdint>
#include <string>

#include "nn/pipeline.h"
#include "plan/fifo_plan.h"

namespace qnn {

struct TokenFlowBudget {
  /// Back-to-back images simulated, so the proof covers the pipelined
  /// regime where image n+1 enters while image n drains. Kernel state is
  /// image-periodic (scanners reset per image), so two images exercise
  /// both the fill transient and the wrapped steady state.
  int images = 2;
  /// Cap on tokens moved across all places; exceeding it yields
  /// kUndecided (the graph is then reported QNN-D304, never silently
  /// assumed safe).
  std::int64_t max_tokens = 200'000'000;
  /// Cap on greedy sweeps over the transition list (guards pathological
  /// capacity-1 plans where every firing moves one value).
  std::int64_t max_sweeps = 2'000'000;
};

enum class TokenVerdict {
  kFeasible,   // tight model completes: deadlock-free under every schedule
  kDeadlock,   // slack model quiesces early: deadlocks under every schedule
  kMarginal,   // tight deadlocks, slack completes: schedule-dependent
  kUndecided,  // budget exhausted before either model finished
};

[[nodiscard]] const char* token_verdict_name(TokenVerdict v);

struct TokenFlowResult {
  TokenVerdict verdict = TokenVerdict::kUndecided;
  /// kDeadlock / kMarginal: the quiescent marking — every unfinished
  /// kernel with the port it is starved or jammed on, so the report names
  /// the cycle instead of just declaring it.
  std::string witness;
  std::int64_t tokens_moved = 0;  // of the decisive model run
};

/// Decide deadlock-freedom of `plan` wired over `pipeline` exactly.
/// Precondition: the pipeline passed the structural checks (analysis (a))
/// — every plan edge resolves and the graph is topologically ordered.
[[nodiscard]] TokenFlowResult prove_token_flow(const Pipeline& pipeline,
                                               const FifoPlan& plan,
                                               const TokenFlowBudget& budget = {});

}  // namespace qnn
