#include "verify/token_flow.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/error.h"
#include "dataflow/window_scanner.h"

namespace qnn {

const char* token_verdict_name(TokenVerdict v) {
  switch (v) {
    case TokenVerdict::kFeasible:
      return "feasible";
    case TokenVerdict::kDeadlock:
      return "deadlock";
    case TokenVerdict::kMarginal:
      return "marginal";
    case TokenVerdict::kUndecided:
      return "undecided";
  }
  return "?";
}

namespace {

/// One planned stream as a marked-graph place. `cap` is the effective
/// capacity: the planned ring in the tight model, plus the adjacent burst
/// buffers in the slack model (a chain FIFO -> InBurst -> OutStage moves
/// indistinguishable tokens, so for feasibility it is one place of the
/// summed capacity).
struct Place {
  std::int64_t cap = 0;
  std::int64_t q = 0;
  bool is_output = false;  // drained by the host collector: never full

  [[nodiscard]] std::int64_t space() const {
    return is_output ? std::numeric_limits<std::int64_t>::max() : cap - q;
  }
};

/// Exact consume->emit profile of a window kernel, replayed from its
/// WindowScanner: breakpoints[j] is the count of REAL input values
/// consumed when window j completes (padding positions consume nothing,
/// so trailing-pad windows complete at counts already reached).
struct WindowProfile {
  std::vector<std::int64_t> breakpoints;
  std::int64_t per_window = 0;  // values emitted per completed window

  /// Max values emitted across any span of `burst` consecutive
  /// consumptions — the most the implementation ever holds staged.
  [[nodiscard]] std::int64_t max_stage(std::int64_t burst) const {
    std::int64_t best = 0;
    std::size_t lo = 0;
    for (std::size_t hi = 0; hi < breakpoints.size(); ++hi) {
      while (breakpoints[hi] - breakpoints[lo] > burst) ++lo;
      best = std::max(best, static_cast<std::int64_t>(hi - lo + 1));
    }
    return best * per_window;
  }
};

WindowProfile window_profile(const Node& n) {
  WindowProfile p;
  p.per_window = n.kind == NodeKind::Conv ? n.out.c : n.in.c;
  WindowScanner sc(n.in, n.k, n.stride, n.pad);
  p.breakpoints.reserve(
      static_cast<std::size_t>(sc.out_h()) * static_cast<std::size_t>(sc.out_w()));
  std::int64_t consumed = 0;
  while (!sc.done()) {
    if (!sc.next_is_padding()) ++consumed;
    if (sc.advance(0)) p.breakpoints.push_back(consumed);
  }
  return p;
}

/// The in-burst capacity a window kernel actually allocates
/// (dataflow/kernels.cpp window_burst): at least one input row.
std::int64_t window_burst_of(const Node& n, std::int64_t planned) {
  const auto row =
      static_cast<std::int64_t>(n.in.w) * static_cast<std::int64_t>(n.in.c);
  return std::max({planned, row, std::int64_t{1}});
}

struct Transition {
  enum class Kind { kSource, kWindow, kElementwise, kAdd, kFork };
  Kind kind = Kind::kElementwise;
  std::string name;
  int in = -1;    // place index (main port)
  int skip = -1;  // place index (Add only)
  int out = -1;   // place index (kFork uses `outs` instead)
  std::vector<int> outs;

  std::int64_t total = 0;     // values consumed per full run (main port)
  std::int64_t consumed = 0;  // main-port values consumed so far

  // kWindow only.
  const WindowProfile* profile = nullptr;
  std::int64_t elems = 0;   // real values per image
  std::int64_t c = 0;       // consumed within the current image
  std::size_t widx = 0;     // next breakpoint
  std::int64_t staged = 0;  // emitted values awaiting output space
  int img = 0;

  [[nodiscard]] bool done(int images) const {
    if (kind == Kind::kWindow) return img >= images;
    return consumed >= total;
  }
};

class Simulation {
 public:
  Simulation(const Pipeline& p, const FifoPlan& plan, int images,
             bool with_slack)
      : images_(images) {
    const int n = p.size();
    std::vector<int> main_in(static_cast<std::size_t>(n), -1);
    std::vector<int> skip_in(static_cast<std::size_t>(n), -1);

    places_.resize(plan.streams.size());
    for (std::size_t e = 0; e < plan.streams.size(); ++e) {
      const PlannedStream& ps = plan.streams[e];
      places_[e].cap = static_cast<std::int64_t>(ps.capacity);
      places_[e].is_output = ps.role == PlannedStream::Role::kOutput;
      if (ps.consumer >= 0) {
        (ps.to_skip_port ? skip_in : main_in)[static_cast<std::size_t>(
            ps.consumer)] = static_cast<int>(e);
      }
    }

    // Burst slack, counted only in the refutation model: each consumer
    // port drains its FIFO one burst early (InBurst) and each producer
    // stages up to one refill's responses past a full ring (OutStage).
    // Both sit in series with the planned ring, so they widen the places
    // they touch.
    auto in_slack = [&](const PlannedStream& ps) -> std::int64_t {
      if (!with_slack || ps.consumer < 0) return 0;
      const Node& node = p.node(ps.consumer);
      const auto b = static_cast<std::int64_t>(ps.burst);
      return node.is_window_op() ? window_burst_of(node, b) : b;
    };
    for (std::size_t e = 0; e < plan.streams.size(); ++e) {
      places_[e].cap += in_slack(plan.streams[e]);
    }

    // One transition per pipeline node, matching dataflow/kernels.cpp.
    for (int i = 0; i < n; ++i) {
      const Node& node = p.node(i);
      Transition t;
      t.name = node.name;
      t.in = main_in[static_cast<std::size_t>(i)];
      QNN_CHECK(t.in >= 0, "token flow: node without a planned input edge");
      t.total = static_cast<std::int64_t>(node.in.elems()) * images_;
      if (node.is_window_op()) {
        t.kind = Transition::Kind::kWindow;
        profiles_.push_back(window_profile(node));
        t.elems = node.in.elems();
      } else if (node.kind == NodeKind::Add) {
        t.kind = Transition::Kind::kAdd;
        t.skip = skip_in[static_cast<std::size_t>(i)];
        QNN_CHECK(t.skip >= 0, "token flow: Add without a planned skip edge");
      } else {
        t.kind = Transition::Kind::kElementwise;
      }
      transitions_.push_back(std::move(t));
    }
    // Profile pointers are taken only after profiles_ stops growing.
    for (std::size_t i = 0, w = 0; i < transitions_.size(); ++i) {
      if (transitions_[i].kind == Transition::Kind::kWindow) {
        transitions_[i].profile = &profiles_[w++];
      }
    }

    // Producer-side wiring: node/source output edges and fork transitions.
    auto wire_producer = [&](int producer, const std::string& pname) {
      int trunk = -1;
      std::vector<int> branches;
      std::int64_t out_elems = 0;
      for (std::size_t e = 0; e < plan.streams.size(); ++e) {
        const PlannedStream& ps = plan.streams[e];
        if (ps.producer != producer) continue;
        switch (ps.role) {
          case PlannedStream::Role::kTrunk:
            trunk = static_cast<int>(e);
            break;
          case PlannedStream::Role::kBranch:
            branches.push_back(static_cast<int>(e));
            break;
          case PlannedStream::Role::kDirect:
          case PlannedStream::Role::kOutput:
            trunk = static_cast<int>(e);
            break;
        }
      }
      QNN_CHECK(trunk >= 0, "token flow: producer without a planned stream");
      if (producer < 0) {
        Transition src;
        src.kind = Transition::Kind::kSource;
        src.name = "input";
        src.out = trunk;
        src.total = static_cast<std::int64_t>(p.input.elems()) * images_;
        out_elems = src.total;
        transitions_.push_back(std::move(src));
      } else {
        transitions_[static_cast<std::size_t>(producer)].out = trunk;
        out_elems =
            static_cast<std::int64_t>(p.node(producer).out.elems()) * images_;
      }
      if (!branches.empty()) {
        Transition fork;
        fork.kind = Transition::Kind::kFork;
        fork.name = pname + "->fork";
        fork.in = trunk;
        fork.outs = branches;
        fork.total = out_elems;
        // The fork's pop buffer drains the trunk one burst early and holds
        // values each branch has not yet accepted.
        if (with_slack) {
          const auto b = static_cast<std::int64_t>(
              plan.streams[static_cast<std::size_t>(trunk)].burst);
          places_[static_cast<std::size_t>(trunk)].cap += b;
          for (const int br : branches) {
            places_[static_cast<std::size_t>(br)].cap += b;
          }
        }
        transitions_.push_back(std::move(fork));
      }
    };
    wire_producer(-1, "input");
    for (int i = 0; i < n; ++i) wire_producer(i, p.node(i).name);

    if (with_slack) {
      // Producer-side OutStage slack (window kernels compute it from the
      // scan geometry; BnAct/Add stage at most one refill).
      for (const Transition& t : transitions_) {
        if (t.out < 0) continue;
        Place& out = places_[static_cast<std::size_t>(t.out)];
        switch (t.kind) {
          case Transition::Kind::kWindow: {
            const auto b = static_cast<std::int64_t>(
                plan.streams[static_cast<std::size_t>(t.in)].burst);
            out.cap += t.profile->max_stage(
                window_burst_of(p.node(node_index(t)), b));
            break;
          }
          case Transition::Kind::kElementwise:
            out.cap += static_cast<std::int64_t>(
                plan.streams[static_cast<std::size_t>(t.in)].burst);
            break;
          case Transition::Kind::kAdd:
            out.cap += std::min(
                static_cast<std::int64_t>(
                    plan.streams[static_cast<std::size_t>(t.in)].burst),
                static_cast<std::int64_t>(
                    plan.streams[static_cast<std::size_t>(t.skip)].burst));
            break;
          case Transition::Kind::kSource:
          case Transition::Kind::kFork:
            break;  // feeder/fork stage handled above
        }
      }
    }
    plan_ = &plan;
  }

  /// Greedy maximal-progress run. Returns kFeasible / kDeadlock /
  /// kUndecided (budget); the marginal verdict is composed by the caller.
  TokenVerdict run(const TokenFlowBudget& budget, std::int64_t* tokens_out) {
    std::int64_t tokens = 0;
    std::int64_t sweeps = 0;
    bool moved = true;
    while (moved) {
      if (++sweeps > budget.max_sweeps || tokens > budget.max_tokens) {
        *tokens_out = tokens;
        return TokenVerdict::kUndecided;
      }
      moved = false;
      for (Transition& t : transitions_) moved |= fire(t, tokens);
      // The host collector drains terminal streams continuously.
      for (Place& pl : places_) {
        if (pl.is_output) pl.q = 0;
      }
    }
    *tokens_out = tokens;
    for (const Transition& t : transitions_) {
      if (!t.done(images_)) return TokenVerdict::kDeadlock;
    }
    return TokenVerdict::kFeasible;
  }

  /// Quiescent marking: every unfinished transition with the port it is
  /// starved or jammed on.
  [[nodiscard]] std::string witness() const {
    std::string w;
    for (const Transition& t : transitions_) {
      if (t.done(images_)) continue;
      if (!w.empty()) w += "; ";
      w += t.name + " blocked on ";
      std::string why;
      auto starved = [&](int e, const char* port) {
        if (e >= 0 && places_[static_cast<std::size_t>(e)].q == 0) {
          if (!why.empty()) why += " + ";
          why += std::string(port) + " '" +
                 plan_->streams[static_cast<std::size_t>(e)].name + "' empty";
        }
      };
      auto jammed = [&](int e) {
        if (e >= 0 && places_[static_cast<std::size_t>(e)].space() == 0) {
          const PlannedStream& ps = plan_->streams[static_cast<std::size_t>(e)];
          if (!why.empty()) why += " + ";
          why += "'" + ps.name + "' full (" + std::to_string(ps.capacity) +
                 " values)";
        }
      };
      if (t.kind != Transition::Kind::kSource) starved(t.in, "input");
      starved(t.skip, "skip input");
      jammed(t.out);
      for (const int e : t.outs) jammed(e);
      w += why.empty() ? std::string("internal stage") : why;
    }
    return w;
  }

 private:
  [[nodiscard]] int node_index(const Transition& t) const {
    return static_cast<int>(&t - transitions_.data());
  }

  bool fire(Transition& t, std::int64_t& tokens) {
    switch (t.kind) {
      case Transition::Kind::kSource: {
        Place& out = places_[static_cast<std::size_t>(t.out)];
        const std::int64_t k =
            std::min(t.total - t.consumed, out.space());
        if (k <= 0) return false;
        out.q += k;
        t.consumed += k;
        tokens += k;
        return true;
      }
      case Transition::Kind::kElementwise: {
        Place& in = places_[static_cast<std::size_t>(t.in)];
        Place& out = places_[static_cast<std::size_t>(t.out)];
        const std::int64_t k =
            std::min({in.q, out.space(), t.total - t.consumed});
        if (k <= 0) return false;
        in.q -= k;
        out.q += k;
        t.consumed += k;
        tokens += k;
        return true;
      }
      case Transition::Kind::kAdd: {
        Place& a = places_[static_cast<std::size_t>(t.in)];
        Place& b = places_[static_cast<std::size_t>(t.skip)];
        Place& out = places_[static_cast<std::size_t>(t.out)];
        const std::int64_t k =
            std::min({a.q, b.q, out.space(), t.total - t.consumed});
        if (k <= 0) return false;
        a.q -= k;
        b.q -= k;
        out.q += k;
        t.consumed += k;
        tokens += k;
        return true;
      }
      case Transition::Kind::kFork: {
        Place& in = places_[static_cast<std::size_t>(t.in)];
        std::int64_t k = std::min(in.q, t.total - t.consumed);
        for (const int e : t.outs) {
          k = std::min(k, places_[static_cast<std::size_t>(e)].space());
        }
        if (k <= 0) return false;
        in.q -= k;
        for (const int e : t.outs) places_[static_cast<std::size_t>(e)].q += k;
        t.consumed += k;
        tokens += k;
        return true;
      }
      case Transition::Kind::kWindow:
        return fire_window(t, tokens);
    }
    return false;
  }

  bool fire_window(Transition& t, std::int64_t& tokens) {
    Place& in = places_[static_cast<std::size_t>(t.in)];
    Place& out = places_[static_cast<std::size_t>(t.out)];
    const std::vector<std::int64_t>& bp = t.profile->breakpoints;
    bool progressed = false;
    for (;;) {
      // Flush staged responses first: the kernel consumes nothing while
      // its OutStage holds values (dataflow/kernels.cpp step()).
      if (t.staged > 0) {
        const std::int64_t m = std::min(t.staged, out.space());
        if (m > 0) {
          t.staged -= m;
          out.q += m;
          tokens += m;
          progressed = true;
        }
        if (t.staged > 0) return progressed;
      }
      if (t.img >= images_) return progressed;
      // Windows whose bottom-right corner is a padding position complete
      // without consuming input.
      if (t.widx < bp.size() && bp[t.widx] <= t.c) {
        t.staged += t.profile->per_window;
        ++t.widx;
        continue;
      }
      if (t.c == t.elems) {
        // Image complete (all its windows emitted above); re-arm.
        t.c = 0;
        t.widx = 0;
        ++t.img;
        progressed = true;
        continue;
      }
      // Consume up to the value that completes the next window.
      const std::int64_t next = t.widx < bp.size() ? bp[t.widx] : t.elems;
      const std::int64_t k = std::min(in.q, next - t.c);
      if (k <= 0) return progressed;
      in.q -= k;
      t.c += k;
      t.consumed += k;
      tokens += k;
      progressed = true;
    }
  }

  int images_;
  const FifoPlan* plan_ = nullptr;
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
  std::vector<WindowProfile> profiles_;
};

}  // namespace

TokenFlowResult prove_token_flow(const Pipeline& pipeline, const FifoPlan& plan,
                                 const TokenFlowBudget& budget) {
  TokenFlowResult result;

  // Tight model: no burst slack. Completion proves deadlock-freedom for
  // every schedule (real runs only ever have MORE buffering, and growing
  // buffers never creates a deadlock in a Kahn network).
  Simulation tight(pipeline, plan, budget.images, /*with_slack=*/false);
  const TokenVerdict tv = tight.run(budget, &result.tokens_moved);
  if (tv == TokenVerdict::kFeasible || tv == TokenVerdict::kUndecided) {
    result.verdict = tv;
    return result;
  }
  const std::string tight_witness = tight.witness();

  // Slack model: every burst buffer counted at full size. Deadlock here
  // refutes feasibility — no schedule can see more buffering than this.
  Simulation slack(pipeline, plan, budget.images, /*with_slack=*/true);
  const TokenVerdict sv = slack.run(budget, &result.tokens_moved);
  if (sv == TokenVerdict::kDeadlock) {
    result.verdict = TokenVerdict::kDeadlock;
    result.witness = slack.witness();
  } else if (sv == TokenVerdict::kFeasible) {
    result.verdict = TokenVerdict::kMarginal;
    result.witness = tight_witness;
  } else {
    result.verdict = TokenVerdict::kUndecided;
  }
  return result;
}

}  // namespace qnn
