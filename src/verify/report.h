// Structured diagnostics for the static dataflow-graph analyzer.
//
// Every finding carries a *stable* code (QNN-Dxxx) so tests and CI can
// assert on exact failure classes instead of message substrings. Codes are
// grouped by the analysis that produces them:
//
//   QNN-D0xx  graph structure   (edges, dead ends, reachability, forks)
//   QNN-D1xx  shape / bit-width propagation
//   QNN-D2xx  parameter banks   (weight caches, thresholds, quantizers)
//   QNN-D3xx  deadlock / FIFO capacity
//   QNN-D4xx  multi-DFE partition feasibility (MaxRing links, resources)
//   QNN-D5xx  backend capability (supports_op / device availability)
//   QNN-D6xx  protocol model checking (src/mc) + compiled-plan consistency
//
// Severity semantics:
//   kError    the graph would hang, crash, or stream poisoned values at
//             run time — construction must be refused.
//   kWarning  legal but suspicious or performance-degrading; the engine
//             compensates (e.g. by clamping the burst size).
//   kInfo     proof obligations that were discharged, recorded so the
//             report shows *why* a graph is safe, not just that it is.
#pragma once

#include <string>
#include <vector>

namespace qnn {

enum class Severity { kInfo, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);

/// Stable diagnostic codes. Never renumber; retire codes instead.
namespace diag {
// --- structure ---------------------------------------------------------
inline constexpr const char* kBadEdge = "QNN-D001";         // edge breaks
                                                            // topological order
inline constexpr const char* kDeadEnd = "QNN-D002";         // output never
                                                            // consumed
inline constexpr const char* kUnreachable = "QNN-D003";     // never reaches
                                                            // network output
inline constexpr const char* kMissingSkip = "QNN-D004";     // Add without a
                                                            // skip edge
inline constexpr const char* kStraySkip = "QNN-D005";       // skip edge on a
                                                            // non-Add node
inline constexpr const char* kDegenerateFork = "QNN-D006";  // one producer on
                                                            // both Add ports
// --- shape / bit-width propagation -------------------------------------
inline constexpr const char* kShapeMismatch = "QNN-D101";
inline constexpr const char* kBadWindow = "QNN-D102";     // window geometry
inline constexpr const char* kBitsMismatch = "QNN-D103";  // stream width !=
                                                          // producer width
inline constexpr const char* kBitsOverflow = "QNN-D104";  // width too narrow
                                                          // for the value range
inline constexpr const char* kBitsRange = "QNN-D105";     // width outside what
                                                          // streams support
// --- parameter banks ----------------------------------------------------
inline constexpr const char* kParamBank = "QNN-D201";      // bank count/index
inline constexpr const char* kWeightShape = "QNN-D202";    // weight cache
                                                           // shape mismatch
inline constexpr const char* kThresholdChannels = "QNN-D203";
inline constexpr const char* kQuantizerBits = "QNN-D204";  // activation planes
                                                           // vs quantizer
// --- deadlock / capacity ------------------------------------------------
inline constexpr const char* kSkipCapacity = "QNN-D301";  // skip FIFO below
                                                          // the lag bound
inline constexpr const char* kBurstClamp = "QNN-D302";    // burst > FIFO
                                                          // capacity (clamped)
inline constexpr const char* kShallowFifo = "QNN-D303";   // capacity below one
                                                          // input row
inline constexpr const char* kUnprovable = "QNN-D304";    // lag bound not
                                                          // derivable
inline constexpr const char* kPlanMismatch = "QNN-D305";  // CompiledPlan
                                                          // fingerprint vs
                                                          // pipeline hash
// --- partition feasibility ----------------------------------------------
inline constexpr const char* kLinkOversubscribed = "QNN-D401";
inline constexpr const char* kDfeOverfill = "QNN-D402";
inline constexpr const char* kTooManyDfes = "QNN-D403";
inline constexpr const char* kBadSegments = "QNN-D404";
// --- live link plans (verify/link_check.h): proved before a LinkedEngine
// --- arms a (possibly degraded, post-failover) partition cut ------------
inline constexpr const char* kDeadLinkCut = "QNN-D420";       // cut rides a
                                                              // health-0 link
inline constexpr const char* kRetransmitHeadroom = "QNN-D421";  // wire rate
                                                                // too close to
                                                                // capacity for
                                                                // retransmits
inline constexpr const char* kCutCrossesSkip = "QNN-D422";    // cut crossed by
                                                              // more than the
                                                              // one main edge
// --- backend capability (verify/backend_check.h; compiled into
// --- qnn_backend so qnn_verify stays below the backend seam) ------------
inline constexpr const char* kBackendUnsupportedOp = "QNN-D501";
inline constexpr const char* kBackendNoDevices = "QNN-D502";
// --- protocol model checking (src/mc) -----------------------------------
inline constexpr const char* kProtoDeadlock = "QNN-D601";     // lost wakeup /
                                                              // deadlock trace
inline constexpr const char* kProtoDoubleRun = "QNN-D602";    // task stepped
                                                              // concurrently
inline constexpr const char* kProtoLinearize = "QNN-D603";    // FIFO/counter
                                                              // integrity
inline constexpr const char* kProtoBudget = "QNN-D604";       // exploration
                                                              // budget exhausted
inline constexpr const char* kProtoExplored = "QNN-D605";     // exploration
                                                              // stats (proof
                                                              // note)
// --- compiled-plan consistency (verify/plan_check.h) --------------------
inline constexpr const char* kPinOverlap = "QNN-D610";     // replica pools pin
                                                           // onto the same core
inline constexpr const char* kMachineDrift = "QNN-D611";   // cached plan built
                                                           // on another machine
inline constexpr const char* kBurstFifoSkew = "QNN-D612";  // link burst exceeds
                                                           // planned capacity
}  // namespace diag

/// One analyzer finding.
struct Diagnostic {
  std::string code;          // stable QNN-Dxxx identifier
  Severity severity = Severity::kError;
  int node = -1;             // pipeline node index, -1 = whole graph / input
  std::string where;         // node or stream name ("" = whole graph)
  std::string message;

  /// "QNN-D002 [error] conv_1: output stream is never consumed ..."
  [[nodiscard]] std::string str() const;
};

/// Ordered collection of findings from one analyzer run.
class Report {
 public:
  void add(Severity severity, const char* code, int node, std::string where,
           std::string message);
  void info(const char* code, int node, std::string where,
            std::string message) {
    add(Severity::kInfo, code, node, std::move(where), std::move(message));
  }
  void warn(const char* code, int node, std::string where,
            std::string message) {
    add(Severity::kWarning, code, node, std::move(where), std::move(message));
  }
  void error(const char* code, int node, std::string where,
             std::string message) {
    add(Severity::kError, code, node, std::move(where), std::move(message));
  }

  /// True when no error-severity finding is present (warnings/info allowed).
  [[nodiscard]] bool ok() const { return errors_ == 0; }
  [[nodiscard]] int errors() const { return errors_; }
  [[nodiscard]] int warnings() const { return warnings_; }

  /// Number of findings carrying `code`.
  [[nodiscard]] int count(const char* code) const;
  /// True when at least one finding carries `code`.
  [[nodiscard]] bool has(const char* code) const { return count(code) > 0; }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Render every finding at or above `min_severity`, one per line.
  [[nodiscard]] std::string str(Severity min_severity = Severity::kInfo) const;
  /// Machine-readable rendering of the whole report (qnn_verify --json):
  /// {"ok": ..., "errors": N, "warnings": N, "diagnostics": [{code,
  /// severity, node, where, message}, ...]}.
  [[nodiscard]] std::string json() const;
  /// One-line verdict: "FAIL: 2 error(s), 1 warning(s)" / "PASS ...".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
  int warnings_ = 0;
};

}  // namespace qnn
