#include "verify/report.h"

#include <sstream>

namespace qnn {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string out = code;
  out += " [";
  out += severity_name(severity);
  out += "] ";
  if (!where.empty()) {
    out += where;
    out += ": ";
  }
  out += message;
  return out;
}

void Report::add(Severity severity, const char* code, int node,
                 std::string where, std::string message) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  diags_.push_back(Diagnostic{code, severity, node, std::move(where),
                              std::move(message)});
}

int Report::count(const char* code) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) ++n;
  }
  return n;
}

std::string Report::str(Severity min_severity) const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    if (d.severity < min_severity) continue;
    os << d.str() << "\n";
  }
  return os.str();
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Report::json() const {
  std::ostringstream os;
  os << "{\n  \"ok\": " << (ok() ? "true" : "false")
     << ",\n  \"errors\": " << errors_ << ",\n  \"warnings\": " << warnings_
     << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"code\": \"" << d.code
       << "\", \"severity\": \"" << severity_name(d.severity)
       << "\", \"node\": " << d.node << ", \"where\": \""
       << json_escape(d.where) << "\", \"message\": \""
       << json_escape(d.message) << "\"}";
  }
  os << (diags_.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::string Report::summary() const {
  std::ostringstream os;
  os << (ok() ? "PASS" : "FAIL") << ": " << errors_ << " error(s), "
     << warnings_ << " warning(s), "
     << static_cast<int>(diags_.size()) - errors_ - warnings_ << " note(s)";
  return os.str();
}

}  // namespace qnn
