#include "verify/report.h"

#include <sstream>

namespace qnn {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string out = code;
  out += " [";
  out += severity_name(severity);
  out += "] ";
  if (!where.empty()) {
    out += where;
    out += ": ";
  }
  out += message;
  return out;
}

void Report::add(Severity severity, const char* code, int node,
                 std::string where, std::string message) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  diags_.push_back(Diagnostic{code, severity, node, std::move(where),
                              std::move(message)});
}

int Report::count(const char* code) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) ++n;
  }
  return n;
}

std::string Report::str(Severity min_severity) const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    if (d.severity < min_severity) continue;
    os << d.str() << "\n";
  }
  return os.str();
}

std::string Report::summary() const {
  std::ostringstream os;
  os << (ok() ? "PASS" : "FAIL") << ": " << errors_ << " error(s), "
     << warnings_ << " warning(s), "
     << static_cast<int>(diags_.size()) - errors_ - warnings_ << " note(s)";
  return os.str();
}

}  // namespace qnn
