#include "verify/graph_check.h"

#include <algorithm>
#include <bit>

#include "core/error.h"
#include "fpga/resource_model.h"
#include "plan/compiled_plan.h"
#include "sim/cycle_model.h"
#include "verify/plan_check.h"
#include "verify/token_flow.h"

namespace qnn {
namespace {

/// Edge indices usable for graph walks: every main/skip producer is either
/// -1 or an earlier node. Analyses past the structural pass require this.
bool edges_in_range(const Pipeline& p) {
  for (int i = 0; i < p.size(); ++i) {
    const Node& n = p.node(i);
    if (n.main_from < -1 || n.main_from >= i) return false;
    if (n.skip_from < -1 || n.skip_from >= i) return false;
  }
  return !p.nodes.empty();
}

std::string bits_str(int bits) { return std::to_string(bits) + " b"; }

}  // namespace

// -------------------------------------------------------- (a) structure

void check_structure(const Pipeline& p, Report& report) {
  const int n = p.size();
  if (n == 0) {
    report.error(diag::kBadEdge, -1, "pipeline", "pipeline has no nodes");
    return;
  }
  bool walkable = true;
  for (int i = 0; i < n; ++i) {
    const Node& node = p.node(i);
    if (node.main_from < -1 || node.main_from >= i) {
      report.error(diag::kBadEdge, i, node.name,
                   "main edge from node " + std::to_string(node.main_from) +
                       " breaks the topological order (graph has a cycle or "
                       "dangling reference)");
      walkable = false;
    }
    if (node.kind == NodeKind::Add) {
      if (node.skip_from < 0 || node.skip_from >= i) {
        report.error(diag::kMissingSkip, i, node.name,
                     "Add node has no valid skip edge (skip_from = " +
                         std::to_string(node.skip_from) +
                         "); the adder would starve forever");
        if (node.skip_from >= i || node.skip_from < -1) walkable = false;
      } else if (node.skip_from == node.main_from) {
        report.warn(diag::kDegenerateFork, i, node.name,
                    "skip and main edges read the same producer; the skip "
                    "path adds no delay and the fork is degenerate");
      }
    } else if (node.skip_from != -1) {
      report.error(diag::kStraySkip, i, node.name,
                   "only Add nodes take skip inputs (skip_from = " +
                       std::to_string(node.skip_from) + ")");
      if (node.skip_from >= i || node.skip_from < -1) walkable = false;
    }
  }
  if (!walkable) return;

  // Dead ends: a non-terminal node whose output no one pops. Its FIFO
  // fills, the node blocks, and the stall propagates to the feeder — the
  // classic runtime hang this analyzer exists to reject.
  std::vector<char> consumed(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    const Node& node = p.node(j);
    if (node.main_from >= 0) {
      consumed[static_cast<std::size_t>(node.main_from)] = 1;
    }
    if (node.skip_from >= 0) {
      consumed[static_cast<std::size_t>(node.skip_from)] = 1;
    }
  }
  for (int i = 0; i + 1 < n; ++i) {
    if (!consumed[static_cast<std::size_t>(i)]) {
      report.error(diag::kDeadEnd, i, p.node(i).name,
                   "output stream is never consumed; the FIFO would fill and "
                   "deadlock the whole upstream chain");
    }
  }

  // Backward reachability from the network output: kernels that compute
  // but whose results can never reach the output are a dead subgraph
  // (they stall once their dead-end descendants block).
  std::vector<char> live(static_cast<std::size_t>(n), 0);
  std::vector<int> stack{n - 1};
  live[static_cast<std::size_t>(n - 1)] = 1;
  while (!stack.empty()) {
    const Node& node = p.node(stack.back());
    stack.pop_back();
    for (const int src : {node.main_from, node.skip_from}) {
      if (src >= 0 && !live[static_cast<std::size_t>(src)]) {
        live[static_cast<std::size_t>(src)] = 1;
        stack.push_back(src);
      }
    }
  }
  for (int i = 0; i + 1 < n; ++i) {
    if (!live[static_cast<std::size_t>(i)] &&
        consumed[static_cast<std::size_t>(i)]) {
      report.error(diag::kUnreachable, i, p.node(i).name,
                   "kernel output never reaches the network output (dead "
                   "subgraph); it would stall once its dead-end consumers "
                   "block");
    }
  }
}

// ---------------------------------------------- (b) shapes and bit widths

void check_shapes(const Pipeline& p, Report& report) {
  for (int i = 0; i < p.size(); ++i) {
    const Node& n = p.node(i);
    const Shape& src_shape =
        n.main_from < 0 ? p.input : p.node(n.main_from).out;
    const int src_bits =
        n.main_from < 0 ? p.input_bits : p.node(n.main_from).out_bits;

    if (!n.in.valid() || !n.out.valid()) {
      report.error(diag::kShapeMismatch, i, n.name,
                   "degenerate shape (in " + n.in.str() + ", out " +
                       n.out.str() + "); every extent must be positive");
    }
    if (n.in != src_shape) {
      report.error(diag::kShapeMismatch, i, n.name,
                   "input shape " + n.in.str() + " != producer output " +
                       src_shape.str());
    }
    if (n.in_bits != src_bits) {
      report.error(diag::kBitsMismatch, i, n.name,
                   "declared input width " + bits_str(n.in_bits) +
                       " != producer stream width " + bits_str(src_bits) +
                       "; downstream bit-plane decomposition would truncate "
                       "values");
    }
    for (const int bits : {n.in_bits, n.out_bits}) {
      if (bits < 1 || bits > 32) {
        report.error(diag::kBitsRange, i, n.name,
                     "stream width " + bits_str(bits) +
                         " outside the supported [1, 32] range");
      }
    }

    if (n.is_window_op()) {
      const bool geometry_ok = n.in.valid() && n.k >= 1 && n.stride >= 1 &&
                               n.pad >= 0 && n.in.h + 2 * n.pad >= n.k &&
                               n.in.w + 2 * n.pad >= n.k;
      if (!geometry_ok) {
        report.error(diag::kBadWindow, i, n.name,
                     "window k=" + std::to_string(n.k) + " stride=" +
                         std::to_string(n.stride) + " pad=" +
                         std::to_string(n.pad) +
                         " does not fit the input map " + n.in.str());
      } else if (n.out !=
                 conv_out_shape(n.in, n.out.c, n.k, n.stride, n.pad)) {
        report.error(
            diag::kBadWindow, i, n.name,
            "output shape " + n.out.str() + " != window arithmetic " +
                conv_out_shape(n.in, n.out.c, n.k, n.stride, n.pad).str());
      }
    }

    // Minimum output width so no value of the kernel's range is truncated
    // when the next kernel decomposes the stream into out_bits planes.
    switch (n.kind) {
      case NodeKind::Conv: {
        if (n.in_bits > 16) {
          report.error(diag::kBitsRange, i, n.name,
                       "convolution input width " + bits_str(n.in_bits) +
                           " above the 16 b pre-activation model limit");
          break;
        }
        const std::int64_t window =
            static_cast<std::int64_t>(n.k) * n.k * n.in.c;
        if (window > 0 && n.in_bits >= 1) {
          const int required = preact_bits(window, n.in_bits);
          if (n.out_bits < required) {
            report.error(diag::kBitsOverflow, i, n.name,
                         "output width " + bits_str(n.out_bits) +
                             " below the " + bits_str(required) +
                             " pre-activation range of a " +
                             std::to_string(window) + "-value window");
          }
        }
        break;
      }
      case NodeKind::MaxPool:
        if (n.out_bits < n.in_bits) {
          report.error(diag::kBitsOverflow, i, n.name,
                       "max pooling cannot narrow the stream (" +
                           bits_str(n.in_bits) + " -> " +
                           bits_str(n.out_bits) + ")");
        }
        break;
      case NodeKind::AvgPool: {
        if (n.in_bits >= 1 && n.in_bits <= 31 && n.k >= 1) {
          const auto max_sum = static_cast<std::uint64_t>(n.k) * n.k *
                               ((std::uint64_t{1} << n.in_bits) - 1);
          const int required = static_cast<int>(std::bit_width(max_sum));
          if (n.out_bits < required) {
            report.error(diag::kBitsOverflow, i, n.name,
                         "window-sum range needs " + bits_str(required) +
                             ", stream declares " + bits_str(n.out_bits));
          }
        }
        break;
      }
      case NodeKind::BnAct:
        if (n.out_bits != p.act_bits) {
          report.warn(diag::kQuantizerBits, i, n.name,
                      "activation stream width " + bits_str(n.out_bits) +
                          " differs from the pipeline quantizer config (" +
                          bits_str(p.act_bits) + ")");
        }
        break;
      case NodeKind::Add: {
        if (n.out != n.in) {
          report.error(diag::kShapeMismatch, i, n.name,
                       "Add must preserve shape (" + n.in.str() + " -> " +
                           n.out.str() + ")");
        }
        if (n.skip_from >= 0 && n.skip_from < i) {
          const Node& s = p.node(n.skip_from);
          if (s.out != n.in) {
            report.error(diag::kShapeMismatch, i, n.name,
                         "skip shape " + s.out.str() + " != main shape " +
                             n.in.str());
          }
          const int required = std::max(n.in_bits, s.out_bits) + 1;
          if (n.out_bits < required) {
            report.error(diag::kBitsOverflow, i, n.name,
                         "sum of " + bits_str(n.in_bits) + " and " +
                             bits_str(s.out_bits) + " streams needs " +
                             bits_str(required) + ", stream declares " +
                             bits_str(n.out_bits));
          }
        }
        break;
      }
    }
  }
}

// --------------------------------------------------- (b) parameter banks

void check_params(const Pipeline& p, const NetworkParams& params,
                  Report& report) {
  if (static_cast<int>(params.convs.size()) != p.num_conv_params) {
    report.error(diag::kParamBank, -1, "pipeline",
                 "network declares " + std::to_string(p.num_conv_params) +
                     " conv banks, parameters supply " +
                     std::to_string(params.convs.size()));
  }
  if (static_cast<int>(params.bnacts.size()) != p.num_bnact_params) {
    report.error(diag::kParamBank, -1, "pipeline",
                 "network declares " + std::to_string(p.num_bnact_params) +
                     " bnact banks, parameters supply " +
                     std::to_string(params.bnacts.size()));
  }

  for (int i = 0; i < p.size(); ++i) {
    const Node& n = p.node(i);
    switch (n.kind) {
      case NodeKind::Conv: {
        if (n.param < 0 ||
            n.param >= static_cast<int>(params.convs.size())) {
          report.error(diag::kParamBank, i, n.name,
                       "conv bank index " + std::to_string(n.param) +
                           " out of range [0, " +
                           std::to_string(params.convs.size()) +
                           "); the kernel would read out of bounds");
          break;
        }
        const FilterShape& got =
            params.convs[static_cast<std::size_t>(n.param)].weights.shape();
        if (got.out_c != n.out.c || got.k != n.k || got.in_c != n.in.c) {
          report.error(
              diag::kWeightShape, i, n.name,
              "weight cache holds " + std::to_string(got.out_c) +
                  " filters of " + std::to_string(got.k) + "x" +
                  std::to_string(got.k) + "x" + std::to_string(got.in_c) +
                  ", kernel needs " + std::to_string(n.out.c) + " of " +
                  std::to_string(n.k) + "x" + std::to_string(n.k) + "x" +
                  std::to_string(n.in.c) +
                  "; XNOR-popcount would misalign every window");
        }
        break;
      }
      case NodeKind::BnAct: {
        if (n.param < 0 ||
            n.param >= static_cast<int>(params.bnacts.size())) {
          report.error(diag::kParamBank, i, n.name,
                       "bnact bank index " + std::to_string(n.param) +
                           " out of range [0, " +
                           std::to_string(params.bnacts.size()) + ")");
          break;
        }
        const BnActParams& b =
            params.bnacts[static_cast<std::size_t>(n.param)];
        if (b.thresholds.channels() != n.out.c) {
          report.error(diag::kThresholdChannels, i, n.name,
                       "threshold bank holds " +
                           std::to_string(b.thresholds.channels()) +
                           " channels, stream carries " +
                           std::to_string(n.out.c) +
                           "; the channel phase would drift every pixel");
        }
        if (b.thresholds.channels() > 0 &&
            b.thresholds.bits() != n.out_bits) {
          report.error(diag::kQuantizerBits, i, n.name,
                       "folded thresholds produce " +
                           bits_str(b.thresholds.bits()) +
                           " codes, stream declares " + bits_str(n.out_bits));
        }
        if (b.quantizer.bits() != n.out_bits) {
          report.error(diag::kQuantizerBits, i, n.name,
                       "activation quantizer is " +
                           bits_str(b.quantizer.bits()) +
                           ", stream declares " + bits_str(n.out_bits) +
                           "; activation bit planes would not match the "
                           "quantizer config");
        }
        break;
      }
      default:
        if (n.param != -1) {
          report.warn(diag::kParamBank, i, n.name,
                      "parameterless node carries bank index " +
                          std::to_string(n.param));
        }
        break;
    }
  }
}

// ------------------------------------------- (c) deadlock / FIFO capacity

void check_capacities(const Pipeline& p, const FifoPlan& plan,
                      Report& report) {
  if (plan.burst_clamped) {
    report.warn(diag::kBurstClamp, -1, "pipeline",
                "burst size exceeds the user FIFO capacity; kernels will "
                "move at most " + std::to_string(plan.burst) +
                    " values per transaction so one burst can never "
                    "overfill a ring");
  }

  // The engine consumes each PlannedStream::burst verbatim, so the plan
  // itself must never schedule a transaction larger than its ring — the
  // per-edge face of the D302 clamp above.
  for (const PlannedStream& ps : plan.streams) {
    if (ps.burst > ps.capacity) {
      report.error(diag::kBurstClamp, ps.consumer, ps.name,
                   "planned per-edge burst " + std::to_string(ps.burst) +
                       " exceeds the ring capacity " +
                       std::to_string(ps.capacity) +
                       "; one transaction could never complete");
    }
  }

  // Skip FIFOs below the quick whole-feature-map bound, deferred to the
  // exact token-flow proof after the scan.
  struct TightSkip {
    const PlannedStream* stream;
    std::size_t required;
    std::string detail;
  };
  std::vector<TightSkip> tight_skips;

  for (const PlannedStream& ps : plan.streams) {
    if (ps.consumer < 0) continue;
    const Node& c = p.node(ps.consumer);

    if (!ps.to_skip_port && c.is_window_op()) {
      // A window kernel's working set is its §III-B1b line buffer; a user
      // FIFO below it still makes progress (kernels are partial-burst
      // safe) but serializes producer and consumer row by row.
      const std::size_t working_set = line_buffer_values(c);
      if (ps.capacity < working_set) {
        report.warn(diag::kShallowFifo, ps.consumer, ps.name,
                    "capacity " + std::to_string(ps.capacity) +
                        " is below the kernel's §III-B1b line buffer (" +
                        std::to_string(working_set) +
                        " values); the window scan will run starved");
      }
      continue;
    }

    if (ps.to_skip_port && c.kind == NodeKind::Add) {
      // The skip FIFO must absorb the regular path's lag (§III-B5). The
      // bound used — and provisioned — by the engine is one full feature
      // map of the skip producer's output: the fork at the point where
      // skip and main paths diverge can then always run the skip side one
      // whole image ahead, so it never back-pressures the main path.
      //
      // Find that fork: walk the adder's main chain back; either the skip
      // producer itself is on it, or (downsampling residual blocks, where
      // the skip path carries its own 1x1 convolution) the producer's own
      // main chain re-joins it. Both chains end at the pipeline input, so
      // a join always exists in a connected graph.
      std::vector<int> chain;  // adder's main ancestors, nearest first
      for (int m = c.main_from; m >= 0; m = p.node(m).main_from) {
        chain.push_back(m);
      }
      const auto on_chain = [&chain](int node) {
        return std::find(chain.begin(), chain.end(), node) != chain.end();
      };

      std::string path;
      if (on_chain(ps.producer)) {
        const auto hops = static_cast<std::size_t>(
            std::find(chain.begin(), chain.end(), ps.producer) -
            chain.begin());
        if (hops == 0) {
          // Producer feeds both adder ports directly: consumption is in
          // lockstep, there is no lag to cover.
          report.info(diag::kSkipCapacity, ps.consumer, ps.name,
                      "deadlock-free: skip and main ports read the same "
                      "producer in lockstep");
          continue;
        }
        path = std::to_string(hops) + "-kernel regular path";
      } else {
        // Both main chains terminate at the pipeline input, so the walk
        // always finds the divergence point.
        int m = ps.producer;
        while (m >= 0 && !on_chain(m)) m = p.node(m).main_from;
        path = "re-convergent skip path joining the main chain at " +
               (m >= 0 ? p.node(m).name : std::string("the input"));
      }
      const std::size_t required =
          static_cast<std::size_t>(p.node(ps.producer).out.elems());
      if (ps.capacity >= required) {
        report.info(diag::kSkipCapacity, ps.consumer, ps.name,
                    "deadlock-free: capacity " +
                        std::to_string(ps.capacity) +
                        " covers the regular path's lag bound of " +
                        std::to_string(required) + " values (" + path +
                        ")");
      } else {
        // Below the whole-feature-map bound the quick argument is silent:
        // the capacity only has to cover the regular path's TRUE lag, a
        // property of the scan geometry and every FIFO between fork and
        // adder. Defer to the exact token-flow proof over the whole plan.
        tight_skips.push_back(
            {&ps, required, std::to_string(ps.capacity) +
                                " is below the feature-map bound of " +
                                std::to_string(required) + " values (" +
                                path + ")"});
      }
    }
  }

  if (tight_skips.empty()) return;

  // One self-timed simulation of the whole planned graph decides every
  // below-bound skip FIFO at once (verify/token_flow.h): completion of the
  // no-slack model proves deadlock freedom for every schedule; deadlock of
  // the full-slack model refutes it; the band between is reported, not
  // guessed.
  TokenFlowResult proof;
  try {
    proof = prove_token_flow(p, plan);
  } catch (const Error& e) {
    for (const TightSkip& ts : tight_skips) {
      report.warn(diag::kUnprovable, ts.stream->consumer, ts.stream->name,
                  "skip capacity " + ts.detail +
                      ") and the token-flow model could not be built: " +
                      e.what());
    }
    return;
  }
  for (const TightSkip& ts : tight_skips) {
    switch (proof.verdict) {
      case TokenVerdict::kFeasible:
        report.info(diag::kSkipCapacity, ts.stream->consumer, ts.stream->name,
                    "deadlock-free (exact token-flow proof): capacity " +
                        ts.detail +
                        ") but the pipelined simulation completes with no "
                        "burst slack, so the true lag is covered under "
                        "every schedule");
        break;
      case TokenVerdict::kDeadlock:
        report.error(diag::kSkipCapacity, ts.stream->consumer,
                     ts.stream->name,
                     "skip FIFO capacity " + ts.detail +
                         ") and the exact token-flow simulation deadlocks "
                         "even with full burst slack: " + proof.witness);
        break;
      case TokenVerdict::kMarginal:
        report.warn(diag::kUnprovable, ts.stream->consumer, ts.stream->name,
                    "skip capacity " + ts.detail +
                        ") is schedule-dependent: the token-flow simulation "
                        "completes only when burst buffers absorb the "
                        "overhang (no-slack quiescence: " + proof.witness +
                        "); enlarge the FIFO");
        break;
      case TokenVerdict::kUndecided:
        report.warn(diag::kUnprovable, ts.stream->consumer, ts.stream->name,
                    "skip capacity " + ts.detail +
                        ") and the token-flow simulation exhausted its "
                        "budget before deciding");
        break;
    }
  }
}

// ------------------------------------------ (d) partition feasibility

void check_partition(const Pipeline& p, const PartitionResult& placement,
                     const PartitionConfig& config, Report& report) {
  const int n = p.size();
  if (placement.dfes.empty()) {
    report.error(diag::kBadSegments, -1, "placement",
                 "placement assigns no DFEs");
    return;
  }
  int expect = 0;
  for (std::size_t k = 0; k < placement.dfes.size(); ++k) {
    const DfeAssignment& d = placement.dfes[k];
    if (d.first_node != expect || d.last_node < d.first_node ||
        d.last_node >= n) {
      report.error(diag::kBadSegments, d.first_node,
                   "DFE " + std::to_string(k),
                   "segments do not tile the kernel chain (segment [" +
                       std::to_string(d.first_node) + ", " +
                       std::to_string(d.last_node) + "], expected start " +
                       std::to_string(expect) + ")");
      return;
    }
    expect = d.last_node + 1;
  }
  if (expect != n) {
    report.error(diag::kBadSegments, -1, "placement",
                 "segments cover " + std::to_string(expect) + " of " +
                     std::to_string(n) + " kernels");
    return;
  }
  if (static_cast<int>(placement.dfes.size()) > config.max_dfes) {
    report.error(diag::kTooManyDfes, -1, "placement",
                 "placement uses " + std::to_string(placement.dfes.size()) +
                     " DFEs, the node provides " +
                     std::to_string(config.max_dfes));
  }

  // Per-DFE resource totals against the device, independent of whatever
  // the planner recorded in the placement.
  const NetworkResources res = estimate_resources(p, config.costs);
  for (std::size_t k = 0; k < placement.dfes.size(); ++k) {
    const DfeAssignment& d = placement.dfes[k];
    double luts = 0.0;
    double ffs = 0.0;
    std::int64_t bram = 0;
    for (int i = d.first_node; i <= d.last_node; ++i) {
      const NodeResources& nr = res.nodes[static_cast<std::size_t>(i)];
      luts += nr.luts;
      ffs += nr.ffs;
      bram += nr.bram_blocks;
    }
    const double lut_frac = luts / static_cast<double>(config.device.luts);
    const double ff_frac = ffs / static_cast<double>(config.device.ffs);
    const double bram_frac = static_cast<double>(bram) /
                             static_cast<double>(config.device.bram_blocks);
    const double util = std::max({lut_frac, ff_frac, bram_frac});
    if (util > config.fill * (1.0 + 1e-9)) {
      const char* binding = util == lut_frac  ? "LUTs"
                            : util == ff_frac ? "FFs"
                                              : "BRAM";
      report.error(diag::kDfeOverfill, d.first_node,
                   "DFE " + std::to_string(k),
                   "utilization " + std::to_string(util) +
                       " exceeds the fill budget " +
                       std::to_string(config.fill) + " (binding resource: " +
                       binding + ")");
    }
  }

  // Per-cut MaxRing bit-rate at the pipeline's modeled throughput (the
  // sim/ link arithmetic: every stream crossing the cut is serialized
  // over the DFE-to-DFE link).
  SimConfig sc;
  sc.datapath_bits = config.costs.datapath_bits;
  sc.weight_cache_capacity_bits = config.costs.weight_cache_capacity_bits;
  sc.clock_hz = config.clock_hz;
  const double fps =
      config.clock_hz /
      static_cast<double>(analytic_bottleneck_cycles(p, sc));
  for (std::size_t k = 0; k + 1 < placement.dfes.size(); ++k) {
    // Health-derated per-link capacity, so a placement over a degraded or
    // dead MaxRing hop (PartitionConfig::link_health) fails verification.
    const double capacity_mbps = config.link_capacity_mbps(k);
    const int after = placement.dfes[k].last_node;
    double mbps = 0.0;
    // Same framed pricing as partition/assemble: planned bursts carried in
    // PartitionConfig::link_bursts round each frame to whole link words.
    for (const CrossingStream& s :
         crossing_streams(p, after, &config.link_bursts)) {
      mbps += s.wire_mbps(fps, config.link_bits_per_cycle);
    }
    const std::string where =
        "link after " + p.node(after).name;
    if (mbps > capacity_mbps) {
      report.error(diag::kLinkOversubscribed, after, where,
                   "cut needs " + std::to_string(mbps) +
                       " Mbps, MaxRing provides " +
                       std::to_string(capacity_mbps) + " Mbps");
    } else {
      report.info(diag::kLinkOversubscribed, after, where,
                  "feasible: " + std::to_string(mbps) + " of " +
                      std::to_string(capacity_mbps) + " Mbps");
    }
  }
}

// ------------------------------------------------------------ entry points

Report verify_graph(const Pipeline& pipeline, const NetworkParams* params,
                    const EngineOptions& options) {
  Report report;
  check_structure(pipeline, report);
  if (!edges_in_range(pipeline)) return report;
  check_shapes(pipeline, report);
  if (params != nullptr) check_params(pipeline, *params, report);
  if (options.plan != nullptr) {
    // Re-verify the whole plan artifact (verify/plan_check.h): a stale
    // fingerprint, corrupt stream table or burst/FIFO skew must never reach
    // the engine — its FIFO sizes were proved for a different graph. Any
    // error here invalidates the capacity proof below, so stop.
    const int errors_before = report.errors();
    lint_plan(pipeline, *options.plan, report);
    if (report.errors() != errors_before) return report;
  }
  if (report.ok()) {
    // Prove the SAME streams the engine will wire: the supplied plan's
    // FIFOs verbatim when one is given, the re-derived plan otherwise.
    check_capacities(pipeline,
                     options.plan != nullptr ? options.plan->fifos
                                             : plan_fifos(pipeline, options),
                     report);
  } else {
    report.warn(diag::kUnprovable, -1, "pipeline",
                "capacity analysis skipped: earlier errors invalidate the "
                "FIFO lag bounds");
  }
  return report;
}

Report verify_all(const Pipeline& pipeline, const NetworkParams* params,
                  const EngineOptions& options,
                  const PartitionResult* placement,
                  const PartitionConfig& partition_config) {
  Report report = verify_graph(pipeline, params, options);
  if (placement != nullptr && report.ok()) {
    check_partition(pipeline, *placement, partition_config, report);
  }
  return report;
}

void enforce(const Report& report, const std::string& context) {
  if (report.ok()) return;
  throw Error(context + ": static verification failed (" + report.summary() +
              ")\n" + report.str(Severity::kError));
}

}  // namespace qnn
