#include "verify/link_check.h"

#include <string>

#include "io/table.h"

namespace qnn {

void check_link_plan(const Pipeline& pipeline,
                     const std::vector<int>& cut_after_nodes,
                     const PartitionConfig& config, double images_per_second,
                     double retransmit_headroom, Report& report) {
  const int n = pipeline.size();
  int prev = -1;
  for (std::size_t k = 0; k < cut_after_nodes.size(); ++k) {
    const int after = cut_after_nodes[k];
    const std::string where = "link" + std::to_string(k);
    if (after <= prev || after >= n - 1) {
      report.error(diag::kBadSegments, after, where,
                   "cut after node " + std::to_string(after) +
                       " is out of order or out of range");
      prev = after;
      continue;
    }
    prev = after;
    const std::vector<CrossingStream> crossing =
        crossing_streams(pipeline, after, &config.link_bursts);
    if (crossing.size() != 1) {
      report.error(diag::kCutCrossesSkip, after, where,
                   "cut after '" + pipeline.node(after).name + "' is crossed "
                       "by " + std::to_string(crossing.size()) +
                       " stream(s); a MaxRing link carries exactly one");
      continue;
    }
    const double capacity = config.link_capacity_mbps(k);
    if (capacity <= 0.0) {
      report.error(diag::kDeadLinkCut, after, where,
                   "cut after '" + pipeline.node(after).name +
                       "' rides a dead link (health 0); the plan must be "
                       "repartitioned around it");
      continue;
    }
    report.info(diag::kDeadLinkCut, after, where,
                "link alive: capacity " + Table::num(capacity, 1) + " Mbps");
    if (images_per_second > 0.0) {
      const double wire = crossing[0].wire_mbps(images_per_second,
                                               config.link_bits_per_cycle);
      const double needed = wire * (1.0 + retransmit_headroom);
      if (needed > capacity) {
        report.warn(diag::kRetransmitHeadroom, after, where,
                    "wire rate " + Table::num(wire, 1) + " Mbps leaves less "
                        "than " +
                        Table::num(100.0 * retransmit_headroom, 0) +
                        "% retransmit headroom against " +
                        Table::num(capacity, 1) + " Mbps capacity");
      } else {
        report.info(diag::kRetransmitHeadroom, after, where,
                    "retransmit headroom proved: " + Table::num(wire, 1) +
                        " * " + Table::num(1.0 + retransmit_headroom, 2) +
                        " <= " + Table::num(capacity, 1) + " Mbps");
      }
    }
  }
}

}  // namespace qnn
