#include "verify/backend_check.h"

#include <string>

#include "backend/backend.h"

namespace qnn {

void check_backend_support(const Pipeline& pipeline, const Backend& backend,
                           Report& report) {
  const BackendInfo& info = backend.info();
  const int devices = backend.device_count();
  if (devices < 1) {
    report.error(diag::kBackendNoDevices, -1, info.name,
                 "backend \"" + info.name + "\" exposes no devices");
  } else {
    report.info(diag::kBackendNoDevices, -1, info.name,
                "backend \"" + info.name + "\" exposes " +
                    std::to_string(devices) + " device(s)");
  }
  int unsupported = 0;
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    if (!backend.supports_op(n)) {
      ++unsupported;
      report.error(diag::kBackendUnsupportedOp, i, n.name,
                   "backend \"" + info.name +
                       "\" cannot execute this node (supports_op refused " +
                       n.name + ")");
    }
  }
  if (unsupported == 0) {
    report.info(diag::kBackendUnsupportedOp, -1, info.name,
                "backend \"" + info.name + "\" supports all " +
                    std::to_string(pipeline.size()) + " nodes");
  }
}

Report verify_backend(const Pipeline& pipeline, const Backend& backend) {
  Report report;
  check_backend_support(pipeline, backend, report);
  return report;
}

}  // namespace qnn
