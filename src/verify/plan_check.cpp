#include "verify/plan_check.h"

#include <algorithm>
#include <thread>

namespace qnn {
namespace {

std::string stream_field(std::size_t i, const PlannedStream& s,
                         const char* field) {
  return "fifos.streams[" + std::to_string(i) + "] ('" + s.name + "')." +
         field;
}

/// Topology identity of a planned stream: which edge of the graph it wires.
/// Capacities/bursts are tuning, this is structure.
struct EdgeId {
  int producer;
  int consumer;
  bool to_skip_port;
  PlannedStream::Role role;

  bool operator==(const EdgeId&) const = default;
};

EdgeId edge_id(const PlannedStream& s) {
  return EdgeId{s.producer, s.consumer, s.to_skip_port, s.role};
}

}  // namespace

void lint_plan(const Pipeline& pipeline, const CompiledPlan& plan,
               Report& report) {
  const int before_errors = report.errors();
  const int before_warnings = report.warnings();

  if (plan.version != kPlanFormatVersion) {
    report.error(diag::kPlanMismatch, -1, "plan",
                 "field 'version': serialized value " +
                     std::to_string(plan.version) + " != expected format " +
                     std::to_string(kPlanFormatVersion) +
                     " (the cache treats this as a miss; an armed plan must "
                     "not smuggle it past that check)");
  }
  if (!plan.matches(pipeline)) {
    report.error(diag::kPlanMismatch, -1, "plan",
                 "field 'key.model_hash': plan " + plan.fingerprint() +
                     " was built for a different pipeline than '" +
                     pipeline.name +
                     "' — its FIFO sizes were proved for another graph "
                     "(stale cache entry? re-run the autotuner)");
    return;  // every structural comparison below would be noise
  }
  if (plan.key.machine != machine_signature()) {
    report.warn(diag::kMachineDrift, -1, "plan",
                "field 'key.machine': plan was tuned on '" +
                    plan.key.machine + "' but this host is '" +
                    machine_signature() +
                    "' — results stay bit-exact, but the frozen executor/"
                    "pinning/burst knobs were chosen for that core count");
  }

  // ---- structural integrity of the frozen FIFO plan ----------------------
  if (plan.fifos.streams.empty()) {
    report.error(diag::kPlanMismatch, -1, "plan",
                 "field 'fifos.streams': plan carries no FIFO streams — the "
                 "engine would have nothing to wire");
    return;
  }
  const int n = pipeline.size();
  bool structural_ok = true;
  for (std::size_t i = 0; i < plan.fifos.streams.size(); ++i) {
    const PlannedStream& s = plan.fifos.streams[i];
    if (s.producer < -1 || s.producer >= n) {
      report.error(diag::kPlanMismatch, s.producer,
                   stream_field(i, s, "producer"),
                   "node index " + std::to_string(s.producer) +
                       " is outside this pipeline's 0.." +
                       std::to_string(n - 1) + " range");
      structural_ok = false;
    }
    if (s.consumer < -1 || s.consumer >= n) {
      report.error(diag::kPlanMismatch, s.consumer,
                   stream_field(i, s, "consumer"),
                   "node index " + std::to_string(s.consumer) +
                       " is outside this pipeline's 0.." +
                       std::to_string(n - 1) + " range");
      structural_ok = false;
    }
    if (s.capacity == 0) {
      report.error(diag::kPlanMismatch, s.consumer,
                   stream_field(i, s, "capacity"),
                   "zero-capacity FIFO cannot carry a single value (corrupt "
                   "deserialization?)");
      structural_ok = false;
    }
  }
  // The engine wires the plan's streams verbatim, so the plan must cover
  // exactly the edges this pipeline has. Topology depends only on the
  // pipeline, never on tuning knobs, so the default derivation is the
  // ground truth to compare against.
  if (structural_ok) {
    const FifoPlan expected = plan_fifos(pipeline);
    for (const PlannedStream& want : expected.streams) {
      const EdgeId id = edge_id(want);
      const bool found = std::any_of(
          plan.fifos.streams.begin(), plan.fifos.streams.end(),
          [&](const PlannedStream& s) { return edge_id(s) == id; });
      if (!found) {
        report.error(diag::kPlanMismatch, want.consumer, "plan",
                     "field 'fifos.streams': edge '" + want.name +
                         "' of this pipeline has no planned stream — the "
                         "engine could not wire the graph from this plan");
      }
    }
    if (plan.fifos.streams.size() != expected.streams.size()) {
      report.error(
          diag::kPlanMismatch, -1, "plan",
          "field 'fifos.streams': plan wires " +
              std::to_string(plan.fifos.streams.size()) +
              " streams but this pipeline has " +
              std::to_string(expected.streams.size()) + " edges");
    }
  }

  // ---- burst/FIFO skew (QNN-D612) ----------------------------------------
  for (std::size_t i = 0; i < plan.fifos.streams.size(); ++i) {
    const PlannedStream& s = plan.fifos.streams[i];
    if (s.burst > s.capacity) {
      report.error(diag::kBurstFifoSkew, s.consumer,
                   stream_field(i, s, "burst"),
                   "burst " + std::to_string(s.burst) +
                       " exceeds the stream's own FIFO capacity " +
                       std::to_string(s.capacity) +
                       " — deserialization skew: the engine would clamp it "
                       "(QNN-D302) while the link models price the "
                       "unclamped value");
    } else if (s.burst == 0 && s.consumer >= 0) {
      report.error(diag::kBurstFifoSkew, s.consumer,
                   stream_field(i, s, "burst"),
                   "zero burst on a consumed edge — the consumer would "
                   "never frame a transaction");
    }
  }
  // link_bursts is derived from `fifos` at compile time; after a round trip
  // through the cache the two can only disagree if the file was edited or
  // truncated. Skew here only mis-prices the sim/partition link models (the
  // engine reads `fifos` directly), hence warning severity.
  for (const SimConfig::EdgeBurst& lb : plan.link_bursts) {
    const auto it = std::find_if(
        plan.fifos.streams.begin(), plan.fifos.streams.end(),
        [&](const PlannedStream& s) {
          return s.consumer == lb.consumer && s.to_skip_port == lb.to_skip_port;
        });
    if (it == plan.fifos.streams.end()) {
      report.warn(diag::kBurstFifoSkew, lb.consumer, "plan",
                  "field 'link_bursts': entry for node " +
                      std::to_string(lb.consumer) +
                      (lb.to_skip_port ? " (skip port)" : " (main port)") +
                      " matches no planned stream");
    } else if (lb.values != it->burst) {
      report.warn(diag::kBurstFifoSkew, lb.consumer, "plan",
                  "field 'link_bursts': node " + std::to_string(lb.consumer) +
                      (lb.to_skip_port ? " (skip port)" : " (main port)") +
                      " prices " + std::to_string(lb.values) +
                      " values per transaction but stream '" + it->name +
                      "' frames " + std::to_string(it->burst) +
                      " — the link models and the engine disagree");
    }
  }

  if (report.errors() == before_errors &&
      report.warnings() == before_warnings) {
    report.info(diag::kPlanMismatch, -1, "plan",
                "compiled plan " + plan.fingerprint() +
                    " re-verified: model hash, machine, " +
                    std::to_string(plan.fifos.streams.size()) +
                    " streams and " + std::to_string(plan.link_bursts.size()) +
                    " link bursts are consistent");
  }
}

void lint_pool_pinning(const std::vector<ReplicaPinWindow>& windows,
                       Report& report, int hardware_cores) {
  const unsigned cores =
      hardware_cores > 0
          ? static_cast<unsigned>(hardware_cores)
          : std::max(1u, std::thread::hardware_concurrency());
  int findings = 0;
  std::size_t pinned = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const ReplicaPinWindow& a = windows[i];
    if (a.threads == 0) continue;
    ++pinned;
    if (a.pin_offset + a.threads > cores) {
      // The executor binds worker w to core (pin_offset + w) % cores, so a
      // window past the end is not "out of range" — it silently wraps onto
      // core 0 and collides with whoever legitimately owns it.
      report.warn(diag::kPinOverlap, -1, a.label,
                  "pin window [" + std::to_string(a.pin_offset) + ", " +
                      std::to_string(a.pin_offset + a.threads) +
                      ") extends past the last hardware core (machine has " +
                      std::to_string(cores) +
                      ") — the executor wraps pins modulo the core count, "
                      "an overlap in disguise");
      ++findings;
    }
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const ReplicaPinWindow& b = windows[j];
      if (b.threads == 0) continue;
      const unsigned lo = std::max(a.pin_offset, b.pin_offset);
      const unsigned hi =
          std::min(a.pin_offset + a.threads, b.pin_offset + b.threads);
      if (lo < hi) {
        report.warn(diag::kPinOverlap, -1, a.label,
                    "pin window overlaps '" + b.label + "' on cores [" +
                        std::to_string(lo) + ", " + std::to_string(hi) +
                        ") — the two replicas time-share those cores and "
                        "the pool's throughput collapses toward one "
                        "replica's");
        ++findings;
      }
    }
  }
  if (findings == 0 && pinned >= 2) {
    report.info(diag::kPinOverlap, -1, "pool",
                std::to_string(pinned) +
                    " pinned replica windows are pairwise disjoint on " +
                    std::to_string(cores) + " hardware cores");
  }
}

}  // namespace qnn
