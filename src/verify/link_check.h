// Static proof obligations for a *live* MaxRing link plan.
//
// The D40x checks (partition_check) prove a placement the estimator chose;
// these D42x checks prove an explicit cut list the LinkedEngine is about
// to execute — including the degraded cuts its failover ladder proposes
// after a link death. A degraded plan must be proved before it arms:
//
//   QNN-D420  a cut rides a link whose health is 0 (dead): running it
//             would wedge on the first frame, so the plan is refused and
//             the ladder falls through to the next rung.
//   QNN-D421  the cut's wire rate is within the retransmit headroom of
//             the link capacity: legal, but a single corrupt-retransmit
//             burst would oversubscribe the wire (warning).
//   QNN-D422  the cut is crossed by more than one stream (a skip edge
//             spans it): the in-process MaxRing carries exactly one
//             framed stream per link, so such cuts are refused.
//
// Discharged obligations are recorded as kInfo findings, so the report
// shows *why* a degraded plan is safe, not just that it is.
#pragma once

#include <vector>

#include "nn/pipeline.h"
#include "partition/partitioner.h"
#include "verify/report.h"

namespace qnn {

/// Prove the explicit cut list `cut_after_nodes` (link k = the cut after
/// cut_after_nodes[k]) against `config`'s link capacities and health.
/// `images_per_second` > 0 enables the D421 wire-rate check at that
/// target frame rate with `retransmit_headroom` spare capacity (0.10 =
/// the wire must leave 10% for retransmissions).
void check_link_plan(const Pipeline& pipeline,
                     const std::vector<int>& cut_after_nodes,
                     const PartitionConfig& config, double images_per_second,
                     double retransmit_headroom, Report& report);

}  // namespace qnn
