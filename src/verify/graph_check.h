// Static dataflow-graph analyzer: reject bad graphs before anything runs.
//
// On the Maxeler toolchain a malformed kernel graph fails at compile time;
// our host engine used to discover the same defects as runtime hangs
// (a dead-end stream fills and stalls its whole upstream chain), crashes
// (out-of-range parameter banks), or silently poisoned results (a stream
// narrower than its producer truncates the bit-plane decomposition of the
// next convolution). This module re-derives every property the engine
// relies on, *without running anything*, and reports violations with
// stable QNN-Dxxx codes (verify/report.h):
//
//  (a) graph structure — dangling / unconsumed streams, edges that break
//      the topological order, unreachable kernels, degenerate forks;
//  (b) shape and bit-width propagation — each edge's (H, W, C, bits)
//      recomputed from the pipeline input and checked against every
//      kernel's declared ports, weight caches and threshold banks;
//  (c) deadlock / capacity — the FIFO plan the engine will wire (either
//      the CompiledPlan supplied via EngineOptions::plan, after a
//      QNN-D305 fingerprint check, or plan/fifo_plan.h re-derived on the
//      spot) is checked edge by edge: a skip FIFO at or above the
//      whole-feature-map bound is proved safe immediately; one below it
//      is decided *exactly* by the token-flow simulation of
//      verify/token_flow.h (proved QNN-D301 info, refuted QNN-D301 error
//      with the quiescent marking as witness, or QNN-D304 when liveness
//      is schedule-dependent), and a burst larger than the smallest FIFO
//      is clamped (QNN-D302) instead of live-locking;
//  (d) partition feasibility — per-cut MaxRing bit-rates against the
//      sim/ link model and per-DFE resource totals against
//      fpga/resource_model.
//
// StreamEngine and DfeSession run verify_graph()/verify_all() during
// construction (EngineOptions::verify, default on) and refuse to build a
// graph with any error-severity finding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "nn/params.h"
#include "nn/pipeline.h"
#include "partition/partitioner.h"
#include "plan/fifo_plan.h"
#include "verify/report.h"

namespace qnn {

// PlannedStream / FifoPlan / line_buffer_values / plan_fifos moved to
// plan/fifo_plan.h — the planner is now part of the CompiledPlan artifact
// (plan/compiled_plan.h) and verify/ is a consumer that proves the plan,
// not the place it is decided.

// ---- individual analyses (append findings into an existing report) -----

/// (a) Edge sanity, dead ends, reachability, fork degeneracies.
void check_structure(const Pipeline& pipeline, Report& report);

/// (b) Symbolic (H, W, C, bits) propagation along every edge.
void check_shapes(const Pipeline& pipeline, Report& report);

/// (b) Weight caches, threshold banks and quantizer configuration.
void check_params(const Pipeline& pipeline, const NetworkParams& params,
                  Report& report);

/// (c) Deadlock / capacity proof over a FIFO plan. Exposed separately so
/// adversarial capacity plans can be checked without building an engine.
void check_capacities(const Pipeline& pipeline, const FifoPlan& plan,
                      Report& report);

/// (d) MaxRing link rates and per-DFE resource totals of a placement.
void check_partition(const Pipeline& pipeline, const PartitionResult& placement,
                     const PartitionConfig& config, Report& report);

// ---- entry points ------------------------------------------------------

/// Analyses (a)-(c). `params` may be null when only the graph is known
/// (parameter-bank checks are skipped). Never throws on malformed input —
/// every defect becomes a finding.
[[nodiscard]] Report verify_graph(const Pipeline& pipeline,
                                  const NetworkParams* params,
                                  const EngineOptions& options = {});

/// Analyses (a)-(d): verify_graph plus the partition feasibility checks
/// when a placement is supplied.
[[nodiscard]] Report verify_all(const Pipeline& pipeline,
                                const NetworkParams* params,
                                const EngineOptions& options,
                                const PartitionResult* placement,
                                const PartitionConfig& partition_config = {});

/// Throw qnn::Error listing every error-severity finding (prefixed with
/// `context`) when the report is not ok(); no-op otherwise.
void enforce(const Report& report, const std::string& context);

}  // namespace qnn
