// Static dataflow-graph analyzer: reject bad graphs before anything runs.
//
// On the Maxeler toolchain a malformed kernel graph fails at compile time;
// our host engine used to discover the same defects as runtime hangs
// (a dead-end stream fills and stalls its whole upstream chain), crashes
// (out-of-range parameter banks), or silently poisoned results (a stream
// narrower than its producer truncates the bit-plane decomposition of the
// next convolution). This module re-derives every property the engine
// relies on, *without running anything*, and reports violations with
// stable QNN-Dxxx codes (verify/report.h):
//
//  (a) graph structure — dangling / unconsumed streams, edges that break
//      the topological order, unreachable kernels, degenerate forks;
//  (b) shape and bit-width propagation — each edge's (H, W, C, bits)
//      recomputed from the pipeline input and checked against every
//      kernel's declared ports, weight caches and threshold banks;
//  (c) deadlock / capacity — the FIFO plan the engine would build
//      (plan_fifos mirrors StreamEngine wiring exactly and is the single
//      source of the paper's §III-B1b line-buffer and §III-B5 skip-buffer
//      sizing) is checked edge by edge: every skip FIFO must cover the
//      regular path's worst-case lag, and a burst larger than the
//      smallest FIFO is clamped (QNN-D302) instead of live-locking;
//  (d) partition feasibility — per-cut MaxRing bit-rates against the
//      sim/ link model and per-DFE resource totals against
//      fpga/resource_model.
//
// StreamEngine and DfeSession run verify_graph()/verify_all() during
// construction (EngineOptions::verify, default on) and refuse to build a
// graph with any error-severity finding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "nn/params.h"
#include "nn/pipeline.h"
#include "partition/partitioner.h"
#include "verify/report.h"

namespace qnn {

/// One FIFO the engine will create for a given Pipeline + EngineOptions.
struct PlannedStream {
  enum class Role {
    kDirect,  // producer -> single consumer port
    kTrunk,   // producer -> fork (fan-out > 1)
    kBranch,  // fork -> one consumer port
    kOutput,  // terminal stream of a node without consumers
  };

  std::string name;      // identical to the engine's Stream name
  Role role = Role::kDirect;
  int producer = -1;     // node index; -1 = pipeline input
  int consumer = -1;     // node index; -1 for kTrunk / kOutput
  bool to_skip_port = false;  // consumer-side port (Add nodes only)
  std::size_t capacity = 0;   // values
  int bits = 0;               // declared element width
  /// Values the consumer moves per ring transaction on this edge. With
  /// EngineOptions::adaptive_burst it is one row (W·C) of the map the
  /// edge carries, clamped to the plan-wide cap and to the ring; without,
  /// it is the plan-wide burst on every edge. Consumed by the engine's
  /// kernel construction AND the D302/D303 capacity checks, so burst
  /// sizing has exactly one source.
  std::size_t burst = 0;
};

/// The complete FIFO plan of one engine instance: every stream in the
/// order the engine creates them, plus the effective burst cap.
struct FifoPlan {
  std::vector<PlannedStream> streams;
  /// Cap on per-edge bursts: EngineOptions::burst clamped to the user
  /// FIFO capacity so a transaction can never exceed the ring. Each
  /// edge's actual size is streams[i].burst.
  std::size_t burst = kDefaultBurst;
  bool burst_clamped = false;

  /// Sum of all planned capacities (host-memory footprint in values).
  [[nodiscard]] std::size_t total_capacity() const;
  /// The planned stream into `consumer`'s main or skip port, or nullptr.
  [[nodiscard]] const PlannedStream* find_edge(int consumer,
                                               bool to_skip_port) const;
};

/// The paper's depth-first line-buffer size (§III-B1b) for the input of a
/// window kernel, on the padded map: I * (W_p * (K-1) + K) values.
[[nodiscard]] std::size_t line_buffer_values(const Node& n);

/// Compute the FIFO plan StreamEngine will wire for these options. This is
/// the *only* place capacities are decided; the engine consumes the plan.
[[nodiscard]] FifoPlan plan_fifos(const Pipeline& pipeline,
                                  const EngineOptions& options = {});

// ---- individual analyses (append findings into an existing report) -----

/// (a) Edge sanity, dead ends, reachability, fork degeneracies.
void check_structure(const Pipeline& pipeline, Report& report);

/// (b) Symbolic (H, W, C, bits) propagation along every edge.
void check_shapes(const Pipeline& pipeline, Report& report);

/// (b) Weight caches, threshold banks and quantizer configuration.
void check_params(const Pipeline& pipeline, const NetworkParams& params,
                  Report& report);

/// (c) Deadlock / capacity proof over a FIFO plan. Exposed separately so
/// adversarial capacity plans can be checked without building an engine.
void check_capacities(const Pipeline& pipeline, const FifoPlan& plan,
                      Report& report);

/// (d) MaxRing link rates and per-DFE resource totals of a placement.
void check_partition(const Pipeline& pipeline, const PartitionResult& placement,
                     const PartitionConfig& config, Report& report);

// ---- entry points ------------------------------------------------------

/// Analyses (a)-(c). `params` may be null when only the graph is known
/// (parameter-bank checks are skipped). Never throws on malformed input —
/// every defect becomes a finding.
[[nodiscard]] Report verify_graph(const Pipeline& pipeline,
                                  const NetworkParams* params,
                                  const EngineOptions& options = {});

/// Analyses (a)-(d): verify_graph plus the partition feasibility checks
/// when a placement is supplied.
[[nodiscard]] Report verify_all(const Pipeline& pipeline,
                                const NetworkParams* params,
                                const EngineOptions& options,
                                const PartitionResult* placement,
                                const PartitionConfig& partition_config = {});

/// Throw qnn::Error listing every error-severity finding (prefixed with
/// `context`) when the report is not ok(); no-op otherwise.
void enforce(const Report& report, const std::string& context);

}  // namespace qnn
