// Per-backend support checks — the QNN-D5xx analysis, run D4xx-style
// before a backend compiles a pipeline:
//
//   QNN-D501  a node fails the backend's supports_op() gate
//   QNN-D502  the backend exposes no devices
//
// Lives in verify/ beside the other analyses but is compiled into the
// qnn_backend library: qnn_verify sits below the backend seam in the
// dependency graph (the engine links it), so linking it against Backend
// would be circular. Every Backend::compile() implementation calls
// enforce(verify_backend(...)) first, so an unsupported pipeline fails
// with a structured report instead of a substrate-specific crash.
#pragma once

#include "nn/pipeline.h"
#include "verify/report.h"

namespace qnn {

class Backend;

/// Append D5xx findings: one kBackendUnsupportedOp error per node the
/// backend cannot execute, kBackendNoDevices when it has no device, and
/// info-level discharge records otherwise.
void check_backend_support(const Pipeline& pipeline, const Backend& backend,
                           Report& report);

/// Fresh report holding only the D5xx analysis.
[[nodiscard]] Report verify_backend(const Pipeline& pipeline,
                                    const Backend& backend);

}  // namespace qnn
