// Error handling for the qnn library.
//
// All precondition violations throw qnn::Error with a message that carries
// the failing expression and location. Hot inner loops use QNN_DCHECK, which
// compiles out in NDEBUG builds; public API boundaries use QNN_CHECK, which
// is always active.
#pragma once

#include <stdexcept>
#include <string>

namespace qnn {

/// Exception type thrown on any library precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace qnn

/// Always-on precondition check. `msg` may use stream-free string concat.
#define QNN_CHECK(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::qnn::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths; disappears in NDEBUG builds.
#ifdef NDEBUG
#define QNN_DCHECK(expr, msg) \
  do {                        \
  } while (false)
#else
#define QNN_DCHECK(expr, msg) QNN_CHECK(expr, msg)
#endif
