// Word-level bit primitives backing the XNOR-popcount datapath (§III-B1).
#pragma once

#include <bit>
#include <cstdint>

namespace qnn {

using Word = std::uint64_t;
inline constexpr int kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
[[nodiscard]] constexpr std::int64_t words_for_bits(std::int64_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Mask with the low `n` bits set (0 <= n <= 64).
[[nodiscard]] constexpr Word low_mask(int n) {
  return n >= kWordBits ? ~Word{0} : ((Word{1} << n) - 1);
}

[[nodiscard]] inline int popcount(Word w) { return std::popcount(w); }

/// XNOR-popcount of one word pair over `n` valid low bits: the number of
/// positions where the two +-1 operands agree.
[[nodiscard]] inline int xnor_popcount(Word a, Word b, int n) {
  return std::popcount(~(a ^ b) & low_mask(n));
}

/// Dot product of two length-n vectors of +-1 values packed as sign bits
/// (bit=1 encodes +1, bit=0 encodes -1), one word at a time:
///   dot = agreements - disagreements = 2*agreements - n.
[[nodiscard]] inline int pm1_dot_word(Word a, Word b, int n) {
  return 2 * xnor_popcount(a, b, n) - n;
}

}  // namespace qnn
