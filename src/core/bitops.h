// Word-level bit primitives backing the XNOR-popcount datapath (§III-B1).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>

namespace qnn {

using Word = std::uint64_t;
inline constexpr int kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
[[nodiscard]] constexpr std::int64_t words_for_bits(std::int64_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Mask with the low `n` bits set (0 <= n <= 64).
[[nodiscard]] constexpr Word low_mask(int n) {
  return n >= kWordBits ? ~Word{0} : ((Word{1} << n) - 1);
}

[[nodiscard]] inline int popcount(Word w) { return std::popcount(w); }

/// XNOR-popcount of one word pair over `n` valid low bits: the number of
/// positions where the two +-1 operands agree.
[[nodiscard]] inline int xnor_popcount(Word a, Word b, int n) {
  return std::popcount(~(a ^ b) & low_mask(n));
}

/// Dot product of two length-n vectors of +-1 values packed as sign bits
/// (bit=1 encodes +1, bit=0 encodes -1), one word at a time:
///   dot = agreements - disagreements = 2*agreements - n.
[[nodiscard]] inline int pm1_dot_word(Word a, Word b, int n) {
  return 2 * xnor_popcount(a, b, n) - n;
}

/// Copy `len` bits from src starting at bit src_start to dst starting at
/// bit dst_start (word funnel shift/splice, one destination word per
/// iteration — never per-bit). Bits of dst outside the written range are
/// preserved; the regions must not overlap. This is the window-assembly
/// primitive of the packed conv datapath: each window row is a contiguous
/// bit range of a packed line-buffer row.
inline void copy_bits(const Word* src, std::int64_t src_start, Word* dst,
                      std::int64_t dst_start, std::int64_t len) {
  while (len > 0) {
    const std::int64_t dw = dst_start / kWordBits;
    const int doff = static_cast<int>(dst_start % kWordBits);
    const int n =
        static_cast<int>(std::min<std::int64_t>(len, kWordBits - doff));
    const std::int64_t sw = src_start / kWordBits;
    const int soff = static_cast<int>(src_start % kWordBits);
    Word bits = src[sw] >> soff;
    if (soff + n > kWordBits) bits |= src[sw + 1] << (kWordBits - soff);
    bits &= low_mask(n);
    dst[dw] = (dst[dw] & ~(low_mask(n) << doff)) | (bits << doff);
    src_start += n;
    dst_start += n;
    len -= n;
  }
}

}  // namespace qnn
