// Bit-plane decomposition of unsigned n-bit activation codes.
//
// The paper uses 2-bit activations (§III-B); the first layer consumes 8-bit
// image pixels. Both run through the same XNOR-popcount datapath by
// decomposing each unsigned code a into bit planes a = sum_p 2^p * a_p and
// evaluating, for +-1 weights w packed as sign bits wb (w = 2*wb - 1):
//
//   dot(w, a) = sum_p 2^p * sum_i w_i * a_{p,i}
//             = sum_p 2^p * (2*popcount(wb & a_p) - popcount(a_p))
//
// One BitPlaneWindow holds the current convolution window (K*K*I codes) as
// `planes` parallel BitVectors, so each filter costs `planes` AND-popcounts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bitvector.h"

namespace qnn {

class BitPlaneWindow {
 public:
  BitPlaneWindow() = default;

  /// A window of `bits_per_value`-bit unsigned codes, `values` entries long.
  BitPlaneWindow(std::int64_t values, int bits_per_value)
      : values_(values), planes_bits_(bits_per_value) {
    QNN_CHECK(values >= 0 && bits_per_value >= 1 && bits_per_value <= 16,
              "unsupported bit-plane configuration");
    planes_.reserve(static_cast<std::size_t>(bits_per_value));
    for (int p = 0; p < bits_per_value; ++p) {
      planes_.emplace_back(values);
    }
  }

  [[nodiscard]] std::int64_t values() const { return values_; }
  [[nodiscard]] int bits_per_value() const { return planes_bits_; }

  /// Store unsigned code `v` at window position `i`.
  void set(std::int64_t i, std::uint32_t v) {
    QNN_DCHECK(v < (1U << planes_bits_), "code exceeds plane width");
    counts_valid_ = false;
    for (int p = 0; p < planes_bits_; ++p) {
      planes_[static_cast<std::size_t>(p)].set(i, (v >> p) & 1U);
    }
  }

  [[nodiscard]] std::uint32_t get(std::int64_t i) const {
    std::uint32_t v = 0;
    for (int p = 0; p < planes_bits_; ++p) {
      v |= static_cast<std::uint32_t>(
               planes_[static_cast<std::size_t>(p)].get(i))
           << p;
    }
    return v;
  }

  /// Fill the whole window from a span of codes (depth-first order).
  void fill(std::span<const std::int32_t> codes) {
    QNN_CHECK(static_cast<std::int64_t>(codes.size()) == values_,
              "window size mismatch");
    for (std::int64_t i = 0; i < values_; ++i) {
      QNN_DCHECK(codes[static_cast<std::size_t>(i)] >= 0,
                 "bit-plane codes must be unsigned");
      set(i, static_cast<std::uint32_t>(codes[static_cast<std::size_t>(i)]));
    }
    refresh_counts();
  }

  /// dot(w, window) for +-1 weights `w` packed as sign bits. Plane popcounts
  /// are cached once per fill, so an O-filter sweep pays one count per plane
  /// instead of one per (plane, filter) pair.
  [[nodiscard]] std::int32_t dot(const BitVector& w) const {
    QNN_DCHECK(w.bits() == values_, "filter length mismatch");
    if (!counts_valid_) refresh_counts();
    std::int64_t acc = 0;
    for (int p = 0; p < planes_bits_; ++p) {
      const auto& plane = planes_[static_cast<std::size_t>(p)];
      const int on = w.and_popcount(plane);
      const int tot = counts_[static_cast<std::size_t>(p)];
      acc += (std::int64_t{2} * on - tot) << p;
    }
    return static_cast<std::int32_t>(acc);
  }

  void clear() {
    for (auto& p : planes_) p.clear();
    counts_.assign(static_cast<std::size_t>(planes_bits_), 0);
    counts_valid_ = true;
  }

 private:
  void refresh_counts() const {
    counts_.resize(static_cast<std::size_t>(planes_bits_));
    for (int p = 0; p < planes_bits_; ++p) {
      counts_[static_cast<std::size_t>(p)] =
          planes_[static_cast<std::size_t>(p)].count();
    }
    counts_valid_ = true;
  }

  std::int64_t values_ = 0;
  int planes_bits_ = 0;
  std::vector<BitVector> planes_;
  mutable std::vector<int> counts_;
  mutable bool counts_valid_ = false;
};

/// Plain integer reference of the same dot product, used by tests to pin the
/// packed datapath to the mathematical definition.
[[nodiscard]] inline std::int32_t reference_pm1_dot(
    std::span<const std::int8_t> weights_pm1,
    std::span<const std::int32_t> codes) {
  QNN_CHECK(weights_pm1.size() == codes.size(), "length mismatch");
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    acc += static_cast<std::int64_t>(weights_pm1[i]) * codes[i];
  }
  return static_cast<std::int32_t>(acc);
}

}  // namespace qnn
