// Deterministic pseudo-random generation for reproducible experiments.
//
// Every experiment in the benchmark harness seeds its own Rng so results are
// bit-identical across runs and platforms (we avoid std::default_random_engine
// whose streams are implementation-defined).
#pragma once

#include <cmath>
#include <cstdint>

namespace qnn {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) for n >= 1, by rejection-free multiply-shift.
  std::uint64_t next_below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (one value per call; simple & portable).
  float next_gaussian() {
    // Avoid log(0) by nudging u away from zero.
    const double u = next_double() + 1e-12;
    const double v = next_double();
    const double r = std::sqrt(-2.0 * std::log(u));
    return static_cast<float>(r * std::cos(6.283185307179586 * v));
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace qnn
