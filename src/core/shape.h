// Tensor shapes for feature maps and filter banks.
//
// Feature maps are stored and streamed HWC (channel fastest), matching the
// paper's depth-first scan (§III-B1b): all images are streamed to the engine
// pixel by pixel, with the channel index varying fastest.
#pragma once

#include <cstdint>
#include <string>

#include "core/error.h"

namespace qnn {

/// Shape of a feature map: height x width x channels, HWC order.
struct Shape {
  int h = 0;
  int w = 0;
  int c = 0;

  [[nodiscard]] std::int64_t elems() const {
    return static_cast<std::int64_t>(h) * w * c;
  }
  [[nodiscard]] bool valid() const { return h > 0 && w > 0 && c > 0; }

  /// Flat index of element (y, x, ch) in depth-first (HWC) order.
  [[nodiscard]] std::int64_t index(int y, int x, int ch) const {
    QNN_DCHECK(y >= 0 && y < h && x >= 0 && x < w && ch >= 0 && ch < c,
               "index out of range");
    return (static_cast<std::int64_t>(y) * w + x) * c + ch;
  }

  friend bool operator==(const Shape&, const Shape&) = default;

  [[nodiscard]] std::string str() const {
    return std::to_string(h) + "x" + std::to_string(w) + "x" +
           std::to_string(c);
  }
};

/// Shape of a convolution filter bank: `out_c` filters of k x k x in_c each.
struct FilterShape {
  int out_c = 0;
  int k = 0;
  int in_c = 0;

  /// Number of weights in one filter (one weight-cache entry, §III-B1a).
  [[nodiscard]] std::int64_t weights_per_filter() const {
    return static_cast<std::int64_t>(k) * k * in_c;
  }
  /// Total number of weights in the bank.
  [[nodiscard]] std::int64_t total_weights() const {
    return weights_per_filter() * out_c;
  }
  [[nodiscard]] bool valid() const { return out_c > 0 && k > 0 && in_c > 0; }

  friend bool operator==(const FilterShape&, const FilterShape&) = default;
};

/// Output spatial extent of a (possibly strided, padded) sliding window.
/// Matches the standard conv/pool arithmetic: floor((n + 2p - k)/s) + 1.
[[nodiscard]] constexpr int conv_out_extent(int n, int k, int stride,
                                            int pad) {
  return (n + 2 * pad - k) / stride + 1;
}

/// Shape produced by a k x k window op with the given stride and padding.
[[nodiscard]] inline Shape conv_out_shape(const Shape& in, int out_c, int k,
                                          int stride, int pad) {
  QNN_CHECK(in.valid(), "input shape invalid: " + in.str());
  QNN_CHECK(k >= 1 && stride >= 1 && pad >= 0, "bad window parameters");
  QNN_CHECK(in.h + 2 * pad >= k && in.w + 2 * pad >= k,
            "window larger than padded input");
  return Shape{conv_out_extent(in.h, k, stride, pad),
               conv_out_extent(in.w, k, stride, pad), out_c};
}

}  // namespace qnn
