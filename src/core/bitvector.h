// Packed bit vector: the storage format of binarized (+-1) filter weights.
//
// One BitVector holds the K*K*I sign bits of a single filter — exactly one
// weight-cache entry in the hardware design (§III-B1a). Bit value 1 encodes
// weight +1, bit value 0 encodes weight -1. Unused tail bits in the last
// word are kept zero as a class invariant so popcount-based reductions can
// run whole words.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bitops.h"
#include "core/error.h"

namespace qnn {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::int64_t bits)
      : bits_(bits), words_(static_cast<std::size_t>(words_for_bits(bits))) {
    QNN_CHECK(bits >= 0, "negative bit count");
  }

  [[nodiscard]] std::int64_t bits() const { return bits_; }
  [[nodiscard]] std::int64_t words() const {
    return static_cast<std::int64_t>(words_.size());
  }
  [[nodiscard]] bool empty() const { return bits_ == 0; }

  void set(std::int64_t i, bool value) {
    QNN_DCHECK(i >= 0 && i < bits_, "bit index out of range");
    const Word mask = Word{1} << (i % kWordBits);
    auto& w = words_[static_cast<std::size_t>(i / kWordBits)];
    if (value) {
      w |= mask;
    } else {
      w &= ~mask;
    }
  }

  [[nodiscard]] bool get(std::int64_t i) const {
    QNN_DCHECK(i >= 0 && i < bits_, "bit index out of range");
    return (words_[static_cast<std::size_t>(i / kWordBits)] >>
            (i % kWordBits)) &
           1U;
  }

  [[nodiscard]] Word word(std::int64_t wi) const {
    QNN_DCHECK(wi >= 0 && wi < words(), "word index out of range");
    return words_[static_cast<std::size_t>(wi)];
  }

  Word& word(std::int64_t wi) {
    QNN_DCHECK(wi >= 0 && wi < words(), "word index out of range");
    return words_[static_cast<std::size_t>(wi)];
  }

  /// Number of set bits.
  [[nodiscard]] int count() const {
    int total = 0;
    for (Word w : words_) total += qnn::popcount(w);
    return total;
  }

  /// popcount(*this & other); both operands must have equal length.
  [[nodiscard]] int and_popcount(const BitVector& other) const {
    QNN_DCHECK(bits_ == other.bits_, "length mismatch in and_popcount");
    int total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      total += qnn::popcount(words_[i] & other.words_[i]);
    }
    return total;
  }

  /// +-1 dot product with `other` (both encode +-1 as sign bits):
  /// 2*popcount(xnor) - n, the BNN multiply-accumulate (§III-B1).
  [[nodiscard]] int pm1_dot(const BitVector& other) const {
    QNN_DCHECK(bits_ == other.bits_, "length mismatch in pm1_dot");
    int agreements = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      agreements += qnn::popcount(~(words_[i] ^ other.words_[i]));
    }
    // Full-word xnor counts tail bits as agreements (both zero); subtract.
    const int tail =
        static_cast<int>(words() * kWordBits - bits_);
    agreements -= tail;
    return 2 * agreements - static_cast<int>(bits_);
  }

  /// Zero all bits, keeping the length.
  void clear() { words_.assign(words_.size(), 0); }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  std::int64_t bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace qnn
