#include "core/error.h"

namespace qnn::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::string what = "QNN_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw Error(what);
}

}  // namespace qnn::detail
