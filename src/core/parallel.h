// Minimal fork-join parallel loop used by the reference executor and the
// workload generators. Data decomposition over an index range with static
// chunking — the "traditional" model the paper contrasts with functional
// decomposition (§II); we use it only on the host/golden side.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qnn {

/// Invoke fn(begin, end) over disjoint chunks of [0, n) on up to
/// `max_threads` threads (0 = hardware concurrency). Exceptions from worker
/// threads are rethrown on the calling thread (first one wins).
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t, std::int64_t)>& fn,
                         unsigned max_threads = 0) {
  if (n <= 0) return;
  unsigned hw = max_threads != 0 ? max_threads
                                 : std::max(1u, std::thread::hardware_concurrency());
  const std::int64_t threads =
      std::min<std::int64_t>(static_cast<std::int64_t>(hw), n);
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  std::exception_ptr error;
  std::mutex error_mu;
  const std::int64_t chunk = (n + threads - 1) / threads;
  for (std::int64_t t = 0; t < threads; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace qnn
