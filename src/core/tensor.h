// Dense HWC tensor used for feature maps, activations codes and float data.
#pragma once

#include <span>
#include <vector>

#include "core/shape.h"

namespace qnn {

/// Dense tensor in HWC (depth-first) layout. T is typically std::int32_t for
/// integer activations / pre-activation sums, or float for training.
template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, T fill = T{})
      : shape_(shape), data_(static_cast<std::size_t>(shape.elems()), fill) {
    QNN_CHECK(shape.valid(), "tensor shape invalid: " + shape.str());
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t size() const { return shape_.elems(); }

  [[nodiscard]] T& at(int y, int x, int c) {
    return data_[static_cast<std::size_t>(shape_.index(y, x, c))];
  }
  [[nodiscard]] const T& at(int y, int x, int c) const {
    return data_[static_cast<std::size_t>(shape_.index(y, x, c))];
  }

  /// Flat access in depth-first stream order (the order pixels enter a DFE).
  [[nodiscard]] T& operator[](std::int64_t i) {
    QNN_DCHECK(i >= 0 && i < size(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const T& operator[](std::int64_t i) const {
    QNN_DCHECK(i >= 0 && i < size(), "flat index out of range");
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::span<T> flat() { return data_; }
  [[nodiscard]] std::span<const T> flat() const { return data_; }

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  Shape shape_;
  std::vector<T> data_;
};

using IntTensor = Tensor<std::int32_t>;
using FloatTensor = Tensor<float>;

}  // namespace qnn
