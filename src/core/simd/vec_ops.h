// Runtime-dispatched word-vector primitives behind the packed conv datapath.
//
// The layering follows the vec_ops/vec_dot split used by ggml's QNN NPU
// device code: a scalar implementation defines the semantics and stays the
// bit-exact reference, and the wider paths (AVX2 nibble-LUT popcount,
// AVX-512 `vpopcntdq`) are pinned against it by tests at every compiled
// level. All paths are built with per-function target attributes, so the
// binary itself is portable; dispatch picks an implementation at runtime:
//
//   1. explicit override (set_level — tests and bench ablations),
//   2. the QNN_SIMD environment variable (auto|avx512|avx2|scalar),
//   3. CPUID auto-detection (the widest compiled level the host supports).
//
// A level is only ever selected when it is both compiled in (the QNN_SIMD
// CMake knob) and supported by the running CPU, so an AVX-512-enabled build
// never emits illegal instructions on an older host — an unavailable
// request clamps down to the widest available level with a one-time note.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bitops.h"

namespace qnn::simd {

enum class Level { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] const char* level_name(Level level);

/// One implementation of the word-granular kernels. All functions treat
/// their operands as plain arrays of `n` 64-bit words; tail masking is the
/// caller's job (operands keep the BitVector tail-bits-zero invariant).
struct VecOps {
  Level level;
  const char* name;

  /// Total set bits over a[0..n).
  std::uint64_t (*popcount)(const Word* a, std::size_t n);

  /// popcount(a & b) over n words.
  std::uint64_t (*and_popcount)(const Word* a, const Word* b, std::size_t n);

  /// The conv inner loop: for every filter f in [0, filters), with filter
  /// f's words at w + f*stride_words,
  ///   acc[f] += (2*popcount(w_f & a) - pop_a) << shift
  /// i.e. one bit-plane's +-1-weighted contribution (core/bitplanes.h) for
  /// all filters, streaming the filter-major weight words once while the
  /// plane words stay resident.
  void (*accumulate_plane)(const Word* a, std::size_t n, std::int64_t pop_a,
                           const Word* w, std::size_t stride_words,
                           std::size_t filters, int shift,
                           std::int64_t* acc);
};

/// Levels compiled into this binary AND usable on this CPU, ascending.
/// Always contains kScalar.
[[nodiscard]] std::vector<Level> available_levels();

/// The dispatched implementation (override > QNN_SIMD env > CPUID auto).
[[nodiscard]] const VecOps& vec_ops();

/// The implementation of one specific level; throws when that level is not
/// compiled in or not supported by this CPU (use available_levels()).
[[nodiscard]] const VecOps& vec_ops_at(Level level);

/// Process-wide dispatch override used by tests and the bench ablation;
/// std::nullopt restores env/auto dispatch. Takes effect for kernels
/// constructed afterwards — set it between engine runs, not during one.
void set_level(std::optional<Level> level);

}  // namespace qnn::simd
