// AVX2 path: 4-word AND + vpshufb nibble-LUT popcount (the classic Mula
// kernel), horizontal-summed with vpsadbw. Built with a per-function
// target attribute so the TU compiles under the generic -march; the
// dispatcher only hands these functions out after a CPUID check.
#include "core/simd/vec_ops_impl.h"

#if defined(__x86_64__) && defined(QNN_SIMD_AVX2)

#include <immintrin.h>

namespace qnn::simd::detail {
namespace {

__attribute__((target("avx2"))) inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi64(__m256i v) {
  Word lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) std::uint64_t popcount_avx2(const Word* a,
                                                            std::size_t n) {
  __m256i total = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    total = _mm256_add_epi64(
        total, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::uint64_t t = hsum_epi64(total);
  for (; i < n; ++i) {
    t += static_cast<std::uint64_t>(qnn::popcount(a[i]));
  }
  return t;
}

__attribute__((target("avx2"))) std::uint64_t and_popcount_avx2(
    const Word* a, const Word* b, std::size_t n) {
  __m256i total = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    total = _mm256_add_epi64(
        total, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
  }
  std::uint64_t t = hsum_epi64(total);
  for (; i < n; ++i) {
    t += static_cast<std::uint64_t>(qnn::popcount(a[i] & b[i]));
  }
  return t;
}

__attribute__((target("avx2"))) void accumulate_plane_avx2(
    const Word* a, std::size_t n, std::int64_t pop_a, const Word* w,
    std::size_t stride_words, std::size_t filters, int shift,
    std::int64_t* acc) {
  for (std::size_t f = 0; f < filters; ++f) {
    const std::uint64_t on = and_popcount_avx2(w + f * stride_words, a, n);
    acc[f] += (2 * static_cast<std::int64_t>(on) - pop_a) << shift;
  }
}

constexpr VecOps kAvx2Ops{Level::kAvx2, "avx2", popcount_avx2,
                          and_popcount_avx2, accumulate_plane_avx2};

}  // namespace

const VecOps* avx2_ops() { return &kAvx2Ops; }

bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace qnn::simd::detail

#else  // compiled out

namespace qnn::simd::detail {
const VecOps* avx2_ops() { return nullptr; }
bool cpu_has_avx2() { return false; }
}  // namespace qnn::simd::detail

#endif
