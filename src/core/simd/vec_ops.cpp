// Scalar reference implementation + runtime dispatch for the vec_ops seam.
#include "core/simd/vec_ops.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/error.h"
#include "core/simd/vec_ops_impl.h"

namespace qnn::simd {
namespace {

// ------------------------------------------------------------------ scalar

std::uint64_t popcount_scalar(const Word* a, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(qnn::popcount(a[i]));
  }
  return total;
}

std::uint64_t and_popcount_scalar(const Word* a, const Word* b,
                                  std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(qnn::popcount(a[i] & b[i]));
  }
  return total;
}

void accumulate_plane_scalar(const Word* a, std::size_t n, std::int64_t pop_a,
                             const Word* w, std::size_t stride_words,
                             std::size_t filters, int shift,
                             std::int64_t* acc) {
  for (std::size_t f = 0; f < filters; ++f) {
    const Word* wf = w + f * stride_words;
    std::uint64_t on = 0;
    for (std::size_t i = 0; i < n; ++i) {
      on += static_cast<std::uint64_t>(qnn::popcount(wf[i] & a[i]));
    }
    acc[f] += (2 * static_cast<std::int64_t>(on) - pop_a) << shift;
  }
}

constexpr VecOps kScalarOps{Level::kScalar, "scalar", popcount_scalar,
                            and_popcount_scalar, accumulate_plane_scalar};

// ---------------------------------------------------------------- dispatch

/// Table slot per level; nullptr = compiled out or CPU-unsupported.
const VecOps* level_table(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarOps;
    case Level::kAvx2:
      return detail::cpu_has_avx2() ? detail::avx2_ops() : nullptr;
    case Level::kAvx512:
      return detail::cpu_has_avx512_popcnt() ? detail::avx512_ops() : nullptr;
  }
  return nullptr;
}

/// Widest available level <= `want`.
const VecOps* clamp_down(Level want) {
  for (int l = static_cast<int>(want); l >= 0; --l) {
    if (const VecOps* ops = level_table(static_cast<Level>(l))) return ops;
  }
  return &kScalarOps;  // unreachable: kScalar is always present
}

/// Resolve the QNN_SIMD environment request (nullptr/"auto" = widest).
const VecOps* env_dispatch() {
  const char* env = std::getenv("QNN_SIMD");
  Level want = Level::kAvx512;  // auto: widest compiled+supported
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    if (std::strcmp(env, "scalar") == 0) {
      want = Level::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Level::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      want = Level::kAvx512;
    } else {
      std::fprintf(stderr,
                   "qnn: unknown QNN_SIMD=%s (want auto|avx512|avx2|scalar); "
                   "using auto\n",
                   env);
    }
    const VecOps* got = clamp_down(want);
    if (got->level != want) {
      std::fprintf(stderr,
                   "qnn: QNN_SIMD=%s unavailable on this host/build; "
                   "using %s\n",
                   env, got->name);
    }
    return got;
  }
  return clamp_down(want);
}

/// Explicit override (tests/bench); nullptr = follow env/auto.
std::atomic<const VecOps*> g_override{nullptr};

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "?";
}

std::vector<Level> available_levels() {
  std::vector<Level> out;
  for (const Level l : {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    if (level_table(l) != nullptr) out.push_back(l);
  }
  return out;
}

const VecOps& vec_ops() {
  if (const VecOps* forced = g_override.load(std::memory_order_acquire)) {
    return *forced;
  }
  // The env/CPUID resolution is stable for the process; cache it.
  static const VecOps* const resolved = env_dispatch();
  return *resolved;
}

const VecOps& vec_ops_at(Level level) {
  const VecOps* ops = level_table(level);
  QNN_CHECK(ops != nullptr,
            std::string("SIMD level '") + level_name(level) +
                "' is not available on this host/build");
  return *ops;
}

void set_level(std::optional<Level> level) {
  g_override.store(level ? &vec_ops_at(*level) : nullptr,
                   std::memory_order_release);
}

}  // namespace qnn::simd
