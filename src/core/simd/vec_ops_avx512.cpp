// AVX-512 path: 8-word AND + vpopcntdq (the VPOPCNTDQ extension counts 64
// bits per lane in one instruction — popcount bandwidth is the whole game
// for binary conv, per FINN/XNORBIN). Tails use a masked load, so every
// call is branch-light. The horizontal sum avoids _mm512_reduce_add_epi64,
// whose gcc-12 header trips -Wuninitialized under -Werror.
#include "core/simd/vec_ops_impl.h"

#if defined(__x86_64__) && defined(QNN_SIMD_AVX512)

#include <immintrin.h>

namespace qnn::simd::detail {
namespace {

#define QNN_AVX512_TARGET target("avx512f,avx512vpopcntdq")

__attribute__((QNN_AVX512_TARGET)) inline std::uint64_t hsum_epi64(
    __m512i v) {
  Word lanes[8];
  _mm512_storeu_si512(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

__attribute__((QNN_AVX512_TARGET)) std::uint64_t popcount_avx512(
    const Word* a, std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    total = _mm512_add_epi64(total,
                             _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    total = _mm512_add_epi64(
        total, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(tail, a + i)));
  }
  return hsum_epi64(total);
}

__attribute__((QNN_AVX512_TARGET)) std::uint64_t and_popcount_avx512(
    const Word* a, const Word* b, std::size_t n) {
  __m512i total = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v =
        _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(tail, a + i),
                                       _mm512_maskz_loadu_epi64(tail, b + i));
    total = _mm512_add_epi64(total, _mm512_popcnt_epi64(v));
  }
  return hsum_epi64(total);
}

__attribute__((QNN_AVX512_TARGET)) void accumulate_plane_avx512(
    const Word* a, std::size_t n, std::int64_t pop_a, const Word* w,
    std::size_t stride_words, std::size_t filters, int shift,
    std::int64_t* acc) {
  for (std::size_t f = 0; f < filters; ++f) {
    const std::uint64_t on = and_popcount_avx512(w + f * stride_words, a, n);
    acc[f] += (2 * static_cast<std::int64_t>(on) - pop_a) << shift;
  }
}

#undef QNN_AVX512_TARGET

constexpr VecOps kAvx512Ops{Level::kAvx512, "avx512", popcount_avx512,
                            and_popcount_avx512, accumulate_plane_avx512};

}  // namespace

const VecOps* avx512_ops() { return &kAvx512Ops; }

bool cpu_has_avx512_popcnt() {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}

}  // namespace qnn::simd::detail

#else  // compiled out

namespace qnn::simd::detail {
const VecOps* avx512_ops() { return nullptr; }
bool cpu_has_avx512_popcnt() { return false; }
}  // namespace qnn::simd::detail

#endif
