// Internal registration seam between the dispatch TU and the per-level
// implementation TUs. Each TU returns its VecOps table, or nullptr when the
// level was compiled out (QNN_SIMD CMake knob / non-x86 host).
#pragma once

#include "core/simd/vec_ops.h"

namespace qnn::simd::detail {

[[nodiscard]] const VecOps* avx2_ops();    // vec_ops_avx2.cpp
[[nodiscard]] const VecOps* avx512_ops();  // vec_ops_avx512.cpp

/// CPU support probes (false on non-x86 builds).
[[nodiscard]] bool cpu_has_avx2();
[[nodiscard]] bool cpu_has_avx512_popcnt();

}  // namespace qnn::simd::detail
