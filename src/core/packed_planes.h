// Persistently packed bit-plane storage for the streaming conv datapath.
//
// The scalar datapath re-binarizes every activation of every window
// (BitPlaneWindow::fill walks k*k*I values per output pixel, so each input
// value is decomposed k*k times at stride 1). Here each activation is
// decomposed exactly once, as its row streams in:
//
//   BitPlaneLineBuffer — per plane, the last K padded rows of the input map
//     packed one bit per value, recycled mod K exactly like the dataflow
//     window scanner's row ring (§III-B2 of the paper).
//   PackedWindow — a window's plane words, assembled from the line buffer by
//     K contiguous bit-range splices per plane (word funnel shifts, never a
//     re-pack), with each plane's popcount cached at finalize time.
//   PackedFilters — filter-major packed weights, laid out once at kernel
//     construction so the O-filter inner loop walks a flat word array.
//
// Bit layout matches BitPlaneWindow/FilterBank: depth-first (dy, dx, ci)
// within a window, (x, ci) within a line-buffer row. Padding is code 0,
// whose bits are zero in every plane, so cleared rows/ranges are already
// correct for padded regions.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/bitops.h"
#include "core/error.h"
#include "core/simd/vec_ops.h"

namespace qnn {

/// Rolling packed rows: `planes` bit-planes of `rows` padded rows of
/// `row_bits` values each. Rows are recycled mod `rows` by the caller.
class BitPlaneLineBuffer {
 public:
  static constexpr int kMaxPlanes = 16;

  BitPlaneLineBuffer(int planes, int rows, std::int64_t row_bits)
      : planes_(planes),
        rows_(rows),
        row_words_(words_for_bits(row_bits)),
        data_(static_cast<std::size_t>(planes) * static_cast<std::size_t>(rows) *
                  static_cast<std::size_t>(row_words_),
              0) {
    QNN_CHECK(planes >= 1 && planes <= kMaxPlanes,
              "line buffer plane count out of range");
    QNN_CHECK(rows >= 1 && row_bits >= 1, "empty line buffer");
  }

  [[nodiscard]] int planes() const { return planes_; }
  [[nodiscard]] std::int64_t row_words() const { return row_words_; }

  [[nodiscard]] const Word* row(int plane, int r) const {
    return data_.data() + (static_cast<std::size_t>(plane) *
                               static_cast<std::size_t>(rows_) +
                           static_cast<std::size_t>(r)) *
                              static_cast<std::size_t>(row_words_);
  }

  /// Zero row `r` in every plane (re-entering the ring: padding = all-zero).
  void clear_row(int r) {
    for (int p = 0; p < planes_; ++p) {
      std::memset(mutable_row(p, r), 0,
                  static_cast<std::size_t>(row_words_) * sizeof(Word));
    }
  }

  /// OR-pack a run of activation codes into row `r` starting at bit
  /// position `start` (one bit per value per plane). The target range must
  /// have been cleared since the row was last recycled; runs never overlap.
  void pack_run(int r, std::int64_t start, std::span<const std::int32_t> vals) {
    std::int64_t pos = start;
    std::size_t i = 0;
    while (i < vals.size()) {
      const std::int64_t wi = pos / kWordBits;
      const int off = static_cast<int>(pos % kWordBits);
      const int n = static_cast<int>(
          std::min<std::int64_t>(static_cast<std::int64_t>(vals.size() - i),
                                 kWordBits - off));
      // Accumulate the <=64-bit chunk for all planes in registers, then OR
      // each plane's word once — one pass over the values, planes_ stores.
      std::array<Word, kMaxPlanes> chunk{};
      for (int j = 0; j < n; ++j) {
        const auto v = static_cast<std::uint32_t>(vals[i + static_cast<std::size_t>(j)]);
        for (int p = 0; p < planes_; ++p) {
          chunk[static_cast<std::size_t>(p)] |=
              static_cast<Word>((v >> p) & 1u) << j;
        }
      }
      for (int p = 0; p < planes_; ++p) {
        mutable_row(p, r)[wi] |= chunk[static_cast<std::size_t>(p)] << off;
      }
      pos += n;
      i += static_cast<std::size_t>(n);
    }
  }

 private:
  [[nodiscard]] Word* mutable_row(int plane, int r) {
    return data_.data() + (static_cast<std::size_t>(plane) *
                               static_cast<std::size_t>(rows_) +
                           static_cast<std::size_t>(r)) *
                              static_cast<std::size_t>(row_words_);
  }

  int planes_;
  int rows_;
  std::int64_t row_words_;
  std::vector<Word> data_;
};

/// One window's plane words, spliced from a BitPlaneLineBuffer, with each
/// plane's popcount cached once per window (finalize).
class PackedWindow {
 public:
  PackedWindow(std::int64_t values, int planes)
      : values_(values),
        planes_(planes),
        plane_words_(words_for_bits(values)),
        data_(static_cast<std::size_t>(planes) *
                  static_cast<std::size_t>(plane_words_),
              0),
        pops_(static_cast<std::size_t>(planes), 0) {
    QNN_CHECK(values >= 1 && planes >= 1, "empty packed window");
  }

  [[nodiscard]] std::int64_t values() const { return values_; }
  [[nodiscard]] int planes() const { return planes_; }
  [[nodiscard]] std::int64_t plane_words() const { return plane_words_; }

  [[nodiscard]] const Word* plane(int p) const {
    return data_.data() +
           static_cast<std::size_t>(p) * static_cast<std::size_t>(plane_words_);
  }

  /// Splice `len` bits of line row (`plane`, `r`) starting at bit `src_bit`
  /// into this window's plane at bit `dst_bit`.
  void splice(const BitPlaneLineBuffer& lines, int p, int r,
              std::int64_t src_bit, std::int64_t dst_bit, std::int64_t len) {
    copy_bits(lines.row(p, r), src_bit, mutable_plane(p), dst_bit, len);
  }

  /// Mask the tail word of every plane and cache per-plane popcounts.
  /// Call once after the window's splices, before dot_filters/plane_pop.
  void finalize(const simd::VecOps& ops) {
    const int tail = static_cast<int>(values_ % kWordBits);
    for (int p = 0; p < planes_; ++p) {
      Word* words = mutable_plane(p);
      if (tail != 0) words[plane_words_ - 1] &= low_mask(tail);
      pops_[static_cast<std::size_t>(p)] = static_cast<std::int64_t>(
          ops.popcount(words, static_cast<std::size_t>(plane_words_)));
    }
  }

  [[nodiscard]] std::int64_t plane_pop(int p) const {
    return pops_[static_cast<std::size_t>(p)];
  }

  /// XNOR-popcount dot of this window against `count` packed filters laid
  /// out filter-major at stride `stride_words`; acc[f] receives the signed
  /// fixed-point dot (sum over planes of 2^p * pm1 agreement score).
  void dot_filters(const simd::VecOps& ops, const Word* filters,
                   std::size_t stride_words, std::size_t count,
                   std::int64_t* acc) const {
    std::fill(acc, acc + count, std::int64_t{0});
    for (int p = 0; p < planes_; ++p) {
      ops.accumulate_plane(plane(p), static_cast<std::size_t>(plane_words_),
                           plane_pop(p), filters, stride_words, count, p, acc);
    }
  }

 private:
  [[nodiscard]] Word* mutable_plane(int p) {
    return data_.data() +
           static_cast<std::size_t>(p) * static_cast<std::size_t>(plane_words_);
  }

  std::int64_t values_;
  int planes_;
  std::int64_t plane_words_;
  std::vector<Word> data_;
  std::vector<std::int64_t> pops_;
};

/// Filter-major packed +-1 weights: filter f's sign bits occupy words
/// [f*stride_words, f*stride_words + stride_words). Built once at kernel
/// construction from the FilterBank's BitVectors (whose tail-zero invariant
/// carries over, so no per-dot masking is needed on the weight side).
class PackedFilters {
 public:
  PackedFilters() = default;

  PackedFilters(std::int64_t bits_per_filter, int count)
      : stride_words_(words_for_bits(bits_per_filter)),
        count_(count),
        data_(static_cast<std::size_t>(stride_words_) *
                  static_cast<std::size_t>(count),
              0) {}

  [[nodiscard]] std::size_t stride_words() const {
    return static_cast<std::size_t>(stride_words_);
  }
  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] const Word* data() const { return data_.data(); }

  [[nodiscard]] const Word* filter(int f) const {
    return data_.data() +
           static_cast<std::size_t>(f) * static_cast<std::size_t>(stride_words_);
  }

  /// Copy filter `f`'s packed words from `words` (stride_words() words).
  void set(int f, std::span<const Word> words) {
    QNN_CHECK(words.size() == stride_words(), "packed filter width mismatch");
    std::memcpy(data_.data() + static_cast<std::size_t>(f) *
                                   static_cast<std::size_t>(stride_words_),
                words.data(), words.size() * sizeof(Word));
  }

 private:
  std::int64_t stride_words_ = 0;
  int count_ = 0;
  std::vector<Word> data_;
};

}  // namespace qnn
