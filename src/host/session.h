// Host-side deployment session: the CPU application flow of §II-B/§III-B.
//
// On the Maxeler platform the host program compiles kernels to a bitstream
// (MaxCompiler), configures the DFEs, loads weights and normalization
// parameters once, and then streams images for inference. DfeSession is
// the software analog of that lifecycle:
//
//   auto session = DfeSession::compile(spec, params);   // or ::load(file)
//   int label = session.classify(image);                // streaming engine
//   std::cout << session.report();                      // placement, timing,
//                                                       // power, energy
//
// Inference runs on a registered Backend (backend/backend.h) — by default
// the threaded streaming engine (bit-exact functional model); placement,
// timing, power and energy come from the partitioner, cycle simulator and
// calibrated hardware models. DfeSession is a thin wrapper over one
// BackendSession plus the host-side deployment analyses (verification,
// estimate, placement feasibility, burst carry into the link models).
//
// Thread safety: a DfeSession models ONE board — infer()/infer_batch()/
// classify() drive a single BackendSession, so concurrent calls on the
// same session are NOT allowed. Distinct sessions are fully independent:
// compile() copies the spec and takes its own NetworkParams, and neither
// retains mutable state shared with other sessions, so a replica pool
// (serve/server.h) may compile N sessions from one NetworkSpec/
// NetworkParams pair and run them concurrently.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "dataflow/engine.h"
#include "perfmodel/fpga_estimate.h"
#include "plan/compiled_plan.h"

namespace qnn {

struct SessionConfig {
  SimConfig sim{};
  PartitionConfig partition{};
  DfeBoard board = max4_maia();
  EngineOptions engine{};
  /// Registered backend that executes inference (backend/backend.h).
  std::string backend = "engine";
  /// Skip the cycle simulation at compile time (use the analytic clock
  /// model); useful when constructing many sessions in sweeps.
  bool fast_estimate = false;

  // ---- compile-time plan (plan/compiled_plan.h) --------------------------
  /// Pre-built plan this session compiles against. When set, its engine
  /// knobs override `engine`'s, its FIFO streams are wired verbatim, and
  /// its per-edge bursts feed the sim / partition link models. The session
  /// config owns the plan's lifetime (engine.plan is pointed at it
  /// internally, so a stored copy of this config recompiles correctly —
  /// restart_replica depends on that).
  std::shared_ptr<const CompiledPlan> plan;
  /// Plan-cache directory consulted when `plan` is unset; "" = the
  /// QNN_PLAN_CACHE environment variable (unset env = cache disabled).
  std::string plan_cache_dir;
  /// SLO component of the cache fingerprint (PlanKey::slo_us).
  std::int64_t slo_us = 0;
};

class DfeSession {
 public:
  /// Lower, partition and estimate a network ("place and route").
  [[nodiscard]] static DfeSession compile(const NetworkSpec& spec,
                                          NetworkParams params,
                                          SessionConfig config = {});

  /// Load a serialized network (nn/serialize.h) and compile it.
  [[nodiscard]] static DfeSession load(const std::string& path,
                                       SessionConfig config = {});

  DfeSession(DfeSession&&) noexcept;
  DfeSession& operator=(DfeSession&&) noexcept;
  ~DfeSession();

  /// Stream one image; returns the logits tensor.
  [[nodiscard]] IntTensor infer(const IntTensor& image);
  /// Stream a batch (kernels stay busy across images). When `stats` is
  /// non-null it receives the engine's wall-clock and stream/stall
  /// statistics for this run (consumed by the serving metrics layer).
  [[nodiscard]] std::vector<IntTensor> infer_batch(
      std::span<const IntTensor> images,
      StreamEngine::RunStats* stats = nullptr);
  /// Top-1 class of one image.
  [[nodiscard]] int classify(const IntTensor& image);

  /// Abort an in-flight infer()/infer_batch()/classify() from another
  /// thread (e.g. a serving-side deadline): the inference call throws and
  /// the session stays usable — the engine re-arms on the next run.
  void cancel();

  [[nodiscard]] const NetworkSpec& spec() const;
  [[nodiscard]] const Pipeline& pipeline() const;
  [[nodiscard]] const NetworkParams& params() const;
  /// DFE placement (segments + MaxRing cuts).
  [[nodiscard]] const PartitionResult& placement() const;
  /// Modeled runtime/power/energy on the DFE platform.
  [[nodiscard]] const FpgaRunEstimate& estimate() const;
  /// The compiled backend session inference runs on.
  [[nodiscard]] BackendSession& session();
  /// The registry-owned backend that compiled this session.
  [[nodiscard]] const Backend& backend() const;

  /// Human-readable deployment report: summary, placement, timing, power.
  [[nodiscard]] std::string report() const;

 private:
  struct State;
  explicit DfeSession(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

}  // namespace qnn
