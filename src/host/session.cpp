#include "host/session.h"

#include <sstream>

#include "io/table.h"
#include "nn/serialize.h"
#include "nn/summary.h"
#include "plan/cache.h"
#include "verify/graph_check.h"
#include "verify/plan_check.h"

namespace qnn {

struct DfeSession::State {
  SessionConfig config;
  NetworkSpec spec;
  Pipeline pipeline;
  NetworkParams params;
  FpgaRunEstimate estimate;
  std::unique_ptr<BackendSession> session;  // owns its pipeline/params copy
};

DfeSession::DfeSession(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
DfeSession::DfeSession(DfeSession&&) noexcept = default;
DfeSession& DfeSession::operator=(DfeSession&&) noexcept = default;
DfeSession::~DfeSession() = default;

DfeSession DfeSession::compile(const NetworkSpec& spec, NetworkParams params,
                               SessionConfig config) {
  auto state = std::make_unique<State>();
  state->spec = spec;
  state->pipeline = expand(spec);
  state->params = std::move(params);
  const std::string context =
      "DfeSession::compile(" + state->pipeline.name + ")";
  // Plan resolution: an explicit SessionConfig::plan wins; otherwise the
  // plan cache is consulted (keyed by model hash + machine + SLO), and a
  // miss means the engine derives everything from the options as before.
  if (config.plan == nullptr) {
    const PlanCache cache(config.plan_cache_dir.empty()
                              ? PlanCache::default_dir()
                              : config.plan_cache_dir);
    if (cache.enabled()) {
      if (auto cached = cache.load(plan_key(state->pipeline, config.slo_us))) {
        // Re-verify before arming (verify/plan_check.h): a cached file that
        // parses but carries a stale hash, corrupt streams or burst/FIFO
        // skew is a MISS, not a fatal error — the cache contract says a
        // corrupt entry must never break a cold start.
        Report lint;
        lint_plan(state->pipeline, *cached, lint);
        if (lint.ok()) {
          config.plan =
              std::make_shared<const CompiledPlan>(*std::move(cached));
        }
      }
    }
  }
  if (config.plan != nullptr) {
    // The plan's frozen knobs override the ad-hoc engine options, and the
    // engine is pointed at the plan itself (non-owning; the shared_ptr in
    // the stored config keeps the pointee alive across recompiles).
    // pin_offset is deployment-site identity, not a plan decision:
    // DfeServer staggers it per replica so pools tile the machine, and
    // that stagger must survive the plan application.
    const unsigned pin_offset = config.engine.pin_offset;
    config.plan->apply_engine(config.engine);
    config.engine.pin_offset = pin_offset;
    config.engine.plan = config.plan.get();
  }
  state->config = config;
  if (config.engine.verify) {
    // Static verification with structured QNN-Dxxx codes before anything
    // else touches the graph: structure, shapes/bit widths, parameter
    // banks and FIFO capacities (verify/graph_check.h).
    enforce(verify_graph(state->pipeline, &state->params, config.engine),
            context);
  }
  QNN_CHECK(static_cast<int>(state->params.convs.size()) ==
                state->pipeline.num_conv_params,
            "parameters do not match the network (conv banks)");
  QNN_CHECK(static_cast<int>(state->params.bnacts.size()) ==
                state->pipeline.num_bnact_params,
            "parameters do not match the network (bnact banks)");
  // Carry the compile-time plan's per-edge bursts (and cut, when it has
  // one) into both link models so the sim's MaxRing serializer and the
  // partitioner's wire pricing see the same transaction granularity the
  // engine will actually use. Explicit user-provided bursts win — the
  // apply helpers only fill empty fields.
  if (config.sim.link_bursts.empty() ||
      config.partition.link_bursts.empty()) {
    if (config.plan != nullptr) {
      config.plan->apply_sim(config.sim);
      config.plan->apply_partition(config.partition);
    } else {
      const CompiledPlan derived = compile_plan(
          state->pipeline, config.engine, config.slo_us, config.backend);
      derived.apply_sim(config.sim);
      derived.apply_partition(config.partition);
    }
    state->config = config;
  }
  state->estimate =
      estimate_fpga(state->pipeline, config.sim, config.partition,
                    config.board, /*run_cycle_sim=*/!config.fast_estimate);
  if (config.engine.verify) {
    // The estimator chose a placement; prove it feasible (MaxRing link
    // rates and per-DFE resource totals) before the backend compiles.
    Report placement_report;
    check_partition(state->pipeline, state->estimate.partition,
                    config.partition, placement_report);
    enforce(placement_report, context);
  }
  Backend& backend = backend_registry().at(config.backend);
  state->session =
      backend.compile(state->pipeline, state->params, config.engine);
  return DfeSession(std::move(state));
}

DfeSession DfeSession::load(const std::string& path, SessionConfig config) {
  LoadedNetwork net = load_network(path);
  return compile(net.spec, std::move(net.params), config);
}

IntTensor DfeSession::infer(const IntTensor& image) {
  return state_->session->infer(image);
}

std::vector<IntTensor> DfeSession::infer_batch(
    std::span<const IntTensor> images, StreamEngine::RunStats* stats) {
  return state_->session->infer_batch(images, stats);
}

void DfeSession::cancel() { state_->session->cancel(); }

int DfeSession::classify(const IntTensor& image) {
  return state_->session->classify(image);
}

const NetworkSpec& DfeSession::spec() const { return state_->spec; }
const Pipeline& DfeSession::pipeline() const { return state_->pipeline; }
const NetworkParams& DfeSession::params() const { return state_->params; }
const PartitionResult& DfeSession::placement() const {
  return state_->estimate.partition;
}
const FpgaRunEstimate& DfeSession::estimate() const {
  return state_->estimate;
}
BackendSession& DfeSession::session() { return *state_->session; }
const Backend& DfeSession::backend() const {
  return state_->session->backend();
}

std::string DfeSession::report() const {
  const State& s = *state_;
  std::ostringstream os;
  os << summarize(s.pipeline) << "\n";
  os << "backend: " << s.session->backend().name() << " (tier "
     << to_string(s.session->backend().tier()) << ")\n";
  os << "placement: " << s.estimate.num_dfes << " DFE(s) on "
     << s.config.board.name << "\n";
  Table t({"DFE", "kernels", "utilization"});
  for (std::size_t k = 0; k < s.estimate.partition.dfes.size(); ++k) {
    const auto& d = s.estimate.partition.dfes[k];
    t.add_row({Table::integer(static_cast<std::int64_t>(k)),
               s.pipeline.node(d.first_node).name + " .. " +
                   s.pipeline.node(d.last_node).name,
               Table::num(d.utilization, 2)});
  }
  t.print(os);
  for (const auto& cut : s.estimate.partition.cuts) {
    os << "  link after " << s.pipeline.node(cut.after_node).name << ": "
       << Table::num(cut.required_mbps, 1) << " Mbps\n";
  }
  os << "timing: " << s.estimate.clocks_per_image << " clocks/image, "
     << Table::num(1e3 * s.estimate.seconds_per_image, 2) << " ms ("
     << Table::num(s.estimate.images_per_second, 1) << " fps @ "
     << Table::num(s.config.sim.clock_hz / 1e6, 0) << " MHz)\n";
  os << "power:  " << Table::num(s.estimate.power_w, 1) << " W, energy "
     << Table::num(1e3 * s.estimate.energy_per_image_j, 1)
     << " mJ per image\n";
  return os.str();
}

}  // namespace qnn
