// Cycle-level simulator of the streaming DFE pipeline.
//
// Reproduces the paper's timing methodology: the authors validate a
// theoretical clocks-per-picture estimate (~1.85e6 for ResNet-18) against
// measurements at a 105 MHz fabric clock (§IV-B4). This module simulates
// the same kernel pipeline cycle by cycle and reports latency, steady-state
// initiation interval, per-kernel busy/stall breakdowns and FIFO occupancy.
// Timing is data-independent (the dataflow is input-static), so no weights
// or images are needed.
//
// Kernel clock model (§III-B1, calibrated against the paper's published
// runtimes — see DESIGN.md and EXPERIMENTS.md for the fit):
//  * On-chip streams carry one *pixel* (all channels of one spatial
//    position) per clock. The narrow serialized case is the DFE-to-DFE
//    link, which carries one 2-bit value per clock (the paper's 210 Mbps);
//    that is modeled by the partitioner, not here.
//  * A convolution kernel consumes one pixel per clock into its shift
//    register; padding pixels are injected locally (input halted). When a
//    window completes, the input halts and the kernel computes all O
//    filter responses, one output pixel per clock scaled by the datapath
//    fold factor below.
//  * The XNOR-popcount datapath processes `datapath_bits` weight-activation
//    bit-products per clock; one output of a layer with window K*K*I and
//    b-bit inputs therefore needs ceil(K*K*I*b / datapath_bits) clocks.
//    At the default width, every ResNet-18 body stage lands within 2% of
//    200k clocks/image — the balance a streaming design aims for — and the
//    8-bit first layer of a 7x7 conv costs 2 clocks per output.
//  * Pooling never halts: outputs appear on the same clock as the
//    completing input pixel (§III-B2). BnAct, Add and forks are
//    1-pixel/clock flow-through.
//  * Weight banks larger than `weight_cache_capacity_bits` cannot stay
//    resident in FMem and are re-streamed from the host once per image at
//    one 32-bit word per fabric clock ("all the weights received by the
//    FPGA are represented as 32-bit floating point numbers", §III-B1a).
//    See DESIGN.md: the paper's AlexNet FC weights (58.7 Mbit) exceed its
//    reported total BRAM (34.6 Mbit), so its largest FC bank cannot have
//    been fully resident.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/pipeline.h"

namespace qnn {

struct SimConfig {
  /// XNOR-popcount bit-products evaluated per clock by one conv kernel.
  int datapath_bits = 1152;
  /// Depth (pixels) of regular inter-kernel FIFOs.
  std::size_t fifo_depth = 512;
  /// Per-layer FMem weight-cache capacity; larger banks are host-streamed.
  std::int64_t weight_cache_capacity_bits = 16'000'000;
  /// Host link width for streamed weight banks (bits per fabric clock).
  int weight_stream_bits_per_cycle = 32;
  /// Fabric clock (the paper's systems run at 105 MHz).
  double clock_hz = 105e6;

  /// Multi-DFE simulation (§III-B6): node indices after which the pipeline
  /// is cut onto the next DFE. Streams crossing a cut are serialized over
  /// the MaxRing at `link_bits_per_cycle` (4 Gbps at 105 MHz ~ 38 bits per
  /// fabric clock); a pixel of C channels x b bits therefore needs
  /// ceil(C*b / link_bits_per_cycle) clocks to cross.
  std::vector<int> cut_after_nodes;
  int link_bits_per_cycle = 38;

  /// Planned per-edge bursts carried across the cut (filled from the
  /// plan/ FIFO plan — PlannedStream::burst — via CompiledPlan::apply_sim).
  /// The MaxRing serializer frames up to `values` stream values per
  /// transaction instead of shipping pixel by pixel, so the ceil() waste
  /// of narrow elements against the link word is paid once per frame. An
  /// edge without an entry (or with values == 0) keeps the legacy
  /// one-pixel framing.
  struct EdgeBurst {
    int consumer = -1;          // node index of the edge's consumer
    bool to_skip_port = false;  // Add-node skip port vs main port
    std::size_t values = 0;     // planned burst, in stream values
  };
  std::vector<EdgeBurst> link_bursts;

  /// Planned burst (values) of the edge into `consumer`'s main or skip
  /// port; 0 when no plan was carried for it.
  [[nodiscard]] std::size_t link_burst_values(int consumer,
                                              bool to_skip_port) const {
    for (const EdgeBurst& e : link_bursts) {
      if (e.consumer == consumer && e.to_skip_port == to_skip_port) {
        return e.values;
      }
    }
    return 0;
  }

  /// MaxRing link fault to replay during simulation (see fault/apply.h for
  /// the FaultPlan adapter). `link` is the serializer ordinal in cut order
  /// (0 = the link after the first cut).
  struct LinkFault {
    int link = 0;
    /// Outage window: the link transfers nothing for `down_cycles` starting
    /// at `down_from_cycle` (kFaultNever start = no outage).
    std::uint64_t down_from_cycle = ~0ULL;
    std::uint64_t down_cycles = 0;
    /// Corruption: each delivered frame is independently corrupted with
    /// probability corrupt_per_million / 1e6 and retransmitted once (the
    /// MaxRing CRC-and-resend cost model). Capped at 250'000 (25%).
    std::uint32_t corrupt_per_million = 0;
    /// Seed of the per-link corruption draw (deterministic replay).
    std::uint64_t seed = 0;
  };
  std::vector<LinkFault> link_faults;

  /// Clocks needed per output value of a conv node (datapath fold factor).
  [[nodiscard]] int cycles_per_output(const Node& n) const {
    const std::int64_t bit_products =
        static_cast<std::int64_t>(n.k) * n.k * n.in.c * n.in_bits;
    return static_cast<int>((bit_products + datapath_bits - 1) /
                            datapath_bits);
  }
};

struct KernelStats {
  std::string name;
  std::uint64_t busy = 0;       // cycles doing useful work
  std::uint64_t stall_in = 0;   // starved: waiting for input
  std::uint64_t stall_out = 0;  // blocked: waiting for output space
  std::uint64_t outputs = 0;    // output transactions (pixels) emitted
  /// Link kernels only: frames re-serialized after an injected corruption
  /// (a frame is one pixel unless a planned burst widens it).
  std::uint64_t retransmits = 0;
};

struct FifoStats {
  std::string name;
  std::size_t capacity = 0;       // pixels
  std::size_t max_occupancy = 0;  // pixels
  std::uint64_t total_values = 0; // pixels carried over the run
};

struct SimResult {
  std::uint64_t total_cycles = 0;        // until the last image drains
  std::uint64_t first_image_cycles = 0;  // pipeline latency + first image
  std::uint64_t steady_interval = 0;     // cycles between consecutive images
  int images = 0;
  std::vector<KernelStats> kernels;
  std::vector<FifoStats> fifos;

  [[nodiscard]] double ms_per_image(const SimConfig& cfg) const {
    return 1e3 * static_cast<double>(steady_interval) / cfg.clock_hz;
  }
  [[nodiscard]] double images_per_second(const SimConfig& cfg) const {
    return cfg.clock_hz / static_cast<double>(steady_interval);
  }
};

/// Simulate `images` back-to-back inferences (>= 2 so the steady-state
/// interval is observable).
[[nodiscard]] SimResult simulate(const Pipeline& pipeline,
                                 const SimConfig& config = {},
                                 int images = 3);

/// Closed-form busy cycles of each kernel for one image — the analytic
/// counterpart the paper computes by hand (§IV-B4). The pipeline's
/// steady-state interval is bounded below by the maximum entry.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
analytic_busy_cycles(const Pipeline& pipeline, const SimConfig& config = {});

/// max over analytic_busy_cycles — the theoretical clocks-per-picture.
[[nodiscard]] std::uint64_t analytic_bottleneck_cycles(
    const Pipeline& pipeline, const SimConfig& config = {});

}  // namespace qnn
