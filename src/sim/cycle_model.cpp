#include "sim/cycle_model.h"

#include <algorithm>
#include <memory>

#include "core/rng.h"

namespace qnn {
namespace {

struct SimFifo {
  std::string name;
  std::size_t cap = 0;
  std::size_t occ = 0;
  std::size_t max_occ = 0;
  std::uint64_t total = 0;

  [[nodiscard]] bool full() const { return occ >= cap; }
  [[nodiscard]] bool empty() const { return occ == 0; }
  void push() {
    ++occ;
    max_occ = std::max(max_occ, occ);
    ++total;
  }
  void pop() {
    QNN_DCHECK(occ > 0, "pop from empty sim fifo");
    --occ;
  }
};

/// Positional (data-free) replica of WindowScanner's cursor.
class PosScanner {
 public:
  PosScanner(Shape in, int k, int stride, int pad)
      : in_(in),
        k_(k),
        stride_(stride),
        pad_(pad),
        hp_(in.h + 2 * pad),
        wp_(in.w + 2 * pad),
        out_h_(conv_out_extent(in.h, k, stride, pad)),
        out_w_(conv_out_extent(in.w, k, stride, pad)) {}

  [[nodiscard]] bool done() const { return y_ >= hp_; }
  [[nodiscard]] bool is_padding() const {
    return y_ < pad_ || y_ >= pad_ + in_.h || x_ < pad_ ||
           x_ >= pad_ + in_.w;
  }
  /// True when the current pixel (y, x) is the bottom-right corner of a
  /// valid window (per-channel completions happen throughout this pixel).
  [[nodiscard]] bool at_corner_pixel() const {
    const int ry = y_ - (k_ - 1);
    const int rx = x_ - (k_ - 1);
    return ry >= 0 && rx >= 0 && ry % stride_ == 0 && rx % stride_ == 0 &&
           ry / stride_ < out_h_ && rx / stride_ < out_w_;
  }

  /// Advance one pixel; true when the full window completed (the current
  /// pixel was the bottom-right corner of a valid window).
  bool advance() {
    const bool window = at_corner_pixel();
    if (++x_ == wp_) {
      x_ = 0;
      ++y_;
    }
    return window;
  }

  void reset() { y_ = x_ = 0; }

 private:
  Shape in_;
  int k_;
  int stride_;
  int pad_;
  int hp_;
  int wp_;
  int out_h_;
  int out_w_;
  int y_ = 0;
  int x_ = 0;
};

class KernelSim {
 public:
  explicit KernelSim(std::string name) { st_.name = std::move(name); }
  virtual ~KernelSim() = default;
  /// Advance one fabric clock; `now` is the global cycle counter (used by
  /// the sink for completion timestamps and by links for outage windows).
  virtual void step(std::uint64_t now) = 0;
  [[nodiscard]] const KernelStats& stats() const { return st_; }

 protected:
  KernelStats st_;
};

class SourceSim final : public KernelSim {
 public:
  SourceSim(SimFifo& out, std::int64_t values_per_image, int images)
      : KernelSim("source"), out_(out),
        remaining_(values_per_image * images) {}

  void step(std::uint64_t /*now*/) override {
    if (remaining_ == 0) return;
    if (out_.full()) {
      ++st_.stall_out;
      return;
    }
    out_.push();
    ++st_.busy;
    ++st_.outputs;
    --remaining_;
  }

 private:
  SimFifo& out_;
  std::int64_t remaining_;
};

class SinkSim final : public KernelSim {
 public:
  SinkSim(SimFifo& in, std::int64_t values_per_image, int images)
      : KernelSim("sink"), in_(in), per_image_(values_per_image),
        images_(images) {}

  void step(std::uint64_t now) override {
    if (done()) return;
    if (in_.empty()) {
      ++st_.stall_in;
      return;
    }
    in_.pop();
    ++st_.busy;
    if (++got_ == per_image_) {
      got_ = 0;
      completions_.push_back(now);
    }
  }

  [[nodiscard]] bool done() const {
    return static_cast<int>(completions_.size()) >= images_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& completions() const {
    return completions_;
  }

 private:
  SimFifo& in_;
  std::int64_t per_image_;
  int images_;
  std::int64_t got_ = 0;
  std::vector<std::uint64_t> completions_;
};

class ConvSim final : public KernelSim {
 public:
  ConvSim(const Node& n, const SimConfig& cfg, SimFifo& in, SimFifo& out,
          int images)
      : KernelSim(n.name), in_(in), out_(out),
        scan_(n.in, n.k, n.stride, n.pad),
        emit_cycles_(static_cast<std::uint64_t>(n.out.c) *
                     cfg.cycles_per_output(n)),
        images_left_(images) {
    const std::int64_t weight_bits = n.filter_shape().total_weights();
    if (weight_bits > cfg.weight_cache_capacity_bits) {
      ws_per_image_ = static_cast<std::uint64_t>(
          (weight_bits + cfg.weight_stream_bits_per_cycle - 1) /
          cfg.weight_stream_bits_per_cycle);
    }
    ws_left_ = ws_per_image_;
  }

  void step(std::uint64_t /*now*/) override {
    if (ws_left_ > 0) {  // host-streaming this image's weight bank
      --ws_left_;
      ++st_.busy;
      return;
    }
    if (emit_left_ > 0) {  // input halted: all O filters at this position
      if (emit_left_ > 1) {
        --emit_left_;
        ++st_.busy;
        return;
      }
      // Final emission cycle: the completed output pixel enters the stream.
      if (out_.full()) {
        ++st_.stall_out;
        return;
      }
      out_.push();
      ++st_.busy;
      ++st_.outputs;
      emit_left_ = 0;
      maybe_finish_image();
      return;
    }
    if (scan_.done()) return;  // finished (maybe_finish_image already ran)
    if (scan_.is_padding()) {
      const bool window = scan_.advance();
      ++st_.busy;
      if (window) {
        emit_left_ = emit_cycles_;
      } else {
        maybe_finish_image();
      }
      return;
    }
    if (in_.empty()) {
      ++st_.stall_in;
      return;
    }
    in_.pop();
    const bool window = scan_.advance();
    ++st_.busy;
    if (window) {
      emit_left_ = emit_cycles_;
    } else {
      maybe_finish_image();
    }
  }

 private:
  void maybe_finish_image() {
    if (!scan_.done() || emit_left_ > 0) return;
    if (--images_left_ > 0) {
      scan_.reset();
      ws_left_ = ws_per_image_;
    }
  }

  SimFifo& in_;
  SimFifo& out_;
  PosScanner scan_;
  std::uint64_t emit_cycles_;  // clocks spent per completed window
  int images_left_;
  std::uint64_t ws_per_image_ = 0;
  std::uint64_t ws_left_ = 0;
  std::uint64_t emit_left_ = 0;
};

class PoolSim final : public KernelSim {
 public:
  PoolSim(const Node& n, SimFifo& in, SimFifo& out, int images)
      : KernelSim(n.name), in_(in), out_(out),
        scan_(n.in, n.k, n.stride, n.pad), images_left_(images) {}

  void step(std::uint64_t /*now*/) override {
    if (scan_.done()) return;
    // Pooling emits on the same clock as the completing input (§III-B2):
    // at a corner pixel every consumed channel value yields one output.
    const bool emits = scan_.at_corner_pixel();
    if (emits && out_.full()) {
      ++st_.stall_out;
      return;
    }
    if (scan_.is_padding()) {
      scan_.advance();
    } else {
      if (in_.empty()) {
        ++st_.stall_in;
        return;
      }
      in_.pop();
      scan_.advance();
    }
    ++st_.busy;
    if (emits) {
      out_.push();
      ++st_.outputs;
    }
    if (scan_.done() && --images_left_ > 0) scan_.reset();
  }

 private:
  SimFifo& in_;
  SimFifo& out_;
  PosScanner scan_;
  int images_left_;
};

/// One-value-per-clock flow-through (BnAct and forks).
class PassSim final : public KernelSim {
 public:
  PassSim(std::string name, SimFifo& in, std::vector<SimFifo*> outs)
      : KernelSim(std::move(name)), in_(in), outs_(std::move(outs)) {}

  void step(std::uint64_t /*now*/) override {
    if (in_.empty()) {
      ++st_.stall_in;
      return;
    }
    for (SimFifo* out : outs_) {
      if (out->full()) {
        ++st_.stall_out;
        return;
      }
    }
    in_.pop();
    for (SimFifo* out : outs_) out->push();
    ++st_.busy;
    ++st_.outputs;
  }

 private:
  SimFifo& in_;
  std::vector<SimFifo*> outs_;
};

/// MaxRing serializer (§III-B6): a stream crossing to the next DFE is
/// shipped in frames of up to `frame_pixels` pixels (the planned burst
/// carried across the cut; 1 without a plan). A frame of m pixels costs
/// ceil(m * pixel_bits / link_bits_per_cycle) clocks, so a planned burst
/// pays the link-word rounding once per frame where per-pixel framing
/// pays it on every pixel. An injected LinkFault adds outage windows
/// (nothing moves) and CRC-style corruption: a corrupted frame is
/// re-serialized once before delivery.
class LinkSim final : public KernelSim {
 public:
  LinkSim(std::string name, SimFifo& in, SimFifo& out, int frame_pixels,
          std::int64_t pixel_bits, int link_bits,
          SimConfig::LinkFault fault = {})
      : KernelSim(std::move(name)), in_(in), out_(out),
        frame_pixels_(frame_pixels), pixel_bits_(pixel_bits),
        link_bits_(link_bits), fault_(fault), rng_(fault.seed) {
    QNN_CHECK(frame_pixels_ >= 1, "link frame must hold >= 1 pixel");
    QNN_CHECK(pixel_bits_ >= 1 && link_bits_ >= 1,
              "link serialization needs positive widths");
  }

  void step(std::uint64_t now) override {
    if (now >= fault_.down_from_cycle &&
        now - fault_.down_from_cycle < fault_.down_cycles) {
      // Outage window: the link moves nothing this cycle.
      if (holding_ > 0 || !in_.empty()) ++st_.stall_out;
      return;
    }
    if (holding_ > 0) {
      if (remaining_ > 0) {
        --remaining_;
        ++st_.busy;
        if (remaining_ > 0) return;
      }
      try_deliver();
      return;
    }
    if (in_.empty()) {
      ++st_.stall_in;
      return;
    }
    // Open a frame from whatever is available (up to the planned burst):
    // waiting for a full frame at a stream tail would deadlock.
    int taken = 0;
    while (taken < frame_pixels_ && !in_.empty()) {
      in_.pop();
      ++taken;
    }
    holding_ = taken;
    remaining_ = serialize_cycles(taken) - 1;
    ++st_.busy;
    if (remaining_ == 0) try_deliver();
  }

 private:
  [[nodiscard]] int serialize_cycles(int pixels) const {
    const std::int64_t bits = pixel_bits_ * pixels;
    return static_cast<int>((bits + link_bits_ - 1) / link_bits_);
  }

  /// Serialization of the held frame is complete: draw the corruption
  /// fault (once per frame — a corrupted frame re-serializes exactly
  /// once), then land its pixels as the far FIFO accepts them.
  void try_deliver() {
    if (fault_.corrupt_per_million > 0 && !retransmitted_ &&
        rng_.next_below(1'000'000) < fault_.corrupt_per_million) {
      retransmitted_ = true;
      ++st_.retransmits;
      remaining_ = serialize_cycles(holding_);
      return;
    }
    while (holding_ > 0) {
      if (out_.full()) {
        ++st_.stall_out;
        return;
      }
      out_.push();
      ++st_.outputs;
      --holding_;
    }
    retransmitted_ = false;
  }

  SimFifo& in_;
  SimFifo& out_;
  int frame_pixels_;
  std::int64_t pixel_bits_;
  int link_bits_;
  SimConfig::LinkFault fault_;
  Rng rng_;
  int remaining_ = 0;
  int holding_ = 0;  // pixels of the open frame not yet delivered
  bool retransmitted_ = false;
};

class AddSim final : public KernelSim {
 public:
  AddSim(const Node& n, SimFifo& main, SimFifo& skip, SimFifo& out)
      : KernelSim(n.name), main_(main), skip_(skip), out_(out) {}

  void step(std::uint64_t /*now*/) override {
    if (main_.empty() || skip_.empty()) {
      ++st_.stall_in;
      return;
    }
    if (out_.full()) {
      ++st_.stall_out;
      return;
    }
    main_.pop();
    skip_.pop();
    out_.push();
    ++st_.busy;
    ++st_.outputs;
  }

 private:
  SimFifo& main_;
  SimFifo& skip_;
  SimFifo& out_;
};

}  // namespace

SimResult simulate(const Pipeline& pipeline, const SimConfig& config,
                   int images) {
  pipeline.validate();
  QNN_CHECK(images >= 2, "need >= 2 images to observe the steady interval");
  for (const SimConfig::LinkFault& f : config.link_faults) {
    QNN_CHECK(f.corrupt_per_million <= 250'000,
              "link corruption rate above 25% is not a working link");
  }
  // Merge the faults targeting one link ordinal (earliest outage wins,
  // corruption rates take the max) so each LinkSim carries one record.
  auto fault_for = [&](int link) {
    SimConfig::LinkFault merged;
    merged.link = link;
    for (const SimConfig::LinkFault& f : config.link_faults) {
      if (f.link != link) continue;
      if (f.down_cycles > 0 && f.down_from_cycle < merged.down_from_cycle) {
        merged.down_from_cycle = f.down_from_cycle;
        merged.down_cycles = f.down_cycles;
      }
      merged.corrupt_per_million =
          std::max(merged.corrupt_per_million, f.corrupt_per_million);
      if (f.seed != 0) merged.seed = f.seed;
    }
    return merged;
  };

  std::vector<std::unique_ptr<SimFifo>> fifos;
  auto make_fifo = [&](std::size_t cap, std::string name) -> SimFifo& {
    auto f = std::make_unique<SimFifo>();
    f->cap = cap;
    f->name = std::move(name);
    fifos.push_back(std::move(f));
    return *fifos.back();
  };

  std::vector<SimFifo*> main_in(static_cast<std::size_t>(pipeline.size()),
                                nullptr);
  std::vector<SimFifo*> skip_in(static_cast<std::size_t>(pipeline.size()),
                                nullptr);
  std::vector<std::unique_ptr<KernelSim>> kernels;

  // Mirror the threaded engine's wiring: direct edge, or fork on fan-out.
  // Skip FIFOs get capacity for a full map: the simulator *measures* the
  // occupancy they actually need, which tests compare against the paper's
  // buffer-size formula (§III-B5). Edges crossing a configured DFE cut get
  // a MaxRing serializer in between.
  int links_made = 0;
  auto crosses_cut = [&](int p, int c) {
    for (int cut : config.cut_after_nodes) {
      if (p <= cut && c > cut) return true;
    }
    return false;
  };
  auto wire = [&](int p, const Shape& shape, SimFifo*& produced) {
    std::vector<int> consumers;
    for (int j = 0; j < pipeline.size(); ++j) {
      if (pipeline.node(j).main_from == p) consumers.push_back(j);
      if (p >= 0 && pipeline.node(j).skip_from == p) consumers.push_back(j);
    }
    const std::string pname = p < 0 ? "input" : pipeline.node(p).name;
    auto capacity_for = [&](int consumer) -> std::size_t {
      const Node& n = pipeline.node(consumer);
      if (n.kind == NodeKind::Add && n.skip_from == p && n.main_from != p) {
        return static_cast<std::size_t>(shape.h) * shape.w + 64;
      }
      return config.fifo_depth;
    };
    auto attach = [&](int consumer, SimFifo& upstream) {
      const Node& n = pipeline.node(consumer);
      const bool is_main =
          n.main_from == p &&
          main_in[static_cast<std::size_t>(consumer)] == nullptr;
      SimFifo* f = &upstream;
      if (p >= 0 && crosses_cut(p, consumer)) {
        // Serialize this stream over the MaxRing in frames of the planned
        // burst (one pixel when no plan was carried across the cut).
        const Node& producer = pipeline.node(p);
        const std::int64_t pixel_bits =
            static_cast<std::int64_t>(producer.out.c) * producer.out_bits;
        const std::size_t burst_values =
            config.link_burst_values(consumer, /*to_skip_port=*/!is_main);
        const int frame_pixels = std::max<int>(
            1, static_cast<int>(
                   static_cast<std::int64_t>(burst_values) /
                   std::max<std::int64_t>(1, producer.out.c)));
        SimFifo& landed =
            make_fifo(upstream.cap, pname + "~link~" + n.name);
        kernels.push_back(std::make_unique<LinkSim>(
            "link_" + pname + "_" + std::to_string(links_made), upstream,
            landed, frame_pixels, pixel_bits, config.link_bits_per_cycle,
            fault_for(links_made)));
        ++links_made;
        f = &landed;
      }
      if (is_main) {
        main_in[static_cast<std::size_t>(consumer)] = f;
      } else {
        skip_in[static_cast<std::size_t>(consumer)] = f;
      }
    };
    if (consumers.empty()) {
      produced = &make_fifo(config.fifo_depth, pname + "->sink");
      return;
    }
    if (consumers.size() == 1) {
      SimFifo& f = make_fifo(capacity_for(consumers[0]),
                             pname + "->" +
                                 pipeline.node(consumers[0]).name);
      attach(consumers[0], f);
      produced = &f;
      return;
    }
    SimFifo& trunk = make_fifo(config.fifo_depth, pname + "->fork");
    std::vector<SimFifo*> branches;
    for (int consumer : consumers) {
      SimFifo& f = make_fifo(capacity_for(consumer),
                             pname + "=>" + pipeline.node(consumer).name);
      attach(consumer, f);
      branches.push_back(&f);
    }
    kernels.push_back(std::make_unique<PassSim>("fork_" + pname, trunk,
                                                std::move(branches)));
    produced = &trunk;
  };

  SimFifo* input_fifo = nullptr;
  wire(-1, pipeline.input, input_fifo);
  std::vector<SimFifo*> node_out(static_cast<std::size_t>(pipeline.size()),
                                 nullptr);
  for (int i = 0; i < pipeline.size(); ++i) {
    wire(i, pipeline.node(i).out, node_out[static_cast<std::size_t>(i)]);
  }

  // Forks were appended during wiring; prepend the source, then the node
  // kernels in topological order, then the sink. Step order is topological
  // so a value can traverse flow-through kernels within one cycle, which
  // models combinational chaining without inflating the interval.
  std::vector<std::unique_ptr<KernelSim>> forks = std::move(kernels);
  kernels.clear();
  kernels.push_back(std::make_unique<SourceSim>(
      *input_fifo,
      static_cast<std::int64_t>(pipeline.input.h) * pipeline.input.w,
      images));
  std::size_t fork_cursor = 0;
  // Forks were created in wire() call order: input first, then node 0..n.
  // Re-interleave them right after their producing stage.
  auto take_forks_for = [&](const std::string& pname) {
    while (fork_cursor < forks.size()) {
      const std::string& name = forks[fork_cursor]->stats().name;
      const bool is_fork = name == "fork_" + pname;
      const bool is_link = name.rfind("link_" + pname + "_", 0) == 0;
      if (!is_fork && !is_link) break;
      kernels.push_back(std::move(forks[fork_cursor]));
      ++fork_cursor;
    }
  };
  take_forks_for("input");
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    SimFifo* in = main_in[static_cast<std::size_t>(i)];
    SimFifo* out = node_out[static_cast<std::size_t>(i)];
    QNN_CHECK(in != nullptr && out != nullptr, "sim wiring incomplete");
    switch (n.kind) {
      case NodeKind::Conv:
        kernels.push_back(
            std::make_unique<ConvSim>(n, config, *in, *out, images));
        break;
      case NodeKind::MaxPool:
      case NodeKind::AvgPool:
        kernels.push_back(std::make_unique<PoolSim>(n, *in, *out, images));
        break;
      case NodeKind::BnAct:
        kernels.push_back(std::make_unique<PassSim>(
            n.name, *in, std::vector<SimFifo*>{out}));
        break;
      case NodeKind::Add: {
        SimFifo* skip = skip_in[static_cast<std::size_t>(i)];
        QNN_CHECK(skip != nullptr, "sim add without skip fifo");
        kernels.push_back(std::make_unique<AddSim>(n, *in, *skip, *out));
        break;
      }
    }
    take_forks_for(n.name);
  }
  QNN_CHECK(fork_cursor == forks.size(), "fork interleaving failed");

  const Shape out_shape = pipeline.output_shape();
  auto sink = std::make_unique<SinkSim>(
      *node_out[static_cast<std::size_t>(pipeline.size() - 1)],
      static_cast<std::int64_t>(out_shape.h) * out_shape.w, images);
  SinkSim* sink_ptr = sink.get();
  kernels.push_back(std::move(sink));

  // Generous bound: every kernel's busy work plus slack; a stalled pipeline
  // beyond this is a wiring bug, not a slow network.
  std::uint64_t budget = 1024;
  for (const auto& [name, cycles] : analytic_busy_cycles(pipeline, config)) {
    budget += cycles * static_cast<std::uint64_t>(images) * 4;
  }
  // Cut-crossing streams serialize over the link; include their cycles.
  for (int c = 0; c < pipeline.size(); ++c) {
    const Node& n = pipeline.node(c);
    for (int src : {n.main_from, n.skip_from}) {
      if (src < 0 || !crosses_cut(src, c)) continue;
      const Node& producer = pipeline.node(src);
      const std::int64_t pixel_bits =
          static_cast<std::int64_t>(producer.out.c) * producer.out_bits;
      const auto cpp = static_cast<std::uint64_t>(
          (pixel_bits + config.link_bits_per_cycle - 1) /
          config.link_bits_per_cycle);
      budget += static_cast<std::uint64_t>(producer.out.h) *
                producer.out.w * cpp * static_cast<std::uint64_t>(images) *
                4;
    }
  }
  // Injected link faults legitimately slow the run: extend the deadlock
  // budget by each outage window and by the worst-case retransmission
  // overhead (rate is capped at 25%, so <= budget/2 extra).
  for (const SimConfig::LinkFault& f : config.link_faults) {
    budget += f.down_cycles * 2;
    if (f.corrupt_per_million > 0) budget += budget / 2;
  }

  std::uint64_t cycle = 0;
  while (!sink_ptr->done()) {
    if (cycle >= budget) {
      std::string msg = "cycle simulation exceeded budget (deadlock?)\n";
      for (const auto& k : kernels) {
        const auto& s = k->stats();
        msg += "  kernel " + s.name + ": busy=" + std::to_string(s.busy) +
               " in_stall=" + std::to_string(s.stall_in) +
               " out_stall=" + std::to_string(s.stall_out) +
               " outputs=" + std::to_string(s.outputs) + "\n";
      }
      for (const auto& f : fifos) {
        msg += "  fifo " + f->name + ": occ=" + std::to_string(f->occ) +
               "/" + std::to_string(f->cap) + "\n";
      }
      throw Error(msg);
    }
    ++cycle;
    for (auto& k : kernels) k->step(cycle);
  }

  SimResult result;
  result.images = images;
  result.total_cycles = cycle;
  const auto& done = sink_ptr->completions();
  result.first_image_cycles = done.front();
  result.steady_interval =
      images >= 2 ? done[done.size() - 1] - done[done.size() - 2]
                  : done.front();
  for (const auto& k : kernels) result.kernels.push_back(k->stats());
  for (const auto& f : fifos) {
    result.fifos.push_back(FifoStats{f->name, f->cap, f->max_occ, f->total});
  }
  return result;
}

std::vector<std::pair<std::string, std::uint64_t>> analytic_busy_cycles(
    const Pipeline& pipeline, const SimConfig& config) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    std::uint64_t cycles = 0;
    switch (n.kind) {
      case NodeKind::Conv: {
        const auto padded =
            static_cast<std::uint64_t>(n.in.h + 2 * n.pad) *
            (n.in.w + 2 * n.pad);
        const auto emits =
            static_cast<std::uint64_t>(n.out.h) * n.out.w * n.out.c *
            static_cast<std::uint64_t>(config.cycles_per_output(n));
        const std::int64_t weight_bits = n.filter_shape().total_weights();
        const std::uint64_t ws =
            weight_bits > config.weight_cache_capacity_bits
                ? static_cast<std::uint64_t>(
                      (weight_bits + config.weight_stream_bits_per_cycle -
                       1) /
                      config.weight_stream_bits_per_cycle)
                : 0;
        cycles = padded + emits + ws;
        break;
      }
      case NodeKind::MaxPool:
      case NodeKind::AvgPool:
        cycles = static_cast<std::uint64_t>(n.in.h + 2 * n.pad) *
                 (n.in.w + 2 * n.pad);
        break;
      case NodeKind::BnAct:
      case NodeKind::Add:
        cycles = static_cast<std::uint64_t>(n.in.h) * n.in.w;
        break;
    }
    out.emplace_back(n.name, cycles);
  }
  return out;
}

std::uint64_t analytic_bottleneck_cycles(const Pipeline& pipeline,
                                         const SimConfig& config) {
  std::uint64_t best = 0;
  for (const auto& [name, cycles] : analytic_busy_cycles(pipeline, config)) {
    best = std::max(best, cycles);
  }
  return best;
}

}  // namespace qnn
