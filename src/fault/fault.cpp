#include "fault/fault.h"

#include <utility>

#include "core/rng.h"

namespace qnn {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStreamBitFlip:
      return "stream-bit-flip";
    case FaultKind::kStreamStall:
      return "stream-stall";
    case FaultKind::kKernelHang:
      return "kernel-hang";
    case FaultKind::kKernelException:
      return "kernel-exception";
    case FaultKind::kReplicaCrash:
      return "replica-crash";
    case FaultKind::kLinkDrop:
      return "link-drop";
    case FaultKind::kLinkCorrupt:
      return "link-corrupt";
    case FaultKind::kLinkOutage:
      return "link-outage";
    case FaultKind::kLinkFrameCorrupt:
      return "link-frame-corrupt";
    case FaultKind::kLinkDeath:
      return "link-death";
  }
  return "unknown";
}

FaultEvent FaultPlan::bit_flip(std::string stream, std::uint64_t run,
                               std::uint64_t value_index, std::int32_t mask) {
  FaultEvent e;
  e.kind = FaultKind::kStreamBitFlip;
  e.target = std::move(stream);
  e.first_run = e.last_run = run;
  e.after_values = value_index;
  e.xor_mask = mask;
  return e;
}

FaultEvent FaultPlan::stall(std::string stream, std::uint64_t run,
                            std::uint64_t value_index,
                            std::uint64_t attempts) {
  FaultEvent e;
  e.kind = FaultKind::kStreamStall;
  e.target = std::move(stream);
  e.first_run = e.last_run = run;
  e.after_values = value_index;
  e.stall_attempts = attempts;
  return e;
}

FaultEvent FaultPlan::kernel_hang(std::string kernel, std::uint64_t run,
                                  std::uint64_t step) {
  FaultEvent e;
  e.kind = FaultKind::kKernelHang;
  e.target = std::move(kernel);
  e.first_run = e.last_run = run;
  e.after_steps = step;
  return e;
}

FaultEvent FaultPlan::kernel_throw(std::string kernel, std::uint64_t run,
                                   std::uint64_t step) {
  FaultEvent e;
  e.kind = FaultKind::kKernelException;
  e.target = std::move(kernel);
  e.first_run = e.last_run = run;
  e.after_steps = step;
  return e;
}

FaultEvent FaultPlan::replica_crash(int replica, std::uint64_t first_run,
                                    std::uint64_t last_run) {
  FaultEvent e;
  e.kind = FaultKind::kReplicaCrash;
  e.replica = replica;
  e.first_run = first_run;
  e.last_run = last_run;
  return e;
}

FaultEvent FaultPlan::link_drop(int link, std::uint64_t down_from_cycle,
                                std::uint64_t down_cycles) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDrop;
  e.link = link;
  e.down_from_cycle = down_from_cycle;
  e.down_cycles = down_cycles;
  return e;
}

FaultEvent FaultPlan::link_corrupt(int link, std::uint32_t per_million) {
  FaultEvent e;
  e.kind = FaultKind::kLinkCorrupt;
  e.link = link;
  e.corrupt_per_million = per_million;
  return e;
}

FaultEvent FaultPlan::link_outage(int link, std::uint64_t run,
                                  std::uint64_t after_frames,
                                  std::int64_t outage_us) {
  FaultEvent e;
  e.kind = FaultKind::kLinkOutage;
  e.link = link;
  e.first_run = e.last_run = run;
  e.after_values = after_frames;
  e.outage_us = outage_us;
  return e;
}

FaultEvent FaultPlan::link_frame_corrupt(int link, std::uint32_t per_million,
                                         std::uint64_t first_run,
                                         std::uint64_t last_run) {
  FaultEvent e;
  e.kind = FaultKind::kLinkFrameCorrupt;
  e.link = link;
  e.first_run = first_run;
  e.last_run = last_run;
  e.corrupt_per_million = per_million;
  return e;
}

FaultEvent FaultPlan::link_death(int link, std::uint64_t run,
                                 std::uint64_t after_frames,
                                 std::uint64_t last_run) {
  FaultEvent e;
  e.kind = FaultKind::kLinkDeath;
  e.link = link;
  e.first_run = run;
  e.last_run = last_run;
  e.after_values = after_frames;
  return e;
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, const ChaosOptions& opts) {
  QNN_CHECK(opts.replicas >= 1, "FaultPlan::chaos: replicas must be >= 1");
  QNN_CHECK(opts.runs >= 1, "FaultPlan::chaos: runs must be >= 1");
  QNN_CHECK(opts.events >= 0, "FaultPlan::chaos: events must be >= 0");
  Rng rng(seed);
  FaultPlan plan;
  plan.events.reserve(static_cast<std::size_t>(opts.events));
  // Detectable kinds only (plus optional bit flips / live link faults):
  // the healing layer can observe and mask these, so chaos soaks can
  // assert full recovery. The draw order is append-only so a given seed
  // under the default options keeps producing the identical plan.
  std::vector<FaultKind> kinds = {
      FaultKind::kKernelHang, FaultKind::kKernelException,
      FaultKind::kReplicaCrash, FaultKind::kStreamStall};
  if (opts.include_bit_flips) kinds.push_back(FaultKind::kStreamBitFlip);
  if (opts.include_link_faults) {
    QNN_CHECK(opts.links >= 1, "FaultPlan::chaos: links must be >= 1");
    kinds.push_back(FaultKind::kLinkOutage);
    kinds.push_back(FaultKind::kLinkFrameCorrupt);
    kinds.push_back(FaultKind::kLinkDeath);
  }
  for (int i = 0; i < opts.events; ++i) {
    FaultEvent e;
    e.replica = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(opts.replicas)));
    e.first_run = rng.next_below(opts.runs);
    e.last_run = e.first_run;
    switch (kinds[rng.next_below(kinds.size())]) {
      case FaultKind::kKernelHang:
        e.kind = FaultKind::kKernelHang;
        e.target_index = static_cast<int>(rng.next_below(64));
        e.after_steps = rng.next_below(256);
        break;
      case FaultKind::kKernelException:
        e.kind = FaultKind::kKernelException;
        e.target_index = static_cast<int>(rng.next_below(64));
        e.after_steps = rng.next_below(256);
        break;
      case FaultKind::kReplicaCrash:
        e.kind = FaultKind::kReplicaCrash;
        break;
      case FaultKind::kStreamStall:
        e.kind = FaultKind::kStreamStall;
        e.target_index = static_cast<int>(rng.next_below(64));
        e.after_values = rng.next_below(512);
        e.stall_attempts = 64 + rng.next_below(512);
        break;
      case FaultKind::kStreamBitFlip:
        e.kind = FaultKind::kStreamBitFlip;
        e.target_index = static_cast<int>(rng.next_below(64));
        e.after_values = rng.next_below(512);
        e.xor_mask = static_cast<std::int32_t>(1U << rng.next_below(15));
        break;
      case FaultKind::kLinkOutage:
        e.kind = FaultKind::kLinkOutage;
        e.link = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(opts.links)));
        e.after_values = rng.next_below(64);
        e.outage_us = static_cast<std::int64_t>(500 + rng.next_below(2500));
        break;
      case FaultKind::kLinkFrameCorrupt:
        e.kind = FaultKind::kLinkFrameCorrupt;
        e.link = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(opts.links)));
        e.corrupt_per_million =
            static_cast<std::uint32_t>(10000 + rng.next_below(190000));
        break;
      case FaultKind::kLinkDeath:
        e.kind = FaultKind::kLinkDeath;
        e.link = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(opts.links)));
        e.after_values = rng.next_below(128);
        break;
      default:
        e.kind = FaultKind::kReplicaCrash;
        break;
    }
    plan.events.push_back(e);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int replica)
    : plan_(std::move(plan)), replica_(replica) {}

StreamFaultSite* FaultInjector::register_stream(const std::string& name) {
  stream_sites_.emplace_back();
  stream_sites_.back().fired = &fired_;
  stream_names_.push_back(name);
  return &stream_sites_.back();
}

KernelFaultSite* FaultInjector::register_kernel(const std::string& name) {
  kernel_sites_.emplace_back();
  kernel_sites_.back().fired = &fired_;
  kernel_sites_.back().name = name;
  kernel_names_.push_back(name);
  return &kernel_sites_.back();
}

LinkFaultSite* FaultInjector::register_link(const std::string& name) {
  link_sites_.emplace_back();
  link_sites_.back().fired = &fired_;
  link_names_.push_back(name);
  return &link_sites_.back();
}

void FaultInjector::begin_run() {
  const std::uint64_t run = run_++;
  for (auto& s : stream_sites_) {
    s.flip_at = kFaultNever;
    s.flip_mask = 0;
    s.stall_at = kFaultNever;
    s.stall_attempts = 0;
    s.armed = false;
    s.values = 0;
    s.stalls_left = 0;
  }
  for (auto& k : kernel_sites_) {
    k.throw_at = kFaultNever;
    k.hang_at = kFaultNever;
    k.armed = false;
    k.steps = 0;
    k.hung = false;
  }
  for (auto& l : link_sites_) {
    l.outage_from = kFaultNever;
    l.outage_us = 0;
    l.death_from = kFaultNever;
    l.corrupt_per_million = 0;
    l.armed = false;
    l.frames = 0;
    l.outage_open = false;
    l.outage_fired = false;
    l.death_fired = false;
  }
  crash_ = false;

  auto stream_index = [&](const FaultEvent& e) -> std::size_t {
    if (!e.target.empty()) {
      for (std::size_t i = 0; i < stream_names_.size(); ++i) {
        if (stream_names_[i] == e.target) return i;
      }
      return stream_names_.size();  // unknown name: skip
    }
    return static_cast<std::size_t>(e.target_index) % stream_sites_.size();
  };
  auto kernel_index = [&](const FaultEvent& e) -> std::size_t {
    if (!e.target.empty()) {
      for (std::size_t i = 0; i < kernel_names_.size(); ++i) {
        if (kernel_names_[i] == e.target) return i;
      }
      return kernel_names_.size();
    }
    return static_cast<std::size_t>(e.target_index) % kernel_sites_.size();
  };

  for (const FaultEvent& e : plan_.events) {
    if (!e.matches(replica_, run)) continue;
    switch (e.kind) {
      case FaultKind::kStreamBitFlip: {
        if (stream_sites_.empty()) break;
        const std::size_t i = stream_index(e);
        if (i >= stream_sites_.size()) break;
        StreamFaultSite& s = stream_sites_[i];
        // Earliest trigger wins when several events arm one site.
        if (e.after_values < s.flip_at) {
          s.flip_at = e.after_values;
          s.flip_mask = e.xor_mask;
        }
        s.armed = true;
        break;
      }
      case FaultKind::kStreamStall: {
        if (stream_sites_.empty()) break;
        const std::size_t i = stream_index(e);
        if (i >= stream_sites_.size()) break;
        StreamFaultSite& s = stream_sites_[i];
        if (e.after_values < s.stall_at) {
          s.stall_at = e.after_values;
          s.stall_attempts = e.stall_attempts;
        }
        s.armed = true;
        break;
      }
      case FaultKind::kKernelHang: {
        if (kernel_sites_.empty()) break;
        const std::size_t i = kernel_index(e);
        if (i >= kernel_sites_.size()) break;
        KernelFaultSite& k = kernel_sites_[i];
        if (e.after_steps < k.hang_at) k.hang_at = e.after_steps;
        k.armed = true;
        break;
      }
      case FaultKind::kKernelException: {
        if (kernel_sites_.empty()) break;
        const std::size_t i = kernel_index(e);
        if (i >= kernel_sites_.size()) break;
        KernelFaultSite& k = kernel_sites_[i];
        if (e.after_steps < k.throw_at) k.throw_at = e.after_steps;
        k.armed = true;
        break;
      }
      case FaultKind::kReplicaCrash:
        crash_ = true;
        break;
      case FaultKind::kLinkOutage: {
        if (link_sites_.empty()) break;
        LinkFaultSite& l = link_sites_[static_cast<std::size_t>(e.link) %
                                       link_sites_.size()];
        if (e.after_values < l.outage_from) {
          l.outage_from = e.after_values;
          l.outage_us = e.outage_us;
        }
        l.armed = true;
        break;
      }
      case FaultKind::kLinkFrameCorrupt: {
        if (link_sites_.empty()) break;
        const std::size_t i =
            static_cast<std::size_t>(e.link) % link_sites_.size();
        LinkFaultSite& l = link_sites_[i];
        if (e.corrupt_per_million > l.corrupt_per_million) {
          l.corrupt_per_million = e.corrupt_per_million;
        }
        // Seed the in-transit corruption draw deterministically per
        // (link, run) so soaks replay bit-for-bit.
        l.rng = Rng(0x51ed270b9f8f51edULL * (i + 1) ^ run);
        l.armed = true;
        break;
      }
      case FaultKind::kLinkDeath: {
        if (link_sites_.empty()) break;
        LinkFaultSite& l = link_sites_[static_cast<std::size_t>(e.link) %
                                       link_sites_.size()];
        if (e.after_values < l.death_from) l.death_from = e.after_values;
        l.armed = true;
        break;
      }
      case FaultKind::kLinkDrop:
      case FaultKind::kLinkCorrupt:
        // Timing-model faults; consumed by fault/apply.h, not the engine.
        break;
    }
  }
  if (crash_) fired_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace qnn
