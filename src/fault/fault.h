// Deterministic fault injection for the streaming engine.
//
// The paper's pipeline only works while every kernel keeps streaming: a
// single stalled FIFO or flipped bit on the MaxRing daisy chain (§III-C)
// silently corrupts or wedges the whole chain. This module makes those
// failure modes *first-class, reproducible inputs*: a FaultPlan is a
// seeded schedule of fault events, installed via EngineOptions::faults
// and executed by a per-engine FaultInjector, so every failure mode that
// production would meet as a flaky outage becomes a deterministic unit
// test (same seed => same fault sequence).
//
// Fault taxonomy (see DESIGN.md §7):
//   * kStreamBitFlip   — XOR a mask into the Nth value pushed through one
//                        FIFO (silent data corruption; *undetectable* by
//                        the engine, only a checksum/golden compare sees
//                        it).
//   * kStreamStall     — a FIFO reports "full" for N producer attempts
//                        (backpressure glitch; detectable as latency).
//   * kKernelHang      — a kernel reports kBlocked forever (wedged
//                        datapath; detectable by a watchdog, unwedged by
//                        StreamEngine::cancel()).
//   * kKernelException — a kernel throws mid-run (fail-fast crash; the
//                        ErrorLatch aborts the whole run).
//   * kReplicaCrash    — StreamEngine::run() throws before streaming
//                        anything (board lost; per-run, so a range of
//                        runs models a dead replica).
//   * kLinkDrop /      — MaxRing outage / corruption-retransmit windows,
//     kLinkCorrupt       consumed by sim/cycle_model and partition/ via
//                        fault/apply.h (the timing model side).
//   * kLinkOutage      — live MaxRing link drops every frame for a
//                        wall-clock window (transient outage; healed by
//                        the link's retransmit loop).
//   * kLinkFrameCorrupt— live MaxRing frames corrupted in transit at a
//                        seeded per-million rate (caught by the frame
//                        checksum, healed by retransmission).
//   * kLinkDeath       — live MaxRing link drops every frame from the
//                        Nth transmission onward, permanently (board
//                        lost; the LinkedEngine escalates to a degraded
//                        plan failover).
//
// Targeting is deterministic without name plumbing: the engine registers
// its streams and kernels with the injector in construction order, so an
// event can name its target exactly (`target`) or pick a registration
// ordinal (`target_index`, taken modulo the site count so seeded chaos
// plans never miss). Events filter on the engine's replica identity
// (EngineOptions::fault_replica) and on a [first_run, last_run] window of
// the engine's run counter.
//
// The injection seams themselves live in the dataflow layer: Stream
// consults a StreamFaultSite in try_push_burst(), kernels consult a
// KernelFaultSite in step_checked(), and the engine consults the injector
// for crash-on-run. All sites are re-armed by begin_run() between runs —
// single-threaded, like Stream::reset() — and only the fired() counter is
// shared across threads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace qnn {

/// Sentinel for "no run / no value index": larger than any real counter.
inline constexpr std::uint64_t kFaultNever =
    std::numeric_limits<std::uint64_t>::max();

enum class FaultKind {
  kStreamBitFlip,
  kStreamStall,
  kKernelHang,
  kKernelException,
  kReplicaCrash,
  kLinkDrop,
  kLinkCorrupt,
  kLinkOutage,        // live link: wall-clock outage window
  kLinkFrameCorrupt,  // live link: seeded in-transit frame corruption
  kLinkDeath,         // live link: permanent loss from the Nth frame
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault. Which fields matter depends on `kind`; the
/// FaultPlan builders below fill them consistently.
struct FaultEvent {
  FaultKind kind = FaultKind::kStreamBitFlip;

  /// Exact site name (stream or kernel); empty = use target_index.
  std::string target;
  /// Site ordinal in engine registration order, taken modulo the number
  /// of registered sites of the matching type; ignored when target is set.
  int target_index = 0;

  /// Replica filter: only engines with EngineOptions::fault_replica ==
  /// replica see the event; -1 matches every replica.
  int replica = -1;
  /// Run window (inclusive) of the engine's run counter.
  std::uint64_t first_run = 0;
  std::uint64_t last_run = 0;

  // --- stream faults ------------------------------------------------------
  /// Value index (per run, per stream) the fault triggers at.
  std::uint64_t after_values = 0;
  /// kStreamBitFlip: XOR mask applied to the targeted value.
  std::int32_t xor_mask = 1;
  /// kStreamStall: producer push attempts that report "full".
  std::uint64_t stall_attempts = 4096;

  // --- kernel faults ------------------------------------------------------
  /// Step index (per run, per kernel) the fault triggers at.
  std::uint64_t after_steps = 0;

  // --- MaxRing link faults (fault/apply.h + dataflow/link.h) --------------
  /// Link ordinal in cut order (LinkSim creation order in the sim; the
  /// LinkedEngine's physical link ordinal on the live path).
  int link = 0;
  std::uint64_t down_from_cycle = 0;   // kLinkDrop: outage window start
  std::uint64_t down_cycles = 0;       // kLinkDrop: outage length
  std::uint32_t corrupt_per_million = 0;  // kLinkCorrupt /
                                          // kLinkFrameCorrupt: rate
  /// kLinkOutage: wall-clock outage length. The window opens at the
  /// transmission ordinal `after_values` (live links count frames, not
  /// stream values) and closes after outage_us microseconds; kLinkDeath
  /// reuses `after_values` as the first dropped frame.
  std::int64_t outage_us = 0;

  [[nodiscard]] bool matches(int engine_replica, std::uint64_t run) const {
    return (replica < 0 || replica == engine_replica) && run >= first_run &&
           run <= last_run;
  }
};

/// A deterministic schedule of fault events. Hand-build one with the
/// factory helpers for targeted regression tests, or draw a random plan
/// from a seed with chaos() for soak tests.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }

  // ---- builders (target by name or ordinal via the returned event) -------
  static FaultEvent bit_flip(std::string stream, std::uint64_t run,
                             std::uint64_t value_index,
                             std::int32_t mask = 1);
  static FaultEvent stall(std::string stream, std::uint64_t run,
                          std::uint64_t value_index,
                          std::uint64_t attempts);
  static FaultEvent kernel_hang(std::string kernel, std::uint64_t run,
                                std::uint64_t step = 0);
  static FaultEvent kernel_throw(std::string kernel, std::uint64_t run,
                                 std::uint64_t step = 0);
  static FaultEvent replica_crash(int replica, std::uint64_t first_run,
                                  std::uint64_t last_run);
  static FaultEvent link_drop(int link, std::uint64_t down_from_cycle,
                              std::uint64_t down_cycles);
  static FaultEvent link_corrupt(int link, std::uint32_t per_million);
  static FaultEvent link_outage(int link, std::uint64_t run,
                                std::uint64_t after_frames,
                                std::int64_t outage_us);
  static FaultEvent link_frame_corrupt(int link, std::uint32_t per_million,
                                       std::uint64_t first_run = 0,
                                       std::uint64_t last_run = kFaultNever);
  static FaultEvent link_death(int link, std::uint64_t run,
                               std::uint64_t after_frames,
                               std::uint64_t last_run = kFaultNever);

  FaultPlan& add(FaultEvent e) {
    events.push_back(std::move(e));
    return *this;
  }

  struct ChaosOptions {
    /// Replicas the drawn events may target (uniform).
    int replicas = 1;
    /// Events land in runs [0, runs).
    std::uint64_t runs = 16;
    /// Number of events to draw.
    int events = 4;
    /// Include kStreamBitFlip draws. Off by default so every chaos fault
    /// is *detectable* (hang / throw / crash / stall) and non-faulted
    /// results stay provably bit-exact against a fault-free run.
    bool include_bit_flips = false;
    /// Also draw the live MaxRing link kinds (outage window / seeded frame
    /// corruption / permanent death) against links [0, links). Off by
    /// default: existing soaks run unpartitioned engines with no link
    /// sites, and link faults only make sense on the LinkedEngine path.
    /// All three stay *detectable* (checksums + watchdog), so bit-exact
    /// assertions still hold when this is on.
    bool include_link_faults = false;
    /// Link ordinals the link-fault draws may target (uniform).
    int links = 1;
  };

  /// Seeded random plan over the detectable fault kinds: same seed (and
  /// options) => the identical event list, bit for bit.
  static FaultPlan chaos(std::uint64_t seed, const ChaosOptions& opts);
  static FaultPlan chaos(std::uint64_t seed) { return chaos(seed, {}); }
};

/// Per-stream injection state, armed by FaultInjector::begin_run and
/// consulted by Stream::try_push_burst on the producer thread only.
struct StreamFaultSite {
  // Armed per run (single-threaded, between runs).
  std::uint64_t flip_at = kFaultNever;
  std::int32_t flip_mask = 0;
  std::uint64_t stall_at = kFaultNever;
  std::uint64_t stall_attempts = 0;
  bool armed = false;

  // Live counters (producer thread only during a run).
  std::uint64_t values = 0;
  std::uint64_t stalls_left = 0;

  std::atomic<std::uint64_t>* fired = nullptr;  // injector-wide counter

  /// Producer gate: true = pretend the ring is full for this attempt.
  [[nodiscard]] bool blocked() {
    if (stalls_left > 0) {
      --stalls_left;
      return true;
    }
    if (values >= stall_at) {
      stall_at = kFaultNever;
      stalls_left = stall_attempts;
      fired->fetch_add(1, std::memory_order_relaxed);
      if (stalls_left > 0) {
        --stalls_left;
        return true;
      }
    }
    return false;
  }

  /// Filter one value entering the ring (counts it; may corrupt it).
  [[nodiscard]] std::int32_t filter(std::int32_t v) {
    if (values == flip_at) {
      v ^= flip_mask;
      fired->fetch_add(1, std::memory_order_relaxed);
    }
    ++values;
    return v;
  }
};

/// Per-kernel injection state, armed by FaultInjector::begin_run and
/// consulted by Kernel::step_checked on the stepping thread only.
struct KernelFaultSite {
  std::uint64_t throw_at = kFaultNever;
  std::uint64_t hang_at = kFaultNever;
  bool armed = false;

  std::uint64_t steps = 0;
  bool hung = false;

  std::atomic<std::uint64_t>* fired = nullptr;
  std::string name;  // for the thrown error message

  /// Gate before a kernel step: true = report kBlocked (hang); throws for
  /// an armed exception fault.
  [[nodiscard]] bool check() {
    if (!armed) return false;
    if (hung) return true;
    const std::uint64_t s = steps++;
    if (s >= hang_at) {
      hung = true;
      fired->fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (s >= throw_at) {
      throw_at = kFaultNever;
      fired->fetch_add(1, std::memory_order_relaxed);
      throw Error("injected fault: kernel '" + name + "' exception");
    }
    return false;
  }
};

/// Per-link injection state, armed by FaultInjector::begin_run and
/// consulted by MaxRingLink once per transmission attempt, on the sender
/// thread only (retransmissions count as fresh transmissions, so an
/// outage window keeps eating retries until the wall clock passes it).
struct LinkFaultSite {
  // Armed per run (single-threaded, between runs).
  std::uint64_t outage_from = kFaultNever;  // frame ordinal opening window
  std::int64_t outage_us = 0;               // wall-clock window length
  std::uint64_t death_from = kFaultNever;   // frame ordinal; sticky forever
  std::uint32_t corrupt_per_million = 0;
  bool armed = false;

  // Live state (sender thread only during a run).
  std::uint64_t frames = 0;  // transmissions seen, retransmits included
  bool outage_open = false;
  bool outage_fired = false;
  bool death_fired = false;
  std::chrono::steady_clock::time_point outage_until{};
  Rng rng{0};

  std::atomic<std::uint64_t>* fired = nullptr;  // injector-wide counter

  /// What happens to the frame this transmission attempt carries.
  enum class Fate { kDeliver, kCorrupt, kDropOutage, kDropDead };

  [[nodiscard]] Fate filter(std::chrono::steady_clock::time_point now) {
    if (!armed) return Fate::kDeliver;
    const std::uint64_t f = frames++;
    if (f >= death_from) {
      if (!death_fired) {
        death_fired = true;
        note_fired();
      }
      return Fate::kDropDead;
    }
    if (f >= outage_from && !outage_fired) {
      outage_fired = true;
      outage_open = true;
      outage_until = now + std::chrono::microseconds(outage_us);
      note_fired();
    }
    if (outage_open) {
      if (now < outage_until) return Fate::kDropOutage;
      outage_open = false;
    }
    if (corrupt_per_million > 0 &&
        rng.next_below(1'000'000) < corrupt_per_million) {
      note_fired();
      return Fate::kCorrupt;
    }
    return Fate::kDeliver;
  }

 private:
  /// Standalone sites (link unit tests) have no injector-wide counter.
  void note_fired() {
    if (fired != nullptr) fired->fetch_add(1, std::memory_order_relaxed);
  }
};

/// Owns the fault sites of one engine and arms them per run from the
/// plan. Construction and begin_run() are single-threaded (the engine's
/// caller thread); during a run only the sites themselves are touched.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int replica);

  /// Register sites in deterministic engine-construction order. The
  /// returned pointers stay valid for the injector's lifetime.
  StreamFaultSite* register_stream(const std::string& name);
  KernelFaultSite* register_kernel(const std::string& name);
  LinkFaultSite* register_link(const std::string& name);

  /// Arm every site for the next run (advances the run counter).
  void begin_run();

  /// True when a kReplicaCrash event matched the run begin_run just armed.
  [[nodiscard]] bool crash_now() const { return crash_; }

  /// Runs begun so far (the run index begin_run armed, plus one).
  [[nodiscard]] std::uint64_t runs_begun() const { return run_; }

  /// Total fault events that actually fired (across all runs).
  [[nodiscard]] std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  int replica_;
  std::uint64_t run_ = 0;
  bool crash_ = false;
  std::atomic<std::uint64_t> fired_{0};
  // deques: stable addresses across registration.
  std::deque<StreamFaultSite> stream_sites_;
  std::deque<KernelFaultSite> kernel_sites_;
  std::deque<LinkFaultSite> link_sites_;
  std::vector<std::string> stream_names_;
  std::vector<std::string> kernel_names_;
  std::vector<std::string> link_names_;
};

}  // namespace qnn
