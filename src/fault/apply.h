// Adapters from a FaultPlan to the timing-model layers.
//
// Link faults (kLinkDrop / kLinkCorrupt) do not execute in the dataflow
// engine — they change MaxRing behaviour in the cycle simulator and link
// capacity in the partitioner. These helpers translate the link events of
// a plan into the knobs those layers expose, so one plan drives both the
// functional run (engine) and the timing ablation (sim + partition).
//
// The live link kinds (kLinkOutage / kLinkFrameCorrupt / kLinkDeath)
// execute for real inside MaxRingLink (dataflow/link.h), but they map
// into the same planner view here: that is how the LinkedEngine's
// failover recompiles a *degraded* plan — it derates the dead link to
// health 0 and lets check_partition refuse any cut that still rides it.
#pragma once

#include "fault/fault.h"
#include "partition/partitioner.h"
#include "sim/cycle_model.h"

namespace qnn {

/// Append the plan's kLinkDrop / kLinkCorrupt events to
/// SimConfig::link_faults (the cycle model replays outage windows and
/// corruption-retransmits per link).
void apply_link_faults(const FaultPlan& plan, SimConfig& config,
                       std::uint64_t seed = 0);

/// Derate PartitionConfig::link_health from the plan: a corrupting link
/// loses its retransmitted fraction of capacity; a dropped link (any
/// outage) is marked dead (health 0) so the planner must route around it
/// or report the cut infeasible.
void apply_link_faults(const FaultPlan& plan, PartitionConfig& config);

}  // namespace qnn
