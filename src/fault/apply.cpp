#include "fault/apply.h"

#include <algorithm>
#include <cstddef>

namespace qnn {

void apply_link_faults(const FaultPlan& plan, SimConfig& config,
                       std::uint64_t seed) {
  for (const FaultEvent& e : plan.events) {
    SimConfig::LinkFault f;
    f.link = e.link;
    switch (e.kind) {
      case FaultKind::kLinkDrop:
        f.down_from_cycle = e.down_from_cycle;
        f.down_cycles = e.down_cycles;
        f.corrupt_per_million = 0;
        break;
      case FaultKind::kLinkCorrupt:
      case FaultKind::kLinkFrameCorrupt:
        f.down_from_cycle = kFaultNever;
        f.down_cycles = 0;
        f.corrupt_per_million = e.corrupt_per_million;
        break;
      case FaultKind::kLinkDeath:
        // Permanent loss: an outage window that never closes.
        f.down_from_cycle = e.down_from_cycle;
        f.down_cycles = kFaultNever;
        f.corrupt_per_million = 0;
        break;
      default:
        continue;  // not a link fault (kLinkOutage is wall-clock, not
                   // cycle-addressable; the planner adapter handles it)
    }
    f.seed = seed ^ (0x51ed270b9f8f51edULL *
                     (static_cast<std::uint64_t>(e.link) + 1));
    config.link_faults.push_back(f);
  }
}

void apply_link_faults(const FaultPlan& plan, PartitionConfig& config) {
  for (const FaultEvent& e : plan.events) {
    if (e.kind != FaultKind::kLinkDrop && e.kind != FaultKind::kLinkCorrupt &&
        e.kind != FaultKind::kLinkOutage &&
        e.kind != FaultKind::kLinkFrameCorrupt &&
        e.kind != FaultKind::kLinkDeath) {
      continue;
    }
    const auto link = static_cast<std::size_t>(std::max(e.link, 0));
    if (config.link_health.size() <= link) {
      config.link_health.resize(link + 1, 1.0);
    }
    double health = config.link_health[link];
    if ((e.kind == FaultKind::kLinkDrop && e.down_cycles > 0) ||
        (e.kind == FaultKind::kLinkOutage && e.outage_us > 0) ||
        e.kind == FaultKind::kLinkDeath) {
      health = 0.0;  // planner view: an outage-prone or dead link is not
                     // usable
    } else if (e.kind == FaultKind::kLinkCorrupt ||
               e.kind == FaultKind::kLinkFrameCorrupt) {
      // Each corrupted word is retransmitted once: capacity scales by
      // 1 / (1 + p) for corruption probability p.
      const double p = static_cast<double>(e.corrupt_per_million) * 1e-6;
      health = std::min(health, 1.0 / (1.0 + p));
    }
    config.link_health[link] = health;
  }
}

}  // namespace qnn
