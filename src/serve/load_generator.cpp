#include "serve/load_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/rng.h"
#include "io/table.h"

namespace qnn {
namespace {

using Clock = std::chrono::steady_clock;

/// Percentile of a sorted latency vector (nearest-rank); 0 when empty.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

void tally(LoadResult& result, ServerStatus status) {
  switch (status) {
    case ServerStatus::kOk:
      ++result.ok;
      break;
    case ServerStatus::kOverloaded:
      ++result.rejected_overload;
      break;
    case ServerStatus::kDeadlineExceeded:
      ++result.rejected_deadline;
      break;
    case ServerStatus::kShutdown:
      ++result.rejected_shutdown;
      break;
    case ServerStatus::kError:
      ++result.errors;
      break;
  }
}

void finalize(LoadResult& result, std::vector<double>& latencies_us,
              double wall_seconds) {
  result.wall_seconds = wall_seconds;
  if (wall_seconds > 0.0) {
    result.offered_qps = static_cast<double>(result.offered) / wall_seconds;
    result.achieved_qps = static_cast<double>(result.ok) / wall_seconds;
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = percentile_sorted(latencies_us, 50);
  result.p95_us = percentile_sorted(latencies_us, 95);
  result.p99_us = percentile_sorted(latencies_us, 99);
}

}  // namespace

std::string LoadResult::str() const {
  std::ostringstream os;
  os << offered << " offered @ " << Table::num(offered_qps, 1) << " qps: "
     << ok << " ok (" << Table::num(achieved_qps, 1) << " qps), "
     << rejected_overload << " overloaded, " << rejected_deadline
     << " deadline-exceeded, " << rejected_shutdown << " shutdown, " << errors
     << " errors; e2e p50/p95/p99 = " << Table::num(p50_us, 0) << "/"
     << Table::num(p95_us, 0) << "/" << Table::num(p99_us, 0) << " us";
  return os.str();
}

std::vector<double> poisson_arrivals_us(double rate_qps, int n,
                                        std::uint64_t seed) {
  QNN_CHECK(rate_qps > 0.0, "arrival rate must be positive");
  QNN_CHECK(n >= 0, "arrival count must be non-negative");
  Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  const double mean_gap_us = 1e6 / rate_qps;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    // Inverse-CDF exponential gap; nudge u away from 0 to avoid log(0).
    const double u = rng.next_double() + 1e-12;
    t += -mean_gap_us * std::log(u);
    arrivals.push_back(t);
  }
  return arrivals;
}

LoadGenerator::LoadGenerator(DfeServer& server, std::vector<IntTensor> images)
    : server_(server), images_(std::move(images)) {
  QNN_CHECK(!images_.empty(), "load generator needs at least one image");
}

LoadResult LoadGenerator::closed_loop(int clients, int requests_per_client,
                                      std::int64_t deadline_us) {
  QNN_CHECK(clients >= 1, "closed loop needs at least one client");
  QNN_CHECK(requests_per_client >= 1, "requests_per_client must be positive");
  LoadResult result;
  result.offered = static_cast<std::uint64_t>(clients) *
                   static_cast<std::uint64_t>(requests_per_client);
  std::vector<double> latencies_us;
  std::mutex merge_mu;

  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadResult local;
      std::vector<double> local_lat;
      local_lat.reserve(static_cast<std::size_t>(requests_per_client));
      for (int r = 0; r < requests_per_client; ++r) {
        const IntTensor& img =
            images_[static_cast<std::size_t>(c * requests_per_client + r) %
                    images_.size()];
        const InferenceResult res = server_.submit(img, deadline_us);
        tally(local, res.status);
        if (res.ok()) local_lat.push_back(res.total_us);
      }
      const std::lock_guard<std::mutex> lock(merge_mu);
      result.ok += local.ok;
      result.rejected_overload += local.rejected_overload;
      result.rejected_deadline += local.rejected_deadline;
      result.rejected_shutdown += local.rejected_shutdown;
      result.errors += local.errors;
      latencies_us.insert(latencies_us.end(), local_lat.begin(),
                          local_lat.end());
    });
  }
  for (std::thread& t : threads) t.join();
  finalize(result, latencies_us,
           std::chrono::duration<double>(Clock::now() - t0).count());
  return result;
}

LoadResult LoadGenerator::open_loop(double rate_qps, int total_requests,
                                    std::uint64_t seed,
                                    std::int64_t deadline_us) {
  const std::vector<double> arrivals =
      poisson_arrivals_us(rate_qps, total_requests, seed);
  LoadResult result;
  result.offered = static_cast<std::uint64_t>(total_requests);
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(arrivals.size());

  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Clock::time_point due =
        t0 + std::chrono::microseconds(
                 static_cast<std::int64_t>(arrivals[i]));
    // Open loop: arrivals never wait for completions; sleep only until the
    // scheduled arrival, then fire and move on.
    std::this_thread::sleep_until(due);
    futures.push_back(server_.submit_async(images_[i % images_.size()],
                                           deadline_us));
  }
  std::vector<double> latencies_us;
  latencies_us.reserve(futures.size());
  for (std::future<InferenceResult>& fut : futures) {
    const InferenceResult res = fut.get();
    tally(result, res.status);
    if (res.ok()) latencies_us.push_back(res.total_us);
  }
  finalize(result, latencies_us,
           std::chrono::duration<double>(Clock::now() - t0).count());
  return result;
}

}  // namespace qnn
