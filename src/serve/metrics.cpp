#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.h"
#include "io/table.h"

namespace qnn {

const char* to_string(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kDegraded:
      return "degraded";
    case ReplicaHealth::kQuarantined:
      return "quarantined";
    case ReplicaHealth::kProbation:
      return "probation";
  }
  return "unknown";
}

double LatencyHistogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested percentile, 1-based; ceil so p=0 maps to rank 1.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += counts_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (cumulative >= target) {
      // Upper bound of bucket b: 1us for bucket 0, else 2^b us.
      return b == 0 ? 1.0 : std::ldexp(1.0, b);
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "p50/p95/p99 = " << Table::num(percentile(50), 0) << "/"
     << Table::num(percentile(95), 0) << "/" << Table::num(percentile(99), 0)
     << " us (" << count() << " samples, mean " << Table::num(mean_us(), 1)
     << " us)";
  return os.str();
}

void ServerMetrics::init_replicas(int n) {
  QNN_CHECK(replicas_.empty(), "init_replicas must run once");
  replicas_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<ReplicaMetrics>());
  }
}

void ServerMetrics::set_replica_backend(int replica, std::string backend,
                                        std::string tier) {
  ReplicaMetrics& r = *replicas_.at(static_cast<std::size_t>(replica));
  r.backend = std::move(backend);
  r.tier = std::move(tier);
}

void ServerMetrics::set_replica_plan(int replica, std::string plan) {
  replicas_.at(static_cast<std::size_t>(replica))->plan = std::move(plan);
}

void ServerMetrics::set_replica_health(int replica, ReplicaHealth health) {
  replicas_.at(static_cast<std::size_t>(replica))
      ->health.store(static_cast<int>(health), std::memory_order_relaxed);
}

ReplicaHealth ServerMetrics::replica_health(int replica) const {
  return static_cast<ReplicaHealth>(
      replicas_.at(static_cast<std::size_t>(replica))
          ->health.load(std::memory_order_relaxed));
}

void ServerMetrics::on_replica_run(int replica, bool ok) {
  ReplicaMetrics& r = *replicas_.at(static_cast<std::size_t>(replica));
  (ok ? r.runs_ok : r.runs_failed).fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::on_replica_cancel(int replica) {
  replicas_.at(static_cast<std::size_t>(replica))
      ->cancels.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::on_replica_probe(int replica) {
  replicas_.at(static_cast<std::size_t>(replica))
      ->probes.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::on_replica_restart(int replica) {
  replica_restarts_.fetch_add(1, std::memory_order_relaxed);
  replicas_.at(static_cast<std::size_t>(replica))
      ->restarts.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::log_event(const std::string& what) {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - epoch_)
                        .count();
  std::string line = "+";
  line += Table::num(ms, 1);
  line += "ms ";
  line += what;
  const std::lock_guard<std::mutex> lock(events_mu_);
  if (events_.size() < kMaxEvents) {
    events_.push_back(std::move(line));
    return;
  }
  // Ring: overwrite the oldest line so a long soak keeps its most recent
  // healing timeline instead of freezing the first five minutes of it.
  events_[events_head_] = std::move(line);
  events_head_ = (events_head_ + 1) % kMaxEvents;
  ++events_dropped_;
}

std::vector<std::string> ServerMetrics::events() const {
  const std::lock_guard<std::mutex> lock(events_mu_);
  std::vector<std::string> out;
  out.reserve(events_.size() + 1);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(events_head_ + i) % events_.size()]);
  }
  if (events_dropped_ > 0) {
    out.push_back("(+" + std::to_string(events_dropped_) +
                  " older events dropped)");
  }
  return out;
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.values_streamed = values_streamed_.load(std::memory_order_relaxed);
  s.stream_transactions =
      stream_transactions_.load(std::memory_order_relaxed);
  s.push_stalls = push_stalls_.load(std::memory_order_relaxed);
  s.pop_stalls = pop_stalls_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.watchdog_budget_cancels =
      watchdog_budget_cancels_.load(std::memory_order_relaxed);
  s.watchdog_deadline_cancels =
      watchdog_deadline_cancels_.load(std::memory_order_relaxed);
  s.isolation_reruns = isolation_reruns_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  s.readmissions = readmissions_.load(std::memory_order_relaxed);
  s.brownout_entries = brownout_entries_.load(std::memory_order_relaxed);
  s.brownout_sheds = brownout_sheds_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.replica_restarts = replica_restarts_.load(std::memory_order_relaxed);
  s.shadow_runs = shadow_runs_.load(std::memory_order_relaxed);
  s.shadow_mismatches = shadow_mismatches_.load(std::memory_order_relaxed);
  s.shadow_dropped = shadow_dropped_.load(std::memory_order_relaxed);
  s.link_frames = link_frames_.load(std::memory_order_relaxed);
  s.link_retransmits = link_retransmits_.load(std::memory_order_relaxed);
  s.plan_failovers = plan_failovers_.load(std::memory_order_relaxed);
  s.links = std::min(links_seen_.load(std::memory_order_relaxed), kMaxLinks);
  for (int i = 0; i < s.links; ++i) {
    s.link_health[static_cast<std::size_t>(i)] =
        link_health_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
  }
  {
    const std::lock_guard<std::mutex> lock(events_mu_);
    s.events_dropped = events_dropped_;
  }
  s.brownout_active = brownout_active_.load(std::memory_order_relaxed);
  s.replicas.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    ReplicaStatus rs;
    rs.health = static_cast<ReplicaHealth>(
        r->health.load(std::memory_order_relaxed));
    rs.runs_ok = r->runs_ok.load(std::memory_order_relaxed);
    rs.runs_failed = r->runs_failed.load(std::memory_order_relaxed);
    rs.cancels = r->cancels.load(std::memory_order_relaxed);
    rs.probes = r->probes.load(std::memory_order_relaxed);
    rs.restarts = r->restarts.load(std::memory_order_relaxed);
    rs.backend = r->backend;
    rs.tier = r->tier;
    rs.plan = r->plan;
    s.replicas.push_back(rs);
  }
  return s;
}

std::string ServerMetrics::report() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  os << "serving metrics\n";
  os << "  requests: " << s.submitted << " submitted, " << s.completed
     << " completed, " << s.errors << " errored\n";
  os << "  rejected: " << s.rejected_overload << " overloaded, "
     << s.rejected_deadline << " deadline-exceeded, " << s.rejected_shutdown
     << " shutdown\n";
  os << "  queue:    depth " << s.queue_depth << " (max " << s.max_queue_depth
     << ")\n";
  os << "  batches:  " << s.batches << " formed, mean size "
     << Table::num(s.mean_batch_size(), 2) << "\n";
  os << "  latency queue-wait " << queue_wait_.summary() << "\n";
  os << "  latency batch-form " << batch_form_.summary() << "\n";
  os << "  latency end-to-end " << end_to_end_.summary() << "\n";
  os << "  pipeline: " << s.values_streamed << " values streamed, "
     << s.push_stalls << " push stalls, " << s.pop_stalls << " pop stalls\n";
  os << "  bursts:   " << s.stream_transactions << " transactions, mean "
     << Table::num(s.mean_burst_occupancy(), 1) << " values/transaction\n";
  os << "  healing:  " << s.retries << " retries, " << s.isolation_reruns
     << " isolation re-runs, "
     << (s.watchdog_budget_cancels + s.watchdog_deadline_cancels)
     << " watchdog cancels (" << s.watchdog_budget_cancels << " budget, "
     << s.watchdog_deadline_cancels << " deadline)\n";
  os << "  health:   " << s.quarantines << " quarantines, " << s.probes
     << " probes (" << s.probe_failures << " failed), " << s.readmissions
     << " readmissions\n";
  os << "  brownout: " << (s.brownout_active ? "ACTIVE" : "inactive") << ", "
     << s.brownout_entries << " entries, " << s.brownout_sheds
     << " requests shed\n";
  os << "  faults:   " << s.faults_injected << " injected\n";
  os << "  restarts: " << s.replica_restarts << " replica recompiles\n";
  if (s.shadow_runs > 0 || s.shadow_dropped > 0) {
    os << "  shadow:   " << s.shadow_runs << " mirrored, "
       << s.shadow_mismatches << " mismatches, " << s.shadow_dropped
       << " dropped\n";
  }
  if (s.links > 0) {
    os << "  links:    " << s.links << " physical, " << s.link_frames
       << " frames, " << s.link_retransmits << " retransmits, "
       << s.plan_failovers << " plan failovers; health";
    for (int i = 0; i < s.links; ++i) {
      os << (i == 0 ? " " : "/")
         << Table::num(s.link_health[static_cast<std::size_t>(i)], 2);
    }
    os << "\n";
  }
  if (s.events_dropped > 0) {
    os << "  timeline: " << s.events_dropped
       << " older events dropped by the ring\n";
  }
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    const ReplicaStatus& r = s.replicas[i];
    os << "  replica " << i;
    if (!r.backend.empty()) {
      os << " [" << r.backend << "/" << r.tier << "]";
    }
    if (!r.plan.empty()) {
      os << " plan=" << r.plan;
    }
    os << ": " << to_string(r.health) << " (" << r.runs_ok << " runs ok, "
       << r.runs_failed << " failed, " << r.cancels << " cancels, "
       << r.probes << " probes";
    if (r.restarts > 0) os << ", " << r.restarts << " restarts";
    os << ")\n";
  }
  return os.str();
}

}  // namespace qnn
