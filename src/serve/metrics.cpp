#include "serve/metrics.h"

#include <cmath>
#include <sstream>

#include "io/table.h"

namespace qnn {

double LatencyHistogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested percentile, 1-based; ceil so p=0 maps to rank 1.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += counts_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (cumulative >= target) {
      // Upper bound of bucket b: 1us for bucket 0, else 2^b us.
      return b == 0 ? 1.0 : std::ldexp(1.0, b);
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "p50/p95/p99 = " << Table::num(percentile(50), 0) << "/"
     << Table::num(percentile(95), 0) << "/" << Table::num(percentile(99), 0)
     << " us (" << count() << " samples, mean " << Table::num(mean_us(), 1)
     << " us)";
  return os.str();
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.values_streamed = values_streamed_.load(std::memory_order_relaxed);
  s.stream_transactions =
      stream_transactions_.load(std::memory_order_relaxed);
  s.push_stalls = push_stalls_.load(std::memory_order_relaxed);
  s.pop_stalls = pop_stalls_.load(std::memory_order_relaxed);
  return s;
}

std::string ServerMetrics::report() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  os << "serving metrics\n";
  os << "  requests: " << s.submitted << " submitted, " << s.completed
     << " completed, " << s.errors << " errored\n";
  os << "  rejected: " << s.rejected_overload << " overloaded, "
     << s.rejected_deadline << " deadline-exceeded, " << s.rejected_shutdown
     << " shutdown\n";
  os << "  queue:    depth " << s.queue_depth << " (max " << s.max_queue_depth
     << ")\n";
  os << "  batches:  " << s.batches << " formed, mean size "
     << Table::num(s.mean_batch_size(), 2) << "\n";
  os << "  latency queue-wait " << queue_wait_.summary() << "\n";
  os << "  latency batch-form " << batch_form_.summary() << "\n";
  os << "  latency end-to-end " << end_to_end_.summary() << "\n";
  os << "  pipeline: " << s.values_streamed << " values streamed, "
     << s.push_stalls << " push stalls, " << s.pop_stalls << " pop stalls\n";
  os << "  bursts:   " << s.stream_transactions << " transactions, mean "
     << Table::num(s.mean_burst_occupancy(), 1) << " values/transaction\n";
  return os.str();
}

}  // namespace qnn
