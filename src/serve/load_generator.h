// Workload drivers for DfeServer: closed-loop and open-loop load.
//
//  * Closed loop: N client threads, each issuing back-to-back synchronous
//    requests — classic saturation load, offered rate adapts to service
//    rate (measures capacity).
//  * Open loop: requests arrive on a Poisson process at a fixed offered
//    rate regardless of completions (measures behavior under a traffic
//    level, including overload). The arrival schedule is generated from a
//    seeded core/rng.h stream, so a (rate, n, seed) triple always yields
//    the identical schedule — experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.h"

namespace qnn {

/// Client-observed outcome of one load run.
struct LoadResult {
  std::uint64_t offered = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t errors = 0;
  double wall_seconds = 0.0;
  double offered_qps = 0.0;   // offered / wall
  double achieved_qps = 0.0;  // ok / wall
  // Client-observed end-to-end latency of successful requests (us).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] std::string str() const;
};

/// Cumulative Poisson arrival offsets in microseconds: n exponential
/// inter-arrival gaps at `rate_qps`, from a seeded deterministic Rng.
[[nodiscard]] std::vector<double> poisson_arrivals_us(double rate_qps, int n,
                                                      std::uint64_t seed);

class LoadGenerator {
 public:
  /// `images` are cycled round-robin across requests; must be non-empty
  /// and shaped like the server's network input.
  LoadGenerator(DfeServer& server, std::vector<IntTensor> images);

  /// `clients` threads each issue `requests_per_client` synchronous
  /// submissions back-to-back. deadline_us as in DfeServer::submit.
  [[nodiscard]] LoadResult closed_loop(int clients, int requests_per_client,
                                       std::int64_t deadline_us = -1);

  /// Submit `total_requests` asynchronously on a Poisson schedule at
  /// `rate_qps`, then wait for every future. Deterministic under `seed`.
  [[nodiscard]] LoadResult open_loop(double rate_qps, int total_requests,
                                     std::uint64_t seed,
                                     std::int64_t deadline_us = -1);

 private:
  DfeServer& server_;
  std::vector<IntTensor> images_;
};

}  // namespace qnn
