// Lock-cheap serving metrics: counters, a queue-depth gauge, and fixed
// power-of-two-bucket latency histograms.
//
// Every hot-path update is a single relaxed atomic increment — no locks,
// no allocation — so instrumenting the admission queue and the batching
// workers costs nanoseconds against inference runs that take milliseconds.
// Readers (metrics_report(), tests, the load generator) take a snapshot of
// the relaxed counters; values observed mid-run are approximate by design
// and exact once the server has been stopped.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qnn {

/// Health state of one replica in the self-healing state machine (see
/// DESIGN.md §7): healthy -> degraded on a failed run -> quarantined after
/// a failure streak; a quarantined replica serves synthetic probes and is
/// readmitted (probation -> healthy) after K consecutive clean probes.
enum class ReplicaHealth {
  kHealthy,
  kDegraded,
  kQuarantined,
  kProbation,
};

[[nodiscard]] const char* to_string(ReplicaHealth health);

/// Event-log tag of a watchdog-triggered backend recompile of a replica.
inline constexpr const char* kReplicaRestarted = "replica-restarted";
/// Event-log tag of a cold start that loaded a persisted CompiledPlan from
/// the plan cache (plan/cache.h) instead of re-deriving the default.
inline constexpr const char* kPlanCacheHit = "plan-cache-hit";
/// Event-log tag of a primary replica quarantined because shadow
/// comparison pinned repeated bit-exactness mismatches on it
/// (ServerConfig::shadow_mismatch_after).
inline constexpr const char* kShadowQuarantine = "shadow-quarantine";
/// Event-log tag of a degraded MaxRing link observed on a replica's run
/// (retransmissions, or a link reporting health < 1).
inline constexpr const char* kLinkDegraded = "link-degraded";
/// Event-log tag of a LinkedEngine recompiling a degraded plan after a
/// permanent link death (dataflow/linked_engine.h failover ladder).
inline constexpr const char* kPlanFailover = "plan-failover";

/// Point-in-time health row of one replica.
struct ReplicaStatus {
  ReplicaHealth health = ReplicaHealth::kHealthy;
  std::uint64_t runs_ok = 0;
  std::uint64_t runs_failed = 0;
  std::uint64_t cancels = 0;   // watchdog-initiated session cancels
  std::uint64_t probes = 0;    // probe runs while quarantined/probation
  std::uint64_t restarts = 0;  // backend recompiles after failed probes
  std::string backend;         // registered backend that compiled it
  std::string tier;            // replica tier ("fast" / "shadow" / "slow")
  std::string plan;            // fingerprint of the CompiledPlan it runs
                               // ("" = default, engine-derived)
};

/// Fixed-bucket latency histogram over microseconds. Bucket 0 holds
/// sub-microsecond samples; bucket i (i >= 1) holds [2^(i-1), 2^i) us, so
/// 40 buckets cover ~6 days. Percentile estimates return the upper bound
/// of the bucket containing the requested rank (conservative: the true
/// percentile is never above the reported value's bucket ceiling).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void record(double us) {
    counts_[static_cast<std::size_t>(bucket_of(us))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(static_cast<std::uint64_t>(us < 0.0 ? 0.0 : us),
                      std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double mean_us() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        sum_us_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Latency (us) at percentile p in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// "p50/p95/p99 = a/b/c us (n samples, mean m us)" one-liner.
  [[nodiscard]] std::string summary() const;

 private:
  static int bucket_of(double us) {
    if (us < 1.0) return 0;
    const auto v = static_cast<std::uint64_t>(us);
    int b = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1) ++b;  // bit width
    return b < kBuckets ? b : kBuckets - 1;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Point-in-time view of a ServerMetrics (all counts relaxed-read).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  // completed + errored via a batch
  std::uint64_t queue_depth = 0;
  std::uint64_t max_queue_depth = 0;
  // Aggregated StreamEngine::RunStats across every infer_batch call.
  std::uint64_t values_streamed = 0;
  std::uint64_t stream_transactions = 0;
  std::uint64_t push_stalls = 0;
  std::uint64_t pop_stalls = 0;
  // Self-healing counters (fault masking; see server.h).
  std::uint64_t retries = 0;            // requests requeued after a failure
  std::uint64_t watchdog_budget_cancels = 0;
  std::uint64_t watchdog_deadline_cancels = 0;
  std::uint64_t isolation_reruns = 0;   // requests re-run solo after a
                                        // batch-wide failure
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t brownout_entries = 0;
  std::uint64_t brownout_sheds = 0;     // over-deadline requests shed early
  std::uint64_t faults_injected = 0;    // from EngineOptions::faults plans
  std::uint64_t replica_restarts = 0;   // backend recompiles (watchdog)
  // Shadow serving (mirrored traffic; see ServerConfig::shadow_fraction).
  std::uint64_t shadow_runs = 0;
  std::uint64_t shadow_mismatches = 0;  // shadow result != primary result
  std::uint64_t shadow_dropped = 0;     // mirror queue full
  // Live MaxRing link traffic (partitioned LinkedEngine replicas only).
  std::uint64_t link_frames = 0;
  std::uint64_t link_retransmits = 0;
  std::uint64_t plan_failovers = 0;  // degraded-plan recompiles
  std::uint64_t events_dropped = 0;  // timeline ring overwrote this many
  int links = 0;  // physical links on the widest replica seen (0 = none)
  std::array<double, 8> link_health{};  // last reported health per link
  bool brownout_active = false;
  std::vector<ReplicaStatus> replicas;

  [[nodiscard]] double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
  /// Mean values moved per FIFO ring transaction across the pipelines —
  /// how well the burst transport amortizes its synchronization (1.0 =
  /// scalar transfers; EngineOptions::burst is the upper bound).
  [[nodiscard]] double mean_burst_occupancy() const {
    return stream_transactions == 0
               ? 0.0
               : static_cast<double>(values_streamed) /
                     static_cast<double>(stream_transactions);
  }
  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_overload + rejected_deadline + rejected_shutdown;
  }
};

/// All serving-side instrumentation for one DfeServer.
class ServerMetrics {
 public:
  // -- hot-path updates (relaxed atomics) ---------------------------------
  void on_submit() { inc(submitted_); }
  void on_reject_overload() { inc(rejected_overload_); }
  void on_reject_deadline() { inc(rejected_deadline_); }
  void on_reject_shutdown() { inc(rejected_shutdown_); }
  void on_error() { inc(errors_); }
  void on_complete() { inc(completed_); }
  void on_batch(std::uint64_t size) {
    inc(batches_);
    batched_requests_.fetch_add(size, std::memory_order_relaxed);
  }
  void on_engine_stats(std::uint64_t values, std::uint64_t transactions,
                       std::uint64_t pushes, std::uint64_t pops) {
    values_streamed_.fetch_add(values, std::memory_order_relaxed);
    stream_transactions_.fetch_add(transactions, std::memory_order_relaxed);
    push_stalls_.fetch_add(pushes, std::memory_order_relaxed);
    pop_stalls_.fetch_add(pops, std::memory_order_relaxed);
  }
  void set_queue_depth(std::uint64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
    std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  // -- self-healing updates ------------------------------------------------
  void on_retry() { inc(retries_); }
  void on_watchdog_cancel(bool deadline) {
    inc(deadline ? watchdog_deadline_cancels_ : watchdog_budget_cancels_);
  }
  void on_isolation(std::uint64_t requests) {
    isolation_reruns_.fetch_add(requests, std::memory_order_relaxed);
  }
  void on_quarantine() { inc(quarantines_); }
  void on_probe(bool ok) {
    inc(probes_);
    if (!ok) inc(probe_failures_);
  }
  void on_readmit() { inc(readmissions_); }
  void set_brownout(bool active) {
    if (active && !brownout_active_.exchange(true,
                                             std::memory_order_relaxed)) {
      inc(brownout_entries_);
    } else if (!active) {
      brownout_active_.store(false, std::memory_order_relaxed);
    }
  }
  void on_brownout_shed() { inc(brownout_sheds_); }
  void on_faults(std::uint64_t n) {
    faults_injected_.fetch_add(n, std::memory_order_relaxed);
  }
  void on_shadow(bool match) {
    inc(shadow_runs_);
    if (!match) inc(shadow_mismatches_);
  }
  void on_shadow_drop() { inc(shadow_dropped_); }
  /// Aggregate RunStats link counters from one infer_batch on a
  /// partitioned (LinkedEngine) replica.
  void on_link(std::uint64_t frames, std::uint64_t retransmits,
               std::uint64_t failovers) {
    link_frames_.fetch_add(frames, std::memory_order_relaxed);
    link_retransmits_.fetch_add(retransmits, std::memory_order_relaxed);
    plan_failovers_.fetch_add(failovers, std::memory_order_relaxed);
  }
  /// Publish the last observed health of one physical link (0.0 = dead,
  /// 1.0 = clean). Links beyond kMaxLinks are counted but not tracked.
  void set_link_health(int link, double health) {
    if (link < 0) return;
    int seen = links_seen_.load(std::memory_order_relaxed);
    while (link + 1 > seen && !links_seen_.compare_exchange_weak(
                                  seen, link + 1, std::memory_order_relaxed)) {
    }
    if (link < kMaxLinks) {
      link_health_[static_cast<std::size_t>(link)].store(
          health, std::memory_order_relaxed);
    }
  }

  // -- per-replica health table --------------------------------------------

  /// Size the replica table; call once before the workers start.
  void init_replicas(int n);
  /// Tag a replica with the backend that compiled it. Call before the
  /// workers start (the strings are read without synchronization after).
  void set_replica_backend(int replica, std::string backend,
                           std::string tier);
  /// Record the CompiledPlan fingerprint a replica runs. Call before the
  /// workers start (same publication rule as set_replica_backend).
  void set_replica_plan(int replica, std::string plan);
  void set_replica_health(int replica, ReplicaHealth health);
  [[nodiscard]] ReplicaHealth replica_health(int replica) const;
  void on_replica_run(int replica, bool ok);
  void on_replica_cancel(int replica);
  void on_replica_probe(int replica);
  void on_replica_restart(int replica);

  // -- healing event log ---------------------------------------------------

  /// Append a timestamped line to the bounded healing timeline (the chaos
  /// example prints it). Cheap but not free: only healing transitions log.
  /// The timeline is a fixed-capacity ring that keeps the NEWEST
  /// kMaxEvents lines — a long soak overwrites its oldest entries rather
  /// than going silent, and the overwrite count is surfaced in
  /// MetricsSnapshot::events_dropped.
  void log_event(const std::string& what);
  /// Snapshot of the timeline ("+123.4ms quarantine replica 2", ...),
  /// oldest surviving entry first; a trailing "(... events dropped)" line
  /// reports ring overwrites.
  [[nodiscard]] std::vector<std::string> events() const;

  LatencyHistogram& queue_wait() { return queue_wait_; }
  LatencyHistogram& batch_form() { return batch_form_; }
  LatencyHistogram& end_to_end() { return end_to_end_; }
  [[nodiscard]] const LatencyHistogram& queue_wait() const {
    return queue_wait_;
  }
  [[nodiscard]] const LatencyHistogram& batch_form() const {
    return batch_form_;
  }
  [[nodiscard]] const LatencyHistogram& end_to_end() const {
    return end_to_end_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Human-readable report: outcome counters, queue gauge, batch sizes,
  /// p50/p95/p99 of queue-wait / batch-formation / end-to-end latency,
  /// and aggregate pipeline traffic.
  [[nodiscard]] std::string report() const;

 private:
  static void inc(std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-replica atomics (unique_ptr-held: atomics are not movable).
  struct ReplicaMetrics {
    std::atomic<int> health{0};  // static_cast<int>(ReplicaHealth)
    std::atomic<std::uint64_t> runs_ok{0};
    std::atomic<std::uint64_t> runs_failed{0};
    std::atomic<std::uint64_t> cancels{0};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> restarts{0};
    std::string backend;  // written before workers start, then read-only
    std::string tier;
    std::string plan;  // CompiledPlan fingerprint ("" = default)
  };

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> values_streamed_{0};
  std::atomic<std::uint64_t> stream_transactions_{0};
  std::atomic<std::uint64_t> push_stalls_{0};
  std::atomic<std::uint64_t> pop_stalls_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> watchdog_budget_cancels_{0};
  std::atomic<std::uint64_t> watchdog_deadline_cancels_{0};
  std::atomic<std::uint64_t> isolation_reruns_{0};
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> readmissions_{0};
  std::atomic<std::uint64_t> brownout_entries_{0};
  std::atomic<std::uint64_t> brownout_sheds_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> replica_restarts_{0};
  std::atomic<std::uint64_t> shadow_runs_{0};
  std::atomic<std::uint64_t> shadow_mismatches_{0};
  std::atomic<std::uint64_t> shadow_dropped_{0};
  static constexpr int kMaxLinks = 8;  // the modeled MPC-X daisy chain
  std::atomic<std::uint64_t> link_frames_{0};
  std::atomic<std::uint64_t> link_retransmits_{0};
  std::atomic<std::uint64_t> plan_failovers_{0};
  std::atomic<int> links_seen_{0};
  std::array<std::atomic<double>, kMaxLinks> link_health_{};
  std::atomic<bool> brownout_active_{false};
  std::vector<std::unique_ptr<ReplicaMetrics>> replicas_;
  LatencyHistogram queue_wait_;
  LatencyHistogram batch_form_;
  LatencyHistogram end_to_end_;

  static constexpr std::size_t kMaxEvents = 256;
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex events_mu_;
  std::vector<std::string> events_;   // ring once size reaches kMaxEvents
  std::size_t events_head_ = 0;       // oldest surviving entry
  std::uint64_t events_dropped_ = 0;  // ring overwrites
};

}  // namespace qnn
