// Lock-cheap serving metrics: counters, a queue-depth gauge, and fixed
// power-of-two-bucket latency histograms.
//
// Every hot-path update is a single relaxed atomic increment — no locks,
// no allocation — so instrumenting the admission queue and the batching
// workers costs nanoseconds against inference runs that take milliseconds.
// Readers (metrics_report(), tests, the load generator) take a snapshot of
// the relaxed counters; values observed mid-run are approximate by design
// and exact once the server has been stopped.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace qnn {

/// Fixed-bucket latency histogram over microseconds. Bucket 0 holds
/// sub-microsecond samples; bucket i (i >= 1) holds [2^(i-1), 2^i) us, so
/// 40 buckets cover ~6 days. Percentile estimates return the upper bound
/// of the bucket containing the requested rank (conservative: the true
/// percentile is never above the reported value's bucket ceiling).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void record(double us) {
    counts_[static_cast<std::size_t>(bucket_of(us))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(static_cast<std::uint64_t>(us < 0.0 ? 0.0 : us),
                      std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double mean_us() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        sum_us_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Latency (us) at percentile p in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// "p50/p95/p99 = a/b/c us (n samples, mean m us)" one-liner.
  [[nodiscard]] std::string summary() const;

 private:
  static int bucket_of(double us) {
    if (us < 1.0) return 0;
    const auto v = static_cast<std::uint64_t>(us);
    int b = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1) ++b;  // bit width
    return b < kBuckets ? b : kBuckets - 1;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Point-in-time view of a ServerMetrics (all counts relaxed-read).
struct MetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  // completed + errored via a batch
  std::uint64_t queue_depth = 0;
  std::uint64_t max_queue_depth = 0;
  // Aggregated StreamEngine::RunStats across every infer_batch call.
  std::uint64_t values_streamed = 0;
  std::uint64_t stream_transactions = 0;
  std::uint64_t push_stalls = 0;
  std::uint64_t pop_stalls = 0;

  [[nodiscard]] double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
  /// Mean values moved per FIFO ring transaction across the pipelines —
  /// how well the burst transport amortizes its synchronization (1.0 =
  /// scalar transfers; EngineOptions::burst is the upper bound).
  [[nodiscard]] double mean_burst_occupancy() const {
    return stream_transactions == 0
               ? 0.0
               : static_cast<double>(values_streamed) /
                     static_cast<double>(stream_transactions);
  }
  [[nodiscard]] std::uint64_t rejected() const {
    return rejected_overload + rejected_deadline + rejected_shutdown;
  }
};

/// All serving-side instrumentation for one DfeServer.
class ServerMetrics {
 public:
  // -- hot-path updates (relaxed atomics) ---------------------------------
  void on_submit() { inc(submitted_); }
  void on_reject_overload() { inc(rejected_overload_); }
  void on_reject_deadline() { inc(rejected_deadline_); }
  void on_reject_shutdown() { inc(rejected_shutdown_); }
  void on_error() { inc(errors_); }
  void on_complete() { inc(completed_); }
  void on_batch(std::uint64_t size) {
    inc(batches_);
    batched_requests_.fetch_add(size, std::memory_order_relaxed);
  }
  void on_engine_stats(std::uint64_t values, std::uint64_t transactions,
                       std::uint64_t pushes, std::uint64_t pops) {
    values_streamed_.fetch_add(values, std::memory_order_relaxed);
    stream_transactions_.fetch_add(transactions, std::memory_order_relaxed);
    push_stalls_.fetch_add(pushes, std::memory_order_relaxed);
    pop_stalls_.fetch_add(pops, std::memory_order_relaxed);
  }
  void set_queue_depth(std::uint64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
    std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  LatencyHistogram& queue_wait() { return queue_wait_; }
  LatencyHistogram& batch_form() { return batch_form_; }
  LatencyHistogram& end_to_end() { return end_to_end_; }
  [[nodiscard]] const LatencyHistogram& queue_wait() const {
    return queue_wait_;
  }
  [[nodiscard]] const LatencyHistogram& batch_form() const {
    return batch_form_;
  }
  [[nodiscard]] const LatencyHistogram& end_to_end() const {
    return end_to_end_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Human-readable report: outcome counters, queue gauge, batch sizes,
  /// p50/p95/p99 of queue-wait / batch-formation / end-to-end latency,
  /// and aggregate pipeline traffic.
  [[nodiscard]] std::string report() const;

 private:
  static void inc(std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_deadline_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> values_streamed_{0};
  std::atomic<std::uint64_t> stream_transactions_{0};
  std::atomic<std::uint64_t> push_stalls_{0};
  std::atomic<std::uint64_t> pop_stalls_{0};
  LatencyHistogram queue_wait_;
  LatencyHistogram batch_form_;
  LatencyHistogram end_to_end_;
};

}  // namespace qnn
