#include "serve/server.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "verify/graph_check.h"

namespace qnn {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

const char* to_string(ServerStatus status) {
  switch (status) {
    case ServerStatus::kOk:
      return "ok";
    case ServerStatus::kOverloaded:
      return "overloaded";
    case ServerStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case ServerStatus::kShutdown:
      return "shutdown";
    case ServerStatus::kError:
      return "error";
  }
  return "unknown";
}

struct DfeServer::Impl {
  struct Request {
    IntTensor image;
    std::promise<InferenceResult> promise;
    Clock::time_point enqueue{};
    Clock::time_point dequeue{};
    Clock::time_point deadline{};
    bool has_deadline = false;
    double queue_wait_us = 0.0;
    double batch_form_us = 0.0;
  };

  ServerConfig config;
  std::vector<DfeSession> sessions;
  Shape input_shape{};
  ServerMetrics metrics;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Request> queue;
  bool accepting = true;
  bool stopping = false;

  std::mutex stop_mu;  // serializes stop(); taken outside `mu`
  bool joined = false;
  std::vector<std::thread> workers;

  void fulfill(Request& req, ServerStatus status, Clock::time_point now,
               std::string error = {}) {
    InferenceResult res;
    res.status = status;
    res.queue_wait_us = req.queue_wait_us;
    res.batch_form_us = req.batch_form_us;
    res.total_us = elapsed_us(req.enqueue, now);
    res.error = std::move(error);
    req.promise.set_value(std::move(res));
  }

  /// Pop queued requests into `batch` until it holds `max_batch`, expiring
  /// any whose deadline has already passed. Caller holds `mu`.
  void take_ready(std::vector<Request>& batch) {
    while (static_cast<int>(batch.size()) < config.max_batch &&
           !queue.empty()) {
      Request req = std::move(queue.front());
      queue.pop_front();
      const Clock::time_point now = Clock::now();
      if (req.has_deadline && now > req.deadline) {
        metrics.on_reject_deadline();
        fulfill(req, ServerStatus::kDeadlineExceeded, now);
        continue;
      }
      req.dequeue = now;
      req.queue_wait_us = elapsed_us(req.enqueue, now);
      metrics.queue_wait().record(req.queue_wait_us);
      batch.push_back(std::move(req));
    }
    metrics.set_queue_depth(queue.size());
  }

  /// Run one micro-batch on `session` and fulfill every promise.
  void dispatch(DfeSession& session, std::vector<Request>& batch) {
    const Clock::time_point exec_start = Clock::now();
    std::vector<Request> live;
    live.reserve(batch.size());
    for (Request& req : batch) {
      // Deadlines are re-checked after batch formation: a request admitted
      // in time may still expire while the batch waits to fill.
      if (req.has_deadline && exec_start > req.deadline) {
        metrics.on_reject_deadline();
        fulfill(req, ServerStatus::kDeadlineExceeded, exec_start);
        continue;
      }
      req.batch_form_us = elapsed_us(req.dequeue, exec_start);
      metrics.batch_form().record(req.batch_form_us);
      live.push_back(std::move(req));
    }
    if (live.empty()) return;
    metrics.on_batch(live.size());

    std::vector<IntTensor> images;
    images.reserve(live.size());
    for (Request& req : live) images.push_back(std::move(req.image));
    try {
      StreamEngine::RunStats stats;
      std::vector<IntTensor> outputs = session.infer_batch(images, &stats);
      metrics.on_engine_stats(stats.values_streamed,
                              stats.stream_transactions, stats.push_stalls,
                              stats.pop_stalls);
      const Clock::time_point done = Clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        Request& req = live[i];
        InferenceResult res;
        res.status = ServerStatus::kOk;
        res.logits = std::move(outputs[i]);
        res.queue_wait_us = req.queue_wait_us;
        res.batch_form_us = req.batch_form_us;
        res.total_us = elapsed_us(req.enqueue, done);
        metrics.end_to_end().record(res.total_us);
        metrics.on_complete();
        req.promise.set_value(std::move(res));
      }
    } catch (const std::exception& e) {
      const Clock::time_point done = Clock::now();
      for (Request& req : live) {
        metrics.on_error();
        fulfill(req, ServerStatus::kError, done, e.what());
      }
    }
  }

  /// Worker loop: one per replica. Forms a micro-batch (close at max_batch
  /// or batch_timeout_us after the batch opened) and dispatches it.
  void worker(int replica_idx) {
    DfeSession& session = sessions[static_cast<std::size_t>(replica_idx)];
    std::vector<Request> batch;
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and fully drained
        const Clock::time_point batch_open = Clock::now();
        take_ready(batch);
        if (!batch.empty() && config.batch_timeout_us > 0) {
          const Clock::time_point close_at =
              batch_open + std::chrono::microseconds(config.batch_timeout_us);
          while (static_cast<int>(batch.size()) < config.max_batch) {
            if (!queue.empty()) {
              take_ready(batch);
              continue;
            }
            if (stopping) break;
            if (cv.wait_until(lock, close_at) == std::cv_status::timeout) {
              break;
            }
          }
        }
      }
      if (!batch.empty()) dispatch(session, batch);
    }
  }
};

DfeServer::DfeServer(const NetworkSpec& spec, const NetworkParams& params,
                     ServerConfig server_config,
                     SessionConfig session_config)
    : impl_(std::make_unique<Impl>()) {
  QNN_CHECK(server_config.replicas >= 1, "server needs at least one replica");
  QNN_CHECK(server_config.queue_capacity >= 1,
            "admission queue capacity must be positive");
  QNN_CHECK(server_config.max_batch >= 1, "max_batch must be positive");
  QNN_CHECK(server_config.batch_timeout_us >= 0,
            "batch_timeout_us must be non-negative");
  impl_->config = server_config;
  if (session_config.engine.verify) {
    // Verify once up front so a malformed network produces one clean
    // static-analysis error instead of N identical compile failures from
    // the replica loop below (each compile re-checks its own placement).
    const Pipeline pipeline = expand(spec);
    enforce(verify_graph(pipeline, &params, session_config.engine),
            "DfeServer(" + pipeline.name + ")");
  }
  impl_->sessions.reserve(static_cast<std::size_t>(server_config.replicas));
  for (int i = 0; i < server_config.replicas; ++i) {
    // Each replica gets its own copy of the parameters: sessions share no
    // mutable state, so the workers may run them concurrently.
    impl_->sessions.push_back(
        DfeSession::compile(spec, params, session_config));
  }
  impl_->input_shape = impl_->sessions.front().pipeline().input;
  impl_->workers.reserve(impl_->sessions.size());
  for (int i = 0; i < server_config.replicas; ++i) {
    Impl* im = impl_.get();  // stable even if the DfeServer handle moves
    impl_->workers.emplace_back([im, i] { im->worker(i); });
  }
}

DfeServer::~DfeServer() { stop(); }

std::future<InferenceResult> DfeServer::submit_async(
    IntTensor image, std::int64_t deadline_us) {
  Impl& im = *impl_;
  QNN_CHECK(image.shape() == im.input_shape,
            "image shape " + image.shape().str() + " != network input " +
                im.input_shape.str());
  Impl::Request req;
  req.image = std::move(image);
  std::future<InferenceResult> fut = req.promise.get_future();
  req.enqueue = Clock::now();
  const std::int64_t dl =
      deadline_us < 0 ? im.config.default_deadline_us : deadline_us;
  req.has_deadline = dl > 0;
  if (req.has_deadline) {
    req.deadline = req.enqueue + std::chrono::microseconds(dl);
  }
  im.metrics.on_submit();
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    if (!im.accepting) {
      im.metrics.on_reject_shutdown();
      im.fulfill(req, ServerStatus::kShutdown, Clock::now());
      return fut;
    }
    if (im.queue.size() >= im.config.queue_capacity) {
      im.metrics.on_reject_overload();
      im.fulfill(req, ServerStatus::kOverloaded, Clock::now());
      return fut;
    }
    im.queue.push_back(std::move(req));
    im.metrics.set_queue_depth(im.queue.size());
  }
  im.cv.notify_one();
  return fut;
}

InferenceResult DfeServer::submit(const IntTensor& image,
                                  std::int64_t deadline_us) {
  return submit_async(image, deadline_us).get();
}

void DfeServer::stop() {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> stop_lock(im.stop_mu);
  if (im.joined) return;
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    im.accepting = false;
    im.stopping = true;
  }
  im.cv.notify_all();
  for (std::thread& t : im.workers) t.join();
  im.workers.clear();
  im.joined = true;
}

int DfeServer::replicas() const {
  return static_cast<int>(impl_->sessions.size());
}

const DfeSession& DfeServer::replica(int i) const {
  QNN_CHECK(i >= 0 && i < replicas(), "replica index out of range");
  return impl_->sessions[static_cast<std::size_t>(i)];
}

const ServerMetrics& DfeServer::metrics() const { return impl_->metrics; }

std::string DfeServer::metrics_report() const {
  return impl_->metrics.report();
}

}  // namespace qnn
