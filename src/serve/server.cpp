#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "plan/cache.h"
#include "verify/graph_check.h"
#include "verify/plan_check.h"

namespace qnn {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Why the watchdog cancelled a run (0 = it did not).
constexpr int kCancelNone = 0;
constexpr int kCancelBudget = 1;    // run exceeded run_budget_us
constexpr int kCancelDeadline = 2;  // every live deadline passed mid-run

constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

}  // namespace

const char* to_string(ServerStatus status) {
  switch (status) {
    case ServerStatus::kOk:
      return "ok";
    case ServerStatus::kOverloaded:
      return "overloaded";
    case ServerStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case ServerStatus::kShutdown:
      return "shutdown";
    case ServerStatus::kError:
      return "error";
  }
  return "unknown";
}

const char* to_string(DeadlineClass cls) {
  switch (cls) {
    case DeadlineClass::kTight:
      return "tight";
    case DeadlineClass::kStandard:
      return "standard";
    case DeadlineClass::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

std::int64_t retry_backoff_delay_us(const ServerConfig& config, int attempt,
                                    Rng& rng) {
  const int shift = attempt > 1 ? attempt - 1 : 0;
  const std::int64_t base = config.retry_backoff_us << shift;
  if (!config.retry_jitter || base <= 0) return base;
  // Uniform in [base/2, 3*base/2]: full-width jitter around the
  // exponential schedule, so a batch failed together retries spread out.
  return base / 2 + static_cast<std::int64_t>(rng.next_below(
                        static_cast<std::uint64_t>(base) + 1));
}

struct DfeServer::Impl {
  struct Request {
    IntTensor image;
    std::promise<InferenceResult> promise;
    Clock::time_point enqueue{};
    Clock::time_point dequeue{};
    Clock::time_point deadline{};
    /// Retry backoff gate: not dispatched before this (epoch = no gate).
    Clock::time_point not_before{};
    bool has_deadline = false;
    DeadlineClass cls = DeadlineClass::kBestEffort;
    int attempt = 0;           // retries consumed so far
    int exclude_replica = -1;  // replica that failed this request last
    double queue_wait_us = 0.0;
    double batch_form_us = 0.0;
  };

  /// One mirrored request for a shadow-tier replica: the image plus the
  /// primary's logits to compare against. Internal only — shadow results
  /// are never returned to a client.
  struct ShadowJob {
    IntTensor image;
    IntTensor primary;
    int primary_replica = -1;
  };

  /// One modeled board: the session plus its healing state. Health fields
  /// are guarded by `mu`; the in_run/run_*/cancel_reason block is the
  /// lock-free worker<->watchdog protocol (the watchdog must observe a
  /// run without taking the worker off CPU).
  struct Replica {
    Replica(DfeSession s, SessionConfig cfg)
        : session(std::move(s)),
          session_config(std::move(cfg)),
          backend_name(session.backend().name()),
          tier(session.backend().tier()) {}
    DfeSession session;
    /// The exact config this replica was compiled with — a restart
    /// recompiles through the same backend with the same options.
    SessionConfig session_config;
    std::string backend_name;
    BackendTier tier;

    // Guarded by Impl::mu.
    ReplicaHealth health = ReplicaHealth::kHealthy;
    int consecutive_failures = 0;
    int clean_probes = 0;
    int failed_probes = 0;  // consecutive; restart_after triggers on it
    /// Shadow-comparison mismatches pinned on this replica as primary;
    /// reset on readmission (ServerConfig::shadow_mismatch_after).
    int shadow_mismatches = 0;
    Clock::time_point next_probe{};

    // Worker publishes (release), watchdog observes (acquire).
    std::atomic<bool> in_run{false};
    std::atomic<std::int64_t> run_start_ns{0};
    std::atomic<std::int64_t> run_deadline_ns{kNoDeadline};
    std::atomic<int> cancel_reason{kCancelNone};
  };

  ServerConfig config;
  std::vector<std::unique_ptr<Replica>> replicas;
  Shape input_shape{};
  ServerMetrics metrics;
  const Clock::time_point epoch = Clock::now();
  /// Kept for restarts: a recompile needs the network, not just the old
  /// session.
  NetworkSpec spec;
  NetworkParams params;
  bool have_shadow = false;  // any shadow-tier replica in the pool

  std::mutex mu;
  std::condition_variable cv;        // work arrival / queue changes
  std::condition_variable maint_cv;  // watchdog period, probe schedule
  std::condition_variable shadow_cv; // mirror queue arrival
  std::deque<Request> queue;
  std::deque<ShadowJob> shadow_queue;  // guarded by mu
  double shadow_accum = 0.0;           // fractional mirror accumulator
  Rng retry_rng{1};                    // retry jitter; guarded by mu
  bool accepting = true;
  bool stopping = false;
  bool watchdog_stop = false;
  bool brownout_active = false;
  int quarantined_count = 0;   // replicas out of rotation (incl. probation)
  int global_fail_streak = 0;  // consecutive failed runs across replicas

  std::mutex stop_mu;  // serializes stop(); taken outside `mu`
  bool joined = false;
  std::vector<std::thread> workers;
  std::thread watchdog_thread;

  [[nodiscard]] std::int64_t to_ns(Clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch)
        .count();
  }
  [[nodiscard]] std::int64_t now_ns() const { return to_ns(Clock::now()); }

  // ---- brownout (mu held) ------------------------------------------------

  void update_brownout() {
    const bool want =
        config.brownout && (quarantined_count > 0 ||
                            global_fail_streak >= config.brownout_fail_streak);
    if (want != brownout_active) {
      brownout_active = want;
      metrics.set_brownout(want);
      metrics.log_event(want ? "brownout entered" : "brownout cleared");
    }
  }

  [[nodiscard]] int effective_max_batch() const {
    return brownout_active ? std::max(1, config.max_batch / 2)
                           : config.max_batch;
  }
  [[nodiscard]] std::int64_t effective_batch_timeout_us() const {
    return brownout_active ? config.batch_timeout_us / 4
                           : config.batch_timeout_us;
  }

  // ---- watchdog ----------------------------------------------------------

  /// Publish a traffic run to the watchdog. The run deadline is the max
  /// over the batch's deadlines, armed only when EVERY live request has
  /// one (then its passing proves all of them overran).
  void arm_watchdog(Replica& rep, const std::vector<Request>& live) {
    std::int64_t deadline = kNoDeadline;
    bool all = !live.empty();
    std::int64_t latest = 0;
    for (const Request& r : live) {
      if (!r.has_deadline) {
        all = false;
        break;
      }
      latest = std::max(latest, to_ns(r.deadline));
    }
    if (all) deadline = latest;
    rep.cancel_reason.store(kCancelNone, std::memory_order_relaxed);
    rep.run_start_ns.store(now_ns(), std::memory_order_relaxed);
    rep.run_deadline_ns.store(deadline, std::memory_order_relaxed);
    rep.in_run.store(true, std::memory_order_release);
  }

  /// Probe runs always get a deadline so a hung quarantined replica can
  /// never wedge its worker (or stop()).
  void arm_watchdog_probe(Replica& rep) {
    const std::int64_t budget_us =
        config.run_budget_us > 0 ? config.run_budget_us : 1'000'000;
    rep.cancel_reason.store(kCancelNone, std::memory_order_relaxed);
    rep.run_start_ns.store(now_ns(), std::memory_order_relaxed);
    rep.run_deadline_ns.store(now_ns() + budget_us * 1000,
                              std::memory_order_relaxed);
    rep.in_run.store(true, std::memory_order_release);
  }

  /// Returns why the watchdog cancelled this run (kCancelNone if it
  /// didn't) and clears the slot for the next run.
  int disarm_watchdog(Replica& rep) {
    rep.in_run.store(false, std::memory_order_release);
    return rep.cancel_reason.exchange(kCancelNone, std::memory_order_acq_rel);
  }

  void watchdog_loop() {
    std::unique_lock<std::mutex> lock(mu);
    while (!watchdog_stop) {
      maint_cv.wait_for(
          lock, std::chrono::microseconds(config.watchdog_period_us));
      if (watchdog_stop) break;
      const std::int64_t now = now_ns();
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        Replica& rep = *replicas[i];
        if (!rep.in_run.load(std::memory_order_acquire)) continue;
        const std::int64_t start =
            rep.run_start_ns.load(std::memory_order_relaxed);
        const std::int64_t deadline =
            rep.run_deadline_ns.load(std::memory_order_relaxed);
        int reason = kCancelNone;
        if (config.run_budget_us > 0 &&
            now - start > config.run_budget_us * 1000) {
          reason = kCancelBudget;
        } else if (now > deadline) {
          reason = kCancelDeadline;
        }
        if (reason == kCancelNone) continue;
        int expected = kCancelNone;
        if (rep.cancel_reason.compare_exchange_strong(expected, reason)) {
          // Races with run completion are benign: a cancel landing after
          // the run finished aborts the replica's NEXT run, which the
          // retry path then heals (the engine re-arms its abort flag at
          // every run start, so the window is one run at most).
          rep.session.cancel();
          metrics.on_watchdog_cancel(reason == kCancelDeadline);
          metrics.on_replica_cancel(static_cast<int>(i));
          metrics.log_event(
              std::string("watchdog cancel (") +
              (reason == kCancelDeadline ? "deadline" : "budget") +
              ") replica " + std::to_string(i));
        }
      }
    }
  }

  // ---- request lifecycle -------------------------------------------------

  void fulfill(Request& req, ServerStatus status, Clock::time_point now,
               std::string error = {}, int replica = -1) {
    InferenceResult res;
    res.status = status;
    res.queue_wait_us = req.queue_wait_us;
    res.batch_form_us = req.batch_form_us;
    res.total_us = elapsed_us(req.enqueue, now);
    res.error = std::move(error);
    res.retries = req.attempt;
    res.replica = replica;
    req.promise.set_value(std::move(res));
  }

  /// "replica 2 [engine/fast]" — event-log label with backend identity.
  [[nodiscard]] std::string rep_label(int idx) const {
    const Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    return "replica " + std::to_string(idx) + " [" + rep.backend_name +
           "/" + to_string(rep.tier) + "]";
  }

  /// May `rep` take queue traffic of class `cls`? Shadow replicas never
  /// do; with deadline routing, tight work is fast-tier-only and slow-tier
  /// replicas take everything else. These gates are ABSOLUTE — they hold
  /// during drain too, so a tight request can never land on a slow
  /// replica (the constructor guarantees a fast traffic replica exists).
  [[nodiscard]] bool may_serve(const Replica& rep, DeadlineClass cls) const {
    if (rep.tier == BackendTier::kShadow) return false;
    if (!config.route_by_deadline) return true;
    if (rep.tier == BackendTier::kFast) return true;
    return cls != DeadlineClass::kTight;  // kSlow: standard / best-effort
  }

  /// Any replica other than `idx` still in traffic rotation that may
  /// serve `cls`? Gates retry exclusion: a request is only skipped by the
  /// replica that failed it when some OTHER replica could take it. (mu
  /// held.)
  [[nodiscard]] bool other_live(int idx, DeadlineClass cls) const {
    for (std::size_t j = 0; j < replicas.size(); ++j) {
      if (static_cast<int>(j) == idx) continue;
      const Replica& rep = *replicas[j];
      if (!may_serve(rep, cls)) continue;
      const ReplicaHealth h = rep.health;
      if (h == ReplicaHealth::kHealthy || h == ReplicaHealth::kDegraded) {
        return true;
      }
    }
    return false;
  }

  /// Brownout shedding: expire every over-deadline entry in the queue up
  /// front, so degraded capacity is spent on work that can still make it.
  /// (mu held.)
  void shed_expired(Clock::time_point now) {
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->has_deadline && now > it->deadline) {
        metrics.on_reject_deadline();
        metrics.on_brownout_shed();
        fulfill(*it, ServerStatus::kDeadlineExceeded, now);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Collect up to `limit` dispatchable requests for `replica_idx`,
  /// expiring passed deadlines in place. Skips backoff-gated entries and
  /// entries excluded from this replica (while another live replica could
  /// take them) — except during drain, when every entry is fair game.
  /// (mu held.)
  void take_ready(std::vector<Request>& batch, int replica_idx, int limit) {
    const Clock::time_point now = Clock::now();
    if (brownout_active) shed_expired(now);
    const Replica& rep = *replicas[static_cast<std::size_t>(replica_idx)];
    const bool honor_gates = !stopping;
    for (auto it = queue.begin();
         it != queue.end() && static_cast<int>(batch.size()) < limit;) {
      if (it->has_deadline && now > it->deadline) {
        metrics.on_reject_deadline();
        fulfill(*it, ServerStatus::kDeadlineExceeded, now);
        it = queue.erase(it);
        continue;
      }
      // Class routing is absolute (never relaxed during drain).
      if (!may_serve(rep, it->cls)) {
        ++it;
        continue;
      }
      if (honor_gates && it->not_before > now) {
        ++it;
        continue;
      }
      if (honor_gates && it->exclude_replica == replica_idx &&
          other_live(replica_idx, it->cls)) {
        ++it;
        continue;
      }
      Request req = std::move(*it);
      it = queue.erase(it);
      req.dequeue = now;
      req.queue_wait_us = elapsed_us(req.enqueue, now);
      metrics.queue_wait().record(req.queue_wait_us);
      batch.push_back(std::move(req));
    }
    metrics.set_queue_depth(queue.size());
  }

  /// The queue holds only gated work for this replica: sleep until the
  /// earliest backoff expires (or a state change notifies). For
  /// exclusion-only gates, pass the baton so a worker that CAN take the
  /// work gets woken even if the original notify landed on us. (mu held
  /// via lock.)
  void wait_for_gate(std::unique_lock<std::mutex>& lock, int replica_idx) {
    const Replica& rep = *replicas[static_cast<std::size_t>(replica_idx)];
    Clock::time_point earliest = Clock::time_point::max();
    bool excluded_only = false;
    const Clock::time_point now = Clock::now();
    for (const Request& r : queue) {
      // Entries this replica may never serve (class routing) are some
      // other worker's problem: submit wakes every worker, so whoever is
      // entitled will pick them up — no baton needed, no timer.
      if (!may_serve(rep, r.cls)) continue;
      if (r.not_before > now) {
        earliest = std::min(earliest, r.not_before);
      } else {
        excluded_only = true;
      }
    }
    if (excluded_only) cv.notify_one();
    if (earliest == Clock::time_point::max()) {
      cv.wait(lock);
    } else {
      cv.wait_until(lock, earliest);
    }
  }

  // ---- health state machine (mu taken inside) ----------------------------

  void note_success(int idx) {
    const std::lock_guard<std::mutex> lock(mu);
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    rep.consecutive_failures = 0;
    global_fail_streak = 0;
    metrics.on_replica_run(idx, true);
    if (rep.health == ReplicaHealth::kDegraded) {
      rep.health = ReplicaHealth::kHealthy;
      metrics.set_replica_health(idx, ReplicaHealth::kHealthy);
      metrics.log_event(rep_label(idx) + " healthy again");
    }
    update_brownout();
  }

  void note_failure(int idx, int reason, const std::string& what) {
    const std::lock_guard<std::mutex> lock(mu);
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    ++rep.consecutive_failures;
    ++global_fail_streak;
    metrics.on_replica_run(idx, false);
    metrics.log_event(
        rep_label(idx) + " run failed" +
        (reason == kCancelBudget
             ? " (budget cancel)"
             : reason == kCancelDeadline ? " (deadline cancel)" : "") +
        ": " + what);
    if (rep.health == ReplicaHealth::kHealthy) {
      rep.health = ReplicaHealth::kDegraded;
      metrics.set_replica_health(idx, ReplicaHealth::kDegraded);
    }
    if (rep.health != ReplicaHealth::kQuarantined &&
        rep.consecutive_failures >= config.quarantine_after) {
      quarantine_locked(idx, rep, rep_label(idx) + " quarantined");
    }
    update_brownout();
    cv.notify_all();
    maint_cv.notify_all();
  }

  /// The quarantine transition itself (mu held, replica not already
  /// quarantined): shared by the failure-streak path above and the
  /// shadow-mismatch escalation below. The replica heals through the
  /// normal probe/probation/readmit machinery either way.
  void quarantine_locked(int idx, Replica& rep, const std::string& event) {
    rep.health = ReplicaHealth::kQuarantined;
    rep.clean_probes = 0;
    rep.next_probe =
        Clock::now() + std::chrono::microseconds(config.probe_period_us);
    ++quarantined_count;
    metrics.on_quarantine();
    metrics.set_replica_health(idx, ReplicaHealth::kQuarantined);
    metrics.log_event(event);
  }

  /// A shadow comparison pinned a bit-exactness mismatch on `primary`.
  /// After shadow_mismatch_after of those, the primary is pulled from
  /// rotation through the same quarantine/probe/readmit path a failure
  /// streak uses — a replica that computes WRONG answers is worse than one
  /// that crashes, but only the shadow tier can see it.
  void escalate_shadow_mismatch(int primary) {
    if (config.shadow_mismatch_after <= 0) return;
    if (primary < 0 ||
        primary >= static_cast<int>(replicas.size())) {
      return;
    }
    bool escalated = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      Replica& rep = *replicas[static_cast<std::size_t>(primary)];
      ++rep.shadow_mismatches;
      if (rep.health != ReplicaHealth::kQuarantined &&
          rep.shadow_mismatches >= config.shadow_mismatch_after) {
        quarantine_locked(primary, rep,
                          std::string(kShadowQuarantine) + ": " +
                              rep_label(primary) + " after " +
                              std::to_string(rep.shadow_mismatches) +
                              " shadow mismatches");
        update_brownout();
        escalated = true;
      }
    }
    if (escalated) {
      cv.notify_all();
      maint_cv.notify_all();
    }
  }

  /// One synthetic inference on a quarantined replica (worker thread, mu
  /// NOT held on entry). Clean probes walk quarantined -> probation ->
  /// healthy; any failure resets to quarantined.
  void run_probe(int idx) {
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    metrics.on_replica_probe(idx);
    bool ok = false;
    arm_watchdog_probe(rep);
    try {
      std::vector<IntTensor> probe;
      probe.emplace_back(input_shape);
      (void)rep.session.infer_batch(probe);
      ok = true;
    } catch (const std::exception&) {
      ok = false;
    }
    disarm_watchdog(rep);

    bool want_restart = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      metrics.on_probe(ok);
      if (!ok) {
        rep.clean_probes = 0;
        ++rep.failed_probes;
        if (rep.health != ReplicaHealth::kQuarantined) {
          rep.health = ReplicaHealth::kQuarantined;
          metrics.set_replica_health(idx, ReplicaHealth::kQuarantined);
        }
        metrics.log_event(rep_label(idx) + " probe failed");
        rep.next_probe =
            Clock::now() + std::chrono::microseconds(config.probe_period_us);
        want_restart = config.restart_after > 0 &&
                       rep.failed_probes >= config.restart_after;
      } else {
        rep.failed_probes = 0;
        ++rep.clean_probes;
        if (rep.health == ReplicaHealth::kQuarantined) {
          rep.health = ReplicaHealth::kProbation;
          metrics.set_replica_health(idx, ReplicaHealth::kProbation);
          metrics.log_event(rep_label(idx) + " on probation");
        }
        if (rep.clean_probes >= config.probation_probes) {
          rep.health = ReplicaHealth::kHealthy;
          rep.consecutive_failures = 0;
          rep.shadow_mismatches = 0;  // readmission wipes the slate
          --quarantined_count;
          metrics.on_readmit();
          metrics.set_replica_health(idx, ReplicaHealth::kHealthy);
          metrics.log_event(rep_label(idx) + " readmitted");
          update_brownout();
          cv.notify_all();
        } else {
          rep.next_probe =
              Clock::now() + std::chrono::microseconds(config.probe_period_us);
          maint_cv.notify_all();
        }
      }
    }
    if (want_restart) restart_replica(idx);
  }

  /// Watchdog-triggered self-heal of last resort: after `restart_after`
  /// consecutive failed probes, recompile the replica through its backend
  /// (the software analog of reflashing a wedged board) and swap the
  /// fresh session in. Runs on the replica's own worker thread with mu
  /// NOT held — only this thread runs the session, and the swap happens
  /// under mu so the watchdog (which cancels sessions under mu) can never
  /// observe a dangling one. The replica stays quarantined: the next
  /// probe validates the fresh session before readmission.
  void restart_replica(int idx) {
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    metrics.log_event(rep_label(idx) + " restarting (backend recompile)");
    try {
      DfeSession fresh =
          DfeSession::compile(spec, params, rep.session_config);
      DfeSession old = [&] {
        const std::lock_guard<std::mutex> lock(mu);
        DfeSession prev = std::move(rep.session);
        rep.session = std::move(fresh);
        rep.failed_probes = 0;
        rep.clean_probes = 0;
        rep.consecutive_failures = 0;
        rep.next_probe = Clock::now();  // probe the fresh session now
        return prev;
      }();
      // `old` (and its engine threads) tears down here, outside mu.
      metrics.on_replica_restart(idx);
      metrics.log_event(std::string(kReplicaRestarted) + ": " +
                        rep_label(idx));
      maint_cv.notify_all();
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(mu);
      rep.failed_probes = 0;  // back off a full restart_after window
      metrics.log_event(rep_label(idx) +
                        " restart failed: " + std::string(e.what()));
      rep.next_probe =
          Clock::now() + std::chrono::microseconds(config.probe_period_us);
    }
  }

  /// A request's run failed on replica `idx`: expire it if its deadline is
  /// the reason (or has passed), retry it with backoff on another replica
  /// while attempts remain, else surface kError.
  void handle_failure(Request& req, int idx, int reason,
                      const std::string& what, Clock::time_point now) {
    if (reason == kCancelDeadline || (req.has_deadline && now > req.deadline)) {
      metrics.on_reject_deadline();
      fulfill(req, ServerStatus::kDeadlineExceeded, now, {}, idx);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (!stopping && req.attempt < config.max_retries) {
        ++req.attempt;
        req.exclude_replica = idx;
        req.not_before = now + std::chrono::microseconds(retry_backoff_delay_us(
                                   config, req.attempt, retry_rng));
        metrics.on_retry();
        queue.push_front(std::move(req));
        metrics.set_queue_depth(queue.size());
        cv.notify_all();
        return;
      }
    }
    metrics.on_error();
    fulfill(req, ServerStatus::kError, now, what, idx);
  }

  /// Run `live` on replica `idx` under the watchdog and settle every
  /// request. On a batch-wide failure that was NOT a watchdog cancel,
  /// re-run each request alone once (`allow_isolation`): one poisoned
  /// input then fails only itself, and its batch-mates still complete.
  void run_requests(int idx, std::vector<Request>& live,
                    bool allow_isolation) {
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    std::vector<IntTensor> images;
    images.reserve(live.size());
    for (Request& req : live) images.push_back(std::move(req.image));
    arm_watchdog(rep, live);
    try {
      StreamEngine::RunStats stats;
      std::vector<IntTensor> outputs = rep.session.infer_batch(images, &stats);
      disarm_watchdog(rep);
      metrics.on_engine_stats(stats.values_streamed,
                              stats.stream_transactions, stats.push_stalls,
                              stats.pop_stalls);
      metrics.on_faults(stats.faults_injected);
      if (stats.links > 0) {
        // Partitioned (LinkedEngine) replica: surface its MaxRing traffic
        // and per-link health, and log the healing transitions.
        metrics.on_link(stats.link_frames, stats.link_retransmits,
                        stats.link_failovers);
        const int n = std::min<int>(stats.links,
                                    static_cast<int>(stats.link_health.size()));
        for (int l = 0; l < n; ++l) {
          metrics.set_link_health(l, stats.link_health[
                                          static_cast<std::size_t>(l)]);
        }
        if (stats.link_failovers > 0) {
          metrics.log_event(std::string(kPlanFailover) + ": replica " +
                            std::to_string(idx) + " recompiled a degraded "
                            "plan after a link death");
        } else if (stats.link_retransmits > 0) {
          metrics.log_event(std::string(kLinkDegraded) + ": replica " +
                            std::to_string(idx) + " recovered " +
                            std::to_string(stats.link_retransmits) +
                            " retransmit(s)");
        }
      }
      note_success(idx);
      const Clock::time_point done = Clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        Request& req = live[i];
        // Mid-run deadline enforcement is watchdog-period granular: a run
        // that finished anyway still settles as kDeadlineExceeded when the
        // request's own deadline has passed.
        if (req.has_deadline && done > req.deadline) {
          metrics.on_reject_deadline();
          fulfill(req, ServerStatus::kDeadlineExceeded, done, {}, idx);
          continue;
        }
        // Mirror a fraction of served traffic to the shadow tier. The
        // image is dead after this loop, so a mirrored job can steal it.
        if (have_shadow && config.shadow_fraction > 0.0) {
          maybe_mirror(images[i], outputs[i], idx);
        }
        InferenceResult res;
        res.status = ServerStatus::kOk;
        res.logits = std::move(outputs[i]);
        res.queue_wait_us = req.queue_wait_us;
        res.batch_form_us = req.batch_form_us;
        res.total_us = elapsed_us(req.enqueue, done);
        res.retries = req.attempt;
        res.replica = idx;
        metrics.end_to_end().record(res.total_us);
        metrics.on_complete();
        req.promise.set_value(std::move(res));
      }
    } catch (const std::exception& e) {
      const int reason = disarm_watchdog(rep);
      // Give every request its image back so it can be re-run or retried.
      for (std::size_t i = 0; i < live.size(); ++i) {
        live[i].image = std::move(images[i]);
      }
      note_failure(idx, reason, e.what());
      if (allow_isolation && live.size() > 1 && reason == kCancelNone) {
        metrics.on_isolation(live.size());
        metrics.log_event("isolating batch of " +
                          std::to_string(live.size()) + " on replica " +
                          std::to_string(idx));
        for (Request& req : live) {
          std::vector<Request> solo;
          solo.push_back(std::move(req));
          run_requests(idx, solo, false);
        }
        return;
      }
      const Clock::time_point now = Clock::now();
      for (Request& req : live) {
        handle_failure(req, idx, reason, e.what(), now);
      }
    }
  }

  /// Fractional mirroring: every served request adds shadow_fraction to
  /// an accumulator; each time it crosses 1 one job is queued for the
  /// shadow tier (so fraction 0.25 mirrors exactly every 4th request).
  /// The image is MOVED into the job; the primary logits are copied.
  void maybe_mirror(IntTensor& image, const IntTensor& primary, int idx) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      shadow_accum += config.shadow_fraction;
      if (shadow_accum < 1.0) return;
      shadow_accum -= 1.0;
      if (shadow_queue.size() >= config.shadow_queue_capacity) {
        metrics.on_shadow_drop();
        return;
      }
      shadow_queue.push_back(ShadowJob{std::move(image), primary, idx});
    }
    shadow_cv.notify_one();
  }

  /// Worker loop of a shadow-tier replica: it never touches the admission
  /// queue. It re-runs mirrored requests on its own session and compares
  /// the result bit-exactly against the primary's logits — a cheap
  /// continuous conformance check of the fast tier against the simulator
  /// backend's reference path. Results are never returned to clients;
  /// mismatches and failures are counted and logged, and repeated
  /// mismatches pinned on one primary quarantine it
  /// (ServerConfig::shadow_mismatch_after).
  void shadow_worker(int idx) {
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    for (;;) {
      ShadowJob job;
      {
        std::unique_lock<std::mutex> lock(mu);
        shadow_cv.wait(lock, [&] {
          return stopping || !shadow_queue.empty();
        });
        if (shadow_queue.empty()) {
          if (stopping) return;
          continue;
        }
        job = std::move(shadow_queue.front());
        shadow_queue.pop_front();
      }
      // Probe-style watchdog arming: a wedged shadow run is cancelled on
      // the run budget, so it can never hold up stop().
      arm_watchdog_probe(rep);
      try {
        std::vector<IntTensor> in;
        in.push_back(std::move(job.image));
        const std::vector<IntTensor> out = rep.session.infer_batch(in);
        disarm_watchdog(rep);
        const bool match = out.size() == 1 && out[0] == job.primary;
        metrics.on_shadow(match);
        if (!match) {
          metrics.log_event(rep_label(idx) +
                            " shadow MISMATCH vs replica " +
                            std::to_string(job.primary_replica));
          escalate_shadow_mismatch(job.primary_replica);
        }
      } catch (const std::exception& e) {
        disarm_watchdog(rep);
        metrics.on_shadow(false);
        metrics.log_event(rep_label(idx) +
                          " shadow run failed: " + std::string(e.what()));
      }
    }
  }

  /// Time the batch, record formation latency, and run it.
  void dispatch(int idx, std::vector<Request>& batch) {
    const Clock::time_point exec_start = Clock::now();
    std::vector<Request> live;
    live.reserve(batch.size());
    for (Request& req : batch) {
      // Deadlines are re-checked after batch formation: a request admitted
      // in time may still expire while the batch waits to fill.
      if (req.has_deadline && exec_start > req.deadline) {
        metrics.on_reject_deadline();
        fulfill(req, ServerStatus::kDeadlineExceeded, exec_start);
        continue;
      }
      req.batch_form_us = elapsed_us(req.dequeue, exec_start);
      metrics.batch_form().record(req.batch_form_us);
      live.push_back(std::move(req));
    }
    if (live.empty()) return;
    metrics.on_batch(live.size());
    run_requests(idx, live, /*allow_isolation=*/true);
  }

  /// Worker loop: one per replica. A quarantined replica serves probes
  /// instead of traffic (drain overrides: on stop every replica helps).
  /// Otherwise forms a micro-batch (close at the effective max_batch or
  /// the effective batch timeout after it opened) and dispatches it.
  void worker(int idx) {
    Replica& rep = *replicas[static_cast<std::size_t>(idx)];
    std::vector<Request> batch;
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (stopping && queue.empty()) return;
          if (!stopping && (rep.health == ReplicaHealth::kQuarantined ||
                            rep.health == ReplicaHealth::kProbation)) {
            const Clock::time_point when = rep.next_probe;
            if (Clock::now() >= when) {
              lock.unlock();
              run_probe(idx);
              lock.lock();
            } else {
              maint_cv.wait_until(lock, when);
            }
            continue;
          }
          if (queue.empty()) {
            cv.wait(lock, [&] { return stopping || !queue.empty(); });
            continue;
          }
          const Clock::time_point batch_open = Clock::now();
          const int limit = effective_max_batch();
          take_ready(batch, idx, limit);
          if (batch.empty()) {
            if (stopping) {
              // Drain: the rest of the queue is class-gated away from us
              // (tight work on a slow replica stays gated even now). Poll
              // until the entitled workers empty it — queue erasure has
              // no dedicated notify.
              cv.wait_for(lock, std::chrono::microseconds(200));
            } else {
              // Everything queued is backoff-gated, excluded from us, or
              // class-routed to another tier.
              wait_for_gate(lock, idx);
            }
            continue;
          }
          const std::int64_t timeout_us = effective_batch_timeout_us();
          if (timeout_us > 0) {
            const Clock::time_point close_at =
                batch_open + std::chrono::microseconds(timeout_us);
            while (static_cast<int>(batch.size()) < limit) {
              const std::size_t before = batch.size();
              if (!queue.empty()) take_ready(batch, idx, limit);
              if (batch.size() > before) continue;
              if (stopping) break;
              if (cv.wait_until(lock, close_at) == std::cv_status::timeout) {
                break;
              }
            }
          }
          break;  // batch formed
        }
      }
      dispatch(idx, batch);
    }
  }
};

DfeServer::DfeServer(const NetworkSpec& spec, const NetworkParams& params,
                     ServerConfig server_config,
                     SessionConfig session_config)
    : impl_(std::make_unique<Impl>()) {
  QNN_CHECK(server_config.replicas >= 1, "server needs at least one replica");
  QNN_CHECK(server_config.queue_capacity >= 1,
            "admission queue capacity must be positive");
  QNN_CHECK(server_config.max_batch >= 1, "max_batch must be positive");
  QNN_CHECK(server_config.batch_timeout_us >= 0,
            "batch_timeout_us must be non-negative");
  QNN_CHECK(server_config.run_budget_us >= 0,
            "run_budget_us must be non-negative");
  QNN_CHECK(server_config.watchdog_period_us >= 1,
            "watchdog_period_us must be positive");
  QNN_CHECK(server_config.max_retries >= 0,
            "max_retries must be non-negative");
  QNN_CHECK(server_config.retry_backoff_us >= 0,
            "retry_backoff_us must be non-negative");
  QNN_CHECK(server_config.quarantine_after >= 1,
            "quarantine_after must be positive");
  QNN_CHECK(server_config.probation_probes >= 1,
            "probation_probes must be positive");
  QNN_CHECK(server_config.probe_period_us >= 1,
            "probe_period_us must be positive");
  QNN_CHECK(server_config.brownout_fail_streak >= 1,
            "brownout_fail_streak must be positive");
  QNN_CHECK(server_config.restart_after >= 0,
            "restart_after must be non-negative");
  QNN_CHECK(server_config.tight_deadline_us >= 0,
            "tight_deadline_us must be non-negative");
  QNN_CHECK(server_config.shadow_fraction >= 0.0 &&
                server_config.shadow_fraction <= 1.0,
            "shadow_fraction must be in [0, 1]");
  QNN_CHECK(server_config.shadow_queue_capacity >= 1,
            "shadow_queue_capacity must be positive");
  QNN_CHECK(server_config.shadow_mismatch_after >= 0,
            "shadow_mismatch_after must be non-negative");

  // Resolve the pool spec: every slice names a registered backend. The
  // legacy homogeneous shape (`replicas` copies of the session backend)
  // is just the one-entry special case.
  std::vector<ServerConfig::PoolEntry> pool = server_config.pool;
  if (pool.empty()) {
    pool.push_back(ServerConfig::PoolEntry{session_config.backend,
                                           server_config.replicas});
  }
  int total = 0;
  for (const ServerConfig::PoolEntry& e : pool) {
    QNN_CHECK(e.count >= 1, "pool entry count must be positive");
    (void)backend_registry().at(e.backend);  // throws on unknown names
    total += e.count;
  }
  server_config.replicas = total;
  impl_->config = server_config;
  impl_->retry_rng = Rng(server_config.retry_jitter_seed);

  const Pipeline pipeline = expand(spec);
  // Cold-start plan resolution: ONE cache lookup for the whole pool (every
  // replica would otherwise re-read the same file). A hit is observable —
  // the kPlanCacheHit event carries the fingerprint, and each replica's
  // metrics row records the plan it runs.
  if (session_config.plan == nullptr) {
    const PlanCache cache(session_config.plan_cache_dir.empty()
                              ? PlanCache::default_dir()
                              : session_config.plan_cache_dir);
    if (cache.enabled()) {
      if (auto cached =
              cache.load(plan_key(pipeline, session_config.slo_us))) {
        // Re-verify before arming the whole pool with it: a cached file
        // that parses but fails the consistency lint (stale hash, corrupt
        // streams, burst/FIFO skew — verify/plan_check.h) is a MISS, loudly
        // logged, never a broken cold start.
        Report lint;
        lint_plan(pipeline, *cached, lint);
        if (lint.ok()) {
          session_config.plan =
              std::make_shared<const CompiledPlan>(*std::move(cached));
          impl_->metrics.log_event(std::string(kPlanCacheHit) + ": " +
                                   session_config.plan->fingerprint());
        } else {
          impl_->metrics.log_event("plan-cache-rejected: " +
                                   cached->fingerprint() + " (" +
                                   lint.summary() + ")");
        }
      }
    }
  }
  if (session_config.plan != nullptr) {
    session_config.plan->apply_engine(session_config.engine);
    session_config.engine.plan = session_config.plan.get();
  }

  if (session_config.engine.verify) {
    // Verify once up front so a malformed network produces one clean
    // static-analysis error instead of N identical compile failures from
    // the replica loop below (each compile re-checks its own placement).
    enforce(verify_graph(pipeline, &params, session_config.engine),
            "DfeServer(" + pipeline.name + ")");
  }
  impl_->spec = spec;
  impl_->params = params;
  impl_->replicas.reserve(static_cast<std::size_t>(total));
  // Replica pools share one pinning map: each replica's engine gets a core
  // window staggered by its worker count, so with pin_threads set four
  // replicas tile the machine instead of all binding worker 0 to core 0.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned pin_stride =
      session_config.engine.pool_threads != 0
          ? session_config.engine.pool_threads
          : std::max(1u, hw / static_cast<unsigned>(std::max(1, total)));
  int fast_traffic = 0;
  int traffic = 0;
  for (const ServerConfig::PoolEntry& e : pool) {
    for (int k = 0; k < e.count; ++k) {
      const int i = static_cast<int>(impl_->replicas.size());
      // Each replica gets its own copy of the parameters: sessions share
      // no mutable state, so the workers may run them concurrently. The
      // fault identity lets one FaultPlan target individual replicas.
      SessionConfig replica_config = session_config;
      replica_config.backend = e.backend;
      replica_config.engine.fault_replica = i;
      replica_config.engine.pin_offset =
          session_config.engine.pin_offset +
          static_cast<unsigned>(i) * pin_stride;
      impl_->replicas.push_back(std::make_unique<Impl::Replica>(
          DfeSession::compile(spec, params, replica_config),
          replica_config));
      const Impl::Replica& rep = *impl_->replicas.back();
      if (rep.tier != BackendTier::kShadow) {
        ++traffic;
        if (rep.tier == BackendTier::kFast) ++fast_traffic;
      } else {
        impl_->have_shadow = true;
      }
    }
  }
  if (session_config.engine.pin_threads) {
    // Lint the pool's core tiling (verify/plan_check.h): a stagger bug, an
    // oversized plan-frozen pool_threads or simply more replicas than the
    // machine has cores makes windows collide — correctness is unaffected,
    // so findings are logged, not fatal.
    std::vector<ReplicaPinWindow> windows;
    windows.reserve(impl_->replicas.size());
    for (std::size_t i = 0; i < impl_->replicas.size(); ++i) {
      const Impl::Replica& rep = *impl_->replicas[i];
      windows.push_back(ReplicaPinWindow{
          "replica " + std::to_string(i) + " (" + rep.backend_name + ")",
          rep.session_config.engine.pin_offset, pin_stride});
    }
    Report pin_report;
    lint_pool_pinning(windows, pin_report);
    for (const Diagnostic& d : pin_report.diagnostics()) {
      if (d.severity != Severity::kInfo) impl_->metrics.log_event(d.str());
    }
  }
  QNN_CHECK(traffic >= 1,
            "replica pool needs at least one non-shadow replica");
  QNN_CHECK(!server_config.route_by_deadline || fast_traffic >= 1,
            "deadline routing needs at least one fast-tier replica "
            "(tight requests can only dispatch there)");
  QNN_CHECK(server_config.shadow_fraction == 0.0 || impl_->have_shadow,
            "shadow_fraction > 0 needs a shadow-tier replica in the pool");
  impl_->input_shape = impl_->replicas.front()->session.pipeline().input;
  impl_->metrics.init_replicas(total);
  for (int i = 0; i < total; ++i) {
    const Impl::Replica& rep = *impl_->replicas[static_cast<std::size_t>(i)];
    impl_->metrics.set_replica_backend(i, rep.backend_name,
                                       to_string(rep.tier));
    if (rep.session_config.plan != nullptr) {
      impl_->metrics.set_replica_plan(
          i, rep.session_config.plan->fingerprint());
    }
  }
  Impl* im = impl_.get();  // stable even if the DfeServer handle moves
  impl_->watchdog_thread = std::thread([im] { im->watchdog_loop(); });
  impl_->workers.reserve(impl_->replicas.size());
  for (int i = 0; i < total; ++i) {
    const bool shadow = impl_->replicas[static_cast<std::size_t>(i)]->tier ==
                        BackendTier::kShadow;
    impl_->workers.emplace_back(
        [im, i, shadow] { shadow ? im->shadow_worker(i) : im->worker(i); });
  }
}

DfeServer::~DfeServer() { stop(); }

std::future<InferenceResult> DfeServer::submit_async(
    IntTensor image, std::int64_t deadline_us) {
  Impl& im = *impl_;
  QNN_CHECK(image.shape() == im.input_shape,
            "image shape " + image.shape().str() + " != network input " +
                im.input_shape.str());
  Impl::Request req;
  req.image = std::move(image);
  std::future<InferenceResult> fut = req.promise.get_future();
  req.enqueue = Clock::now();
  const std::int64_t dl =
      deadline_us < 0 ? im.config.default_deadline_us : deadline_us;
  req.has_deadline = dl > 0;
  if (req.has_deadline) {
    req.deadline = req.enqueue + std::chrono::microseconds(dl);
    req.cls = dl <= im.config.tight_deadline_us ? DeadlineClass::kTight
                                                : DeadlineClass::kStandard;
  } else {
    req.cls = DeadlineClass::kBestEffort;
  }
  im.metrics.on_submit();
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    if (!im.accepting) {
      im.metrics.on_reject_shutdown();
      im.fulfill(req, ServerStatus::kShutdown, Clock::now());
      return fut;
    }
    if (im.queue.size() >= im.config.queue_capacity) {
      im.metrics.on_reject_overload();
      im.fulfill(req, ServerStatus::kOverloaded, Clock::now());
      return fut;
    }
    im.queue.push_back(std::move(req));
    im.metrics.set_queue_depth(im.queue.size());
  }
  // Wake every worker, not one: with class routing, notify_one could land
  // on a worker the entry is gated away from (a lost wakeup). Non-entitled
  // workers recheck and go straight back to sleep.
  im.cv.notify_all();
  return fut;
}

InferenceResult DfeServer::submit(const IntTensor& image,
                                  std::int64_t deadline_us) {
  return submit_async(image, deadline_us).get();
}

void DfeServer::stop() {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> stop_lock(im.stop_mu);
  if (im.joined) return;
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    im.accepting = false;
    im.stopping = true;
  }
  im.cv.notify_all();
  im.maint_cv.notify_all();
  im.shadow_cv.notify_all();
  // Workers drain first (the watchdog must stay alive to cancel hung
  // drain runs), then the watchdog is retired.
  for (std::thread& t : im.workers) t.join();
  im.workers.clear();
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    im.watchdog_stop = true;
  }
  im.maint_cv.notify_all();
  if (im.watchdog_thread.joinable()) im.watchdog_thread.join();
  im.joined = true;
}

int DfeServer::replicas() const {
  return static_cast<int>(impl_->replicas.size());
}

const DfeSession& DfeServer::replica(int i) const {
  QNN_CHECK(i >= 0 && i < replicas(), "replica index out of range");
  return impl_->replicas[static_cast<std::size_t>(i)]->session;
}

ReplicaHealth DfeServer::replica_health(int i) const {
  QNN_CHECK(i >= 0 && i < replicas(), "replica index out of range");
  return impl_->metrics.replica_health(i);
}

const ServerMetrics& DfeServer::metrics() const { return impl_->metrics; }

std::string DfeServer::metrics_report() const {
  return impl_->metrics.report();
}

}  // namespace qnn
