// Multi-replica inference server: the datacenter deployment of §IV-B4.
//
// The paper's streaming architecture reaches its throughput only while the
// kernel pipeline stays full (§III-B computation overlap); a single
// blocking DfeSession::infer() call per image drains the pipe between
// requests and leaves a farm of boards idle. DfeServer is the host-side
// serving layer that keeps the farm saturated under concurrent load:
//
//   admission queue  ->  micro-batcher  ->  replica pool  ->  metrics
//
//  * Admission control: a bounded queue with per-request deadlines.
//    When the queue is full a request is rejected immediately with
//    ServerStatus::kOverloaded — explicit backpressure instead of
//    unbounded queuing; a request whose deadline passes while it waits
//    completes with kDeadlineExceeded without touching a replica.
//  * Dynamic micro-batching: each worker coalesces queued requests into
//    one infer_batch() call; a batch closes at `max_batch` requests or
//    `batch_timeout_us` after it opened, whichever comes first, so the
//    pipeline stays full under load and latency stays bounded when idle.
//  * Replica pool: N independently compiled DfeSessions (a farm of DFE
//    boards), one worker thread per replica. The pool may be
//    HETEROGENEOUS (ServerConfig::pool): each replica is compiled by a
//    registered backend (backend/backend.h) and tagged with that
//    backend's tier. Admission is routed by deadline class — a TIGHT
//    request (deadline <= tight_deadline_us) only ever runs on a
//    fast-tier replica, best-effort / standard work may overflow onto
//    slow-tier replicas, and shadow-tier replicas never take queue
//    traffic at all: a configurable fraction of completed requests is
//    mirrored to them and the results compared (never returned).
//  * Metrics: lock-cheap counters/histograms (serve/metrics.h) exposed
//    via metrics() / metrics_report().
//
// The server also *self-heals* around replica faults (DESIGN.md §7):
//
//  * Watchdog: a dedicated thread cancels runs that exceed `run_budget_us`
//    (hung replica) or outlive every live deadline in the batch (mid-run
//    deadline enforcement); cancelled work is retried or expired, never
//    lost.
//  * Retry with backoff: a failed request is requeued up to `max_retries`
//    times with exponential backoff, excluded from the replica that just
//    failed it whenever another live replica exists.
//  * Batch isolation: when a batch fails without a watchdog cancel, each
//    request is re-run alone so one poisoned input cannot take its
//    batch-mates down with it.
//  * Quarantine: `quarantine_after` consecutive failed runs park a replica;
//    it then serves synthetic probes and is readmitted after
//    `probation_probes` consecutive clean ones.
//  * Restart: `restart_after` consecutive FAILED probes recompile the
//    replica through its backend (the software analog of reflashing a
//    wedged board); the fresh session then re-enters the probe loop so
//    readmission still requires clean probes.
//  * Brownout: while any replica is quarantined (or failures persist), the
//    effective max_batch/batch_timeout shrink and already-expired queue
//    entries are shed first — graceful degradation instead of collapse.
//
// submit_async() enqueues and returns a std::future; submit() is the
// synchronous convenience wrapper. stop() (also run by the destructor)
// stops admitting, drains every queued request, and joins the workers —
// no in-flight future is ever abandoned.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "host/session.h"
#include "serve/metrics.h"

namespace qnn {

enum class ServerStatus {
  kOk,                // inference ran; logits are valid
  kOverloaded,        // admission queue full at submit time
  kDeadlineExceeded,  // deadline passed while queued / forming a batch
  kShutdown,          // submitted after stop()
  kError,             // inference raised; see InferenceResult::error
};

[[nodiscard]] const char* to_string(ServerStatus status);

/// Admission class of a request, derived from its deadline at submit time.
enum class DeadlineClass {
  kTight,       // deadline <= ServerConfig::tight_deadline_us
  kStandard,    // any longer deadline
  kBestEffort,  // no deadline
};

[[nodiscard]] const char* to_string(DeadlineClass cls);

struct ServerConfig {
  /// Number of DfeSession replicas (modeled DFE boards); one worker each.
  /// Ignored when `pool` is non-empty.
  int replicas = 1;
  /// Admission queue bound; submissions beyond it are rejected.
  std::size_t queue_capacity = 256;
  /// Micro-batch closes at this many requests...
  int max_batch = 8;
  /// ...or this long after it opened, whichever comes first. 0 = greedy
  /// (dispatch whatever is queued right now, never wait).
  std::int64_t batch_timeout_us = 2000;
  /// Deadline applied when submit()/submit_async() pass deadline_us < 0.
  /// 0 = no deadline.
  std::int64_t default_deadline_us = 0;

  // ---- self-healing ------------------------------------------------------
  /// Watchdog cancels any single engine run exceeding this budget (a hung
  /// replica cannot hold its worker forever). 0 = no budget.
  std::int64_t run_budget_us = 0;
  /// Watchdog scan period. Also bounds how stale a mid-run deadline
  /// overrun can go unnoticed.
  std::int64_t watchdog_period_us = 500;
  /// Times a failed (non-expired) request is requeued before kError.
  int max_retries = 2;
  /// Base backoff before a retried request may dispatch again; doubles
  /// per attempt (attempt k waits retry_backoff_us << (k-1)).
  std::int64_t retry_backoff_us = 200;
  /// Jitter each retry delay uniformly within +-50% of its exponential
  /// base, drawn from a generator seeded with retry_jitter_seed — a burst
  /// of requests failed by one fault then spreads out instead of
  /// re-dispatching (and possibly re-failing) in lockstep. false = the
  /// exact base delay every time.
  bool retry_jitter = true;
  std::uint64_t retry_jitter_seed = 0x7e7125a5;
  /// Consecutive failed runs that quarantine a replica.
  int quarantine_after = 3;
  /// Consecutive clean probes that readmit a quarantined replica.
  int probation_probes = 2;
  /// Delay between probe runs of a quarantined replica.
  std::int64_t probe_period_us = 2000;
  /// Enable brownout-mode degradation (halved max_batch, quartered batch
  /// timeout, shed-expired-first) while replicas are quarantined or
  /// failures persist.
  bool brownout = true;
  /// Global consecutive-failure streak that also triggers brownout even
  /// before anything is quarantined.
  int brownout_fail_streak = 6;
  /// Consecutive failed probes of a quarantined replica that trigger a
  /// restart: the replica's backend recompiles a fresh session which then
  /// re-enters the probe loop. 0 = never restart.
  int restart_after = 0;

  // ---- mixed pool / deadline routing -------------------------------------
  /// One slice of a heterogeneous replica pool.
  struct PoolEntry {
    std::string backend;  // registered backend name (backend/backend.h)
    int count = 1;        // replicas compiled by it
  };
  /// Heterogeneous pool spec. Empty = `replicas` copies of
  /// SessionConfig::backend (the homogeneous legacy shape).
  std::vector<PoolEntry> pool;
  /// Route admissions by deadline class: tight requests only ever dispatch
  /// to fast-tier replicas; standard / best-effort may land on slow-tier
  /// ones. false = naive routing — any traffic replica takes anything
  /// (shadow replicas still never take queue traffic).
  bool route_by_deadline = true;
  /// A request whose deadline is at most this is "tight" (kTight).
  std::int64_t tight_deadline_us = 20'000;
  /// Fraction of successfully served requests mirrored to a shadow-tier
  /// replica for comparison (0 = no shadowing). Mirrored results are
  /// compared bit-exactly and counted (ServerMetrics), never returned.
  double shadow_fraction = 0.0;
  /// Bound on queued shadow jobs; overflow is dropped (and counted).
  std::size_t shadow_queue_capacity = 64;
  /// Quarantine a primary replica after this many bit-exactness
  /// mismatches are pinned on it by shadow comparison (it then heals
  /// through the normal probe/readmit path, which also resets the count).
  /// 0 = count mismatches but never escalate.
  int shadow_mismatch_after = 0;
};

/// Backoff gate before retry `attempt` (1-based) may re-dispatch:
/// exponential base retry_backoff_us << (attempt-1), jittered uniformly in
/// [base/2, 3*base/2] from `rng` when config.retry_jitter is set. Exposed
/// as a free function so tests can assert the spread deterministically.
[[nodiscard]] std::int64_t retry_backoff_delay_us(const ServerConfig& config,
                                                  int attempt, Rng& rng);

struct InferenceResult {
  ServerStatus status = ServerStatus::kError;
  IntTensor logits;  // valid iff status == kOk
  double queue_wait_us = 0.0;  // admission -> picked by a worker
  double batch_form_us = 0.0;  // picked -> batch dispatched to the engine
  double total_us = 0.0;       // admission -> future fulfilled
  std::string error;           // set iff status == kError
  int retries = 0;             // times this request was requeued
  int replica = -1;            // replica that produced the final outcome

  [[nodiscard]] bool ok() const { return status == ServerStatus::kOk; }
};

class DfeServer {
 public:
  /// Compiles the replica pool from one network (each replica gets its own
  /// copy of the parameters, compiled by its pool entry's backend) and
  /// starts the workers. Requires at least one non-shadow replica; with
  /// route_by_deadline also at least one fast-tier one (otherwise tight
  /// requests could never dispatch).
  DfeServer(const NetworkSpec& spec, const NetworkParams& params,
            ServerConfig server_config = {},
            SessionConfig session_config = {});
  ~DfeServer();

  DfeServer(const DfeServer&) = delete;
  DfeServer& operator=(const DfeServer&) = delete;

  /// Enqueue one image. `deadline_us` < 0 uses the config default; 0 means
  /// no deadline. The future is always fulfilled — with kOverloaded /
  /// kShutdown immediately, kDeadlineExceeded if the deadline passes in
  /// the queue, kError if inference throws, kOk otherwise.
  [[nodiscard]] std::future<InferenceResult> submit_async(
      IntTensor image, std::int64_t deadline_us = -1);

  /// Synchronous wrapper: submit_async + wait.
  [[nodiscard]] InferenceResult submit(const IntTensor& image,
                                       std::int64_t deadline_us = -1);

  /// Stop admitting, drain every queued request through the replicas, and
  /// join the workers. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] int replicas() const;
  [[nodiscard]] const DfeSession& replica(int i) const;
  /// Current health of replica i in the healing state machine.
  [[nodiscard]] ReplicaHealth replica_health(int i) const;
  [[nodiscard]] const ServerMetrics& metrics() const;
  [[nodiscard]] std::string metrics_report() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qnn
