// "linked" backend: the partitioned LinkedEngine behind the backend seam —
// N StreamEngine segments daisy-chained by fault-tolerant in-process
// MaxRing links, with degraded-plan failover on permanent link death.
// Not a registry builtin: pools that want a partitioned fast tier
// construct one with their cut + link options and register it by name.
#include <memory>
#include <utility>

#include "backend/builtin.h"
#include "verify/backend_check.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

class LinkedBackend;

class LinkedSession final : public BackendSession {
 public:
  LinkedSession(const Backend& owner, const Pipeline& pipeline,
                NetworkParams params, LinkedEngineOptions options)
      : owner_(owner),
        pipeline_(pipeline),
        params_(std::move(params)),
        // The engine holds references into the session's own copies, so
        // the members above must be in place before it is built.
        engine_(std::make_unique<LinkedEngine>(pipeline_, params_,
                                               std::move(options))) {}

  std::vector<IntTensor> infer_batch(std::span<const IntTensor> images,
                                     StreamEngine::RunStats* stats) override {
    return engine_->run(images, stats);
  }

  void cancel() override { engine_->cancel(); }

  const Pipeline& pipeline() const override { return pipeline_; }
  const NetworkParams& params() const override { return params_; }
  const Backend& backend() const override { return owner_; }

 private:
  const Backend& owner_;
  Pipeline pipeline_;
  NetworkParams params_;
  std::unique_ptr<LinkedEngine> engine_;
};

class LinkedBackend final : public Backend {
 public:
  LinkedBackend(LinkedEngineOptions defaults, std::string name)
      : defaults_(std::move(defaults)) {
    info_.name = std::move(name);
    info_.tier = BackendTier::kFast;
    info_.description =
        "partitioned streaming engine over fault-tolerant MaxRing links";
    info_.relative_cost = 1.0;
    info_.max_devices = 8;  // the modeled MPC-X node
  }

  const BackendInfo& info() const override { return info_; }

  bool supports_op(const Node& node) const override {
    // Same datapath limits as the "engine" backend: the segments are
    // plain StreamEngines.
    if (node.in_bits < 1 || node.in_bits > 32) return false;
    if (node.out_bits < 1 || node.out_bits > 32) return false;
    if (node.kind == NodeKind::Conv && node.in_bits > 16) return false;
    return true;
  }

  std::unique_ptr<BackendSession> compile(
      const Pipeline& pipeline, NetworkParams params,
      const EngineOptions& options) const override {
    enforce(verify_backend(pipeline, *this),
            "linked backend compile(" + pipeline.name + ")");
    LinkedEngineOptions linked = defaults_;
    // The per-session EngineOptions win over the backend defaults (plan,
    // faults, replica identity, pinning all flow through here); the
    // LinkedEngine itself resolves the cut from options.plan when the
    // backend was not configured with an explicit one.
    linked.engine = options;
    return std::make_unique<LinkedSession>(*this, pipeline, std::move(params),
                                           std::move(linked));
  }

 private:
  BackendInfo info_;
  LinkedEngineOptions defaults_;
};

}  // namespace

std::unique_ptr<Backend> make_linked_backend(LinkedEngineOptions options,
                                             std::string name) {
  return std::make_unique<LinkedBackend>(std::move(options), std::move(name));
}

}  // namespace qnn
