// "engine" backend: the threaded StreamEngine behind the backend seam —
// the fast tier, and the substrate DfeSession used to construct directly.
#include <memory>
#include <utility>

#include "backend/builtin.h"
#include "verify/backend_check.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

class EngineBackend;

class EngineSession final : public BackendSession {
 public:
  EngineSession(const Backend& owner, const Pipeline& pipeline,
                NetworkParams params, const EngineOptions& options)
      : owner_(owner),
        pipeline_(pipeline),
        params_(std::move(params)),
        // The engine holds references into the session's own copies, so
        // the members above must be in place before it is built.
        engine_(std::make_unique<StreamEngine>(pipeline_, params_, options)) {
  }

  std::vector<IntTensor> infer_batch(std::span<const IntTensor> images,
                                     StreamEngine::RunStats* stats) override {
    return engine_->run(images, stats);
  }

  void cancel() override { engine_->cancel(); }

  const Pipeline& pipeline() const override { return pipeline_; }
  const NetworkParams& params() const override { return params_; }
  const Backend& backend() const override { return owner_; }

 private:
  const Backend& owner_;
  Pipeline pipeline_;
  NetworkParams params_;
  std::unique_ptr<StreamEngine> engine_;
};

class EngineBackend final : public Backend {
 public:
  EngineBackend() {
    info_.name = "engine";
    info_.tier = BackendTier::kFast;
    info_.description =
        "threaded streaming engine (bit-exact DFE stand-in)";
    info_.relative_cost = 1.0;
    info_.max_devices = 8;  // the modeled MPC-X node
  }

  const BackendInfo& info() const override { return info_; }

  bool supports_op(const Node& node) const override {
    // Stream packing carries 1..32-bit codes; the XNOR bit-plane datapath
    // additionally caps convolution inputs at 16 planes (same limit the
    // D105 analysis enforces).
    if (node.in_bits < 1 || node.in_bits > 32) return false;
    if (node.out_bits < 1 || node.out_bits > 32) return false;
    if (node.kind == NodeKind::Conv && node.in_bits > 16) return false;
    return true;
  }

  std::unique_ptr<BackendSession> compile(
      const Pipeline& pipeline, NetworkParams params,
      const EngineOptions& options) const override {
    enforce(verify_backend(pipeline, *this),
            "engine backend compile(" + pipeline.name + ")");
    return std::make_unique<EngineSession>(*this, pipeline,
                                           std::move(params), options);
  }

 private:
  BackendInfo info_;
};

}  // namespace

std::unique_ptr<Backend> make_engine_backend() {
  return std::make_unique<EngineBackend>();
}

}  // namespace qnn
