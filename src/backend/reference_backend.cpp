// "reference" backend: the scalar golden-model executor, deliberately
// paced — the slow tier. It exists for conformance (every other backend
// must match it bit for bit) and as best-effort overflow capacity in a
// mixed pool; deadline-class routing keeps tight traffic off it.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "backend/builtin.h"
#include "core/error.h"
#include "nn/reference.h"
#include "verify/backend_check.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

class ReferenceSession final : public BackendSession {
 public:
  ReferenceSession(const Backend& owner, const Pipeline& pipeline,
                   NetworkParams params, std::int64_t floor_us_per_image)
      : owner_(owner),
        pipeline_(pipeline),
        params_(std::move(params)),
        floor_us_(floor_us_per_image),
        ref_(pipeline_, params_) {}

  std::vector<IntTensor> infer_batch(std::span<const IntTensor> images,
                                     StreamEngine::RunStats* stats) override {
    abort_.store(false, std::memory_order_relaxed);  // re-arm per run
    const auto start = std::chrono::steady_clock::now();
    std::vector<IntTensor> out;
    out.reserve(images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      if (abort_.load(std::memory_order_relaxed)) {
        throw Error("reference backend: run cancelled");
      }
      out.push_back(ref_.run(images[i]));
      // Pace to the per-image floor in short slices so cancel() (the
      // serving watchdog) still lands promptly mid-sleep.
      const auto due =
          start + std::chrono::microseconds(floor_us_ *
                                            static_cast<std::int64_t>(i + 1));
      while (floor_us_ > 0 && std::chrono::steady_clock::now() < due) {
        if (abort_.load(std::memory_order_relaxed)) {
          throw Error("reference backend: run cancelled");
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    if (stats != nullptr) {
      *stats = {};
      stats->wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (stats->wall_seconds > 0.0) {
        stats->images_per_second =
            static_cast<double>(images.size()) / stats->wall_seconds;
      }
    }
    return out;
  }

  void cancel() override { abort_.store(true, std::memory_order_relaxed); }

  const Pipeline& pipeline() const override { return pipeline_; }
  const NetworkParams& params() const override { return params_; }
  const Backend& backend() const override { return owner_; }

 private:
  const Backend& owner_;
  Pipeline pipeline_;
  NetworkParams params_;
  std::int64_t floor_us_;
  ReferenceExecutor ref_;  // references the session's own copies above
  std::atomic<bool> abort_{false};
};

class ReferenceBackend final : public Backend {
 public:
  ReferenceBackend(std::int64_t floor_us_per_image, std::string name)
      : floor_us_(floor_us_per_image) {
    info_.name = std::move(name);
    info_.tier = BackendTier::kSlow;
    info_.description =
        "scalar golden-model executor, deliberately paced (conformance / "
        "best-effort tier)";
    info_.relative_cost = 20.0;
    info_.max_devices = 4;
  }

  const BackendInfo& info() const override { return info_; }

  bool supports_op(const Node& node) const override {
    // The golden model executes every lowered node kind at any width the
    // tensor representation can hold.
    return node.in_bits >= 1 && node.in_bits <= 32 && node.out_bits >= 1 &&
           node.out_bits <= 32;
  }

  std::unique_ptr<BackendSession> compile(
      const Pipeline& pipeline, NetworkParams params,
      const EngineOptions& options) const override {
    (void)options;  // no engine-side tuning applies to the scalar path
    enforce(verify_backend(pipeline, *this),
            "reference backend compile(" + pipeline.name + ")");
    return std::make_unique<ReferenceSession>(*this, pipeline,
                                              std::move(params), floor_us_);
  }

 private:
  BackendInfo info_;
  std::int64_t floor_us_;
};

}  // namespace

std::unique_ptr<Backend> make_reference_backend(
    std::int64_t floor_us_per_image, std::string name) {
  return std::make_unique<ReferenceBackend>(floor_us_per_image,
                                            std::move(name));
}

}  // namespace qnn
