// Backend seam: pluggable execution substrates behind one serving tier.
//
// The paper's deployment assumes a single substrate — the threaded
// streaming engine standing in for the DFE — but a farm serving mixed
// traffic wants several: fast engine replicas for production inference, a
// cycle-simulator backend for shadow what-if serving (bit-exact results
// plus *modeled* DFE latency), and a deliberately slow scalar reference
// backend for conformance and best-effort overflow. The seam follows the
// ggml/QNN backend registry shape (ggml_backend_qnn_reg /
// ggml_qnn_supports_op): a process-wide registry of named backends, each
// exposing capability/cost descriptors, a per-node supports_op() gate that
// runs as a QNN-D5xx check before compile (verify/backend_check.h), and a
// compile() that lowers a verified Pipeline into an executable
// BackendSession.
//
// Three builtins register on first use of backend_registry():
//
//   name         tier     substrate
//   "engine"     kFast    threaded StreamEngine (the DFE stand-in)
//   "simulator"  kShadow  cycle-sim timing + reference-path results
//   "reference"  kSlow    scalar ReferenceExecutor, deliberately paced
//
// DfeSession (host/) is a thin wrapper over one BackendSession; DfeServer
// (serve/) builds mixed replica pools across tiers and routes admissions
// by deadline class.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dataflow/engine.h"
#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

/// Replica tier a backend's sessions serve in a mixed pool (serve/).
enum class BackendTier {
  kFast,    // production traffic; the only tier tight deadlines may use
  kShadow,  // mirrored traffic only; results are compared, never returned
  kSlow,    // conformance / best-effort overflow
};

[[nodiscard]] const char* to_string(BackendTier tier);

/// Capability / cost descriptor of one backend.
struct BackendInfo {
  std::string name;
  BackendTier tier = BackendTier::kFast;
  std::string description;
  /// Rough per-image cost relative to the engine backend (1.0). Used for
  /// display and pool sizing, not for admission decisions.
  double relative_cost = 1.0;
  /// Devices of this kind one process may drive at once (a replica bound;
  /// the modeled MPC-X node holds 8 DFEs).
  int max_devices = 8;
};

class Backend;

/// One compiled instance of a backend — the analog of a configured board.
///
/// Thread contract mirrors the old DfeSession: one session models ONE
/// device, so concurrent infer_batch() calls on the same session are not
/// allowed; distinct sessions share no mutable state and may run
/// concurrently. cancel() is the exception: it may be called from another
/// thread to abort an in-flight run (the run throws, the session stays
/// usable and re-arms on the next run).
class BackendSession {
 public:
  BackendSession() = default;
  virtual ~BackendSession() = default;
  BackendSession(const BackendSession&) = delete;
  BackendSession& operator=(const BackendSession&) = delete;

  /// Run a batch; returns one logits tensor per image. When `stats` is
  /// non-null it receives wall-clock and transport statistics; backends
  /// that model timing instead of measuring it also fill
  /// RunStats::simulated_seconds.
  [[nodiscard]] virtual std::vector<IntTensor> infer_batch(
      std::span<const IntTensor> images,
      StreamEngine::RunStats* stats = nullptr) = 0;

  /// Abort an in-flight infer_batch() from another thread.
  virtual void cancel() = 0;

  [[nodiscard]] virtual const Pipeline& pipeline() const = 0;
  [[nodiscard]] virtual const NetworkParams& params() const = 0;
  /// The (registry-owned) backend that compiled this session.
  [[nodiscard]] virtual const Backend& backend() const = 0;

  /// Human-readable description of the compiled artifact; backends extend
  /// the default (network summary + backend identity) with their own
  /// placement/timing details.
  [[nodiscard]] virtual std::string report() const;

  /// Single-image convenience wrappers over infer_batch().
  [[nodiscard]] IntTensor infer(const IntTensor& image);
  [[nodiscard]] int classify(const IntTensor& image);
};

/// An execution substrate that can lower pipelines into sessions.
/// Implementations are stateless after construction (compile() is const),
/// so one registry-owned instance serves every thread.
class Backend {
 public:
  Backend() = default;
  virtual ~Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  [[nodiscard]] virtual const BackendInfo& info() const = 0;

  /// Devices currently available to this backend; a backend reporting 0
  /// fails the QNN-D502 check and cannot compile.
  [[nodiscard]] virtual int device_count() const { return info().max_devices; }

  /// Can this backend execute `node` bit-exactly? Gated per node as
  /// QNN-D501 before compile (verify/backend_check.h) — the ggml-qnn
  /// supports_op shape.
  [[nodiscard]] virtual bool supports_op(const Node& node) const = 0;

  /// Lower a pipeline into an executable session. Implementations enforce
  /// the D5xx support check first and copy `pipeline`/`params`, so the
  /// session outlives both arguments. EngineOptions carries substrate
  /// tuning (burst plan, executor, faults) and optionally a pre-built
  /// CompiledPlan (EngineOptions::plan, non-owning — see
  /// plan/compiled_plan.h) whose FIFO streams the engine backend wires
  /// verbatim; non-engine backends consume what applies (e.g. the verify
  /// flag) and ignore the rest.
  [[nodiscard]] virtual std::unique_ptr<BackendSession> compile(
      const Pipeline& pipeline, NetworkParams params,
      const EngineOptions& options = {}) const = 0;

  [[nodiscard]] const std::string& name() const { return info().name; }
  [[nodiscard]] BackendTier tier() const { return info().tier; }
};

/// Name-keyed backend collection. Registration is append-only (backends
/// are process-lifetime, like the ggml registry); lookups are by unique
/// name. Thread-safe.
class BackendRegistry {
 public:
  /// Register and take ownership; the name must be unused. Returns the
  /// registered backend (stable for the registry's lifetime).
  Backend& register_backend(std::unique_ptr<Backend> backend);

  /// Backend by name, or nullptr.
  [[nodiscard]] Backend* find(std::string_view name) const;
  /// Backend by name; throws qnn::Error listing the registered names.
  [[nodiscard]] Backend& at(std::string_view name) const;
  /// First registered backend of `tier`, or nullptr.
  [[nodiscard]] Backend* first_of_tier(BackendTier tier) const;
  /// Every registered backend, in registration order.
  [[nodiscard]] std::vector<Backend*> all() const;
  [[nodiscard]] int size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

/// The process-wide registry. The three builtin backends ("engine",
/// "simulator", "reference" — see backend/builtin.h) are registered on
/// first call; further backends may be added by anyone at any time.
[[nodiscard]] BackendRegistry& backend_registry();

}  // namespace qnn
