#include "backend/backend.h"

#include <sstream>
#include <utility>

#include "backend/builtin.h"
#include "core/error.h"
#include "io/table.h"
#include "nn/reference.h"
#include "nn/summary.h"

namespace qnn {

const char* to_string(BackendTier tier) {
  switch (tier) {
    case BackendTier::kFast:
      return "fast";
    case BackendTier::kShadow:
      return "shadow";
    case BackendTier::kSlow:
      return "slow";
  }
  return "unknown";
}

std::string BackendSession::report() const {
  const BackendInfo& info = backend().info();
  std::ostringstream os;
  os << summarize(pipeline()) << "\n";
  os << "backend: " << info.name << " (" << to_string(info.tier)
     << " tier, ~" << Table::num(info.relative_cost, 2)
     << "x engine cost) — " << info.description << "\n";
  return os.str();
}

IntTensor BackendSession::infer(const IntTensor& image) {
  std::vector<IntTensor> out = infer_batch({&image, 1});
  return std::move(out.front());
}

int BackendSession::classify(const IntTensor& image) {
  return ReferenceExecutor::argmax(infer(image));
}

Backend& BackendRegistry::register_backend(std::unique_ptr<Backend> backend) {
  QNN_CHECK(backend != nullptr, "cannot register a null backend");
  const std::string& name = backend->name();
  QNN_CHECK(!name.empty(), "backend name must not be empty");
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : backends_) {
    QNN_CHECK(b->name() != name,
              "backend \"" + name + "\" is already registered");
  }
  backends_.push_back(std::move(backend));
  return *backends_.back();
}

Backend* BackendRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

Backend& BackendRegistry::at(std::string_view name) const {
  Backend* b = find(name);
  if (b != nullptr) return *b;
  std::string known;
  for (Backend* reg : all()) {
    if (!known.empty()) known += ", ";
    known += "\"" + reg->name() + "\"";
  }
  throw Error("unknown backend \"" + std::string(name) +
              "\" (registered: " + known + ")");
}

Backend* BackendRegistry::first_of_tier(BackendTier tier) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : backends_) {
    if (b->tier() == tier) return b.get();
  }
  return nullptr;
}

std::vector<Backend*> BackendRegistry::all() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Backend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  return out;
}

int BackendRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(backends_.size());
}

BackendRegistry& backend_registry() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->register_backend(make_engine_backend());
    r->register_backend(make_sim_backend());
    r->register_backend(make_reference_backend());
    return r;
  }();
  return *registry;
}

}  // namespace qnn
