#include "backend/backend.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

#include "backend/builtin.h"
#include "core/error.h"
#include "io/table.h"
#include "nn/reference.h"
#include "nn/summary.h"

namespace qnn {

const char* to_string(BackendTier tier) {
  switch (tier) {
    case BackendTier::kFast:
      return "fast";
    case BackendTier::kShadow:
      return "shadow";
    case BackendTier::kSlow:
      return "slow";
  }
  return "unknown";
}

std::string BackendSession::report() const {
  const BackendInfo& info = backend().info();
  std::ostringstream os;
  os << summarize(pipeline()) << "\n";
  os << "backend: " << info.name << " (" << to_string(info.tier)
     << " tier, ~" << Table::num(info.relative_cost, 2)
     << "x engine cost) — " << info.description << "\n";
  return os.str();
}

IntTensor BackendSession::infer(const IntTensor& image) {
  std::vector<IntTensor> out = infer_batch({&image, 1});
  return std::move(out.front());
}

int BackendSession::classify(const IntTensor& image) {
  return ReferenceExecutor::argmax(infer(image));
}

Backend& BackendRegistry::register_backend(std::unique_ptr<Backend> backend) {
  QNN_CHECK(backend != nullptr, "cannot register a null backend");
  const std::string& name = backend->name();
  QNN_CHECK(!name.empty(), "backend name must not be empty");
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : backends_) {
    QNN_CHECK(b->name() != name,
              "backend \"" + name + "\" is already registered");
  }
  backends_.push_back(std::move(backend));
  return *backends_.back();
}

Backend* BackendRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : backends_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

namespace {

std::string lowercased(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Edit distance, banded: callers only care about "one typo away".
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

Backend& BackendRegistry::at(std::string_view name) const {
  Backend* b = find(name);
  if (b != nullptr) return *b;
  std::string known;
  std::string nearest;
  std::size_t nearest_distance = 3;  // suggest only plausible typos
  const std::string wanted = lowercased(name);
  for (Backend* reg : all()) {
    if (!known.empty()) known += ", ";
    known += "\"" + reg->name() + "\"";
    const std::size_t d = edit_distance(wanted, lowercased(reg->name()));
    if (d < nearest_distance) {
      nearest_distance = d;
      nearest = reg->name();
    }
  }
  std::string message = "unknown backend \"" + std::string(name) +
                        "\" (registered: " + known + ")";
  if (!nearest.empty()) {
    message += "; did you mean \"" + nearest + "\"?";
  }
  throw Error(message);
}

Backend* BackendRegistry::first_of_tier(BackendTier tier) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : backends_) {
    if (b->tier() == tier) return b.get();
  }
  return nullptr;
}

std::vector<Backend*> BackendRegistry::all() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Backend*> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b.get());
  return out;
}

int BackendRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(backends_.size());
}

BackendRegistry& backend_registry() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->register_backend(make_engine_backend());
    r->register_backend(make_sim_backend());
    r->register_backend(make_reference_backend());
    return r;
  }();
  return *registry;
}

}  // namespace qnn
