// Factories for the builtin backends. backend_registry() registers one of
// each on first use; tests and pools that want differently configured
// instances (a simulator with cuts, a slower reference tier) construct
// their own and register them under a new name.
#pragma once

#include <cstdint>
#include <memory>

#include "backend/backend.h"
#include "dataflow/linked_engine.h"
#include "sim/cycle_model.h"

namespace qnn {

/// "engine" (kFast): the threaded StreamEngine, bit-exact and concurrent —
/// the software stand-in for a real DFE board.
[[nodiscard]] std::unique_ptr<Backend> make_engine_backend();

/// "simulator" (kShadow): results via the scalar reference path, latency
/// from the cycle simulator (§IV-B4 timing methodology). Timing is
/// data-independent, so the simulation runs once at compile(); each
/// infer_batch() reports the modeled batch time in
/// RunStats::simulated_seconds.
[[nodiscard]] std::unique_ptr<Backend> make_sim_backend(SimConfig sim = {});

/// "reference" (kSlow): the scalar ReferenceExecutor paced to at least
/// `floor_us_per_image` — a deliberately slow tier, so routing tests and
/// the serving ablation see a genuine fast/slow split even on the tiny
/// test networks. `name` lets extra instances (a slower ablation tier)
/// register alongside the builtin without a name clash.
[[nodiscard]] std::unique_ptr<Backend> make_reference_backend(
    std::int64_t floor_us_per_image = 1000, std::string name = "reference");

/// "linked" (kFast, NOT a registry builtin): the partitioned LinkedEngine —
/// N StreamEngine segments over fault-tolerant in-process MaxRing links
/// with degraded-plan failover (dataflow/linked_engine.h). `options`
/// carries the cut, link pacing and watchdog knobs; the per-session
/// EngineOptions handed to compile() override options.engine wholesale
/// (so plans, faults and replica identities flow through the normal
/// session path). Register an instance by name to put a partitioned fast
/// tier into a DfeServer pool.
[[nodiscard]] std::unique_ptr<Backend> make_linked_backend(
    LinkedEngineOptions options = {}, std::string name = "linked");

}  // namespace qnn
