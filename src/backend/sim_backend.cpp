// "simulator" backend: bit-exact results via the scalar reference path,
// latency from the cycle simulator. The shadow tier of a mixed pool:
// DfeServer mirrors a fraction of served traffic here and compares, so a
// what-if DFE configuration (different datapath width, cuts, link rates)
// can be evaluated against production results without serving from it.
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "backend/builtin.h"
#include "core/error.h"
#include "io/table.h"
#include "nn/reference.h"
#include "verify/backend_check.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

class SimSession final : public BackendSession {
 public:
  SimSession(const Backend& owner, const Pipeline& pipeline,
             NetworkParams params, const SimConfig& sim)
      : owner_(owner),
        pipeline_(pipeline),
        params_(std::move(params)),
        sim_(sim),
        ref_(pipeline_, params_) {
    // Timing is data-independent (the dataflow is input-static), so one
    // simulation at compile time prices every future batch.
    const SimResult r = simulate(pipeline_, sim_, /*images=*/2);
    first_image_cycles_ = r.first_image_cycles;
    steady_interval_ = r.steady_interval;
  }

  std::vector<IntTensor> infer_batch(std::span<const IntTensor> images,
                                     StreamEngine::RunStats* stats) override {
    abort_.store(false, std::memory_order_relaxed);  // re-arm per run
    const auto start = std::chrono::steady_clock::now();
    std::vector<IntTensor> out;
    out.reserve(images.size());
    for (const IntTensor& image : images) {
      if (abort_.load(std::memory_order_relaxed)) {
        throw Error("simulator backend: run cancelled");
      }
      out.push_back(ref_.run(image));
    }
    if (stats != nullptr) {
      *stats = {};
      stats->wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (stats->wall_seconds > 0.0) {
        stats->images_per_second =
            static_cast<double>(images.size()) / stats->wall_seconds;
      }
      stats->simulated_seconds = simulated_seconds(images.size());
    }
    return out;
  }

  void cancel() override { abort_.store(true, std::memory_order_relaxed); }

  const Pipeline& pipeline() const override { return pipeline_; }
  const NetworkParams& params() const override { return params_; }
  const Backend& backend() const override { return owner_; }

  std::string report() const override {
    std::ostringstream os;
    os << BackendSession::report();
    os << "simulated timing: " << steady_interval_ << " clocks/image ("
       << Table::num(1e6 * simulated_seconds(1), 1) << " us first image, "
       << Table::num(sim_.clock_hz /
                         static_cast<double>(steady_interval_),
                     1)
       << " fps steady state @ " << Table::num(sim_.clock_hz / 1e6, 0)
       << " MHz)\n";
    return os.str();
  }

 private:
  [[nodiscard]] double simulated_seconds(std::size_t images) const {
    if (images == 0) return 0.0;
    const auto cycles =
        first_image_cycles_ +
        steady_interval_ * static_cast<std::uint64_t>(images - 1);
    return static_cast<double>(cycles) / sim_.clock_hz;
  }

  const Backend& owner_;
  Pipeline pipeline_;
  NetworkParams params_;
  SimConfig sim_;
  ReferenceExecutor ref_;  // references the session's own copies above
  std::uint64_t first_image_cycles_ = 0;
  std::uint64_t steady_interval_ = 1;
  std::atomic<bool> abort_{false};
};

class SimBackend final : public Backend {
 public:
  explicit SimBackend(SimConfig sim) : sim_(std::move(sim)) {
    info_.name = "simulator";
    info_.tier = BackendTier::kShadow;
    info_.description =
        "cycle-simulator timing with reference-path results (shadow "
        "what-if serving)";
    // The reference path is orders of magnitude slower than the engine's
    // concurrent kernels; shadow traffic must stay a small fraction.
    info_.relative_cost = 50.0;
    info_.max_devices = 2;
  }

  const BackendInfo& info() const override { return info_; }

  bool supports_op(const Node& node) const override {
    // The simulator prices any node the reference path can execute.
    return node.in_bits >= 1 && node.in_bits <= 32 && node.out_bits >= 1 &&
           node.out_bits <= 32;
  }

  std::unique_ptr<BackendSession> compile(
      const Pipeline& pipeline, NetworkParams params,
      const EngineOptions& options) const override {
    (void)options;  // the simulator takes its tuning from SimConfig
    enforce(verify_backend(pipeline, *this),
            "simulator backend compile(" + pipeline.name + ")");
    return std::make_unique<SimSession>(*this, pipeline, std::move(params),
                                        sim_);
  }

 private:
  BackendInfo info_;
  SimConfig sim_;
};

}  // namespace

std::unique_ptr<Backend> make_sim_backend(SimConfig sim) {
  return std::make_unique<SimBackend>(std::move(sim));
}

}  // namespace qnn
