// In-process MaxRing link: reliable framed transport between two
// StreamEngine segments of a partitioned pipeline (paper §III-C).
//
// The link carries the burst frames the compile-time plan priced: a frame
// is `frame_values` stream values plus a sequence number and an FNV-1a
// checksum, and every transmission is paced by the partitioner's
// `link_bits_per_cycle` arithmetic (a frame of v values of b bits
// occupies ceil(v*b / w) link words at the fabric clock), so the live
// wire and the simulated/priced wire agree on transaction granularity
// and rate.
//
// Reliability is stop-and-wait with a sender-side watchdog:
//
//   transmit ──> wait for ack ──(ack)──> done
//        ^            │
//        │       (nack / timeout)
//        │            v
//        └── jittered exponential backoff, bounded retransmits
//                     │
//              (budget exhausted)
//                     v
//        escalate: link marked dead, LinkDeadError thrown on both sides
//
// Acks happen at ARRIVAL into the link-layer delivery queue (checksum
// verified there too), not when the consumer pops: ack health reflects
// the wire alone, so a wedged downstream segment cannot time out every
// upstream link's watchdog and misdirect failover at the cascade instead
// of the cause. Consumer backpressure is separate flow control — a full
// delivery queue blocks the sender under the (much longer) receiver
// patience bound. Corrupted frames are detected by the arrival checksum
// and nacked; dropped frames (outage windows, permanent death — injected
// via a LinkFaultSite from fault/fault.h) surface as ack timeouts. A
// healthy link never loses or reorders data: delivery is exactly-once,
// in order (duplicate arrivals are discarded by sequence number).
// Escalation is the failover trigger the LinkedEngine uses to recompile
// a degraded plan.
//
// Threading: exactly one sender thread and one receiver thread per link
// (the two adjacent segment drivers). abort() may be called from any
// thread to unblock both sides.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "fault/fault.h"

namespace qnn {

/// Link words one frame occupies on the wire — the exact rounding
/// CrossingStream::wire_mbps prices (ceil(values*bits / w) whole words).
[[nodiscard]] constexpr std::uint64_t link_frame_cycles(
    std::uint64_t values, int bits, int link_bits_per_cycle) {
  if (values == 0 || bits <= 0 || link_bits_per_cycle <= 0) return 1;
  const auto w = static_cast<std::uint64_t>(link_bits_per_cycle);
  return (values * static_cast<std::uint64_t>(bits) + w - 1) / w;
}

/// FNV-1a 64 over the sequence number and payload words.
[[nodiscard]] std::uint64_t link_frame_checksum(
    std::uint64_t seq, std::span<const std::int32_t> payload);

/// Thrown by send()/recv() once the link has escalated to dead (or was
/// killed externally). Catching this — as opposed to a generic Error — is
/// how the LinkedEngine distinguishes "fail over" from "fail".
class LinkDeadError : public Error {
 public:
  explicit LinkDeadError(const std::string& what) : Error(what) {}
};

struct LinkConfig {
  std::string name = "link";
  /// Element width of the carried stream (the boundary node's out_bits);
  /// only used for wire pricing — payload words travel as int32 in
  /// process, exactly like Stream's backing store.
  int bits = 32;
  /// MaxRing word width per fabric cycle; 38 bits at 105 MHz is the
  /// paper's 4 Gbps link. Matches PartitionConfig::link_bits_per_cycle.
  int link_bits_per_cycle = 38;
  double clock_hz = 105e6;
  /// Throttle transmissions to the modeled wire rate so live behaviour
  /// matches the D401 pricing. Off = in-process memcpy speed.
  bool pace = true;
  /// Sender watchdog: how long one transmission may wait for its
  /// arrival ack before it counts as lost. Acks are immediate on a
  /// healthy wire (arrival-acked), so this bounds wire loss only.
  std::int64_t ack_timeout_us = 20000;
  /// Retransmissions before the watchdog escalates to link death.
  int max_retransmits = 8;
  /// Patience bound for BOTH consumer-side stalls: how long recv() waits
  /// for any frame before declaring the upstream wedged, and how long a
  /// sender waits for delivery-queue room before declaring the consumer
  /// wedged. Orders of magnitude above the full retransmit budget, so a
  /// genuinely lossy link always escalates first and failover blames the
  /// right ordinal.
  std::int64_t recv_patience_us = 500000;
  /// Base backoff between retransmissions; doubles per attempt, jittered
  /// +-50% from `backoff_seed` so parallel links do not retry in lockstep.
  std::int64_t retransmit_backoff_us = 200;
  std::uint64_t backoff_seed = 1;
  /// Flow-control bound: delivered frames the consumer may leave unpopped
  /// before the sender blocks (under the patience bound above).
  std::size_t queue_frames = 8;
};

struct LinkStats {
  std::uint64_t frames_sent = 0;      // distinct frames accepted by send()
  std::uint64_t transmissions = 0;    // including retransmissions
  std::uint64_t frames_delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t checksum_drops = 0;   // receiver rejected a corrupt frame
  std::uint64_t outage_drops = 0;     // wire ate the frame (fault site)
  std::uint64_t timeouts = 0;         // ack waits that expired
  std::uint64_t wire_cycles = 0;      // modeled link words shipped
  bool dead = false;
};

class MaxRingLink {
 public:
  explicit MaxRingLink(LinkConfig config);

  MaxRingLink(const MaxRingLink&) = delete;
  MaxRingLink& operator=(const MaxRingLink&) = delete;

  /// Attach the fault seam (may be nullptr). Call before the run starts;
  /// the site is consulted on the sender thread only.
  void set_fault(LinkFaultSite* site) { fault_ = site; }

  /// Reliably deliver one frame (sender thread). Blocks until the
  /// receiver acked it; throws LinkDeadError after the retransmit budget
  /// is exhausted, or Error if abort() was called.
  void send(std::span<const std::int32_t> payload);

  /// Reliably deliver the end-of-stream marker (sender thread).
  void close();

  /// Receive the next frame in order (receiver thread). Returns false on
  /// end-of-stream; throws LinkDeadError once the link is dead.
  [[nodiscard]] bool recv(std::vector<std::int32_t>& out);

  /// Unblock both sides with a non-failover Error (engine cancellation).
  void abort();

  [[nodiscard]] bool dead() const;
  [[nodiscard]] LinkStats stats() const;
  [[nodiscard]] const std::string& name() const { return config_.name; }

 private:
  struct WireFrame {
    std::uint64_t seq = 0;
    bool last = false;
    std::uint64_t checksum = 0;
    std::vector<std::int32_t> payload;
  };

  void reliable_send(WireFrame frame);
  /// One transmission attempt: price the wire cycles, pass the frame
  /// through the fault seam, and — when it arrives — verify the checksum
  /// and ack/nack at the receiving link layer. Caller holds mu_.
  void transmit_locked(const WireFrame& frame);
  [[noreturn]] void throw_dead_locked() const;

  LinkConfig config_;
  LinkFaultSite* fault_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable tx_cv_;  // sender waits for ack / nack
  std::condition_variable rx_cv_;  // receiver waits for wire frames
  std::deque<WireFrame> wire_;
  std::uint64_t next_seq_ = 0;  // sender-side
  std::uint64_t ack_seq_ = 0;   // receiver-side: next expected sequence
  bool nack_ = false;
  bool dead_ = false;
  bool aborted_ = false;
  std::string dead_reason_;
  LinkStats stats_;
  Rng backoff_rng_;
  std::chrono::steady_clock::time_point wire_epoch_;
};

}  // namespace qnn
