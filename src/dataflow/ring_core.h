// RingCore: the lock-free SPSC ring *index protocol*, templated on the
// synchronization seam (sync.h).
//
// This is the part of Stream that the model checker must be able to run
// on virtual threads: the head/tail/closed publication protocol and the
// wake-after-transaction contract with the ready-queue scheduler. The
// payload copy stays with the caller (Stream interleaves fault-injection
// filtering into it; the model checker writes sequence numbers) — RingCore
// only hands out a contiguous window of slot indices and publishes the
// index update, in exactly this order:
//
//   producer:  push_window() -> copy payload -> commit_push() -> wake
//   consumer:  pop_window()  -> copy payload -> commit_pop()  -> wake
//
// The release store inside commit_* is what makes the payload copy visible
// to the other side's acquire load in the next *_window() call; the wake
// fires strictly after the store so a woken task's re-step can always see
// the transaction that woke it (see ReadyHook below and the lost-wakeup
// discussion in ready_protocol.h).
#pragma once

#include <algorithm>
#include <cstddef>

#include "dataflow/sync.h"

namespace qnn {

/// Executor-side readiness sink (the seam the ready-queue scheduler plugs
/// into a Stream): wake(task) tells the executor that the stream activity
/// which just happened may have unblocked `task`, so it must be (re)queued
/// unless it is already queued or running.
///
/// The protocol is eventcount-shaped and deliberately *level*-based rather
/// than strictly edge-triggered: a wake fires after EVERY successful ring
/// transaction (push -> wake consumer, pop -> wake producer) plus close()
/// (-> wake consumer), not only on empty->nonempty / full->nonfull
/// transitions. A strict transition test on the producer side would read a
/// stale tail_ and could conclude "not empty" exactly while the consumer
/// is going idle — the classic lost wakeup. Firing per transaction keeps
/// the check race-free at the cost of one fence + one atomic load per
/// *burst*, which adaptive per-edge sizing amortizes over the whole row.
/// Implementations must tolerate spurious wakes and wakes for tasks that
/// are already queued, running, or done.
class ReadyHook {
 public:
  virtual ~ReadyHook() = default;

  /// May be called from any worker thread, concurrently with itself.
  virtual void wake(int task) = 0;
};

/// Index window handed out by push_window()/pop_window(): `start` is the
/// unmasked ring position of the first slot, `count` how many contiguous
/// (mod mask) slots the caller may fill / read. count == 0 means full /
/// empty — nothing was reserved and commit must not be called.
struct RingWindow {
  std::size_t start = 0;
  std::size_t count = 0;
};

template <class Sync = RealSync>
class RingCore {
 public:
  explicit RingCore(std::size_t capacity)
      : capacity_(capacity),
        ring_(round_up_pow2(capacity + 1)),
        mask_(ring_ - 1) {}

  RingCore(const RingCore&) = delete;
  RingCore& operator=(const RingCore&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t ring_size() const { return ring_; }
  [[nodiscard]] std::size_t mask() const { return mask_; }

  // ---- readiness seam ----------------------------------------------------
  //
  // Bound by the executor before workers start and cleared after they
  // join, so the fields need no synchronization of their own. A null hook
  // costs one branch per ring transaction.

  /// The task to wake when values are pushed into (or the ring is closed
  /// toward) the consumer side.
  void bind_consumer(ReadyHook* hook, int task) {
    consumer_hook_ = hook;
    consumer_task_ = task;
  }

  /// The task to wake when values are popped out (space for the producer).
  void bind_producer(ReadyHook* hook, int task) {
    producer_hook_ = hook;
    producer_task_ = task;
  }

  // ---- producer side (single producer) -----------------------------------

  /// Reserve up to `want` free slots. count == 0 when the ring is full.
  [[nodiscard]] RingWindow push_window(std::size_t want) const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t used =
        (head - tail_.load(std::memory_order_acquire)) & mask_;
    const std::size_t n = std::min(capacity_ - used, want);
    return {head, n};
  }

  /// Publish `n` slots written from `window.start` and wake the consumer.
  void commit_push(const RingWindow& window, std::size_t n) {
    head_.store((window.start + n) & mask_, std::memory_order_release);
    if (consumer_hook_ != nullptr) consumer_hook_->wake(consumer_task_);
  }

  // ---- consumer side (single consumer) -----------------------------------

  /// Reserve up to `want` readable slots. count == 0 when the ring is
  /// empty (distinguish starvation from end of stream with drained()).
  [[nodiscard]] RingWindow pop_window(std::size_t want) const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t avail =
        (head_.load(std::memory_order_acquire) - tail) & mask_;
    return {tail, std::min(avail, want)};
  }

  /// Release `n` slots read from `window.start` and wake the producer.
  void commit_pop(const RingWindow& window, std::size_t n) {
    tail_.store((window.start + n) & mask_, std::memory_order_release);
    if (producer_hook_ != nullptr) producer_hook_->wake(producer_task_);
  }

  // ---- lifecycle ---------------------------------------------------------

  /// Producer signals end of data; pending values remain poppable. The
  /// consumer is woken so it can observe drained() without another push.
  void close() {
    closed_.store(true, std::memory_order_release);
    if (consumer_hook_ != nullptr) consumer_hook_->wake(consumer_task_);
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Closed and fully drained: no value will ever arrive again. Consumer
  /// view; pair with a pop_window() whose count was 0.
  [[nodiscard]] bool drained() const {
    // Order matters: closed must be read before emptiness, otherwise a
    // close() racing between the two loads could report a live stream as
    // drained while its last values are still in the ring.
    const bool closed = closed_.load(std::memory_order_acquire);
    const bool empty = tail_.load(std::memory_order_relaxed) ==
                       head_.load(std::memory_order_acquire);
    return closed && empty;
  }

  /// Reset to the freshly constructed state. Only valid while no producer
  /// or consumer threads are active (the engine calls this between runs).
  void reset() {
    head_.store(0, std::memory_order_seq_cst);
    tail_.store(0, std::memory_order_seq_cst);
    closed_.store(false, std::memory_order_seq_cst);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t ring_;
  const std::size_t mask_;
  alignas(64) typename Sync::template Atomic<std::size_t> head_{0};
  alignas(64) typename Sync::template Atomic<std::size_t> tail_{0};
  typename Sync::template Atomic<bool> closed_{false};
  ReadyHook* consumer_hook_ = nullptr;
  ReadyHook* producer_hook_ = nullptr;
  int consumer_task_ = -1;
  int producer_task_ = -1;
};

}  // namespace qnn
