#include "dataflow/link.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace qnn {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

std::uint64_t link_frame_checksum(std::uint64_t seq,
                                  std::span<const std::int32_t> payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t byte) {
    h ^= byte & 0xffU;
    h *= 0x100000001b3ULL;
  };
  for (int shift = 0; shift < 64; shift += 8) mix(seq >> shift);
  for (const std::int32_t v : payload) {
    const auto u = static_cast<std::uint32_t>(v);
    for (int shift = 0; shift < 32; shift += 8) mix(u >> shift);
  }
  return h;
}

MaxRingLink::MaxRingLink(LinkConfig config)
    : config_(std::move(config)),
      backoff_rng_(config_.backoff_seed),
      wire_epoch_(Clock::now()) {
  QNN_CHECK(config_.max_retransmits >= 0,
            "MaxRingLink: max_retransmits must be >= 0");
  QNN_CHECK(config_.ack_timeout_us > 0,
            "MaxRingLink: ack_timeout_us must be > 0");
  QNN_CHECK(config_.queue_frames >= 1,
            "MaxRingLink: queue_frames must be >= 1");
}

void MaxRingLink::throw_dead_locked() const {
  if (aborted_) throw Error("MaxRing link '" + config_.name + "' aborted");
  throw LinkDeadError("MaxRing link '" + config_.name +
                      "' is dead: " + dead_reason_);
}

void MaxRingLink::transmit_locked(const WireFrame& frame) {
  ++stats_.transmissions;
  // Every attempt occupies the wire whether or not it arrives — a frame
  // eaten by an outage still burned its cycles.
  const std::uint64_t cycles = link_frame_cycles(
      std::max<std::uint64_t>(frame.payload.size(), 1), config_.bits,
      config_.link_bits_per_cycle);
  stats_.wire_cycles += cycles;
  const LinkFaultSite::Fate fate =
      fault_ != nullptr ? fault_->filter(Clock::now())
                        : LinkFaultSite::Fate::kDeliver;
  WireFrame arrived;
  switch (fate) {
    case LinkFaultSite::Fate::kDropDead:
    case LinkFaultSite::Fate::kDropOutage:
      ++stats_.outage_drops;
      return;  // the wire ate it; the ack watchdog will notice
    case LinkFaultSite::Fate::kCorrupt:
      arrived = frame;
      if (arrived.payload.empty()) {
        arrived.checksum ^= 1;  // close frames have no payload bit to flip
      } else {
        arrived.payload[arrived.payload.size() / 2] ^= 1;
      }
      break;
    case LinkFaultSite::Fate::kDeliver:
      arrived = frame;
      break;
  }
  // Arrival at the receiving link layer: verify and ack HERE, not when
  // the consumer pops. Acks must reflect wire health alone — if they
  // waited on the consumer, a wedged downstream segment would time out
  // every upstream link's watchdog and failover would blame the wrong
  // link (the cascade, not the cause).
  if (arrived.checksum != link_frame_checksum(arrived.seq, arrived.payload)) {
    ++stats_.checksum_drops;
    nack_ = true;  // immediate retransmit instead of waiting out the ack
    return;
  }
  if (arrived.seq < ack_seq_) return;  // duplicate: already acked
  ack_seq_ = arrived.seq + 1;
  ++stats_.frames_delivered;
  wire_.push_back(std::move(arrived));
  rx_cv_.notify_one();
}

void MaxRingLink::reliable_send(WireFrame frame) {
  std::unique_lock<std::mutex> lock(mu_);
  if (dead_ || aborted_) throw_dead_locked();
  ++stats_.frames_sent;
  // Flow control, distinct from loss: a full delivery queue means the
  // consumer is slow, not that the wire is broken, so the wait here is
  // bounded by the (much longer) receiver patience rather than the ack
  // timeout. Only a consumer wedged beyond any retransmit budget
  // escalates — a genuinely lossy link always escalates first.
  const auto room_deadline =
      Clock::now() + std::chrono::microseconds(config_.recv_patience_us);
  const bool room = tx_cv_.wait_until(lock, room_deadline, [&] {
    return wire_.size() < config_.queue_frames || dead_ || aborted_;
  });
  if (dead_ || aborted_) throw_dead_locked();
  if (!room) {
    dead_ = true;
    stats_.dead = true;
    dead_reason_ = "consumer wedged: no queue room within " +
                   std::to_string(config_.recv_patience_us) + "us";
    rx_cv_.notify_all();
    tx_cv_.notify_all();
    throw LinkDeadError("MaxRing link '" + config_.name +
                        "' escalated: " + dead_reason_);
  }
  std::int64_t backoff_us = config_.retransmit_backoff_us;
  for (int attempt = 0; attempt <= config_.max_retransmits; ++attempt) {
    transmit_locked(frame);
    if (config_.pace && config_.clock_hz > 0) {
      // Sleep off any lead the wire model has over the wall clock, so a
      // fast in-process copy cannot outrun the priced 4 Gbps link.
      const auto wire_ns = static_cast<std::int64_t>(
          1e9 * static_cast<double>(stats_.wire_cycles) / config_.clock_hz);
      const auto target = wire_epoch_ + std::chrono::nanoseconds(wire_ns);
      const auto now = Clock::now();
      if (target > now + std::chrono::microseconds(100)) {
        lock.unlock();
        std::this_thread::sleep_until(target);
        lock.lock();
      }
    }
    const auto deadline =
        Clock::now() + std::chrono::microseconds(config_.ack_timeout_us);
    const bool signalled = tx_cv_.wait_until(lock, deadline, [&] {
      return ack_seq_ > frame.seq || nack_ || dead_ || aborted_;
    });
    if (dead_ || aborted_) throw_dead_locked();
    if (ack_seq_ > frame.seq) return;  // delivered
    if (nack_) {
      nack_ = false;
    } else if (!signalled) {
      ++stats_.timeouts;
    }
    if (attempt == config_.max_retransmits) break;
    ++stats_.retransmits;
    // Jittered exponential backoff: uniform in [b/2, 3b/2] so parallel
    // senders recovering from the same outage do not retry in lockstep.
    const std::int64_t jittered =
        backoff_us / 2 +
        static_cast<std::int64_t>(backoff_rng_.next_below(
            static_cast<std::uint64_t>(std::max<std::int64_t>(backoff_us, 1)) +
            1));
    backoff_us = std::min<std::int64_t>(backoff_us * 2, 100000);
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(jittered));
    lock.lock();
    if (dead_ || aborted_) throw_dead_locked();
    if (ack_seq_ > frame.seq) return;  // ack landed during the backoff
  }
  // Escalation: the watchdog exhausted its budget. Mark the link dead and
  // wake the receiver so both segment drivers unwind into failover.
  dead_ = true;
  stats_.dead = true;
  dead_reason_ = "no ack for frame " + std::to_string(frame.seq) + " after " +
                 std::to_string(config_.max_retransmits) + " retransmits";
  rx_cv_.notify_all();
  tx_cv_.notify_all();
  throw LinkDeadError("MaxRing link '" + config_.name +
                      "' escalated: " + dead_reason_);
}

void MaxRingLink::send(std::span<const std::int32_t> payload) {
  WireFrame frame;
  frame.payload.assign(payload.begin(), payload.end());
  {
    const std::lock_guard<std::mutex> lock(mu_);
    frame.seq = next_seq_++;
  }
  frame.checksum = link_frame_checksum(frame.seq, frame.payload);
  reliable_send(std::move(frame));
}

void MaxRingLink::close() {
  WireFrame frame;
  frame.last = true;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    frame.seq = next_seq_++;
  }
  frame.checksum = link_frame_checksum(frame.seq, frame.payload);
  reliable_send(std::move(frame));
}

bool MaxRingLink::recv(std::vector<std::int32_t>& out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto patience =
        Clock::now() + std::chrono::microseconds(config_.recv_patience_us);
    const bool signalled = rx_cv_.wait_until(lock, patience, [&] {
      return !wire_.empty() || dead_ || aborted_;
    });
    if (!signalled && wire_.empty() && !dead_ && !aborted_) {
      // Upstream went silent for longer than any retransmit budget: the
      // sender thread is wedged or gone. Escalate from the receiving side.
      dead_ = true;
      stats_.dead = true;
      dead_reason_ = "no frame from the sender within " +
                     std::to_string(config_.recv_patience_us) + "us";
      tx_cv_.notify_all();
      throw LinkDeadError("MaxRing link '" + config_.name +
                          "' escalated: " + dead_reason_);
    }
    if (wire_.empty()) throw_dead_locked();
    // Frames in the queue were checksum-verified and acked at arrival
    // (transmit_locked); popping just frees a flow-control slot.
    WireFrame frame = std::move(wire_.front());
    wire_.pop_front();
    tx_cv_.notify_one();
    if (frame.last) return false;
    out = std::move(frame.payload);
    return true;
  }
}

void MaxRingLink::abort() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return;  // death (failover) outranks cancellation
  aborted_ = true;
  rx_cv_.notify_all();
  tx_cv_.notify_all();
}

bool MaxRingLink::dead() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

LinkStats MaxRingLink::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qnn
