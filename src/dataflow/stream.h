// Bounded single-producer / single-consumer stream with burst transfers.
//
// Models the on-chip FIFOs that connect DFE kernels: "data are transferred
// using configurable routing resources, buffered on-chip memory, and
// flip-flops" (§II-B). The declared bit width is metadata used by the link
// bandwidth model and the resource estimator, while the functional payload
// is a full int32.
//
// The hardware moves one value per clock; the software analog used to do
// the same — one atomic acquire/release pair per int32 — which made the
// hot path atomic ping-pong instead of XNOR-popcount work. Transfers are
// therefore *burst*-oriented: push_burst()/pop_burst() move a contiguous
// ring segment with a single index update per burst (the widened,
// compute-rate-folded transport of FINN-style dataflow engines). Scalar
// push()/pop() remain as the degenerate burst of one, so capacity still
// models the FIFO depth precisely and `pushed()` still counts values.
//
// The index publication protocol itself — head/tail/closed plus the
// wake-after-transaction contract with the ready-queue scheduler — lives
// in ring_core.h as RingCore<Sync>, templated on the synchronization seam
// (sync.h). Stream instantiates it with RealSync (std::atomic verbatim);
// the model checker (src/mc) explores the SAME protocol template on
// virtual threads. Stream adds what the checker does not need: the
// payload buffer, fault injection, abort handling and the traffic
// counters.
//
// Two API layers:
//   * blocking push/pop/push_burst/pop_burst — for thread-per-kernel
//     execution and tests; spin briefly then yield, abort-aware.
//   * non-blocking try_push_burst/try_pop_burst — for cooperative
//     (pooled-executor) kernels, which must never block a worker.
//
// Counter semantics (unchanged by bursts, so RunStats / stream_traffic()
// / the link-bandwidth model / ServerMetrics stay truthful):
//   * pushed()       — total VALUES pushed (a burst of n counts n);
//   * transactions() — ring index updates on the producer side (a burst
//                      counts 1); pushed/transactions = burst occupancy;
//   * push_stalls()/pop_stalls() — blocking EPISODES: one per continuous
//     period a producer/consumer waited, regardless of spins or retries.
//     The non-blocking API cannot detect episodes itself; cooperative
//     kernels report them via note_push_stall()/note_pop_stall() exactly
//     once per blocked period.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "dataflow/ring_core.h"
#include "fault/fault.h"

namespace qnn {

class Stream {
 public:
  Stream(std::size_t capacity, int bits, std::string name)
      : core_(capacity),
        bits_(bits),
        name_(std::move(name)),
        buf_(core_.ring_size()) {
    QNN_CHECK(capacity >= 1, "stream capacity must be positive");
    QNN_CHECK(bits >= 1 && bits <= 32, "stream width out of range");
  }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Attach an engine-wide abort flag; blocked push/pop calls throw once it
  /// is raised, so a failing kernel cannot deadlock the rest of the pipe.
  void set_abort(const std::atomic<bool>* flag) { abort_ = flag; }

  /// Attach a fault-injection site (nullptr = none). Consulted on the
  /// producer side only; the engine arms it per run via FaultInjector.
  void set_fault(StreamFaultSite* site) { fault_ = site; }

  // ---- readiness seam (ready-queue executor) ----------------------------
  //
  // Forwarded to RingCore (see ReadyHook in ring_core.h for the wake
  // contract). Bound by the executor before workers start and cleared
  // after they join, so the binding needs no synchronization of its own.

  /// The task to wake when values are pushed into (or the stream is closed
  /// toward) this stream's consumer side.
  void bind_consumer(ReadyHook* hook, int task) {
    core_.bind_consumer(hook, task);
  }

  /// The task to wake when values are popped out of this stream (space for
  /// its producer side).
  void bind_producer(ReadyHook* hook, int task) {
    core_.bind_producer(hook, task);
  }

  // ---- non-blocking burst API (single producer / single consumer) -------

  /// Move as much of `vs` as currently fits into the ring; returns the
  /// number of values transferred (possibly 0). One index release per
  /// call. Must only be called by the single producer.
  std::size_t try_push_burst(std::span<const std::int32_t> vs) {
    if (vs.empty()) return 0;
    const RingWindow w = core_.push_window(vs.size());
    const std::size_t n = w.count;
    if (n == 0) return 0;
    const std::size_t mask = core_.mask();
    if (fault_ != nullptr && fault_->armed) {
      // Injection path: an armed stall makes the ring report "full"; an
      // armed bit flip corrupts the targeted value as it enters the ring.
      if (fault_->blocked()) return 0;
      for (std::size_t i = 0; i < n; ++i) {
        buf_[(w.start + i) & mask] = fault_->filter(vs[i]);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        buf_[(w.start + i) & mask] = vs[i];
      }
    }
    pushed_ += n;
    ++transactions_;
    core_.commit_push(w, n);
    return n;
  }

  /// Move up to `out.size()` available values out of the ring; returns the
  /// number transferred (possibly 0 — distinguish starvation from end of
  /// stream with drained()). Must only be called by the single consumer.
  std::size_t try_pop_burst(std::span<std::int32_t> out) {
    if (out.empty()) return 0;
    const RingWindow w = core_.pop_window(out.size());
    const std::size_t n = w.count;
    if (n == 0) return 0;
    const std::size_t mask = core_.mask();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = buf_[(w.start + i) & mask];
    }
    core_.commit_pop(w, n);
    return n;
  }

  /// Closed and fully drained: no value will ever arrive again. Consumer
  /// view; pair with a try_pop_burst() that returned 0.
  [[nodiscard]] bool drained() const { return core_.drained(); }

  /// Cooperative kernels report one blocked episode per continuous wait.
  void note_push_stall() { ++push_stalls_; }
  void note_pop_stall() { ++pop_stalls_; }

  // ---- blocking API ------------------------------------------------------

  /// Blocking push. Must only be called by the single producer thread.
  /// Blocks while exactly `capacity` values are in flight — the FIFO depth
  /// is honored precisely so capacity doubles as a buffer-size model.
  void push(std::int32_t v) { push_burst({&v, 1}); }

  /// Blocking burst push: transfers ALL of `vs`, in chunks when the burst
  /// exceeds the free space (or the whole capacity). One blocked episode
  /// is counted per continuous wait.
  void push_burst(std::span<const std::int32_t> vs) {
    bool stalled = false;
    while (!vs.empty()) {
      const std::size_t n = try_push_burst(vs);
      if (n == 0) {
        if (!stalled) {
          stalled = true;
          ++push_stalls_;
        }
        check_abort();
        backoff();
        continue;
      }
      stalled = false;
      vs = vs.subspan(n);
    }
  }

  /// Blocking pop. Returns false iff the stream is closed and drained.
  bool pop(std::int32_t& v) { return pop_burst({&v, 1}) == 1; }

  /// Blocking burst pop: waits until at least one value is available (or
  /// the stream is drained) and transfers up to `out.size()`. Returns the
  /// number of values transferred; 0 means closed and drained.
  std::size_t pop_burst(std::span<std::int32_t> out) {
    bool stalled = false;
    for (;;) {
      const std::size_t n = try_pop_burst(out);
      if (n != 0) return n;
      if (drained()) return 0;
      if (!stalled) {
        stalled = true;
        ++pop_stalls_;
      }
      check_abort();
      backoff();
    }
  }

  /// Producer signals end of data; pending values remain poppable. The
  /// consumer is woken so it can observe drained() without another push.
  void close() { core_.close(); }

  /// Reset to the freshly constructed state. Only valid while no producer
  /// or consumer threads are active (the engine calls this between runs).
  /// Values left in flight by an aborted run are discarded — the ring is
  /// drained and re-armed, so a failed run() never poisons the next one.
  void reset() {
    core_.reset();
    pushed_ = 0;
    transactions_ = 0;
    push_stalls_ = 0;
    pop_stalls_ = 0;
  }

  [[nodiscard]] bool closed() const { return core_.closed(); }
  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] std::size_t capacity() const { return core_.capacity(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Total values pushed over the stream's lifetime (producer thread view).
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  /// Producer-side ring transfers; pushed()/transactions() is the mean
  /// burst occupancy of this FIFO (producer thread view).
  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  /// Blocking episodes on the producer side (FIFO full when push arrived).
  /// Counted once per blocked episode, not per spin; producer thread view.
  [[nodiscard]] std::uint64_t push_stalls() const { return push_stalls_; }
  /// Blocking episodes on the consumer side (FIFO empty when pop arrived).
  /// Counted once per blocked episode, not per spin; consumer thread view.
  [[nodiscard]] std::uint64_t pop_stalls() const { return pop_stalls_; }

 private:
  void check_abort() const {
    if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
      throw Error("stream '" + name_ + "' aborted");
    }
  }

  static void backoff() {
    // A short spin covers the common case (both threads active); yielding
    // keeps oversubscribed pipelines (70+ kernels) from burning cores.
    for (int i = 0; i < 64; ++i) {
      RealSync::cpu_relax();
    }
    std::this_thread::yield();
  }

  RingCore<RealSync> core_;
  const int bits_;
  const std::string name_;
  std::vector<std::int32_t> buf_;
  const std::atomic<bool>* abort_ = nullptr;
  StreamFaultSite* fault_ = nullptr;
  std::uint64_t pushed_ = 0;
  std::uint64_t transactions_ = 0;
  std::uint64_t push_stalls_ = 0;
  std::uint64_t pop_stalls_ = 0;
};

}  // namespace qnn
