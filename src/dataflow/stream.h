// Bounded single-producer / single-consumer stream.
//
// Models the on-chip FIFOs that connect DFE kernels: "data are transferred
// using configurable routing resources, buffered on-chip memory, and
// flip-flops" (§II-B). Each stream carries one value per transaction in
// depth-first order; the declared bit width is metadata used by the link
// bandwidth model and the resource estimator, while the functional payload
// is a full int32.
//
// The implementation is a lock-free ring buffer (acquire/release indices)
// with a short spin followed by a cooperative yield, since a streaming
// pipeline keeps every kernel thread mostly busy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"

namespace qnn {

class Stream {
 public:
  Stream(std::size_t capacity, int bits, std::string name)
      : capacity_(capacity),
        ring_(round_up_pow2(capacity + 1)),
        mask_(ring_ - 1),
        bits_(bits),
        name_(std::move(name)),
        buf_(ring_) {
    QNN_CHECK(capacity >= 1, "stream capacity must be positive");
    QNN_CHECK(bits >= 1 && bits <= 32, "stream width out of range");
  }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Attach an engine-wide abort flag; blocked push/pop calls throw once it
  /// is raised, so a failing kernel cannot deadlock the rest of the pipe.
  void set_abort(const std::atomic<bool>* flag) { abort_ = flag; }

  /// Blocking push. Must only be called by the single producer thread.
  /// Blocks while exactly `capacity` values are in flight — the FIFO depth
  /// is honored precisely so capacity doubles as a buffer-size model.
  void push(std::int32_t v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    bool stalled = false;
    while (((head - tail_.load(std::memory_order_acquire)) & mask_) >=
           capacity_) {
      if (!stalled) {
        stalled = true;
        ++push_stalls_;
      }
      check_abort();
      backoff();
    }
    buf_[head] = v;
    head_.store(next, std::memory_order_release);
    ++pushed_;
  }

  /// Blocking pop. Returns false iff the stream is closed and drained.
  bool pop(std::int32_t& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    bool stalled = false;
    while (tail == head_.load(std::memory_order_acquire)) {
      if (closed_.load(std::memory_order_acquire) &&
          tail == head_.load(std::memory_order_acquire)) {
        return false;
      }
      if (!stalled) {
        stalled = true;
        ++pop_stalls_;
      }
      check_abort();
      backoff();
    }
    v = buf_[tail];
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Producer signals end of data; pending values remain poppable.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Reset to the freshly constructed state. Only valid while no producer
  /// or consumer threads are active (the engine calls this between runs).
  void reset() {
    QNN_CHECK(head_.load() == tail_.load(),
              "resetting stream '" + name_ + "' with values in flight");
    head_.store(0);
    tail_.store(0);
    closed_.store(false);
    pushed_ = 0;
    push_stalls_ = 0;
    pop_stalls_ = 0;
  }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Total values pushed over the stream's lifetime (producer thread view).
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  /// Blocking episodes on the producer side (FIFO full when push arrived).
  /// Counted once per blocked call, not per spin; producer thread view.
  [[nodiscard]] std::uint64_t push_stalls() const { return push_stalls_; }
  /// Blocking episodes on the consumer side (FIFO empty when pop arrived).
  /// Counted once per blocked call, not per spin; consumer thread view.
  [[nodiscard]] std::uint64_t pop_stalls() const { return pop_stalls_; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void check_abort() const {
    if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
      throw Error("stream '" + name_ + "' aborted");
    }
  }

  static void backoff() {
    // A short spin covers the common case (both threads active); yielding
    // keeps oversubscribed pipelines (70+ kernels) from burning cores.
    for (int i = 0; i < 64; ++i) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
    std::this_thread::yield();
  }

  const std::size_t capacity_;
  const std::size_t ring_;
  const std::size_t mask_;
  const int bits_;
  const std::string name_;
  std::vector<std::int32_t> buf_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::atomic<bool> closed_{false};
  const std::atomic<bool>* abort_ = nullptr;
  std::uint64_t pushed_ = 0;
  std::uint64_t push_stalls_ = 0;
  std::uint64_t pop_stalls_ = 0;
};

}  // namespace qnn
