// Streaming engine: the software analog of the DFE manager.
//
// Builds one Kernel per pipeline node, wires them with bounded Streams,
// inserts forks where a stream fans out (skip connections), feeds images
// in depth-first pixel order and collects the output stream. All layers
// compute concurrently once the pipeline fills — the paper's
// computation-overlap property (§III-B) realized on the host.
//
// Transport is burst-mode end to end (see stream.h): the feeder pushes
// whole row segments, kernels move the per-edge burst planned by
// plan_fifos (one row of the carried map by default, capped by
// EngineOptions::burst) per ring transaction, and the collector pops
// directly into the output tensors. How kernels execute is an Executor
// choice (see executor.h): one OS thread per kernel, a round-robin
// cooperative pool, or the default event-driven ready-queue scheduler
// that the streams wake through the ReadyHook seam.
//
// FIFO capacities default to the paper's depth-first line-buffer formula
// I*(W_p*(K-1) + K) (§III-B1b) per edge feeding a window kernel; the
// skip-path FIFO holds a full feature map plus slack, which subsumes the
// delay-compensation buffer of §III-B5 for any consumer lag.
//
// The engine is the *functional* model (bit-exact against the reference
// executor); timing comes from the cycle simulator in sim/.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/tensor.h"
#include "dataflow/executor.h"
#include "dataflow/kernels.h"
#include "fault/fault.h"

namespace qnn {

struct CompiledPlan;  // plan/compiled_plan.h

/// Execution model for the kernels of one engine (see executor.h).
enum class ExecutorKind {
  kThreadPerKernel,  // one OS thread per kernel, blocking streams
  kPooled,           // cooperative worker pool, round-robin sweep
  kReadyQueue,       // event-driven ready deques with work stealing
};

struct EngineOptions {
  /// FIFO capacity (values) of regular kernel-to-kernel streams.
  /// 0 = auto-size each edge from the §III-B1b line-buffer formula.
  std::size_t fifo_capacity = 0;
  /// Extra slack added to skip-connection FIFOs beyond the full feature
  /// map they may need to hold while the regular path lags.
  std::size_t skip_slack = 64;
  /// Cap on the values kernels move per stream transaction. With
  /// adaptive_burst each edge defaults to one row of the map it carries,
  /// clamped to this cap; without it every edge moves exactly this many
  /// (1 = scalar transport).
  std::size_t burst = kDefaultBurst;
  /// Derive per-edge burst sizes from producer row lengths in plan_fifos
  /// (FifoPlan::streams[i].burst) instead of using `burst` uniformly.
  bool adaptive_burst = true;
  /// How kernels are scheduled onto host threads.
  ExecutorKind executor = ExecutorKind::kReadyQueue;
  /// Worker count for kPooled / kReadyQueue; 0 = hardware_concurrency.
  unsigned pool_threads = 0;
  /// kReadyQueue only: bind worker w to core (pin_offset + w) % cores
  /// (Linux pthread affinity; no-op elsewhere). Combined with the home
  /// partition of the ready deques this keeps producer/consumer kernel
  /// pairs on one core's cache.
  bool pin_threads = false;
  /// First core of this engine's pinning window; DfeServer staggers it
  /// per replica so replica pools tile the machine instead of stacking
  /// every worker 0 on core 0.
  unsigned pin_offset = 0;
  /// Run the static analyzer (verify/graph_check.h) during construction
  /// and refuse to build a graph with any error-severity finding. The
  /// software analog of the Maxeler compile-time graph checks; off only
  /// for tests that need to instantiate deliberately broken graphs.
  bool verify = true;
  /// Deterministic fault schedule this engine executes (see fault/fault.h).
  /// Empty = no injection seam is armed (zero overhead on the fast paths
  /// beyond one null check).
  FaultPlan faults;
  /// Replica identity matched against FaultEvent::replica; DfeServer sets
  /// this to the replica index so one plan can target one replica of many.
  int fault_replica = 0;
  /// Pre-built compile-time plan (plan/compiled_plan.h). When set, the
  /// engine wires the plan's FIFO streams verbatim instead of re-deriving
  /// them, and the analyzer proves those SAME streams (after a QNN-D305
  /// fingerprint check against the pipeline). Non-owning: the pointee must
  /// outlive engine construction — SessionConfig::plan holds it by
  /// shared_ptr and DfeSession::compile points this at it. The engine does
  /// not keep the pointer after its constructor returns.
  const CompiledPlan* plan = nullptr;
};

class StreamEngine {
 public:
  StreamEngine(const Pipeline& pipeline, const NetworkParams& params,
               EngineOptions options = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Host-side statistics of a run() call: wall clock plus the aggregate
  /// stream activity of the pipeline, so callers (e.g. the serving metrics
  /// layer) can report utilization without re-walking stream_traffic().
  struct RunStats {
    double wall_seconds = 0.0;
    double images_per_second = 0.0;
    /// Sum over all FIFOs of the values they carried during the run.
    std::uint64_t values_streamed = 0;
    /// Sum over all FIFOs of producer-side ring transfers; values_streamed
    /// / stream_transactions is the pipeline's mean burst occupancy.
    std::uint64_t stream_transactions = 0;
    /// Producer-side blocking episodes (a push found its FIFO full),
    /// summed over all FIFOs — backpressure inside the pipeline.
    std::uint64_t push_stalls = 0;
    /// Consumer-side blocking episodes (a pop found its FIFO empty),
    /// summed over all FIFOs — starvation inside the pipeline.
    std::uint64_t pop_stalls = 0;
    /// Fault events from EngineOptions::faults that fired during this run.
    std::uint64_t faults_injected = 0;
    /// Backends that *model* timing instead of measuring it (the cycle-
    /// simulator backend) report the modeled batch duration here at the
    /// simulated fabric clock; 0.0 for live engine runs.
    double simulated_seconds = 0.0;
    /// MaxRing link activity (LinkedEngine runs only; all zero for a
    /// single-segment engine). `links` is the *physical* link count of the
    /// original partition cut — a failed-over run keeps reporting the dead
    /// link at health 0.0 so the serving metrics can show it.
    std::uint64_t link_frames = 0;       // frames delivered across all links
    std::uint64_t link_retransmits = 0;  // timeout/nack-driven resends
    std::uint64_t link_failovers = 0;    // degraded-plan recompiles this run
    int links = 0;
    std::array<double, 8> link_health{};
  };

  /// Stream a batch of images through the pipeline; returns one output
  /// tensor per image. Kernels run concurrently for the whole batch.
  /// Optionally reports wall-clock throughput of the software engine.
  [[nodiscard]] std::vector<IntTensor> run(std::span<const IntTensor> images,
                                           RunStats* stats = nullptr);

  [[nodiscard]] IntTensor run_one(const IntTensor& image);

  /// Abort the in-flight run() from another thread: every kernel unwinds
  /// and run() throws. The engine stays reusable — the next run() starts
  /// from pristine streams and kernels. No effect when no run is active.
  void cancel() { abort_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] int kernel_count() const {
    return static_cast<int>(kernels_.size());
  }
  [[nodiscard]] int stream_count() const {
    return static_cast<int>(streams_.size());
  }
  /// Values carried by every stream during the last run() (name, count).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  stream_traffic() const;

 private:
  Stream& make_stream(std::size_t capacity, int bits, std::string name);

  // The engine never mutates the pipeline or parameters it was built from
  // (const references all the way down to the kernels), so any number of
  // engines may be constructed from — and run concurrently against — one
  // Pipeline/NetworkParams pair. DfeServer relies on this for replica pools.
  const Pipeline& pipeline_;
  const NetworkParams& params_;
  const EngineOptions options_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<FaultInjector> injector_;
  Stream* input_stream_ = nullptr;
  Stream* output_stream_ = nullptr;
  std::atomic<bool> abort_{false};
};

}  // namespace qnn
