// Threaded streaming engine: the software analog of the DFE manager.
//
// Builds one Kernel (thread) per pipeline node, wires them with bounded
// Streams, inserts forks where a stream fans out (skip connections), feeds
// images in depth-first pixel order and collects the output stream. All
// layers compute concurrently once the pipeline fills — the paper's
// computation-overlap property (§III-B) realized with host threads.
//
// The engine is the *functional* model (bit-exact against the reference
// executor); timing comes from the cycle simulator in sim/.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/tensor.h"
#include "dataflow/kernels.h"

namespace qnn {

struct EngineOptions {
  /// FIFO capacity (values) of regular kernel-to-kernel streams.
  std::size_t fifo_capacity = 4096;
  /// Extra slack added to skip-connection FIFOs beyond the full feature
  /// map they may need to hold while the regular path lags.
  std::size_t skip_slack = 64;
};

class StreamEngine {
 public:
  StreamEngine(const Pipeline& pipeline, const NetworkParams& params,
               EngineOptions options = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Host-side statistics of a run() call: wall clock plus the aggregate
  /// stream activity of the pipeline, so callers (e.g. the serving metrics
  /// layer) can report utilization without re-walking stream_traffic().
  struct RunStats {
    double wall_seconds = 0.0;
    double images_per_second = 0.0;
    /// Sum over all FIFOs of the values they carried during the run.
    std::uint64_t values_streamed = 0;
    /// Producer-side blocking episodes (a push found its FIFO full),
    /// summed over all FIFOs — backpressure inside the pipeline.
    std::uint64_t push_stalls = 0;
    /// Consumer-side blocking episodes (a pop found its FIFO empty),
    /// summed over all FIFOs — starvation inside the pipeline.
    std::uint64_t pop_stalls = 0;
  };

  /// Stream a batch of images through the pipeline; returns one output
  /// tensor per image. Kernels run concurrently for the whole batch.
  /// Optionally reports wall-clock throughput of the software engine.
  [[nodiscard]] std::vector<IntTensor> run(std::span<const IntTensor> images,
                                           RunStats* stats = nullptr);

  [[nodiscard]] IntTensor run_one(const IntTensor& image);

  [[nodiscard]] int kernel_count() const {
    return static_cast<int>(kernels_.size());
  }
  [[nodiscard]] int stream_count() const {
    return static_cast<int>(streams_.size());
  }
  /// Values carried by every stream during the last run() (name, count).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  stream_traffic() const;

 private:
  Stream& make_stream(std::size_t capacity, int bits, std::string name);

  // The engine never mutates the pipeline or parameters it was built from
  // (const references all the way down to the kernels), so any number of
  // engines may be constructed from — and run concurrently against — one
  // Pipeline/NetworkParams pair. DfeServer relies on this for replica pools.
  const Pipeline& pipeline_;
  const NetworkParams& params_;
  const EngineOptions options_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
  Stream* input_stream_ = nullptr;
  Stream* output_stream_ = nullptr;
  std::atomic<bool> abort_{false};
};

}  // namespace qnn
