#include "dataflow/linked_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "plan/compiled_plan.h"
#include "verify/graph_check.h"
#include "verify/link_check.h"

namespace qnn {

namespace {

using Clock = std::chrono::steady_clock;

void accumulate(StreamEngine::RunStats& agg,
                const StreamEngine::RunStats& one) {
  agg.values_streamed += one.values_streamed;
  agg.stream_transactions += one.stream_transactions;
  agg.push_stalls += one.push_stalls;
  agg.pop_stalls += one.pop_stalls;
  agg.faults_injected += one.faults_injected;
  agg.simulated_seconds += one.simulated_seconds;
}

/// Reassemble one boundary tensor from in-order link frames.
IntTensor recv_tensor(MaxRingLink& link, const Shape& shape) {
  IntTensor t(shape);
  const std::span<std::int32_t> flat = t.flat();
  std::size_t pos = 0;
  std::vector<std::int32_t> buf;
  while (pos < flat.size()) {
    const bool more = link.recv(buf);
    QNN_CHECK(more, "MaxRing link '" + link.name() +
                        "' closed mid-tensor (protocol error)");
    QNN_CHECK(pos + buf.size() <= flat.size(),
              "MaxRing link '" + link.name() + "' frame overruns the tensor");
    std::copy(buf.begin(), buf.end(), flat.begin() + pos);
    pos += buf.size();
  }
  return t;
}

/// Ship one boundary tensor as frames of at most `frame_values` values.
void send_tensor(MaxRingLink& link, const IntTensor& t,
                 std::size_t frame_values) {
  const std::span<const std::int32_t> flat = t.flat();
  for (std::size_t pos = 0; pos < flat.size(); pos += frame_values) {
    link.send(flat.subspan(pos, std::min(frame_values, flat.size() - pos)));
  }
}

}  // namespace

PipelineSegment extract_segment(const Pipeline& pipeline,
                                const NetworkParams& params, int first,
                                int last) {
  QNN_CHECK(first >= 0 && last >= first && last < pipeline.size(),
            "extract_segment: node range out of bounds");
  PipelineSegment seg;
  seg.pipeline.name = pipeline.name + "/seg[" + std::to_string(first) + ".." +
                      std::to_string(last) + "]";
  seg.pipeline.act_bits = pipeline.act_bits;
  if (first == 0) {
    seg.pipeline.input = pipeline.input;
    seg.pipeline.input_bits = pipeline.input_bits;
  } else {
    const Node& boundary = pipeline.node(first - 1);
    seg.pipeline.input = boundary.out;
    seg.pipeline.input_bits = boundary.out_bits;
  }
  for (int i = first; i <= last; ++i) {
    Node n = pipeline.node(i);
    QNN_CHECK(n.main_from >= first - 1,
              "extract_segment: main edge into '" + n.name +
                  "' crosses the cut (not a chain cut)");
    QNN_CHECK(n.skip_from < 0 || n.skip_from >= first,
              "extract_segment: skip edge into '" + n.name +
                  "' crosses the cut");
    n.main_from -= first;  // first-1 becomes -1: the segment input
    if (n.skip_from >= 0) n.skip_from -= first;
    if (n.param >= 0) {
      if (n.kind == NodeKind::Conv) {
        seg.params.convs.push_back(
            params.convs[static_cast<std::size_t>(n.param)]);
        n.param = static_cast<int>(seg.params.convs.size()) - 1;
      } else if (n.kind == NodeKind::BnAct) {
        seg.params.bnacts.push_back(
            params.bnacts[static_cast<std::size_t>(n.param)]);
        n.param = static_cast<int>(seg.params.bnacts.size()) - 1;
      }
    }
    seg.pipeline.nodes.push_back(std::move(n));
  }
  seg.pipeline.num_conv_params = static_cast<int>(seg.params.convs.size());
  seg.pipeline.num_bnact_params = static_cast<int>(seg.params.bnacts.size());
  seg.pipeline.validate();
  return seg;
}

struct LinkedEngine::Impl {
  const Pipeline& pipeline;
  const NetworkParams& params;
  LinkedEngineOptions options;

  std::vector<int> original_cuts;  // physical links, fixed for the lifetime
  std::vector<int> current_cuts;   // possibly degraded
  std::vector<double> link_health;  // by physical link ordinal
  std::unique_ptr<FaultInjector> injector;
  std::vector<LinkFaultSite*> sites;  // by physical link ordinal

  struct Segment {
    PipelineSegment def;
    EngineOptions opts;
    std::unique_ptr<StreamEngine> engine;
  };
  std::vector<std::unique_ptr<Segment>> segs;

  std::mutex run_mu;          // serializes run()
  mutable std::mutex rt_mu;   // guards segs / current_cuts / live_links
  std::vector<MaxRingLink*> live_links;  // borrowed, for cancel()
  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> failovers_total{0};

  Impl(const Pipeline& p, const NetworkParams& prm, LinkedEngineOptions o)
      : pipeline(p), params(prm), options(std::move(o)) {}

  void event(const std::string& what) {
    if (options.on_event) options.on_event(what);
  }

  /// Frame sizing of the link after `after`: the planned burst of the
  /// crossing stream, the configured override, or a 256-value default.
  void link_frame(int after, std::size_t& frame_values, int& bits) const {
    const std::vector<CrossingStream> crossing =
        crossing_streams(pipeline, after, &options.partition.link_bursts);
    bits = crossing.empty() ? 32 : crossing[0].bits;
    frame_values = options.frame_values;
    if (frame_values == 0 && !crossing.empty() && crossing[0].burst > 0) {
      frame_values = crossing[0].burst;
    }
    if (frame_values == 0) frame_values = 256;
  }

  /// Tear down the current segments and build the chain for `cuts`.
  void rebuild(const std::vector<int>& cuts) {
    std::vector<std::unique_ptr<Segment>> next;
    int first = 0;
    const int n = pipeline.size();
    for (std::size_t s = 0; s <= cuts.size(); ++s) {
      const int last = s < cuts.size() ? cuts[s] : n - 1;
      auto seg = std::make_unique<Segment>();
      seg->def = extract_segment(pipeline, params, first, last);
      seg->opts = options.engine;
      // The compile-time plan's FIFO tables index the unsplit pipeline;
      // each segment engine re-derives its own FIFO sizing instead.
      seg->opts.plan = nullptr;
      seg->engine = std::make_unique<StreamEngine>(seg->def.pipeline,
                                                   seg->def.params, seg->opts);
      next.push_back(std::move(seg));
      first = last + 1;
    }
    const std::lock_guard<std::mutex> lock(rt_mu);
    segs = std::move(next);
    current_cuts = cuts;
  }

  /// D42x proof gate for a candidate (possibly degraded) cut list.
  [[nodiscard]] bool proved(const std::vector<int>& cuts,
                            const PartitionConfig& cfg) {
    Report report;
    check_link_plan(pipeline, cuts, cfg, options.target_fps,
                    options.retransmit_headroom, report);
    if (!report.ok()) {
      event("failover: candidate plan refused: " + report.summary());
    }
    return report.ok();
  }

  /// The failover ladder: derate the dead link, then try (1) an optimal
  /// repartition under the derated health, (2) the prefix of the current
  /// cuts that avoids the dead link, (3) the single-DFE plan.
  void failover(int dead) {
    PartitionConfig cfg = options.partition;
    if (cfg.link_health.size() < link_health.size()) {
      cfg.link_health.resize(link_health.size(), 1.0);
    }
    for (std::size_t k = 0; k < link_health.size(); ++k) {
      cfg.link_health[k] = std::min(cfg.link_health[k], link_health[k]);
    }
    std::vector<int> cuts;
    const PartitionResult res = partition_optimal(pipeline, cfg);
    if (res.feasible() && !res.cuts.empty()) {
      for (const CutInfo& c : res.cuts) cuts.push_back(c.after_node);
    }
    if (!cuts.empty() && proved(cuts, cfg)) {
      rebuild(cuts);
      event("failover: repartitioned to " + std::to_string(cuts.size() + 1) +
            " segment(s)");
      return;
    }
    cuts.assign(current_cuts.begin(),
                current_cuts.begin() +
                    std::min<std::size_t>(static_cast<std::size_t>(dead),
                                          current_cuts.size()));
    if (!cuts.empty() && proved(cuts, cfg)) {
      rebuild(cuts);
      event("failover: degraded to the healthy prefix (" +
            std::to_string(cuts.size() + 1) + " segment(s))");
      return;
    }
    rebuild({});
    event("failover: single-DFE fallback plan armed");
  }

  /// One execution attempt over the not-yet-done images. Returns the
  /// physical ordinal of the link that died (failover required), or -1
  /// when every pending image completed. Throws on cancellation and on
  /// non-link errors.
  int run_attempt(const std::vector<std::size_t>& pending,
                  std::span<const IntTensor> images,
                  std::vector<IntTensor>& outputs, std::vector<char>& done,
                  StreamEngine::RunStats& agg, std::uint64_t& frames,
                  std::uint64_t& retrans) {
    std::vector<StreamEngine*> engines;
    std::vector<Impl::Segment*> seg_ptrs;
    std::vector<std::unique_ptr<MaxRingLink>> links;
    std::vector<std::size_t> frame_values;
    {
      const std::lock_guard<std::mutex> lock(rt_mu);
      for (auto& s : segs) {
        engines.push_back(s->engine.get());
        seg_ptrs.push_back(s.get());
      }
      for (std::size_t k = 0; k + 1 < segs.size(); ++k) {
        std::size_t fv = 0;
        int bits = 32;
        link_frame(current_cuts[k], fv, bits);
        LinkConfig lc;
        lc.name = "link" + std::to_string(k);
        lc.bits = bits;
        lc.link_bits_per_cycle = options.partition.link_bits_per_cycle;
        lc.clock_hz = options.partition.clock_hz;
        lc.pace = options.pace_links;
        lc.ack_timeout_us = options.ack_timeout_us;
        lc.max_retransmits = options.max_retransmits;
        lc.retransmit_backoff_us = options.retransmit_backoff_us;
        lc.backoff_seed = options.link_seed + k * 0x9e3779b97f4a7c15ULL;
        auto link = std::make_unique<MaxRingLink>(lc);
        if (k < sites.size()) link->set_fault(sites[k]);
        links.push_back(std::move(link));
        frame_values.push_back(fv);
      }
      live_links.clear();
      for (auto& l : links) live_links.push_back(l.get());
    }
    const std::size_t S = engines.size();
    if (S == 1) {
      for (const std::size_t idx : pending) {
        if (abort.load(std::memory_order_relaxed)) {
          throw Error("LinkedEngine: run cancelled");
        }
        StreamEngine::RunStats st;
        std::vector<IntTensor> out =
            engines[0]->run(std::span<const IntTensor>(&images[idx], 1), &st);
        accumulate(agg, st);
        outputs[idx] = std::move(out[0]);
        done[idx] = 1;
      }
      return -1;
    }

    std::vector<std::exception_ptr> errors(S);
    std::atomic<int> first_error{-1};
    std::atomic<bool> attempt_abort{false};
    std::mutex agg_mu;
    const auto fail_fast = [&](int s) {
      int expected = -1;
      first_error.compare_exchange_strong(expected, s);
      attempt_abort.store(true, std::memory_order_relaxed);
      for (StreamEngine* e : engines) e->cancel();
      for (auto& l : links) l->abort();
    };
    std::vector<std::thread> threads;
    threads.reserve(S);
    for (std::size_t s = 0; s < S; ++s) {
      threads.emplace_back([&, s] {
        StreamEngine::RunStats local;
        try {
          for (const std::size_t idx : pending) {
            if (attempt_abort.load(std::memory_order_relaxed) ||
                abort.load(std::memory_order_relaxed)) {
              break;
            }
            IntTensor in = s == 0 ? images[idx]
                                  : recv_tensor(*links[s - 1],
                                                seg_ptrs[s]->def.pipeline.input);
            StreamEngine::RunStats st;
            std::vector<IntTensor> out = engines[s]->run(
                std::span<const IntTensor>(&in, 1), &st);
            accumulate(local, st);
            if (s + 1 == S) {
              outputs[idx] = std::move(out[0]);
              done[idx] = 1;
            } else {
              send_tensor(*links[s], out[0], frame_values[s]);
            }
          }
        } catch (...) {
          errors[s] = std::current_exception();
          fail_fast(static_cast<int>(s));
        }
        const std::lock_guard<std::mutex> lock(agg_mu);
        accumulate(agg, local);
      });
    }
    for (std::thread& t : threads) t.join();

    int dead = -1;
    for (std::size_t k = 0; k < links.size(); ++k) {
      const LinkStats st = links[k]->stats();
      frames += st.frames_delivered;
      retrans += st.retransmits;
      if (dead < 0 && st.dead) dead = static_cast<int>(k);
    }
    {
      const std::lock_guard<std::mutex> lock(rt_mu);
      live_links.clear();
    }
    if (abort.load(std::memory_order_relaxed)) {
      throw Error("LinkedEngine: run cancelled");
    }
    if (dead >= 0) return dead;
    const int first = first_error.load();
    if (first >= 0 && errors[static_cast<std::size_t>(first)]) {
      std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
    }
    return -1;
  }
};

LinkedEngine::LinkedEngine(const Pipeline& pipeline,
                           const NetworkParams& params,
                           LinkedEngineOptions options)
    : impl_(std::make_unique<Impl>(pipeline, params, std::move(options))) {
  Impl& im = *impl_;
  std::vector<int> cuts = im.options.cut_after_nodes;
  if (cuts.empty() && im.options.engine.plan != nullptr &&
      !im.options.engine.plan->cut_after_nodes.empty()) {
    cuts = im.options.engine.plan->cut_after_nodes;
  }
  if (cuts.empty()) {
    const PartitionResult res = partition_optimal(pipeline, im.options.partition);
    if (res.feasible()) {
      for (const CutInfo& c : res.cuts) cuts.push_back(c.after_node);
    }
  }
  // Prove the plan before arming it (D420 dead links, D421 retransmit
  // headroom, D422 chain-only cuts).
  Report report;
  check_link_plan(pipeline, cuts, im.options.partition, im.options.target_fps,
                  im.options.retransmit_headroom, report);
  enforce(report, "LinkedEngine(" + pipeline.name + ")");
  im.original_cuts = cuts;
  im.link_health.assign(cuts.size(), 1.0);
  if (!im.options.engine.faults.empty()) {
    im.injector = std::make_unique<FaultInjector>(
        im.options.engine.faults, im.options.engine.fault_replica);
    for (std::size_t k = 0; k < cuts.size(); ++k) {
      im.sites.push_back(
          im.injector->register_link("link" + std::to_string(k)));
    }
  }
  im.rebuild(cuts);
}

LinkedEngine::~LinkedEngine() = default;

std::vector<IntTensor> LinkedEngine::run(std::span<const IntTensor> images,
                                         StreamEngine::RunStats* stats) {
  Impl& im = *impl_;
  const std::lock_guard<std::mutex> run_lock(im.run_mu);
  im.abort.store(false, std::memory_order_relaxed);
  const auto t0 = Clock::now();
  std::uint64_t link_faults_before = 0;
  if (im.injector) {
    link_faults_before = im.injector->fired();
    im.injector->begin_run();
    if (im.injector->crash_now()) {
      throw Error("injected fault: linked replica crash (run " +
                  std::to_string(im.injector->runs_begun() - 1) + ")");
    }
  }
  const std::size_t n = images.size();
  std::vector<IntTensor> outputs(n);
  std::vector<char> done(n, 0);
  StreamEngine::RunStats agg;
  std::uint64_t frames = 0;
  std::uint64_t retrans = 0;
  std::uint64_t failovers_this_run = 0;
  for (;;) {
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] == 0) pending.push_back(i);
    }
    if (pending.empty()) break;
    const int dead =
        im.run_attempt(pending, images, outputs, done, agg, frames, retrans);
    if (dead < 0) continue;  // attempt completed; loop exits via pending
    // Permanent link death: derate, recompile a degraded plan, and replay
    // the images this attempt did not finish — zero lost work.
    im.link_health[static_cast<std::size_t>(dead)] = 0.0;
    ++failovers_this_run;
    im.failovers_total.fetch_add(1, std::memory_order_relaxed);
    im.event("link" + std::to_string(dead) +
             " escalated to dead; failing over");
    im.failover(dead);
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (stats != nullptr) {
    *stats = agg;
    stats->wall_seconds = wall;
    stats->images_per_second =
        wall > 0.0 ? static_cast<double>(n) / wall : 0.0;
    stats->link_frames = frames;
    stats->link_retransmits = retrans;
    stats->link_failovers = failovers_this_run;
    stats->links = static_cast<int>(im.original_cuts.size());
    const std::size_t shown =
        std::min<std::size_t>(im.link_health.size(), stats->link_health.size());
    for (std::size_t k = 0; k < shown; ++k) {
      stats->link_health[k] = im.link_health[k];
    }
    if (im.injector) {
      stats->faults_injected += im.injector->fired() - link_faults_before;
    }
  }
  return outputs;
}

IntTensor LinkedEngine::run_one(const IntTensor& image) {
  std::vector<IntTensor> out =
      run(std::span<const IntTensor>(&image, 1), nullptr);
  return std::move(out[0]);
}

void LinkedEngine::cancel() {
  Impl& im = *impl_;
  im.abort.store(true, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(im.rt_mu);
  for (auto& s : im.segs) s->engine->cancel();
  for (MaxRingLink* l : im.live_links) l->abort();
}

int LinkedEngine::segments() const {
  const std::lock_guard<std::mutex> lock(impl_->rt_mu);
  return static_cast<int>(impl_->segs.size());
}

int LinkedEngine::links() const {
  return static_cast<int>(impl_->original_cuts.size());
}

const std::vector<int>& LinkedEngine::cut_after_nodes() const {
  return impl_->current_cuts;
}

bool LinkedEngine::link_healthy(int link) const {
  const std::lock_guard<std::mutex> lock(impl_->rt_mu);
  return link >= 0 &&
         static_cast<std::size_t>(link) < impl_->link_health.size() &&
         impl_->link_health[static_cast<std::size_t>(link)] > 0.0;
}

std::uint64_t LinkedEngine::plan_failovers() const {
  return impl_->failovers_total.load(std::memory_order_relaxed);
}

}  // namespace qnn
