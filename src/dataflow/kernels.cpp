#include "dataflow/kernels.h"

#include <algorithm>
#include <thread>

namespace qnn {
namespace {

/// Input bursts consumed per step() before reporting kProgress: bounds the
/// work of one cooperative slice so no kernel starves its siblings on a
/// shared worker, while keeping per-step overhead amortized.
constexpr int kRoundsPerStep = 4;

/// Burst capacity for a window kernel: at least one full padded input row
/// (the §III-B1b line granularity), so the kernel ingests rows at a time.
std::size_t window_burst(const Node& node, std::size_t burst) {
  const auto row =
      static_cast<std::size_t>(node.in.w) * static_cast<std::size_t>(node.in.c);
  return std::max<std::size_t>({burst, row, 1});
}

}  // namespace

// -------------------------------------------------------------------- Kernel

void Kernel::run() {
  for (;;) {
    switch (step_checked()) {
      case StepResult::kDone:
        return;
      case StepResult::kProgress:
        break;
      case StepResult::kBlocked:
        if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
          throw Error("kernel '" + name_ + "' aborted");
        }
        // Same backoff shape as a blocked stream: short spin, then yield.
        for (int i = 0; i < 64; ++i) {
#if defined(__x86_64__)
          __builtin_ia32_pause();
#endif
        }
        std::this_thread::yield();
        break;
    }
  }
}

// -------------------------------------------------------------- WindowKernel

WindowKernel::WindowKernel(const Node& node, Stream& in, Stream& out,
                           std::size_t burst)
    : Kernel(node.name),
      node_(node),
      in_(in),
      out_(out),
      scanner_(node.in, node.k, node.stride, node.pad, /*pad_value=*/0),
      window_buf_(static_cast<std::size_t>(scanner_.window_values())),
      in_burst_(window_burst(node, burst)) {}

void WindowKernel::feed(std::int32_t v) {
  if (const auto completed = scanner_.advance(v)) {
    scanner_.window(*completed, window_buf_);
    emit(*completed);
  }
}

void WindowKernel::advance_padding() {
  while (!scanner_.done() && scanner_.next_is_padding()) feed(0);
}

void WindowKernel::reset() {
  scanner_.reset();
  in_burst_.clear();
  stage_.clear();
  image_open_ = false;
}

void WindowKernel::bind_ready(ReadyHook* hook, int task) {
  in_.bind_consumer(hook, task);
  out_.bind_producer(hook, task);
}

StepResult WindowKernel::step() {
  if (!stage_.flush(out_)) return StepResult::kBlocked;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    // Padding positions (including whole trailing pad rows) consume no
    // input: "the kernel stops the input stream and inputs padding values
    // into the buffer instead" (§III-B1).
    advance_padding();
    if (scanner_.done()) {
      scanner_.reset();  // image complete; re-arm for the next one
      image_open_ = false;
      progressed = true;
      if (!stage_.flush(out_)) return StepResult::kBlocked;
      continue;
    }
    if (in_burst_.refill(in_) == 0) {
      if (in_.drained()) {
        // End of stream is only legal at an image boundary.
        QNN_CHECK(!image_open_,
                  name() + ": input stream closed mid-image");
        if (!stage_.flush(out_)) return StepResult::kBlocked;
        out_.close();
        return StepResult::kDone;
      }
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    image_open_ = true;
    while (in_burst_.available() > 0) {
      advance_padding();
      if (scanner_.done()) break;  // burst spans an image boundary
      // Ingest the row segment up to the next padding interruption in one
      // tight loop — no per-value padding test.
      const std::int64_t run = std::min<std::int64_t>(
          scanner_.real_run(),
          static_cast<std::int64_t>(in_burst_.available()));
      for (std::int64_t i = 0; i < run; ++i) feed(in_burst_.next());
    }
    progressed = true;
    if (!stage_.flush(out_)) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

// ---------------------------------------------------------------- ConvKernel

ConvKernel::ConvKernel(const Node& node, const FilterBank& weights,
                       Stream& in, Stream& out, std::size_t burst)
    : WindowKernel(node, in, out, burst),
      weights_(weights),
      planes_(scanner().window_values(), node.in_bits) {
  QNN_CHECK(node.kind == NodeKind::Conv, "ConvKernel needs a Conv node");
  QNN_CHECK(weights.shape() == node.filter_shape(),
            "weight bank does not match node geometry");
}

void ConvKernel::emit(const WindowScanner::Completed&) {
  planes_.fill(window_buf());
  // "One output pixel per clock cycle, until all the filters are applied
  // at this position" (§III-B1): emit all O responses.
  for (int o = 0; o < node().out.c; ++o) {
    stage().append(planes_.dot(weights_.filter(o)));
  }
}

// ---------------------------------------------------------------- PoolKernel

PoolKernel::PoolKernel(const Node& node, Stream& in, Stream& out,
                       std::size_t burst)
    : WindowKernel(node, in, out, burst) {
  QNN_CHECK(node.kind == NodeKind::MaxPool || node.kind == NodeKind::AvgPool,
            "PoolKernel needs a pooling node");
}

void PoolKernel::emit(const WindowScanner::Completed&) {
  const bool is_max = node().kind == NodeKind::MaxPool;
  const int c = node().in.c;
  const int kk = node().k * node().k;
  const auto window = window_buf();
  // Window layout is (dy, dx, ci); reduce per channel. Padded entries
  // hold code 0, the lowest level — identity for max and sum alike.
  for (int ci = 0; ci < c; ++ci) {
    std::int32_t best = 0;
    std::int64_t sum = 0;
    for (int t = 0; t < kk; ++t) {
      const std::int32_t x = window[static_cast<std::size_t>(t) * c + ci];
      best = std::max(best, x);
      sum += x;
    }
    stage().append(is_max ? best : static_cast<std::int32_t>(sum));
  }
}

// --------------------------------------------------------------- BnActKernel

BnActKernel::BnActKernel(const Node& node, const ThresholdLayer& thresholds,
                         Stream& in, Stream& out, std::size_t burst)
    : Kernel(node.name),
      node_(node),
      thresholds_(thresholds),
      in_(in),
      out_(out),
      in_burst_(burst) {
  QNN_CHECK(node.kind == NodeKind::BnAct, "BnActKernel needs a BnAct node");
  QNN_CHECK(thresholds.channels() == node.in.c,
            "threshold bank channel count mismatch");
}

void BnActKernel::reset() {
  in_burst_.clear();
  stage_.clear();
  ch_ = 0;
}

void BnActKernel::bind_ready(ReadyHook* hook, int task) {
  in_.bind_consumer(hook, task);
  out_.bind_producer(hook, task);
}

StepResult BnActKernel::step() {
  if (!stage_.flush(out_)) return StepResult::kBlocked;
  const int c = node_.in.c;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    const std::size_t n = in_burst_.refill(in_);
    if (n == 0) {
      if (in_.drained()) {
        out_.close();
        return StepResult::kDone;
      }
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    // Map the whole burst through the threshold staircase, carrying the
    // channel phase across burst boundaries. The hardware path: binary
    // search over the 2^n ranges (§III-B3).
    for (std::size_t i = 0; i < n; ++i) {
      stage_.append(thresholds_.at(ch_).eval_binary_search(in_burst_.next()));
      ch_ = ch_ + 1 == c ? 0 : ch_ + 1;
    }
    progressed = true;
    if (!stage_.flush(out_)) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

// ----------------------------------------------------------------- AddKernel

AddKernel::AddKernel(const Node& node, Stream& in_main, Stream& in_skip,
                     Stream& out, std::size_t burst_main,
                     std::size_t burst_skip)
    : Kernel(node.name),
      node_(node),
      main_(in_main),
      skip_(in_skip),
      out_(out),
      main_burst_(burst_main),
      skip_burst_(burst_skip) {
  QNN_CHECK(node.kind == NodeKind::Add, "AddKernel needs an Add node");
}

void AddKernel::reset() {
  main_burst_.clear();
  skip_burst_.clear();
  stage_.clear();
}

void AddKernel::bind_ready(ReadyHook* hook, int task) {
  main_.bind_consumer(hook, task);
  skip_.bind_consumer(hook, task);
  out_.bind_producer(hook, task);
}

StepResult AddKernel::step() {
  if (!stage_.flush(out_)) return StepResult::kBlocked;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    const std::size_t na = main_burst_.refill(main_);
    const std::size_t nb = skip_burst_.refill(skip_);
    if (na == 0 && main_.drained()) {
      // Both paths must end together: a leftover skip value is a protocol
      // bug, but an as-yet-unclosed skip just means we wait for its close.
      QNN_CHECK(nb == 0, name() + ": main stream ended before skip");
      if (!skip_.drained()) {
        return progressed ? StepResult::kProgress : StepResult::kBlocked;
      }
      out_.close();
      return StepResult::kDone;
    }
    QNN_CHECK(!(na > 0 && nb == 0 && skip_.drained()),
              name() + ": skip stream ended before main");
    const std::size_t n = std::min(na, nb);
    if (n == 0) return progressed ? StepResult::kProgress : StepResult::kBlocked;
    for (std::size_t i = 0; i < n; ++i) {
      stage_.append(main_burst_.next() + skip_burst_.next());
    }
    progressed = true;
    if (!stage_.flush(out_)) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

// ---------------------------------------------------------------- ForkKernel

ForkKernel::ForkKernel(std::string name, Stream& in, std::vector<Stream*> outs,
                       std::size_t burst)
    : Kernel(std::move(name)),
      in_(in),
      outs_(std::move(outs)),
      buf_(std::max<std::size_t>(burst, 1)),
      branch_pos_(outs_.size(), 0),
      stall_noted_(outs_.size(), false) {
  QNN_CHECK(outs_.size() >= 2, "fork needs at least two consumers");
}

void ForkKernel::reset() {
  len_ = 0;
  std::fill(branch_pos_.begin(), branch_pos_.end(), 0);
  std::fill(stall_noted_.begin(), stall_noted_.end(), false);
  in_stall_noted_ = false;
}

void ForkKernel::bind_ready(ReadyHook* hook, int task) {
  in_.bind_consumer(hook, task);
  for (Stream* out : outs_) out->bind_producer(hook, task);
}

bool ForkKernel::flush_branches() {
  bool all = true;
  for (std::size_t b = 0; b < outs_.size(); ++b) {
    std::size_t& pos = branch_pos_[b];
    if (pos < len_) {
      pos += outs_[b]->try_push_burst(
          std::span<const std::int32_t>(buf_).subspan(pos, len_ - pos));
    }
    if (pos < len_) {
      if (!stall_noted_[b]) {
        stall_noted_[b] = true;
        outs_[b]->note_push_stall();
      }
      all = false;
    } else {
      stall_noted_[b] = false;
    }
  }
  return all;
}

StepResult ForkKernel::step() {
  if (!flush_branches()) return StepResult::kBlocked;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    len_ = in_.try_pop_burst(buf_);
    std::fill(branch_pos_.begin(), branch_pos_.end(), 0);
    if (len_ == 0) {
      if (in_.drained()) {
        for (Stream* out : outs_) out->close();
        return StepResult::kDone;
      }
      if (!in_stall_noted_) {
        in_stall_noted_ = true;
        in_.note_pop_stall();
      }
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    in_stall_noted_ = false;
    progressed = true;
    if (!flush_branches()) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

}  // namespace qnn
