#include "dataflow/kernels.h"

#include <algorithm>

namespace qnn {
namespace {

/// Pops the first value of an image; false means the stream ended cleanly.
bool pop_first(Stream& in, std::int32_t& v) { return in.pop(v); }

/// Pops a mid-image value; a closed stream here is a protocol violation.
std::int32_t pop_required(Stream& in, const std::string& who) {
  std::int32_t v;
  QNN_CHECK(in.pop(v), who + ": input stream closed mid-image");
  return v;
}

}  // namespace

// ---------------------------------------------------------------- ConvKernel

ConvKernel::ConvKernel(const Node& node, const FilterBank& weights,
                       Stream& in, Stream& out)
    : Kernel(node.name),
      node_(node),
      weights_(weights),
      in_(in),
      out_(out),
      scanner_(node.in, node.k, node.stride, node.pad, /*pad_value=*/0),
      window_buf_(static_cast<std::size_t>(scanner_.window_values())),
      planes_(scanner_.window_values(), node.in_bits) {
  QNN_CHECK(node.kind == NodeKind::Conv, "ConvKernel needs a Conv node");
  QNN_CHECK(weights.shape() == node.filter_shape(),
            "weight bank does not match node geometry");
}

bool ConvKernel::process_image() {
  scanner_.reset();
  bool started = false;
  std::int32_t first = 0;
  while (!scanner_.done()) {
    std::int32_t v = 0;
    if (!scanner_.next_is_padding()) {
      if (!started) {
        if (!pop_first(in_, first)) return false;  // clean end of stream
        started = true;
        v = first;
      } else {
        v = pop_required(in_, name());
      }
    }
    const auto completed = scanner_.advance(v);
    if (completed) {
      scanner_.window(*completed, window_buf_);
      planes_.fill(window_buf_);
      // "One output pixel per clock cycle, until all the filters are
      // applied at this position" (§III-B1): emit all O responses.
      for (int o = 0; o < node_.out.c; ++o) {
        out_.push(planes_.dot(weights_.filter(o)));
      }
    }
  }
  return true;
}

void ConvKernel::run() {
  while (process_image()) {
  }
  out_.close();
}

// ---------------------------------------------------------------- PoolKernel

PoolKernel::PoolKernel(const Node& node, Stream& in, Stream& out)
    : Kernel(node.name),
      node_(node),
      in_(in),
      out_(out),
      scanner_(node.in, node.k, node.stride, node.pad, /*pad_value=*/0),
      window_buf_(static_cast<std::size_t>(scanner_.window_values())) {
  QNN_CHECK(node.kind == NodeKind::MaxPool || node.kind == NodeKind::AvgPool,
            "PoolKernel needs a pooling node");
}

bool PoolKernel::process_image() {
  scanner_.reset();
  bool started = false;
  const bool is_max = node_.kind == NodeKind::MaxPool;
  const int c = node_.in.c;
  const int kk = node_.k * node_.k;
  while (!scanner_.done()) {
    std::int32_t v = 0;
    if (!scanner_.next_is_padding()) {
      if (!started) {
        if (!pop_first(in_, v)) return false;
        started = true;
      } else {
        v = pop_required(in_, name());
      }
    }
    const auto completed = scanner_.advance(v);
    if (completed) {
      scanner_.window(*completed, window_buf_);
      // Window layout is (dy, dx, ci); reduce per channel. Padded entries
      // hold code 0, the lowest level — identity for max and sum alike.
      for (int ci = 0; ci < c; ++ci) {
        std::int32_t best = 0;
        std::int64_t sum = 0;
        for (int t = 0; t < kk; ++t) {
          const std::int32_t x =
              window_buf_[static_cast<std::size_t>(t) * c + ci];
          best = std::max(best, x);
          sum += x;
        }
        out_.push(is_max ? best : static_cast<std::int32_t>(sum));
      }
    }
  }
  return true;
}

void PoolKernel::run() {
  while (process_image()) {
  }
  out_.close();
}

// --------------------------------------------------------------- BnActKernel

BnActKernel::BnActKernel(const Node& node, const ThresholdLayer& thresholds,
                         Stream& in, Stream& out)
    : Kernel(node.name), node_(node), thresholds_(thresholds), in_(in),
      out_(out) {
  QNN_CHECK(node.kind == NodeKind::BnAct, "BnActKernel needs a BnAct node");
  QNN_CHECK(thresholds.channels() == node.in.c,
            "threshold bank channel count mismatch");
}

void BnActKernel::run() {
  const int c = node_.in.c;
  int ch = 0;
  std::int32_t v;
  while (in_.pop(v)) {
    // The hardware path: binary search over the 2^n ranges (§III-B3).
    out_.push(thresholds_.at(ch).eval_binary_search(v));
    ch = ch + 1 == c ? 0 : ch + 1;
  }
  out_.close();
}

// ----------------------------------------------------------------- AddKernel

AddKernel::AddKernel(const Node& node, Stream& in_main, Stream& in_skip,
                     Stream& out)
    : Kernel(node.name), node_(node), main_(in_main), skip_(in_skip),
      out_(out) {
  QNN_CHECK(node.kind == NodeKind::Add, "AddKernel needs an Add node");
}

void AddKernel::run() {
  std::int32_t a;
  while (main_.pop(a)) {
    std::int32_t b;
    QNN_CHECK(skip_.pop(b), name() + ": skip stream ended before main");
    out_.push(a + b);
  }
  // Both paths must end together: a leftover skip value is a protocol bug.
  std::int32_t leftover;
  QNN_CHECK(!skip_.pop(leftover), name() + ": main stream ended before skip");
  out_.close();
}

// ---------------------------------------------------------------- ForkKernel

ForkKernel::ForkKernel(std::string name, Stream& in, std::vector<Stream*> outs)
    : Kernel(std::move(name)), in_(in), outs_(std::move(outs)) {
  QNN_CHECK(outs_.size() >= 2, "fork needs at least two consumers");
}

void ForkKernel::run() {
  std::int32_t v;
  while (in_.pop(v)) {
    for (Stream* out : outs_) out->push(v);
  }
  for (Stream* out : outs_) out->close();
}

}  // namespace qnn
