#include "dataflow/kernels.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace qnn {
namespace {

/// Input bursts consumed per step() before reporting kProgress: bounds the
/// work of one cooperative slice so no kernel starves its siblings on a
/// shared worker, while keeping per-step overhead amortized.
constexpr int kRoundsPerStep = 4;

/// Burst capacity for a window kernel: at least one full padded input row
/// (the §III-B1b line granularity), so the kernel ingests rows at a time.
std::size_t window_burst(const Node& node, std::size_t burst) {
  const auto row =
      static_cast<std::size_t>(node.in.w) * static_cast<std::size_t>(node.in.c);
  return std::max<std::size_t>({burst, row, 1});
}

}  // namespace

// -------------------------------------------------------------------- Kernel

void Kernel::run() {
  for (;;) {
    switch (step_checked()) {
      case StepResult::kDone:
        return;
      case StepResult::kProgress:
        break;
      case StepResult::kBlocked:
        if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
          throw Error("kernel '" + name_ + "' aborted");
        }
        // Same backoff shape as a blocked stream: short spin, then yield.
        for (int i = 0; i < 64; ++i) {
#if defined(__x86_64__)
          __builtin_ia32_pause();
#endif
        }
        std::this_thread::yield();
        break;
    }
  }
}

// -------------------------------------------------------------- WindowKernel

WindowKernel::WindowKernel(const Node& node, Stream& in, Stream& out,
                           std::size_t burst)
    : Kernel(node.name),
      node_(node),
      in_(in),
      out_(out),
      scanner_(node.in, node.k, node.stride, node.pad, /*pad_value=*/0),
      window_buf_(static_cast<std::size_t>(scanner_.window_values())),
      in_burst_(window_burst(node, burst)) {}

void WindowKernel::feed(std::int32_t v) {
  if (const auto completed = scanner_.advance(v)) {
    emit(*completed);
  }
}

void WindowKernel::advance_padding() {
  while (!scanner_.done() && scanner_.next_is_padding()) feed(0);
}

void WindowKernel::reset() {
  scanner_.reset();
  in_burst_.clear();
  stage_.clear();
  image_open_ = false;
  rearm_image();
}

void WindowKernel::bind_ready(ReadyHook* hook, int task) {
  in_.bind_consumer(hook, task);
  out_.bind_producer(hook, task);
}

StepResult WindowKernel::step() {
  if (!stage_.flush(out_)) return StepResult::kBlocked;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    // Padding positions (including whole trailing pad rows) consume no
    // input: "the kernel stops the input stream and inputs padding values
    // into the buffer instead" (§III-B1). Only once the image has begun,
    // though — pre-feeding a not-yet-started image's leading pad rows
    // would, for pad >= k, complete (and emit) windows of an image that
    // may never arrive.
    if (image_open_) advance_padding();
    if (scanner_.done()) {
      scanner_.reset();  // image complete; re-arm for the next one
      rearm_image();
      image_open_ = false;
      progressed = true;
      if (!stage_.flush(out_)) return StepResult::kBlocked;
      continue;
    }
    if (in_burst_.refill(in_) == 0) {
      if (in_.drained()) {
        // End of stream is only legal at an image boundary.
        QNN_CHECK(!image_open_,
                  name() + ": input stream closed mid-image");
        if (!stage_.flush(out_)) return StepResult::kBlocked;
        out_.close();
        return StepResult::kDone;
      }
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    image_open_ = true;
    while (in_burst_.available() > 0) {
      advance_padding();
      if (scanner_.done()) break;  // burst spans an image boundary
      // Ingest the row segment up to the next padding interruption in one
      // tight loop — no per-value padding test. The run is exposed to the
      // subclass first (scanner cursor still at the run's first value), so
      // the packed conv datapath bit-plane-packs it exactly once.
      const std::int64_t run = std::min<std::int64_t>(
          scanner_.real_run(),
          static_cast<std::int64_t>(in_burst_.available()));
      ingest_run(in_burst_.view(static_cast<std::size_t>(run)));
      for (std::int64_t i = 0; i < run; ++i) feed(in_burst_.next());
    }
    progressed = true;
    if (!stage_.flush(out_)) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

// ---------------------------------------------------------------- ConvKernel

namespace {
std::atomic<ConvDatapath> g_conv_datapath{ConvDatapath::kPacked};
}  // namespace

ConvDatapath conv_datapath() {
  return g_conv_datapath.load(std::memory_order_relaxed);
}

void set_conv_datapath(ConvDatapath dp) {
  g_conv_datapath.store(dp, std::memory_order_relaxed);
}

ConvKernel::ConvKernel(const Node& node, const FilterBank& weights,
                       Stream& in, Stream& out, std::size_t burst)
    : WindowKernel(node, in, out, burst),
      weights_(weights),
      planes_(scanner().window_values(), node.in_bits),
      packed_weights_(scanner().window_values(), node.out.c),
      lines_(node.in_bits, node.k,
             static_cast<std::int64_t>(scanner().padded_w()) * node.in.c),
      window_(scanner().window_values(), node.in_bits),
      acc_(static_cast<std::size_t>(node.out.c), 0),
      datapath_(conv_datapath()) {
  QNN_CHECK(node.kind == NodeKind::Conv, "ConvKernel needs a Conv node");
  QNN_CHECK(weights.shape() == node.filter_shape(),
            "weight bank does not match node geometry");
  // Re-pack the weight cache filter-major once; the BitVector tail-zero
  // invariant carries over, so the SIMD sweep needs no weight-side masking.
  std::vector<Word> tmp(packed_weights_.stride_words());
  for (int o = 0; o < node.out.c; ++o) {
    const BitVector& f = weights.filter(o);
    for (std::int64_t w = 0; w < f.words(); ++w) {
      tmp[static_cast<std::size_t>(w)] = f.word(w);
    }
    packed_weights_.set(o, tmp);
  }
}

void ConvKernel::rearm_image() {
  packed_row_ = -1;
  datapath_ = conv_datapath();
}

void ConvKernel::ensure_row(int y) {
  const int k = node().k;
  for (int r = std::max(packed_row_ + 1, y - k + 1); r <= y; ++r) {
    lines_.clear_row(r % k);
  }
  packed_row_ = std::max(packed_row_, y);
}

void ConvKernel::ingest_run(std::span<const std::int32_t> vals) {
  if (datapath_ != ConvDatapath::kPacked) return;
  const int y = scanner().cur_row();
  ensure_row(y);
  lines_.pack_run(y % node().k, scanner().row_value_pos(), vals);
}

void ConvKernel::emit(const WindowScanner::Completed& at) {
  const int o_count = node().out.c;
  if (datapath_ != ConvDatapath::kPacked) {
    // Scalar-pack reference: gather the window out of the scanner ring and
    // re-binarize it value by value.
    load_window(at);
    planes_.fill(window_buf());
    for (int o = 0; o < o_count; ++o) {
      stage().append(planes_.dot(weights_.filter(o)));
    }
    return;
  }
  // Packed incremental path: every activation was bit-plane-packed exactly
  // once at ingest; a window is K contiguous bit-range splices per plane
  // out of the line buffer (rows recycled mod K, in step with the scanner
  // ring), then one SIMD AND-popcount sweep over all O filters.
  const auto& ops = simd::vec_ops();
  const int k = node().k;
  const int stride = node().stride;
  const std::int64_t chans = node().in.c;
  // All-padding rows (top/bottom pad) never see an ingest_run; enter them
  // into the ring here so their bits read as zero (= pad code 0).
  ensure_row(at.oy * stride + k - 1);
  const std::int64_t seg = static_cast<std::int64_t>(k) * chans;
  const std::int64_t src_bit =
      static_cast<std::int64_t>(at.ox) * stride * chans;
  for (int p = 0; p < lines_.planes(); ++p) {
    for (int dy = 0; dy < k; ++dy) {
      window_.splice(lines_, p, (at.oy * stride + dy) % k, src_bit,
                     static_cast<std::int64_t>(dy) * seg, seg);
    }
  }
  window_.finalize(ops);
  // "One output pixel per clock cycle, until all the filters are applied
  // at this position" (§III-B1): emit all O responses.
  window_.dot_filters(ops, packed_weights_.data(),
                      packed_weights_.stride_words(),
                      static_cast<std::size_t>(o_count), acc_.data());
  for (int o = 0; o < o_count; ++o) {
    stage().append(
        static_cast<std::int32_t>(acc_[static_cast<std::size_t>(o)]));
  }
}

// ---------------------------------------------------------------- PoolKernel

PoolKernel::PoolKernel(const Node& node, Stream& in, Stream& out,
                       std::size_t burst)
    : WindowKernel(node, in, out, burst),
      is_max_(node.kind == NodeKind::MaxPool),
      acc_(static_cast<std::size_t>(node.in.c), 0) {
  QNN_CHECK(node.kind == NodeKind::MaxPool || node.kind == NodeKind::AvgPool,
            "PoolKernel needs a pooling node");
}

void PoolKernel::emit(const WindowScanner::Completed& at) {
  load_window(at);
  const int c = node().in.c;
  const int kk = node().k * node().k;
  const auto window = window_buf();
  // Window layout is (dy, dx, ci): walk it channel-contiguously (stride-1
  // inner loop over ci) with the max/sum decision hoisted out of the loops.
  // Padded entries hold code 0, the lowest level — identity for max and
  // sum alike, so a zero accumulator start is exact.
  std::fill(acc_.begin(), acc_.end(), std::int64_t{0});
  if (is_max_) {
    for (int t = 0; t < kk; ++t) {
      const auto seg = window.subspan(
          static_cast<std::size_t>(t) * static_cast<std::size_t>(c));
      for (int ci = 0; ci < c; ++ci) {
        auto& a = acc_[static_cast<std::size_t>(ci)];
        a = std::max<std::int64_t>(a, seg[static_cast<std::size_t>(ci)]);
      }
    }
  } else {
    for (int t = 0; t < kk; ++t) {
      const auto seg = window.subspan(
          static_cast<std::size_t>(t) * static_cast<std::size_t>(c));
      for (int ci = 0; ci < c; ++ci) {
        acc_[static_cast<std::size_t>(ci)] += seg[static_cast<std::size_t>(ci)];
      }
    }
  }
  for (int ci = 0; ci < c; ++ci) {
    stage().append(
        static_cast<std::int32_t>(acc_[static_cast<std::size_t>(ci)]));
  }
}

// --------------------------------------------------------------- BnActKernel

BnActKernel::BnActKernel(const Node& node, const ThresholdLayer& thresholds,
                         Stream& in, Stream& out, std::size_t burst)
    : Kernel(node.name),
      node_(node),
      thresholds_(thresholds),
      in_(in),
      out_(out),
      in_burst_(burst) {
  QNN_CHECK(node.kind == NodeKind::BnAct, "BnActKernel needs a BnAct node");
  QNN_CHECK(thresholds.channels() == node.in.c,
            "threshold bank channel count mismatch");
  // Small preactivation domain: tabulate the staircase per channel once
  // (<= 256 entries/channel) so the steady state is one indexed load per
  // value. Built from the binary-search path itself, so it is bit-exact by
  // construction.
  if (node.in_bits <= 8) {
    lut_size_ = std::int32_t{1} << node.in_bits;
    lut_bias_ = lut_size_ / 2;
    lut_.resize(static_cast<std::size_t>(node.in.c) *
                static_cast<std::size_t>(lut_size_));
    for (int c = 0; c < node.in.c; ++c) {
      for (std::int32_t idx = 0; idx < lut_size_; ++idx) {
        lut_[static_cast<std::size_t>(c) *
                 static_cast<std::size_t>(lut_size_) +
             static_cast<std::size_t>(idx)] =
            thresholds.at(c).eval_binary_search(idx - lut_bias_);
      }
    }
  }
}

void BnActKernel::reset() {
  in_burst_.clear();
  stage_.clear();
  ch_ = 0;
}

void BnActKernel::bind_ready(ReadyHook* hook, int task) {
  in_.bind_consumer(hook, task);
  out_.bind_producer(hook, task);
}

StepResult BnActKernel::step() {
  if (!stage_.flush(out_)) return StepResult::kBlocked;
  const int c = node_.in.c;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    const std::size_t n = in_burst_.refill(in_);
    if (n == 0) {
      if (in_.drained()) {
        out_.close();
        return StepResult::kDone;
      }
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    // Map the whole burst through the threshold staircase, carrying the
    // channel phase across burst boundaries. Narrow domains go through the
    // per-channel direct table (§III-B3's BRAM LUT); anything outside the
    // table — or a wide domain — takes the binary search over the 2^n
    // ranges, which is bit-identical.
    if (lut_size_ != 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t a = in_burst_.next();
        const std::int64_t idx = static_cast<std::int64_t>(a) + lut_bias_;
        stage_.append(
            idx >= 0 && idx < lut_size_
                ? lut_[static_cast<std::size_t>(ch_) *
                           static_cast<std::size_t>(lut_size_) +
                       static_cast<std::size_t>(idx)]
                : thresholds_.at(ch_).eval_binary_search(a));
        ch_ = ch_ + 1 == c ? 0 : ch_ + 1;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        stage_.append(
            thresholds_.at(ch_).eval_binary_search(in_burst_.next()));
        ch_ = ch_ + 1 == c ? 0 : ch_ + 1;
      }
    }
    progressed = true;
    if (!stage_.flush(out_)) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

// ----------------------------------------------------------------- AddKernel

AddKernel::AddKernel(const Node& node, Stream& in_main, Stream& in_skip,
                     Stream& out, std::size_t burst_main,
                     std::size_t burst_skip)
    : Kernel(node.name),
      node_(node),
      main_(in_main),
      skip_(in_skip),
      out_(out),
      main_burst_(burst_main),
      skip_burst_(burst_skip) {
  QNN_CHECK(node.kind == NodeKind::Add, "AddKernel needs an Add node");
}

void AddKernel::reset() {
  main_burst_.clear();
  skip_burst_.clear();
  stage_.clear();
}

void AddKernel::bind_ready(ReadyHook* hook, int task) {
  main_.bind_consumer(hook, task);
  skip_.bind_consumer(hook, task);
  out_.bind_producer(hook, task);
}

StepResult AddKernel::step() {
  if (!stage_.flush(out_)) return StepResult::kBlocked;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    const std::size_t na = main_burst_.refill(main_);
    const std::size_t nb = skip_burst_.refill(skip_);
    if (na == 0 && main_.drained()) {
      // Both paths must end together: a leftover skip value is a protocol
      // bug, but an as-yet-unclosed skip just means we wait for its close.
      QNN_CHECK(nb == 0, name() + ": main stream ended before skip");
      if (!skip_.drained()) {
        return progressed ? StepResult::kProgress : StepResult::kBlocked;
      }
      out_.close();
      return StepResult::kDone;
    }
    QNN_CHECK(!(na > 0 && nb == 0 && skip_.drained()),
              name() + ": skip stream ended before main");
    const std::size_t n = std::min(na, nb);
    if (n == 0) return progressed ? StepResult::kProgress : StepResult::kBlocked;
    for (std::size_t i = 0; i < n; ++i) {
      stage_.append(main_burst_.next() + skip_burst_.next());
    }
    progressed = true;
    if (!stage_.flush(out_)) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

// ---------------------------------------------------------------- ForkKernel

ForkKernel::ForkKernel(std::string name, Stream& in, std::vector<Stream*> outs,
                       std::size_t burst)
    : Kernel(std::move(name)),
      in_(in),
      outs_(std::move(outs)),
      buf_(std::max<std::size_t>(burst, 1)),
      branch_pos_(outs_.size(), 0),
      stall_noted_(outs_.size(), false) {
  QNN_CHECK(outs_.size() >= 2, "fork needs at least two consumers");
}

void ForkKernel::reset() {
  len_ = 0;
  std::fill(branch_pos_.begin(), branch_pos_.end(), 0);
  std::fill(stall_noted_.begin(), stall_noted_.end(), false);
  in_stall_noted_ = false;
}

void ForkKernel::bind_ready(ReadyHook* hook, int task) {
  in_.bind_consumer(hook, task);
  for (Stream* out : outs_) out->bind_producer(hook, task);
}

bool ForkKernel::flush_branches() {
  bool all = true;
  for (std::size_t b = 0; b < outs_.size(); ++b) {
    std::size_t& pos = branch_pos_[b];
    if (pos < len_) {
      pos += outs_[b]->try_push_burst(
          std::span<const std::int32_t>(buf_).subspan(pos, len_ - pos));
    }
    if (pos < len_) {
      if (!stall_noted_[b]) {
        stall_noted_[b] = true;
        outs_[b]->note_push_stall();
      }
      all = false;
    } else {
      stall_noted_[b] = false;
    }
  }
  return all;
}

StepResult ForkKernel::step() {
  if (!flush_branches()) return StepResult::kBlocked;
  bool progressed = false;
  for (int round = 0; round < kRoundsPerStep; ++round) {
    len_ = in_.try_pop_burst(buf_);
    std::fill(branch_pos_.begin(), branch_pos_.end(), 0);
    if (len_ == 0) {
      if (in_.drained()) {
        for (Stream* out : outs_) out->close();
        return StepResult::kDone;
      }
      if (!in_stall_noted_) {
        in_stall_noted_ = true;
        in_.note_pop_stall();
      }
      return progressed ? StepResult::kProgress : StepResult::kBlocked;
    }
    in_stall_noted_ = false;
    progressed = true;
    if (!flush_branches()) return StepResult::kBlocked;
  }
  return StepResult::kProgress;
}

}  // namespace qnn
