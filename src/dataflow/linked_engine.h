// Partitioned live runtime: N StreamEngine segments on N virtual DFEs,
// daisy-chained by in-process MaxRing links (paper §III-C), with a
// failover ladder that survives permanent link death mid-run.
//
// The LinkedEngine executes an explicit partition cut (a CompiledPlan's
// `cut_after_nodes`, or one derived by partition_optimal) for real: each
// segment is a standalone sub-pipeline with re-indexed parameter banks,
// driven by its own thread; images pipeline through the chain (segment 0
// computes image i+1 while segment 1 computes image i), and every
// boundary tensor ships as checksummed, sequence-numbered MaxRing frames
// paced by the partitioner's link_bits_per_cycle arithmetic.
//
// Fault tolerance (the robustness contract DfeServer builds on):
//   * transient outages / corrupted frames are healed inside MaxRingLink
//     (checksum-nack + bounded retransmit with jittered backoff) — the
//     run completes bit-exact with only retransmit counters to show;
//   * permanent link death escalates out of the link watchdog, and run()
//     fails over: the dead link is derated to health 0 and the degraded
//     plan ladder picks the next rung —
//       1. repartition_optimal under the derated link health,
//       2. the prefix of the current cuts that avoids the dead link,
//       3. the single-DFE plan (always runnable);
//     every rung is proved by verify/link_check.h (D420/D421/D422)
//     before it arms, and the images the failed attempt did not finish
//     are replayed on the new plan — zero lost work, bit-exact results.
//
// Thread-safety matches StreamEngine: one run() at a time; cancel() may
// be called from any thread.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "dataflow/link.h"
#include "partition/partitioner.h"

namespace qnn {

struct LinkedEngineOptions {
  /// Per-segment engine tuning. `plan` and `faults` are honored: the plan
  /// supplies the default cut (its cut_after_nodes) but is NOT handed to
  /// the segment engines (its FIFO plan indexes the unsplit pipeline);
  /// faults arm stream/kernel sites inside each segment and the link
  /// sites on the MaxRing boundaries.
  EngineOptions engine;
  /// The partition cut: link k connects the segments on either side of
  /// cut_after_nodes[k]. Empty = take the engine plan's cut, else derive
  /// one with partition_optimal (which may yield a single segment).
  std::vector<int> cut_after_nodes;
  /// Wire pricing + failover repartitioning knobs (link_bits_per_cycle,
  /// clock_hz, link_health, link_bursts).
  PartitionConfig partition;
  /// Values per MaxRing frame; 0 = the planned burst of the crossing
  /// stream (PartitionConfig::link_bursts), falling back to 256.
  std::size_t frame_values = 0;
  bool pace_links = true;
  std::int64_t ack_timeout_us = 20000;
  int max_retransmits = 8;
  std::int64_t retransmit_backoff_us = 200;
  /// Seed of the links' jittered retransmit backoff.
  std::uint64_t link_seed = 1;
  /// D421 proof margin: wire rate must leave this fraction of capacity
  /// free for retransmissions.
  double retransmit_headroom = 0.10;
  /// Target frame rate of the D421 wire-rate proof; 0 = structural
  /// checks only (D420/D422).
  double target_fps = 0.0;
  /// Failover timeline callback (link death, ladder rungs, re-arms);
  /// invoked from run()'s caller thread only.
  std::function<void(const std::string&)> on_event;
};

/// One standalone sub-pipeline of a partition cut, with its parameter
/// banks re-indexed so any engine can run it in isolation.
struct PipelineSegment {
  Pipeline pipeline;
  NetworkParams params;
};

/// Extract nodes [first, last] of `pipeline` as a standalone pipeline:
/// edges and parameter bank indices are re-based, and the segment input
/// is node first-1's output (the stream a MaxRing link would carry).
[[nodiscard]] PipelineSegment extract_segment(const Pipeline& pipeline,
                                              const NetworkParams& params,
                                              int first, int last);

class LinkedEngine {
 public:
  /// `pipeline` and `params` must outlive the engine (segments copy what
  /// they need, but the failover repartitioner re-reads the original).
  LinkedEngine(const Pipeline& pipeline, const NetworkParams& params,
               LinkedEngineOptions options = {});
  ~LinkedEngine();

  LinkedEngine(const LinkedEngine&) = delete;
  LinkedEngine& operator=(const LinkedEngine&) = delete;

  /// Stream a batch through the chain; survives link death by failover.
  /// Reports link activity in the RunStats link_* fields.
  [[nodiscard]] std::vector<IntTensor> run(
      std::span<const IntTensor> images,
      StreamEngine::RunStats* stats = nullptr);

  [[nodiscard]] IntTensor run_one(const IntTensor& image);

  /// Abort the in-flight run() from another thread; run() throws Error
  /// (not LinkDeadError — cancellation is not a failover trigger).
  void cancel();

  /// Segments in the *current* (possibly degraded) plan.
  [[nodiscard]] int segments() const;
  /// Physical links of the original plan (fixed for the engine lifetime).
  [[nodiscard]] int links() const;
  [[nodiscard]] const std::vector<int>& cut_after_nodes() const;
  [[nodiscard]] bool link_healthy(int link) const;
  /// Degraded-plan recompiles since construction.
  [[nodiscard]] std::uint64_t plan_failovers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qnn
