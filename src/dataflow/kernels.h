// Streaming kernels: the functional decomposition units of §III-B.
//
// Each kernel corresponds to one pipeline Node and is connected to its
// neighbours only through Streams; it is triggered by input availability
// and output buffer space (dataflow firing rule, §II-B). Forks are inserted
// by the engine wherever a stream fans out (residual skip connections).
//
// Kernels are *resumable tasks*, not threads: the unit of execution is
// step(), which performs a bounded amount of work using only the streams'
// non-blocking burst API and reports whether it progressed, is blocked on
// a neighbour, or has finished. This makes one kernel definition runnable
// under both execution models of the engine's Executor seam:
//
//   * thread-per-kernel — run() drives step() in a blocking loop with
//     backoff (the classic model: one OS thread per kernel);
//   * pooled cooperative — a small worker pool repeatedly steps runnable
//     kernels, so a 70-kernel pipeline no longer oversubscribes the host.
//
// Data moves in bursts end to end: a kernel pops a burst of input values,
// transforms it (BnAct maps the whole burst through the threshold
// staircase; Conv/Pool ingest row segments at a time and emit all O filter
// responses per completed window position), stages the results, and
// flushes them with one ring transaction. Blocked-episode accounting
// (Stream::note_*_stall) fires once per continuous blocked period, so the
// stall counters keep their pre-burst meaning.
//
// All kernels process an unbounded sequence of images and terminate when
// their input stream is closed at an image boundary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bitplanes.h"
#include "core/packed_planes.h"
#include "core/simd/vec_ops.h"
#include "dataflow/stream.h"
#include "fault/fault.h"
#include "dataflow/window_scanner.h"
#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

/// Outcome of one cooperative step.
enum class StepResult {
  kProgress,  // did work; call again
  kBlocked,   // no input available / no output space; retry later
  kDone,      // input drained at an image boundary; output closed
};

/// Default cap on the burst size (values) kernels move per stream
/// transaction. With adaptive per-edge sizing (EngineOptions::
/// adaptive_burst) each edge defaults to one row of the map it carries,
/// clamped to this cap; without it every edge moves exactly this many.
inline constexpr std::size_t kDefaultBurst = 256;

// ------------------------------------------------------------------ helpers

/// Staged kernel output awaiting FIFO space: results are appended as they
/// are computed and flushed with one try_push_burst per step, surviving
/// partial flushes across Blocked returns.
class OutStage {
 public:
  void append(std::int32_t v) { buf_.push_back(v); }
  [[nodiscard]] bool empty() const { return pos_ == buf_.size(); }

  /// Move everything possible into `out`; true when fully flushed. Notes
  /// one push-stall episode per continuous blocked period.
  bool flush(Stream& out) {
    if (pos_ < buf_.size()) {
      pos_ += out.try_push_burst(
          std::span<const std::int32_t>(buf_).subspan(pos_));
    }
    if (pos_ < buf_.size()) {
      if (!stall_noted_) {
        stall_noted_ = true;
        out.note_push_stall();
      }
      return false;
    }
    buf_.clear();
    pos_ = 0;
    stall_noted_ = false;
    return true;
  }

  /// Discard staged values (between engine runs / after an aborted run).
  void clear() {
    buf_.clear();
    pos_ = 0;
    stall_noted_ = false;
  }

 private:
  std::vector<std::int32_t> buf_;
  std::size_t pos_ = 0;
  bool stall_noted_ = false;
};

/// One input burst being consumed value by value; refilled from the stream
/// when empty. Notes one pop-stall episode per continuous starved period.
class InBurst {
 public:
  explicit InBurst(std::size_t burst) : buf_(burst == 0 ? 1 : burst) {}

  /// Values currently available without touching the stream.
  [[nodiscard]] std::size_t available() const { return len_ - pos_; }

  /// Ensure values are buffered; returns how many are now available
  /// (0: stream empty — check in.drained() to tell starvation from end).
  std::size_t refill(Stream& in) {
    if (pos_ < len_) return len_ - pos_;
    pos_ = 0;
    len_ = in.try_pop_burst(buf_);
    if (len_ == 0) {
      if (!in.drained() && !stall_noted_) {
        stall_noted_ = true;
        in.note_pop_stall();
      }
    } else {
      stall_noted_ = false;
    }
    return len_;
  }

  [[nodiscard]] std::int32_t next() {
    QNN_DCHECK(pos_ < len_, "burst underrun");
    return buf_[pos_++];
  }

  /// Read-only view of the next `n` buffered values without consuming them
  /// (n <= available()). Lets a kernel pre-scan a run — e.g. pack it into
  /// bit-plane line buffers — before feeding it value by value.
  [[nodiscard]] std::span<const std::int32_t> view(std::size_t n) const {
    QNN_DCHECK(n <= len_ - pos_, "burst view overrun");
    return std::span<const std::int32_t>(buf_).subspan(pos_, n);
  }

  /// Discard buffered values (between engine runs / after an aborted run).
  void clear() {
    pos_ = 0;
    len_ = 0;
    stall_noted_ = false;
  }

 private:
  std::vector<std::int32_t> buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  bool stall_noted_ = false;
};

// ------------------------------------------------------------------- Kernel

class Kernel {
 public:
  explicit Kernel(std::string name) : name_(std::move(name)) {}
  virtual ~Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Perform a bounded amount of work without blocking. Must be called by
  /// one thread at a time (the executor serializes steps of one kernel);
  /// steps of different kernels may run concurrently.
  virtual StepResult step() = 0;

  /// Blocking convenience driver: steps until kDone, backing off while
  /// blocked. Used by the thread-per-kernel executor and direct tests.
  /// Throws once the attached abort flag (set_abort) is raised.
  void run();

  /// Abort flag consulted by run() while blocked (engine-wide fail-fast).
  void set_abort(const std::atomic<bool>* flag) { abort_ = flag; }

  /// Attach a fault-injection site (nullptr = none), armed per run by the
  /// engine's FaultInjector.
  void set_fault(KernelFaultSite* site) { fault_ = site; }

  /// step() gated by the fault site: an armed hang reports kBlocked until
  /// the engine aborts, an armed exception throws. Executors drive this
  /// entry point so every kernel inherits the seam.
  StepResult step_checked() {
    if (fault_ != nullptr && fault_->check()) return StepResult::kBlocked;
    return step();
  }

  /// Readiness wiring for the ready-queue executor: register `task` (this
  /// kernel's slot in the executor's task table) as the consumer of every
  /// input stream and the producer of every output stream, so the streams
  /// wake it when the edge it blocked on becomes serviceable again. Called
  /// with nullptr after the run to unbind. The default binds nothing — a
  /// kernel without streams (or a test stub) then relies on the executor's
  /// rescue sweep for re-scheduling.
  virtual void bind_ready(ReadyHook* /*hook*/, int /*task*/) {}

  /// Discard all in-flight per-run state (partial bursts, staged outputs,
  /// scan cursors). The engine calls this alongside Stream::reset between
  /// runs, so an aborted run never poisons the next one.
  virtual void reset() {}

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  const std::atomic<bool>* abort_ = nullptr;
  KernelFaultSite* fault_ = nullptr;
};

/// Common machinery of the window-ingesting kernels (Conv, Pool): a
/// depth-first scanner with local padding injection, burst input, and an
/// output stage. Subclasses emit responses for each completed window.
class WindowKernel : public Kernel {
 public:
  WindowKernel(const Node& node, Stream& in, Stream& out, std::size_t burst);
  StepResult step() final;
  void reset() override;
  void bind_ready(ReadyHook* hook, int task) override;

 protected:
  /// Emit all outputs of the window at `at` into stage().
  virtual void emit(const WindowScanner::Completed& at) = 0;

  /// Called once per contiguous run of REAL input values, just before they
  /// are fed to the scanner — the scanner cursor (cur_row/row_value_pos)
  /// still points at the run's first value. The packed conv datapath packs
  /// the run into its bit-plane line buffers here; the default does nothing.
  virtual void ingest_run(std::span<const std::int32_t> /*vals*/) {}

  /// Called whenever the scan re-arms for a new image (end of image and
  /// reset()); subclasses recycle per-image state (e.g. line-buffer rows).
  virtual void rearm_image() {}

  [[nodiscard]] const Node& node() const { return node_; }
  [[nodiscard]] WindowScanner& scanner() { return scanner_; }
  [[nodiscard]] OutStage& stage() { return stage_; }

  /// Copy the window at `at` out of the scanner ring into window_buf().
  /// Only the scalar datapaths pay this gather; the packed conv datapath
  /// never calls it.
  void load_window(const WindowScanner::Completed& at) {
    scanner_.window(at, window_buf_);
  }

  [[nodiscard]] std::span<std::int32_t> window_buf() {
    return window_buf_;
  }

 private:
  void feed(std::int32_t v);
  /// Inject padding positions until the next position is real (or done).
  void advance_padding();

  const Node& node_;
  Stream& in_;
  Stream& out_;
  WindowScanner scanner_;
  std::vector<std::int32_t> window_buf_;
  InBurst in_burst_;
  OutStage stage_;
  bool image_open_ = false;
};

/// Which conv inner datapath ConvKernel uses. kPacked (the default) is the
/// word-packed incremental path: activations are decomposed into bit-plane
/// line buffers once as rows stream in, windows are assembled by word
/// splices, and the O-filter sweep runs through the vec_ops SIMD seam.
/// kScalarPack is the original per-window re-pack (BitPlaneWindow::fill),
/// kept as the bit-exact reference and as a bench ablation arm.
enum class ConvDatapath { kScalarPack, kPacked };

/// Process-wide datapath selector (atomic; read at each window emit, so
/// tests and the bench ablation can flip it between runs).
[[nodiscard]] ConvDatapath conv_datapath();
void set_conv_datapath(ConvDatapath dp);

/// XNOR-popcount convolution kernel (Figure 3). Consumes depth-first
/// activation codes in row-segment bursts, injects padding locally, and on
/// each completed window emits all O filter responses for that position.
/// Weights live in the kernel as a packed FilterBank — the on-chip weight
/// cache of §III-B1a — packed once at construction into a filter-major
/// word array for the SIMD inner loop.
class ConvKernel final : public WindowKernel {
 public:
  ConvKernel(const Node& node, const FilterBank& weights, Stream& in,
             Stream& out, std::size_t burst = kDefaultBurst);

 private:
  void emit(const WindowScanner::Completed& at) override;
  void ingest_run(std::span<const std::int32_t> vals) override;
  void rearm_image() override;

  /// Make line-buffer rows (.., y] valid: rows entered since the last
  /// ensure are zero-cleared (all-padding rows never see an ingest_run, so
  /// this is the only place they get recycled).
  void ensure_row(int y);

  const FilterBank& weights_;
  BitPlaneWindow planes_;  // scalar-pack reference datapath

  // Packed incremental datapath state. The datapath choice is latched per
  // image (rearm_image), so a mid-image selector flip can never mix a
  // half-packed line buffer with a packed emit.
  PackedFilters packed_weights_;
  BitPlaneLineBuffer lines_;
  PackedWindow window_;
  std::vector<std::int64_t> acc_;
  int packed_row_ = -1;  // highest padded row already entered into lines_
  ConvDatapath datapath_;
};

/// Max / average (window-sum) pooling kernel. Parameterless; emits each
/// output as soon as its window completes (§III-B2). The reduction walks
/// the (dy, dx, ci) window channel-contiguously with the max/sum decision
/// hoisted out of the loop, accumulating all C channels per window row
/// segment.
class PoolKernel final : public WindowKernel {
 public:
  PoolKernel(const Node& node, Stream& in, Stream& out,
             std::size_t burst = kDefaultBurst);

 private:
  void emit(const WindowScanner::Completed& at) override;

  bool is_max_;
  std::vector<std::int64_t> acc_;  // per-channel scratch
};

/// Folded BatchNorm + n-bit activation kernel (§III-B3): maps each input
/// burst through the per-channel threshold staircase, carrying the channel
/// phase across bursts. When the preactivation domain is small
/// (node.in_bits <= 8, i.e. <= 256 codes), the staircase is tabulated once
/// per channel at construction and each value becomes one indexed load —
/// the BRAM-LUT realization of §III-B3; wider domains (and out-of-table
/// inputs) fall back to the binary search, which stays bit-identical.
class BnActKernel final : public Kernel {
 public:
  BnActKernel(const Node& node, const ThresholdLayer& thresholds, Stream& in,
              Stream& out, std::size_t burst = kDefaultBurst);
  StepResult step() override;
  void reset() override;
  void bind_ready(ReadyHook* hook, int task) override;

  /// True when the direct-lookup path is active (exposed for tests).
  [[nodiscard]] bool uses_lut() const { return lut_size_ != 0; }

 private:
  const Node& node_;
  const ThresholdLayer& thresholds_;
  Stream& in_;
  Stream& out_;
  InBurst in_burst_;
  OutStage stage_;
  int ch_ = 0;
  std::int32_t lut_size_ = 0;  // 0 = binary-search path
  std::int32_t lut_bias_ = 0;  // table index = value + bias
  std::vector<std::int32_t> lut_;  // channel-major [ch * lut_size_ + idx]
};

/// Skip-connection adder (§III-B5, Figure 2): sums the regular path with
/// the buffered 16-bit skip path, pairwise by burst. The skip stream's
/// FIFO capacity plays the role of the delay-compensation buffer.
class AddKernel final : public Kernel {
 public:
  /// `burst_main` / `burst_skip` size the two input-side burst buffers
  /// independently (the regular and skip edges can carry very different
  /// row lengths under adaptive per-edge sizing); consumption stays
  /// pairwise regardless.
  AddKernel(const Node& node, Stream& in_main, Stream& in_skip, Stream& out,
            std::size_t burst_main = kDefaultBurst,
            std::size_t burst_skip = kDefaultBurst);
  StepResult step() override;
  void reset() override;
  void bind_ready(ReadyHook* hook, int task) override;

 private:
  const Node& node_;
  Stream& main_;
  Stream& skip_;
  Stream& out_;
  InBurst main_burst_;
  InBurst skip_burst_;
  OutStage stage_;
};

/// Stream fan-out: replicates one stream to several consumers, a burst at
/// a time with independent per-branch progress. Inserted by the engine
/// where a node output feeds both the regular and skip paths.
class ForkKernel final : public Kernel {
 public:
  ForkKernel(std::string name, Stream& in, std::vector<Stream*> outs,
             std::size_t burst = kDefaultBurst);
  StepResult step() override;
  void reset() override;
  void bind_ready(ReadyHook* hook, int task) override;

 private:
  /// Push the pending burst tail to every branch; true when all caught up.
  bool flush_branches();

  Stream& in_;
  std::vector<Stream*> outs_;
  std::vector<std::int32_t> buf_;
  std::size_t len_ = 0;
  std::vector<std::size_t> branch_pos_;
  std::vector<bool> stall_noted_;
  bool in_stall_noted_ = false;
};

}  // namespace qnn
