// Streaming kernels: the functional decomposition units of §III-B.
//
// Each kernel is an independent thread of execution connected to its
// neighbours only through Streams; it is triggered by input availability and
// output buffer space (dataflow firing rule, §II-B). One kernel corresponds
// to one pipeline Node; forks are inserted by the engine wherever a stream
// fans out (residual skip connections).
//
// All kernels process an unbounded sequence of images and terminate when
// their input stream is closed at an image boundary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bitplanes.h"
#include "dataflow/stream.h"
#include "dataflow/window_scanner.h"
#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

class Kernel {
 public:
  explicit Kernel(std::string name) : name_(std::move(name)) {}
  virtual ~Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Process the whole stream; returns when inputs are closed and drained.
  virtual void run() = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// XNOR-popcount convolution kernel (Figure 3). Consumes depth-first
/// activation codes, injects padding locally, and on each completed window
/// emits all O filter responses for that position. Weights live in the
/// kernel as a packed FilterBank — the on-chip weight cache of §III-B1a.
class ConvKernel final : public Kernel {
 public:
  ConvKernel(const Node& node, const FilterBank& weights, Stream& in,
             Stream& out);
  void run() override;

 private:
  bool process_image();

  const Node& node_;
  const FilterBank& weights_;
  Stream& in_;
  Stream& out_;
  WindowScanner scanner_;
  std::vector<std::int32_t> window_buf_;
  BitPlaneWindow planes_;
};

/// Max / average (window-sum) pooling kernel. Parameterless; emits each
/// output as soon as its window completes (§III-B2).
class PoolKernel final : public Kernel {
 public:
  PoolKernel(const Node& node, Stream& in, Stream& out);
  void run() override;

 private:
  bool process_image();

  const Node& node_;
  Stream& in_;
  Stream& out_;
  WindowScanner scanner_;
  std::vector<std::int32_t> window_buf_;
};

/// Folded BatchNorm + n-bit activation kernel (§III-B3): per-channel
/// threshold staircase evaluated by binary search.
class BnActKernel final : public Kernel {
 public:
  BnActKernel(const Node& node, const ThresholdLayer& thresholds, Stream& in,
              Stream& out);
  void run() override;

 private:
  const Node& node_;
  const ThresholdLayer& thresholds_;
  Stream& in_;
  Stream& out_;
};

/// Skip-connection adder (§III-B5, Figure 2): sums the regular path with
/// the buffered 16-bit skip path. The skip stream's FIFO capacity plays the
/// role of the delay-compensation buffer.
class AddKernel final : public Kernel {
 public:
  AddKernel(const Node& node, Stream& in_main, Stream& in_skip, Stream& out);
  void run() override;

 private:
  const Node& node_;
  Stream& main_;
  Stream& skip_;
  Stream& out_;
};

/// Stream fan-out: replicates one stream to several consumers. Inserted by
/// the engine where a node output feeds both the regular and skip paths.
class ForkKernel final : public Kernel {
 public:
  ForkKernel(std::string name, Stream& in, std::vector<Stream*> outs);
  void run() override;

 private:
  Stream& in_;
  std::vector<Stream*> outs_;
};

}  // namespace qnn
