// Shift-register window extraction over a depth-first pixel stream.
//
// Implements the input side of the convolution kernel in Figure 3: pixels
// arrive one channel value per transaction in depth-first order (channel
// fastest, then x, then y); padding positions are injected locally by the
// kernel ("the kernel stops the input stream and inputs padding values into
// the buffer instead", §III-B1). As soon as the bottom-right value of a
// window is present, the window is complete and an output position can be
// computed.
//
// The scanner retains exactly the last K rows of the padded map — the
// depth-first scan of §III-B1b whose buffer cost is
//     I * (W_padded * (K - 1) + K)
// values, versus Theta(I*W_padded + K) per *width* unit for a width-first
// scan (see fpga/resource_model.h for the accounting used in Fig 6).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/shape.h"

namespace qnn {

class WindowScanner {
 public:
  WindowScanner(Shape in, int k, int stride, int pad,
                std::int32_t pad_value = 0)
      : in_(in),
        k_(k),
        stride_(stride),
        pad_(pad),
        pad_value_(pad_value),
        hp_(in.h + 2 * pad),
        wp_(in.w + 2 * pad),
        out_h_(conv_out_extent(in.h, k, stride, pad)),
        out_w_(conv_out_extent(in.w, k, stride, pad)),
        ring_(static_cast<std::size_t>(k) * wp_ * in.c) {
    QNN_CHECK(in.valid() && k >= 1 && stride >= 1 && pad >= 0,
              "invalid scanner geometry");
    QNN_CHECK(hp_ >= k && wp_ >= k, "window larger than padded input");
  }

  /// All padded positions consumed and no further windows will complete.
  [[nodiscard]] bool done() const { return y_ >= hp_; }

  /// True when the next value to enter the buffer is a padding value the
  /// kernel must inject itself (the input stream is halted meanwhile).
  [[nodiscard]] bool next_is_padding() const {
    QNN_DCHECK(!done(), "scanner exhausted");
    return y_ < pad_ || y_ >= pad_ + in_.h || x_ < pad_ || x_ >= pad_ + in_.w;
  }

  struct Completed {
    int oy;
    int ox;
  };

  /// Number of consecutive scan positions starting at the cursor that take
  /// REAL stream values (no padding until at least the end of the current
  /// row's interior). Lets a burst-mode kernel ingest a row segment at a
  /// time without a per-value padding test; 0 when the next position is a
  /// padding injection or the scan is done. The segment size a kernel asks
  /// for is the edge's PLANNED burst (plan/fifo_plan.h, row-sized under
  /// adaptive mode — carried through the engine from the CompiledPlan when
  /// one is supplied), so ingest granularity is decided at plan time, not
  /// here.
  [[nodiscard]] std::int64_t real_run() const {
    if (done() || next_is_padding()) return 0;
    return static_cast<std::int64_t>(pad_ + in_.w - x_) * in_.c - c_;
  }

  /// Advance the scan by one value: a real stream value when
  /// !next_is_padding(), ignored otherwise (the pad value is injected).
  /// Returns the output position whose window just completed, if any.
  std::optional<Completed> advance(std::int32_t v) {
    QNN_DCHECK(!done(), "advance past end of scan");
    const std::int32_t stored = next_is_padding() ? pad_value_ : v;
    ring_[ring_index(y_, x_, c_)] = stored;

    std::optional<Completed> completed;
    if (c_ == in_.c - 1) {
      // Pixel (y_, x_) is now complete; is it the bottom-right corner of a
      // window? Corner rows are oy*stride + k - 1, columns ox*stride + k-1.
      const int ry = y_ - (k_ - 1);
      const int rx = x_ - (k_ - 1);
      if (ry >= 0 && rx >= 0 && ry % stride_ == 0 && rx % stride_ == 0) {
        const int oy = ry / stride_;
        const int ox = rx / stride_;
        if (oy < out_h_ && ox < out_w_) completed = Completed{oy, ox};
      }
    }
    // Advance the depth-first cursor.
    if (++c_ == in_.c) {
      c_ = 0;
      if (++x_ == wp_) {
        x_ = 0;
        ++y_;
      }
    }
    return completed;
  }

  /// Extract the window of output position (oy, ox) — only valid for the
  /// position just reported by advance(). Depth-first layout (dy, dx, ci),
  /// matching the weight-cache entry layout of FilterBank.
  void window(const Completed& at, std::span<std::int32_t> out) const {
    QNN_DCHECK(static_cast<std::int64_t>(out.size()) == window_values(),
               "window span size mismatch");
    std::size_t w = 0;
    for (int dy = 0; dy < k_; ++dy) {
      const int py = at.oy * stride_ + dy;
      for (int dx = 0; dx < k_; ++dx) {
        const int px = at.ox * stride_ + dx;
        for (int ci = 0; ci < in_.c; ++ci) {
          out[w++] = ring_[ring_index(py, px, ci)];
        }
      }
    }
  }

  [[nodiscard]] std::int64_t window_values() const {
    return static_cast<std::int64_t>(k_) * k_ * in_.c;
  }
  [[nodiscard]] int out_h() const { return out_h_; }
  [[nodiscard]] int out_w() const { return out_w_; }
  [[nodiscard]] int padded_w() const { return wp_; }

  /// Padded row the cursor is currently on (0 <= cur_row < hp while the
  /// scan is live). A packed line buffer mirrors the ring by recycling rows
  /// mod K keyed on this value.
  [[nodiscard]] int cur_row() const { return y_; }

  /// Cursor position within the current padded row, in values:
  /// (x * channels + c) over the padded width. This is the pack offset for
  /// the run about to be ingested via real_run().
  [[nodiscard]] std::int64_t row_value_pos() const {
    return static_cast<std::int64_t>(x_) * in_.c + c_;
  }

  /// Total padded positions scanned per image (pad injections included).
  [[nodiscard]] std::int64_t padded_values() const {
    return static_cast<std::int64_t>(hp_) * wp_ * in_.c;
  }
  /// Padding values injected locally per image.
  [[nodiscard]] std::int64_t padding_values() const {
    return padded_values() - in_.elems();
  }

  /// The paper's depth-first buffer size (§III-B1b) on the padded map:
  /// I*(W_p*(K-1) + K) values retained.
  [[nodiscard]] std::int64_t paper_buffer_values() const {
    return static_cast<std::int64_t>(in_.c) *
           (static_cast<std::int64_t>(wp_) * (k_ - 1) + k_);
  }

  /// Reset for the next image.
  void reset() {
    y_ = x_ = c_ = 0;
  }

 private:
  [[nodiscard]] std::size_t ring_index(int y, int x, int c) const {
    return static_cast<std::size_t>((y % k_) * wp_ + x) *
               static_cast<std::size_t>(in_.c) +
           static_cast<std::size_t>(c);
  }

  Shape in_;
  int k_;
  int stride_;
  int pad_;
  std::int32_t pad_value_;
  int hp_;
  int wp_;
  int out_h_;
  int out_w_;
  std::vector<std::int32_t> ring_;
  int y_ = 0;
  int x_ = 0;
  int c_ = 0;
};

}  // namespace qnn
