// The virtualizable synchronization seam.
//
// Every atomic operation, fence and relaxation hint the lock-free
// stream/scheduler protocols perform goes through a *Sync policy* instead
// of naming std::atomic directly. Production code instantiates the
// protocol templates (ring_core.h, ready_protocol.h) with RealSync, which
// compiles to exactly the std::atomic calls that were previously written
// inline — a pure type alias, zero cost. The model checker (src/mc)
// instantiates the same templates with mc::ModelSync, whose atomics route
// every load, store, RMW and fence through a controlled scheduler with
// release/acquire vector-clock semantics, so the *same protocol code* that
// runs in production is the code whose interleavings are exhaustively
// explored.
//
// A Sync policy provides:
//   template <class T> class Atomic
//     T    load(std::memory_order) const
//     void store(T, std::memory_order)
//     bool compare_exchange_strong(T&, T, std::memory_order)
//     bool compare_exchange_weak(T&, T, std::memory_order)
//     T    fetch_add(T, std::memory_order)       (integral T)
//   static void fence_seq_cst()                  std::atomic_thread_fence
//   static void cpu_relax()                      spin-loop pause hint
//
// Protocol templates must perform ALL cross-thread communication through
// the policy: a plain load smuggled past the seam is invisible to the
// checker and unverifiable.
#pragma once

#include <atomic>

namespace qnn {

/// The production policy: std::atomic verbatim.
struct RealSync {
  template <class T>
  class Atomic {
   public:
    Atomic() = default;
    explicit Atomic(T v) : value_(v) {}

    [[nodiscard]] T load(std::memory_order order) const {
      return value_.load(order);
    }
    void store(T v, std::memory_order order) { value_.store(v, order); }
    bool compare_exchange_strong(T& expected, T desired,
                                 std::memory_order order) {
      return value_.compare_exchange_strong(expected, desired, order);
    }
    bool compare_exchange_weak(T& expected, T desired,
                               std::memory_order order) {
      return value_.compare_exchange_weak(expected, desired, order);
    }
    T fetch_add(T delta, std::memory_order order) {
      return value_.fetch_add(delta, order);
    }

   private:
    std::atomic<T> value_;
  };

  static void fence_seq_cst() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  static void cpu_relax() {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
};

}  // namespace qnn
