// Execution models for a set of resumable kernel tasks.
//
// The engine builds its kernels once; *how* they run is an Executor
// decision made per StreamEngine from EngineOptions:
//
//   * thread-per-kernel — one OS thread per task driving the blocking
//     Kernel::run() loop. Faithful to the hardware picture (every kernel
//     is its own physical pipeline stage) but oversubscribes the host as
//     soon as the pipeline is deeper than the core count.
//
//   * pooled cooperative — min(tasks, threads) workers sweep the task
//     list and step() whichever kernels are runnable, serializing steps
//     of one kernel with a per-task busy flag. A deep pipeline then costs
//     no more threads than the machine has cores, and a blocked kernel
//     costs one skipped step instead of a context switch.
//
//   * ready queue (default) — event-driven: every Stream wakes its
//     blocked neighbour through the ReadyHook seam (stream.h) when a ring
//     transaction lands, so a kernel is queued only while it has something
//     to do. Workers pull from per-worker deques (LIFO for cache warmth)
//     and steal from peers when their own runs dry; idle workers park on a
//     condition variable instead of sweeping, so a deep chain where only a
//     few kernels are runnable costs no O(tasks) scan per step and no
//     spinning. The home deque of each task is the block partition of the
//     topologically ordered task list, which places producer/consumer
//     pairs on the same worker — and, with pinning, the same core.
//
// All models have identical failure semantics: the first kernel
// exception aborts the run (via the shared abort flag that also unblocks
// any blocking stream operations) and is rethrown to the caller after all
// workers have quiesced.
#pragma once

#include <atomic>
#include <memory>
#include <span>

#include "dataflow/kernels.h"

namespace qnn {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Drive every task to completion (StepResult::kDone). Sets `abort` and
  /// rethrows the first task exception once all workers have stopped;
  /// throws Error("dataflow run aborted") if `abort` was raised externally
  /// (StreamEngine::cancel) with no task exception.
  virtual void run(std::span<Kernel* const> tasks,
                   std::atomic<bool>& abort) = 0;
};

/// One OS thread per task, blocking run() loops.
std::unique_ptr<Executor> make_thread_per_kernel_executor();

/// Cooperative worker pool; `threads` = 0 means hardware_concurrency.
std::unique_ptr<Executor> make_pooled_executor(unsigned threads = 0);

/// Event-driven ready-queue scheduler with work stealing (see the file
/// comment). `threads` = 0 means hardware_concurrency. With `pin`, worker
/// w is bound to core (pin_offset + w) % cores via pthread affinity
/// (Linux; silently a no-op elsewhere) — replica pools pass staggered
/// offsets so four engines do not all land on core 0.
std::unique_ptr<Executor> make_ready_queue_executor(unsigned threads = 0,
                                                    bool pin = false,
                                                    unsigned pin_offset = 0);

}  // namespace qnn
