// Width-first (channel-major) window extraction — the alternative scan
// order of Figure 4b, implemented for the §III-B1b ablation.
//
// The input arrives one channel plane at a time (channel varies slowest):
// all padded positions of channel 0, then channel 1, and so on. A window
// for output position (oy, ox) completes only when the *last* channel's
// bottom-right corner value arrives, so the scanner must retain the full
// planes of every earlier channel plus the sliding rows of the current
// one:
//
//     buffer = H_p * W_p * (I - 1)  +  W_p * (K - 1) + K   values,
//
// versus the depth-first scanner's I * (W_p*(K-1) + K). Since W >> K this
// is an order of magnitude more storage — the reason "all images should be
// streamed to the FPGA pixel by pixel and not channel by channel."
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/shape.h"

namespace qnn {

class WidthFirstScanner {
 public:
  WidthFirstScanner(Shape in, int k, int stride, int pad,
                    std::int32_t pad_value = 0)
      : in_(in),
        k_(k),
        stride_(stride),
        pad_(pad),
        pad_value_(pad_value),
        hp_(in.h + 2 * pad),
        wp_(in.w + 2 * pad),
        out_h_(conv_out_extent(in.h, k, stride, pad)),
        out_w_(conv_out_extent(in.w, k, stride, pad)),
        full_planes_(static_cast<std::size_t>(in.c - 1) * hp_ * wp_),
        rows_(static_cast<std::size_t>(k) * wp_) {
    QNN_CHECK(in.valid() && k >= 1 && stride >= 1 && pad >= 0,
              "invalid scanner geometry");
    QNN_CHECK(hp_ >= k && wp_ >= k, "window larger than padded input");
  }

  [[nodiscard]] bool done() const { return c_ >= in_.c; }

  [[nodiscard]] bool next_is_padding() const {
    QNN_DCHECK(!done(), "scanner exhausted");
    return y_ < pad_ || y_ >= pad_ + in_.h || x_ < pad_ ||
           x_ >= pad_ + in_.w;
  }

  struct Completed {
    int oy;
    int ox;
  };

  /// Consecutive positions from the cursor that take real stream values
  /// (one value per position in this channel-major order); 0 when the next
  /// position is padding or the scan is done. Mirrors
  /// WindowScanner::real_run() so both scan orders support burst ingest at
  /// the edge's planned granularity (plan/fifo_plan.h — the per-edge burst
  /// the CompiledPlan freezes).
  [[nodiscard]] std::int64_t real_run() const {
    if (done() || next_is_padding()) return 0;
    return pad_ + in_.w - x_;
  }

  /// Advance by one value of the channel-major stream.
  std::optional<Completed> advance(std::int32_t v) {
    QNN_DCHECK(!done(), "advance past end of scan");
    const std::int32_t stored = next_is_padding() ? pad_value_ : v;
    if (c_ < in_.c - 1) {
      full_planes_[plane_index(c_, y_, x_)] = stored;
    } else {
      rows_[row_index(y_, x_)] = stored;
    }

    std::optional<Completed> completed;
    if (c_ == in_.c - 1) {
      const int ry = y_ - (k_ - 1);
      const int rx = x_ - (k_ - 1);
      if (ry >= 0 && rx >= 0 && ry % stride_ == 0 && rx % stride_ == 0 &&
          ry / stride_ < out_h_ && rx / stride_ < out_w_) {
        completed = Completed{ry / stride_, rx / stride_};
      }
    }
    if (++x_ == wp_) {
      x_ = 0;
      if (++y_ == hp_) {
        y_ = 0;
        ++c_;
      }
    }
    return completed;
  }

  /// Extract the completed window in the depth-first (dy, dx, ci) layout,
  /// identical to WindowScanner's, so the two scan orders are directly
  /// comparable.
  void window(const Completed& at, std::span<std::int32_t> out) const {
    QNN_DCHECK(static_cast<std::int64_t>(out.size()) == window_values(),
               "window span size mismatch");
    std::size_t w = 0;
    for (int dy = 0; dy < k_; ++dy) {
      const int py = at.oy * stride_ + dy;
      for (int dx = 0; dx < k_; ++dx) {
        const int px = at.ox * stride_ + dx;
        for (int ci = 0; ci < in_.c; ++ci) {
          out[w++] = ci < in_.c - 1 ? full_planes_[plane_index(ci, py, px)]
                                    : rows_[row_index(py, px)];
        }
      }
    }
  }

  [[nodiscard]] std::int64_t window_values() const {
    return static_cast<std::int64_t>(k_) * k_ * in_.c;
  }

  /// Values this implementation actually retains (the paper's width-first
  /// buffer formula on the padded map).
  [[nodiscard]] std::int64_t buffer_values() const {
    return static_cast<std::int64_t>(in_.c - 1) * hp_ * wp_ +
           static_cast<std::int64_t>(wp_) * (k_ - 1) + k_;
  }

  void reset() { y_ = x_ = c_ = 0; }

 private:
  [[nodiscard]] std::size_t plane_index(int c, int y, int x) const {
    return static_cast<std::size_t>(
        (static_cast<std::int64_t>(c) * hp_ + y) * wp_ + x);
  }
  [[nodiscard]] std::size_t row_index(int y, int x) const {
    return static_cast<std::size_t>((y % k_) * wp_ + x);
  }

  Shape in_;
  int k_;
  int stride_;
  int pad_;
  std::int32_t pad_value_;
  int hp_;
  int wp_;
  int out_h_;
  int out_w_;
  std::vector<std::int32_t> full_planes_;  // channels 0 .. I-2, whole maps
  std::vector<std::int32_t> rows_;         // last channel, K sliding rows
  int y_ = 0;
  int x_ = 0;
  int c_ = 0;
};

}  // namespace qnn
