#include "dataflow/executor.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "dataflow/ready_protocol.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace qnn {
namespace {

/// Collects the first exception of a run and trips the shared abort flag
/// so every other task unwinds instead of deadlocking on a dead neighbour.
class ErrorLatch {
 public:
  explicit ErrorLatch(std::atomic<bool>& abort) : abort_(abort) {}

  void capture() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    abort_.store(true, std::memory_order_relaxed);
  }

  /// After all workers joined: rethrow the captured exception, or report
  /// an external abort (cancel) that produced no task exception.
  void finish() {
    if (error_) std::rethrow_exception(error_);
    QNN_CHECK(!abort_.load(std::memory_order_relaxed),
              "dataflow run aborted");
  }

 private:
  std::atomic<bool>& abort_;
  std::mutex mu_;
  std::exception_ptr error_;
};

class ThreadPerKernelExecutor final : public Executor {
 public:
  void run(std::span<Kernel* const> tasks,
           std::atomic<bool>& abort) override {
    ErrorLatch latch(abort);
    std::vector<std::thread> threads;
    threads.reserve(tasks.size());
    for (Kernel* task : tasks) {
      task->set_abort(&abort);
      threads.emplace_back([task, &latch] {
        try {
          task->run();
        } catch (...) {
          latch.capture();
        }
      });
    }
    for (auto& t : threads) t.join();
    latch.finish();
  }
};

class PooledExecutor final : public Executor {
 public:
  explicit PooledExecutor(unsigned threads) : threads_(threads) {}

  void run(std::span<Kernel* const> tasks,
           std::atomic<bool>& abort) override {
    const std::size_t n = tasks.size();
    if (n == 0) return;
    const unsigned hw = threads_ != 0
                            ? threads_
                            : std::max(1u, std::thread::hardware_concurrency());
    const std::size_t workers = std::min<std::size_t>(hw, n);

    struct Slot {
      std::atomic_flag busy;        // a worker is stepping this task
      std::atomic<bool> done{false};
    };
    std::vector<Slot> slots(n);
    std::atomic<std::size_t> remaining{n};
    ErrorLatch latch(abort);

    // Workers sweep the task list from staggered start points: each tries
    // to claim a task (busy flag), steps it once, and releases it. A full
    // sweep without progress means the pipeline is waiting on in-flight
    // data of tasks other workers hold — yield rather than spin.
    auto worker_loop = [&](std::size_t wid) {
      while (remaining.load(std::memory_order_acquire) != 0 &&
             !abort.load(std::memory_order_relaxed)) {
        bool progressed = false;
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t t = (wid + j) % n;
          Slot& slot = slots[t];
          if (slot.done.load(std::memory_order_relaxed)) continue;
          if (slot.busy.test_and_set(std::memory_order_acquire)) continue;
          // Re-check under the busy flag: done may have been set by the
          // holder we just succeeded (its release ordered the store).
          if (slot.done.load(std::memory_order_relaxed)) {
            slot.busy.clear(std::memory_order_release);
            continue;
          }
          bool task_done = false;
          try {
            const StepResult r = tasks[t]->step_checked();
            task_done = r == StepResult::kDone;
            if (r != StepResult::kBlocked) progressed = true;
          } catch (...) {
            latch.capture();
            task_done = true;
          }
          if (task_done) {
            slot.done.store(true, std::memory_order_relaxed);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
          }
          slot.busy.clear(std::memory_order_release);
        }
        if (!progressed) std::this_thread::yield();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) t.join();
    latch.finish();
  }

 private:
  unsigned threads_;
};

// -------------------------------------------------------- ready queue

/// Per-run scheduler state behind make_ready_queue_executor: the ReadyHook
/// the streams call into, the per-worker deques, and the parking lot.
///
/// The task state machine itself — kIdle/kReady/kRunning/kNotify/kDone,
/// the wake CAS loop and the lost-wakeup closure (one fenced re-step per
/// blocked episode, Dekker-paired with the wake fence) — lives in
/// ready_protocol.h as ReadyProtocol<Sync>, instantiated here with
/// RealSync. The model checker (src/mc) explores the SAME template on
/// virtual threads; this class adds the parts the checker abstracts away:
/// per-worker deques, work stealing, the parking lot, the awake limit and
/// the error latch.
///
/// Workers with nothing to run (own deque empty, nothing to steal) park
/// on a condition variable with a short timeout instead of spinning; a
/// missed notify (the enqueue raced the parked-counter check) costs at
/// most one timeout. After two consecutive empty timeouts a worker runs a
/// rescue sweep that re-queues every kIdle task — the liveness backstop
/// for kernels that bind no streams (Kernel::bind_ready default).
class ReadyQueueScheduler final : public ReadyHook {
 public:
  ReadyQueueScheduler(std::span<Kernel* const> tasks, std::size_t workers,
                      std::atomic<bool>& abort)
      : tasks_(tasks),
        abort_(abort),
        latch_(abort),
        proto_(tasks.size()),
        homes_(tasks.size()),
        queues_(workers),
        remaining_(tasks.size()),
        awake_limit_(static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()))),
        awake_(static_cast<int>(workers)) {
    // Home = block partition of the topologically ordered task list:
    // task i lives on worker i*W/N, so adjacent producer/consumer kernels
    // share a deque (and, when the workers are pinned, a core).
    const std::size_t n = tasks.size();
    for (std::size_t i = 0; i < n; ++i) {
      homes_[i] = i * workers / n;
      queues_[homes_[i]].q.push_back(static_cast<int>(i));
    }
    ready_.store(static_cast<int>(n), std::memory_order_relaxed);
  }

  void wake(int task) override {
    proto_.wake(task, [this](int t) { enqueue(t); });
  }

  void worker(std::size_t wid) {
    // Rescue only when the whole scheduler looks dead: an idle worker
    // parking while its peers stream data must NOT sweep all n tasks
    // every few hundred microseconds — on deep graphs that re-queues
    // (and no-op re-steps) every idle kernel, costing O(n) per sweep.
    // The activity counter ticks on every enqueue and completion, so a
    // parker that keeps observing fresh activity just backs off.
    int stale_timeouts = 0;
    std::uint64_t seen = activity_.load(std::memory_order_acquire);
    while (remaining_.load(std::memory_order_acquire) != 0 &&
           !abort_.load(std::memory_order_relaxed)) {
      // Cap awake workers at the core count: a worker woken beyond that
      // has no idle core to run on — it can only preempt a productive
      // peer. Surplus workers yield their awake slot via CAS (so the
      // last worker at the limit never parks here) and doze; the slot
      // count is restored on wake. This is what keeps thread-per-kernel
      // pool sizes harmless.
      int a = awake_.load(std::memory_order_relaxed);
      while (a > awake_limit_ &&
             !awake_.compare_exchange_weak(a, a - 1,
                                           std::memory_order_acq_rel)) {
      }
      if (a > awake_limit_) {
        park(stale_timeouts);
        awake_.fetch_add(1, std::memory_order_acq_rel);
        stale_timeouts = std::min(stale_timeouts + 1, 4);
        continue;
      }
      int t = pop_local(wid);
      if (t < 0) t = steal(wid);
      if (t < 0) {
        awake_.fetch_sub(1, std::memory_order_acq_rel);
        park(stale_timeouts);
        awake_.fetch_add(1, std::memory_order_acq_rel);
        const std::uint64_t now = activity_.load(std::memory_order_acquire);
        if (now != seen) {
          seen = now;
          stale_timeouts = 0;
        } else if (++stale_timeouts >= 2) {
          rescue();
          stale_timeouts = 0;
        }
        continue;
      }
      stale_timeouts = 0;
      execute(t);
    }
    // Exit path: make peers re-check remaining/abort promptly.
    notify_all_parked();
  }

  /// After all workers joined: rethrow / report per ErrorLatch.
  void finish() { latch_.finish(); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<int> q;
  };

  void enqueue(int task) {
    WorkerQueue& wq = queues_[homes_[static_cast<std::size_t>(task)]];
    {
      const std::lock_guard<std::mutex> lock(wq.mu);
      wq.q.push_back(task);
    }
    // Throttled notify: every enqueue comes from a worker (a kernel step
    // or a rescue sweep), and a worker always drains the deques —
    // pop_local then steal — before it parks, so a ready task that the
    // awake workers will get to anyway needs no futex wake. Wake a
    // parked peer only while an idle core could actually run it. Without
    // this throttle every ring transaction turns into a notify/park
    // round trip through the kernel scheduler, and the wake cascade
    // keeps a whole overprovisioned pool runnable, thrashing context
    // switches against the productive workers.
    activity_.fetch_add(1, std::memory_order_release);
    ready_.fetch_add(1, std::memory_order_acq_rel);
    const int parked = parked_.load(std::memory_order_seq_cst);
    if (parked > 0 && awake_.load(std::memory_order_relaxed) < awake_limit_) {
      // Lock so the notify cannot fall between a parker's counter bump
      // and its wait; a parker that has not bumped yet just eats one
      // timeout instead.
      const std::lock_guard<std::mutex> lock(park_mu_);
      park_cv_.notify_one();
    }
  }

  int pop_local(std::size_t wid) {
    WorkerQueue& wq = queues_[wid];
    const std::lock_guard<std::mutex> lock(wq.mu);
    if (wq.q.empty()) return -1;
    const int t = wq.q.back();  // LIFO: the task whose data is cache-hot
    wq.q.pop_back();
    ready_.fetch_sub(1, std::memory_order_acq_rel);
    return t;
  }

  int steal(std::size_t wid) {
    for (std::size_t j = 1; j < queues_.size(); ++j) {
      WorkerQueue& wq = queues_[(wid + j) % queues_.size()];
      const std::lock_guard<std::mutex> lock(wq.mu);
      if (wq.q.empty()) continue;
      const int t = wq.q.front();  // FIFO side: the victim's coldest task
      wq.q.pop_front();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      return t;
    }
    return -1;
  }

  /// Timed park with exponential backoff: a worker that keeps finding
  /// nothing sleeps longer (200us up to 3.2ms) so an overprovisioned pool
  /// costs a bounded trickle of timeout rescans instead of a busy loop. A
  /// surplus notify (enqueue) cuts any wait short.
  void park(int stale_timeouts) {
    std::unique_lock<std::mutex> lock(park_mu_);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    const auto wait =
        std::chrono::microseconds(200u << std::min(stale_timeouts, 4));
    park_cv_.wait_for(lock, wait);
    parked_.fetch_sub(1, std::memory_order_relaxed);
  }

  void notify_all_parked() {
    const std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }

  /// Re-queue every idle task. Spurious readiness is harmless (the step
  /// reports kBlocked and the task goes idle again); missing liveness is
  /// not.
  void rescue() {
    for (std::size_t i = 0; i < proto_.size(); ++i) {
      if (proto_.make_ready(static_cast<int>(i))) {
        enqueue(static_cast<int>(i));
      }
    }
  }

  void task_done() {
    activity_.fetch_add(1, std::memory_order_release);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      notify_all_parked();
    }
  }

  void execute(int t) {
    if (!proto_.claim(t)) {
      return;  // kDone raced in (captured error); drop the queue entry
    }
    const DriveResult r = proto_.drive(t, [this, t]() -> ProtoStep {
      if (abort_.load(std::memory_order_relaxed)) return ProtoStep::kAbort;
      try {
        switch (tasks_[static_cast<std::size_t>(t)]->step_checked()) {
          case StepResult::kDone:
            return ProtoStep::kDone;
          case StepResult::kProgress:
            return ProtoStep::kProgress;
          case StepResult::kBlocked:
            return ProtoStep::kBlocked;
        }
      } catch (...) {
        latch_.capture();
      }
      return ProtoStep::kFailed;
    });
    if (r == DriveResult::kCompleted) {
      task_done();
    } else if (r == DriveResult::kFailed) {
      task_done();
      notify_all_parked();  // abort is set; stop peers from sleeping
    }
    // kIdle / kRequeued / kAborted need nothing further from this worker.
  }

  std::span<Kernel* const> tasks_;
  std::atomic<bool>& abort_;
  ErrorLatch latch_;
  ReadyProtocol<RealSync> proto_;
  std::vector<std::size_t> homes_;
  std::vector<WorkerQueue> queues_;
  std::atomic<std::size_t> remaining_;
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};
  std::atomic<int> ready_{0};  // tasks sitting in deques (surplus gauge)
  std::atomic<std::uint64_t> activity_{0};  // enqueues + completions
  const int awake_limit_;  // #cores: workers awake beyond this only thrash
  std::atomic<int> awake_;
};

/// Ready-queue executor with a persistent worker pool. Spawning and
/// joining a pool of OS threads costs tens of microseconds per thread —
/// for a serving-shaped workload (one image per run()) through a deep
/// pipeline that fixed cost dwarfs the compute, and it grows linearly
/// with the pool size. Workers are therefore spawned once, lazily, and
/// parked on a generation counter between runs: each run() publishes a
/// fresh ReadyQueueScheduler, bumps the generation, and waits until every
/// participating worker has finished that generation. The destructor
/// raises shutdown and joins.
class ReadyQueueExecutor final : public Executor {
 public:
  ReadyQueueExecutor(unsigned threads, bool pin, unsigned pin_offset)
      : threads_(threads), pin_(pin), pin_offset_(pin_offset) {}

  ~ReadyQueueExecutor() override {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      ++gen_;
    }
    start_cv_.notify_all();
    for (auto& t : pool_) t.join();
  }

  void run(std::span<Kernel* const> tasks,
           std::atomic<bool>& abort) override {
    const std::size_t n = tasks.size();
    if (n == 0) return;
    const unsigned hw = threads_ != 0
                            ? threads_
                            : std::max(1u, std::thread::hardware_concurrency());
    const std::size_t workers = std::min<std::size_t>(hw, n);

    ReadyQueueScheduler sched(tasks, workers, abort);
    // Bind the readiness seam before any worker starts; unbind after they
    // join, exception or not, so a cancelled run never leaves a stream
    // waking into a dead scheduler on the next run.
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i]->bind_ready(&sched, static_cast<int>(i));
    }
    struct Unbind {
      std::span<Kernel* const> tasks;
      ~Unbind() {
        for (Kernel* t : tasks) t->bind_ready(nullptr, -1);
      }
    } unbind{tasks};

    {
      std::unique_lock<std::mutex> lock(mu_);
      while (pool_.size() < workers) spawn(pool_.size());
      sched_ = &sched;
      run_workers_ = workers;
      active_ = workers;
      ++gen_;
      start_cv_.notify_all();
      done_cv_.wait(lock, [this] { return active_ == 0; });
      sched_ = nullptr;
    }
    sched.finish();
  }

 private:
  void spawn(std::size_t wid) {
    pool_.emplace_back([this, wid] { pool_worker(wid); });
#if defined(__linux__)
    if (pin_) {
      const unsigned ncores =
          std::max(1u, std::thread::hardware_concurrency());
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET((pin_offset_ + wid) % ncores, &set);
      // Best effort: a shrunken cpuset (container) just leaves the
      // worker unpinned.
      pthread_setaffinity_np(pool_.back().native_handle(), sizeof(set),
                             &set);
    }
#endif
  }

  void pool_worker(std::size_t wid) {
    std::uint64_t seen = 0;
    for (;;) {
      ReadyQueueScheduler* sched = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] { return shutdown_ || gen_ != seen; });
        seen = gen_;
        if (shutdown_) return;
        // A run may use fewer workers than the pool holds (task count
        // shrank); surplus workers sit this generation out.
        if (wid < run_workers_) sched = sched_;
      }
      if (sched != nullptr) {
        sched->worker(wid);
        const std::lock_guard<std::mutex> lock(mu_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  unsigned threads_;
  bool pin_;
  unsigned pin_offset_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> pool_;
  ReadyQueueScheduler* sched_ = nullptr;
  std::size_t run_workers_ = 0;
  std::size_t active_ = 0;
  std::uint64_t gen_ = 0;
  bool shutdown_ = false;
};

}  // namespace

std::unique_ptr<Executor> make_thread_per_kernel_executor() {
  return std::make_unique<ThreadPerKernelExecutor>();
}

std::unique_ptr<Executor> make_pooled_executor(unsigned threads) {
  return std::make_unique<PooledExecutor>(threads);
}

std::unique_ptr<Executor> make_ready_queue_executor(unsigned threads, bool pin,
                                                    unsigned pin_offset) {
  return std::make_unique<ReadyQueueExecutor>(threads, pin, pin_offset);
}

}  // namespace qnn
