#include "dataflow/executor.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qnn {
namespace {

/// Collects the first exception of a run and trips the shared abort flag
/// so every other task unwinds instead of deadlocking on a dead neighbour.
class ErrorLatch {
 public:
  explicit ErrorLatch(std::atomic<bool>& abort) : abort_(abort) {}

  void capture() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    abort_.store(true, std::memory_order_relaxed);
  }

  /// After all workers joined: rethrow the captured exception, or report
  /// an external abort (cancel) that produced no task exception.
  void finish() {
    if (error_) std::rethrow_exception(error_);
    QNN_CHECK(!abort_.load(std::memory_order_relaxed),
              "dataflow run aborted");
  }

 private:
  std::atomic<bool>& abort_;
  std::mutex mu_;
  std::exception_ptr error_;
};

class ThreadPerKernelExecutor final : public Executor {
 public:
  void run(std::span<Kernel* const> tasks,
           std::atomic<bool>& abort) override {
    ErrorLatch latch(abort);
    std::vector<std::thread> threads;
    threads.reserve(tasks.size());
    for (Kernel* task : tasks) {
      task->set_abort(&abort);
      threads.emplace_back([task, &latch] {
        try {
          task->run();
        } catch (...) {
          latch.capture();
        }
      });
    }
    for (auto& t : threads) t.join();
    latch.finish();
  }
};

class PooledExecutor final : public Executor {
 public:
  explicit PooledExecutor(unsigned threads) : threads_(threads) {}

  void run(std::span<Kernel* const> tasks,
           std::atomic<bool>& abort) override {
    const std::size_t n = tasks.size();
    if (n == 0) return;
    const unsigned hw = threads_ != 0
                            ? threads_
                            : std::max(1u, std::thread::hardware_concurrency());
    const std::size_t workers = std::min<std::size_t>(hw, n);

    struct Slot {
      std::atomic_flag busy;        // a worker is stepping this task
      std::atomic<bool> done{false};
    };
    std::vector<Slot> slots(n);
    std::atomic<std::size_t> remaining{n};
    ErrorLatch latch(abort);

    // Workers sweep the task list from staggered start points: each tries
    // to claim a task (busy flag), steps it once, and releases it. A full
    // sweep without progress means the pipeline is waiting on in-flight
    // data of tasks other workers hold — yield rather than spin.
    auto worker_loop = [&](std::size_t wid) {
      while (remaining.load(std::memory_order_acquire) != 0 &&
             !abort.load(std::memory_order_relaxed)) {
        bool progressed = false;
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t t = (wid + j) % n;
          Slot& slot = slots[t];
          if (slot.done.load(std::memory_order_relaxed)) continue;
          if (slot.busy.test_and_set(std::memory_order_acquire)) continue;
          // Re-check under the busy flag: done may have been set by the
          // holder we just succeeded (its release ordered the store).
          if (slot.done.load(std::memory_order_relaxed)) {
            slot.busy.clear(std::memory_order_release);
            continue;
          }
          bool task_done = false;
          try {
            const StepResult r = tasks[t]->step_checked();
            task_done = r == StepResult::kDone;
            if (r != StepResult::kBlocked) progressed = true;
          } catch (...) {
            latch.capture();
            task_done = true;
          }
          if (task_done) {
            slot.done.store(true, std::memory_order_relaxed);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
          }
          slot.busy.clear(std::memory_order_release);
        }
        if (!progressed) std::this_thread::yield();
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) t.join();
    latch.finish();
  }

 private:
  unsigned threads_;
};

}  // namespace

std::unique_ptr<Executor> make_thread_per_kernel_executor() {
  return std::make_unique<ThreadPerKernelExecutor>();
}

std::unique_ptr<Executor> make_pooled_executor(unsigned threads) {
  return std::make_unique<PooledExecutor>(threads);
}

}  // namespace qnn
