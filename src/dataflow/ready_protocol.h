// ReadyProtocol: the ready-queue scheduler's task state machine, templated
// on the synchronization seam (sync.h).
//
// Each task moves through a small state machine:
//
//   kReady   — sitting in exactly one deque, waiting for a worker;
//   kRunning — a worker is stepping it (exclusive: this is what makes a
//              kernel's non-atomic state safe to migrate across workers,
//              with happens-before provided by the state CASes and the
//              deque mutexes);
//   kNotify  — kRunning plus a wake arrived mid-step: the worker must
//              treat the next kBlocked as serviceable and step again;
//   kIdle    — blocked with nothing queued; only a wake revives it;
//   kDone    — finished (or poisoned by a captured exception).
//
// Lost-wakeup closure. A wake fires after every successful ring
// transaction (see ReadyHook in ring_core.h), so the only gap left is
// *claim-time staleness*: data pushed before a worker claims the task
// produced a wake that no-op'd (state was kReady), yet the claimed
// kernel's first step may still read a stale ring index and report
// kBlocked. The worker therefore publishes kIdle, issues a seq_cst
// fence, reclaims, and re-steps ONCE per blocked episode: the fence
// pairs Dekker-style with the fence at the top of wake(), so either the
// re-step sees the data, or the waker sees kIdle and re-queues the task.
// Any wake arriving while the worker holds kRunning lands as kNotify and
// forces another step, so no transaction is ever silently dropped.
//
// This header holds ONLY the state machine — no deques, no parking, no
// error latch. The production scheduler (executor.cpp) instantiates it
// with RealSync and wraps it in per-worker deques and a parking lot; the
// model checker (src/mc) instantiates the SAME template with its
// ModelSync policy and exhaustively explores the interleavings, including
// the stale-read behaviours a release/acquire machine permits. The
// Mutations parameter exists solely so the checker can demonstrate that
// each load-bearing piece of the protocol is load-bearing: removing the
// wake fence or the fenced re-step must be *caught* as a lost wakeup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "dataflow/sync.h"

namespace qnn {

/// Compile-time protocol mutations for the model checker's broken-variant
/// tests (src/mc). Production code always uses the default (all false);
/// each flag deletes one ingredient of the lost-wakeup closure above.
struct NoProtocolMutations {
  /// Drop the seq_cst fence at the top of wake().
  static constexpr bool kSkipWakeFence = false;
  /// Return on the first successful kRunning -> kIdle transition instead
  /// of fencing and re-stepping once per blocked episode.
  static constexpr bool kSkipFencedRestep = false;
  /// Ignore wakes that arrive while the task is kRunning (never post
  /// kNotify).
  static constexpr bool kDropNotify = false;
};

/// Per-task scheduler state (see the file comment for the transitions).
enum class TaskState : std::uint8_t { kIdle, kReady, kRunning, kNotify, kDone };

/// What one protocol-visible step of the task reported into drive().
enum class ProtoStep : std::uint8_t {
  kProgress,  // did work; step again
  kBlocked,   // nothing serviceable; try to go idle
  kDone,      // task finished
  kFailed,    // task threw; poison to kDone (caller records the error)
  kAbort,     // run-wide abort observed; stop stepping, leave kIdle
};

/// How drive() disposed of the task.
enum class DriveResult : std::uint8_t {
  kCompleted,  // reached kDone cleanly
  kFailed,     // poisoned to kDone after ProtoStep::kFailed
  kIdle,       // parked kIdle; only a wake revives it
  kRequeued,   // a wake won the reclaim race; the task is queued again
  kAborted,    // ProtoStep::kAbort; left kIdle for the run teardown
};

template <class Sync = RealSync, class Mutations = NoProtocolMutations>
class ReadyProtocol {
 public:
  explicit ReadyProtocol(std::size_t tasks)
      : size_(tasks), slots_(std::make_unique<Slot[]>(tasks)) {}

  ReadyProtocol(const ReadyProtocol&) = delete;
  ReadyProtocol& operator=(const ReadyProtocol&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Streams call this (through the executor's ReadyHook) after every ring
  /// transaction. Invokes `enqueue(task)` exactly when the task made the
  /// kIdle -> kReady transition and therefore must be queued.
  template <class Enqueue>
  void wake(int task, Enqueue&& enqueue) {
    // Pairs with the publish-idle fence in drive(): every data store the
    // waker made is ordered before this fence, every state read after it.
    if constexpr (!Mutations::kSkipWakeFence) {
      Sync::fence_seq_cst();
    }
    auto& st = state(task);
    TaskState s = st.load(std::memory_order_relaxed);
    for (;;) {
      switch (s) {
        case TaskState::kIdle:
          if (st.compare_exchange_weak(s, TaskState::kReady,
                                       std::memory_order_acq_rel)) {
            enqueue(task);
            return;
          }
          break;  // s reloaded; retry
        case TaskState::kRunning:
          if constexpr (Mutations::kDropNotify) {
            return;
          }
          if (st.compare_exchange_weak(s, TaskState::kNotify,
                                       std::memory_order_acq_rel)) {
            return;
          }
          break;
        case TaskState::kReady:   // already queued
        case TaskState::kNotify:  // running worker already owes a re-step
        case TaskState::kDone:
          return;
      }
    }
  }

  /// Claim a dequeued task for stepping (kReady -> kRunning). False when
  /// kDone raced in (a captured error poisoned it); drop the queue entry.
  [[nodiscard]] bool claim(int task) {
    TaskState s = TaskState::kReady;
    return state(task).compare_exchange_strong(s, TaskState::kRunning,
                                               std::memory_order_acq_rel);
  }

  /// Revive an idle task (kIdle -> kReady). True when the caller must
  /// enqueue it — the executor's rescue sweep for streamless kernels.
  [[nodiscard]] bool make_ready(int task) {
    TaskState s = TaskState::kIdle;
    return state(task).compare_exchange_strong(s, TaskState::kReady,
                                               std::memory_order_acq_rel);
  }

  /// Step a claimed task until it finishes, fails, goes idle, or is
  /// re-queued by a racing wake. `step` reports each step's outcome; the
  /// one fenced re-step per blocked episode and the kNotify collapse
  /// happen here (see the file comment).
  template <class Step>
  DriveResult drive(int task, Step&& step) {
    auto& st = state(task);
    bool fenced_recheck = false;
    for (;;) {
      const ProtoStep r = step();
      if (r == ProtoStep::kAbort) {
        st.store(TaskState::kIdle, std::memory_order_release);
        return DriveResult::kAborted;
      }
      if (r == ProtoStep::kFailed) {
        st.store(TaskState::kDone, std::memory_order_release);
        return DriveResult::kFailed;
      }
      if (r == ProtoStep::kDone) {
        st.store(TaskState::kDone, std::memory_order_release);
        return DriveResult::kCompleted;
      }
      if (r == ProtoStep::kProgress) {
        fenced_recheck = false;
        // Collapse a pending notify — the next step subsumes it.
        TaskState cur = TaskState::kNotify;
        st.compare_exchange_strong(cur, TaskState::kRunning,
                                   std::memory_order_acq_rel);
        continue;
      }
      // kBlocked: try to go idle.
      TaskState cur = TaskState::kRunning;
      if (!st.compare_exchange_strong(cur, TaskState::kIdle,
                                      std::memory_order_acq_rel)) {
        // kNotify: a transaction landed mid-step; consume it and re-step.
        st.store(TaskState::kRunning, std::memory_order_release);
        fenced_recheck = false;
        continue;
      }
      if constexpr (Mutations::kSkipFencedRestep) {
        return DriveResult::kIdle;
      }
      if (fenced_recheck) return DriveResult::kIdle;  // already double-checked
      Sync::fence_seq_cst();
      cur = TaskState::kIdle;
      if (!st.compare_exchange_strong(cur, TaskState::kRunning,
                                      std::memory_order_acq_rel)) {
        return DriveResult::kRequeued;  // a wake won the reclaim + queued it
      }
      fenced_recheck = true;
    }
  }

  /// Current state (diagnostics / model-checker property checks only).
  [[nodiscard]] TaskState peek(int task) const {
    return state(task).load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    typename Sync::template Atomic<TaskState> state{TaskState::kReady};
  };

  [[nodiscard]] typename Sync::template Atomic<TaskState>& state(int task) {
    return slots_[static_cast<std::size_t>(task)].state;
  }
  [[nodiscard]] const typename Sync::template Atomic<TaskState>& state(
      int task) const {
    return slots_[static_cast<std::size_t>(task)].state;
  }

  std::size_t size_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace qnn
