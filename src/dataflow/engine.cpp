#include "dataflow/engine.h"

#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace qnn {

Stream& StreamEngine::make_stream(std::size_t capacity, int bits,
                                  std::string name) {
  streams_.push_back(
      std::make_unique<Stream>(capacity, bits, std::move(name)));
  streams_.back()->set_abort(&abort_);
  return *streams_.back();
}

StreamEngine::StreamEngine(const Pipeline& pipeline,
                           const NetworkParams& params, EngineOptions options)
    : pipeline_(pipeline), params_(params), options_(options) {
  pipeline_.validate();

  // Input port streams of every node, filled as edges are created.
  std::vector<Stream*> main_in(static_cast<std::size_t>(pipeline.size()),
                               nullptr);
  std::vector<Stream*> skip_in(static_cast<std::size_t>(pipeline.size()),
                               nullptr);

  // Wire the output of producer `p` (-1 = pipeline input) to its consumers,
  // inserting a fork kernel when the stream fans out. The skip-path FIFO is
  // sized to hold a full feature map plus slack: functionally it subsumes
  // the delay-compensation buffer of §III-B5 for any consumer lag.
  auto wire = [&](int p, const Shape& shape, int bits, Stream*& direct_out) {
    std::vector<int> consumers;
    for (int j = 0; j < pipeline.size(); ++j) {
      const Node& n = pipeline.node(j);
      if (n.main_from == p) consumers.push_back(j);
      if (n.skip_from == p && p >= 0) consumers.push_back(j);
    }
    const std::string pname =
        p < 0 ? "input" : pipeline.node(p).name;
    auto capacity_for = [&](int consumer) -> std::size_t {
      const Node& n = pipeline.node(consumer);
      if (n.kind == NodeKind::Add && n.skip_from == p &&
          !(n.main_from == p)) {
        return static_cast<std::size_t>(shape.elems()) + options_.skip_slack;
      }
      return options_.fifo_capacity;
    };
    auto attach = [&](int consumer, Stream& s) {
      const Node& n = pipeline.node(consumer);
      if (n.main_from == p && main_in[static_cast<std::size_t>(consumer)] ==
                                  nullptr) {
        main_in[static_cast<std::size_t>(consumer)] = &s;
      } else {
        QNN_CHECK(n.skip_from == p, "edge wiring inconsistency");
        skip_in[static_cast<std::size_t>(consumer)] = &s;
      }
    };

    if (consumers.empty()) {
      // Only the final node has no consumers; its stream is the output.
      direct_out = &make_stream(options_.fifo_capacity, bits,
                                pname + "->output");
      return;
    }
    if (consumers.size() == 1) {
      Stream& s =
          make_stream(capacity_for(consumers[0]), bits,
                      pname + "->" + pipeline.node(consumers[0]).name);
      attach(consumers[0], s);
      direct_out = &s;
      return;
    }
    // Fan-out: producer -> fork -> one stream per consumer.
    Stream& trunk =
        make_stream(options_.fifo_capacity, bits, pname + "->fork");
    std::vector<Stream*> branches;
    branches.reserve(consumers.size());
    for (int consumer : consumers) {
      Stream& s = make_stream(capacity_for(consumer), bits,
                              pname + "=>" + pipeline.node(consumer).name);
      attach(consumer, s);
      branches.push_back(&s);
    }
    kernels_.push_back(std::make_unique<ForkKernel>("fork_" + pname, trunk,
                                                    std::move(branches)));
    direct_out = &trunk;
  };

  wire(-1, pipeline.input, pipeline.input_bits, input_stream_);

  std::vector<Stream*> node_out(static_cast<std::size_t>(pipeline.size()),
                                nullptr);
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    wire(i, n.out, n.out_bits, node_out[static_cast<std::size_t>(i)]);
  }
  output_stream_ = node_out[static_cast<std::size_t>(pipeline.size() - 1)];
  QNN_CHECK(output_stream_ != nullptr, "output stream not wired");

  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    Stream* in = main_in[static_cast<std::size_t>(i)];
    Stream* out = node_out[static_cast<std::size_t>(i)];
    QNN_CHECK(in != nullptr && out != nullptr,
              "node " + n.name + " not fully wired");
    switch (n.kind) {
      case NodeKind::Conv:
        kernels_.push_back(std::make_unique<ConvKernel>(
            n, params.conv(n).weights, *in, *out));
        break;
      case NodeKind::MaxPool:
      case NodeKind::AvgPool:
        kernels_.push_back(std::make_unique<PoolKernel>(n, *in, *out));
        break;
      case NodeKind::BnAct:
        kernels_.push_back(std::make_unique<BnActKernel>(
            n, params.bnact(n).thresholds, *in, *out));
        break;
      case NodeKind::Add: {
        Stream* skip = skip_in[static_cast<std::size_t>(i)];
        QNN_CHECK(skip != nullptr, "add node " + n.name + " missing skip");
        kernels_.push_back(
            std::make_unique<AddKernel>(n, *in, *skip, *out));
        break;
      }
    }
  }
}

StreamEngine::~StreamEngine() = default;

std::vector<IntTensor> StreamEngine::run(std::span<const IntTensor> images,
                                         RunStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const IntTensor& img : images) {
    QNN_CHECK(img.shape() == pipeline_.input,
              "image shape " + img.shape().str() + " != network input " +
                  pipeline_.input.str());
  }

  // The engine is reusable: each run starts from pristine streams.
  abort_.store(false, std::memory_order_relaxed);
  for (auto& s : streams_) s->reset();
  std::exception_ptr error;
  std::mutex error_mu;
  auto guard = [&](const auto& fn) {
    try {
      fn();
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      abort_.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kernels_.size() + 1);
  for (auto& k : kernels_) {
    threads.emplace_back([&, kernel = k.get()] { guard([&] { kernel->run(); }); });
  }
  // Feeder: stream each image pixel by pixel, depth first (§III-B1b).
  threads.emplace_back([&] {
    guard([&] {
      for (const IntTensor& img : images) {
        for (std::int64_t i = 0; i < img.size(); ++i) {
          input_stream_->push(img[i]);
        }
      }
      input_stream_->close();
    });
  });

  // Collector (this thread): one output tensor per image.
  std::vector<IntTensor> outputs;
  guard([&] {
    const Shape out_shape = pipeline_.output_shape();
    outputs.reserve(images.size());
    for (std::size_t n = 0; n < images.size(); ++n) {
      IntTensor out(out_shape);
      for (std::int64_t i = 0; i < out.size(); ++i) {
        std::int32_t v;
        QNN_CHECK(output_stream_->pop(v), "output stream ended early");
        out[i] = v;
      }
      outputs.push_back(std::move(out));
    }
    std::int32_t extra;
    QNN_CHECK(!output_stream_->pop(extra), "trailing values on output");
  });

  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  if (stats != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    stats->wall_seconds = elapsed.count();
    stats->images_per_second =
        elapsed.count() > 0.0
            ? static_cast<double>(images.size()) / elapsed.count()
            : 0.0;
    stats->values_streamed = 0;
    stats->push_stalls = 0;
    stats->pop_stalls = 0;
    for (const auto& s : streams_) {
      stats->values_streamed += s->pushed();
      stats->push_stalls += s->push_stalls();
      stats->pop_stalls += s->pop_stalls();
    }
  }
  return outputs;
}

IntTensor StreamEngine::run_one(const IntTensor& image) {
  auto out = run(std::span<const IntTensor>(&image, 1));
  return std::move(out.front());
}

std::vector<std::pair<std::string, std::uint64_t>>
StreamEngine::stream_traffic() const {
  std::vector<std::pair<std::string, std::uint64_t>> traffic;
  traffic.reserve(streams_.size());
  for (const auto& s : streams_) {
    traffic.emplace_back(s->name(), s->pushed());
  }
  return traffic;
}

}  // namespace qnn
