#include "dataflow/engine.h"

#include <algorithm>
#include <chrono>

namespace qnn {
namespace {

/// The paper's depth-first line-buffer size (§III-B1b) for the input of a
/// window kernel, on the padded map: I * (W_p * (K-1) + K) values. Used as
/// the default FIFO depth of edges feeding Conv/Pool kernels, so software
/// buffering matches what the resource model charges the hardware for.
std::size_t line_buffer_values(const Node& n) {
  const std::int64_t wp = n.in.w + 2 * n.pad;
  return static_cast<std::size_t>(static_cast<std::int64_t>(n.in.c) *
                                  (wp * (n.k - 1) + n.k));
}

/// Streams the batch into the pipeline input, one image tail per ring
/// transaction — the DMA side of the depth-first pixel order (§III-B1b).
class FeederTask final : public Kernel {
 public:
  FeederTask(std::span<const IntTensor> images, Stream& out)
      : Kernel("feeder"), images_(images), out_(out) {}

  StepResult step() override {
    bool progressed = false;
    while (img_ < images_.size()) {
      const std::span<const std::int32_t> flat = images_[img_].flat();
      const std::size_t n = out_.try_push_burst(flat.subspan(pos_));
      if (n == 0) {
        if (!stall_noted_) {
          stall_noted_ = true;
          out_.note_push_stall();
        }
        return progressed ? StepResult::kProgress : StepResult::kBlocked;
      }
      stall_noted_ = false;
      progressed = true;
      pos_ += n;
      if (pos_ == flat.size()) {
        pos_ = 0;
        ++img_;
      }
    }
    out_.close();
    return StepResult::kDone;
  }

 private:
  std::span<const IntTensor> images_;
  Stream& out_;
  std::size_t img_ = 0;
  std::size_t pos_ = 0;
  bool stall_noted_ = false;
};

/// Pops the output stream directly into one tensor per image, then checks
/// the end-of-stream protocol (no trailing values).
class CollectorTask final : public Kernel {
 public:
  CollectorTask(std::size_t count, Shape shape, Stream& in,
                std::vector<IntTensor>& outputs)
      : Kernel("collector"),
        count_(count),
        shape_(shape),
        in_(in),
        outputs_(outputs) {}

  StepResult step() override {
    bool progressed = false;
    while (outputs_.size() < count_) {
      if (!open_) {
        cur_ = IntTensor(shape_);
        pos_ = 0;
        open_ = true;
      }
      const std::size_t n =
          in_.try_pop_burst(cur_.flat().subspan(pos_));
      if (n == 0) {
        QNN_CHECK(!in_.drained(), "output stream ended early");
        if (!stall_noted_) {
          stall_noted_ = true;
          in_.note_pop_stall();
        }
        return progressed ? StepResult::kProgress : StepResult::kBlocked;
      }
      stall_noted_ = false;
      progressed = true;
      pos_ += n;
      if (pos_ == static_cast<std::size_t>(cur_.size())) {
        outputs_.push_back(std::move(cur_));
        open_ = false;
      }
    }
    // All images collected; any further value is a protocol error.
    std::int32_t extra = 0;
    QNN_CHECK(in_.try_pop_burst({&extra, 1}) == 0,
              "trailing values on output");
    if (in_.drained()) return StepResult::kDone;
    return progressed ? StepResult::kProgress : StepResult::kBlocked;
  }

 private:
  std::size_t count_;
  Shape shape_;
  Stream& in_;
  std::vector<IntTensor>& outputs_;
  IntTensor cur_;
  std::size_t pos_ = 0;
  bool open_ = false;
  bool stall_noted_ = false;
};

}  // namespace

Stream& StreamEngine::make_stream(std::size_t capacity, int bits,
                                  std::string name) {
  streams_.push_back(
      std::make_unique<Stream>(capacity, bits, std::move(name)));
  streams_.back()->set_abort(&abort_);
  return *streams_.back();
}

StreamEngine::StreamEngine(const Pipeline& pipeline,
                           const NetworkParams& params, EngineOptions options)
    : pipeline_(pipeline), params_(params), options_(options) {
  pipeline_.validate();
  QNN_CHECK(options_.burst >= 1, "burst size must be positive");
  executor_ = options_.executor == ExecutorKind::kPooled
                  ? make_pooled_executor(options_.pool_threads)
                  : make_thread_per_kernel_executor();

  // Input port streams of every node, filled as edges are created.
  std::vector<Stream*> main_in(static_cast<std::size_t>(pipeline.size()),
                               nullptr);
  std::vector<Stream*> skip_in(static_cast<std::size_t>(pipeline.size()),
                               nullptr);

  // Default depth for edges whose consumer needs no line buffer: enough
  // for double-buffered bursts so producer and consumer overlap.
  const std::size_t plain_capacity =
      options_.fifo_capacity != 0
          ? options_.fifo_capacity
          : std::max<std::size_t>(2 * options_.burst, 64);

  // Wire the output of producer `p` (-1 = pipeline input) to its consumers,
  // inserting a fork kernel when the stream fans out.
  auto wire = [&](int p, const Shape& shape, int bits, Stream*& direct_out) {
    std::vector<int> consumers;
    for (int j = 0; j < pipeline.size(); ++j) {
      const Node& n = pipeline.node(j);
      if (n.main_from == p) consumers.push_back(j);
      if (n.skip_from == p && p >= 0) consumers.push_back(j);
    }
    const std::string pname =
        p < 0 ? "input" : pipeline.node(p).name;
    auto capacity_for = [&](int consumer) -> std::size_t {
      const Node& n = pipeline.node(consumer);
      if (n.kind == NodeKind::Add && n.skip_from == p &&
          !(n.main_from == p)) {
        // The skip-path FIFO is sized to hold a full feature map plus
        // slack, whatever fifo_capacity says: functionally it subsumes
        // the delay-compensation buffer of §III-B5 (which only needs to
        // cover the regular path's *lag*, a prefix of the map).
        const std::size_t cap =
            static_cast<std::size_t>(shape.elems()) + options_.skip_slack;
        QNN_CHECK(cap >= static_cast<std::size_t>(shape.elems()),
                  "skip FIFO must subsume the delay buffer");
        return cap;
      }
      if (options_.fifo_capacity != 0) return options_.fifo_capacity;
      // Auto mode: a window kernel's input FIFO is its §III-B1b line
      // buffer; anything deeper buys nothing the scanner can use.
      if (n.is_window_op()) {
        return std::max(line_buffer_values(n), plain_capacity);
      }
      return plain_capacity;
    };
    auto attach = [&](int consumer, Stream& s) {
      const Node& n = pipeline.node(consumer);
      if (n.main_from == p && main_in[static_cast<std::size_t>(consumer)] ==
                                  nullptr) {
        main_in[static_cast<std::size_t>(consumer)] = &s;
      } else {
        QNN_CHECK(n.skip_from == p, "edge wiring inconsistency");
        skip_in[static_cast<std::size_t>(consumer)] = &s;
      }
    };

    if (consumers.empty()) {
      // Only the final node has no consumers; its stream is the output.
      direct_out = &make_stream(plain_capacity, bits, pname + "->output");
      return;
    }
    if (consumers.size() == 1) {
      Stream& s =
          make_stream(capacity_for(consumers[0]), bits,
                      pname + "->" + pipeline.node(consumers[0]).name);
      attach(consumers[0], s);
      direct_out = &s;
      return;
    }
    // Fan-out: producer -> fork -> one stream per consumer.
    Stream& trunk = make_stream(plain_capacity, bits, pname + "->fork");
    std::vector<Stream*> branches;
    branches.reserve(consumers.size());
    for (int consumer : consumers) {
      Stream& s = make_stream(capacity_for(consumer), bits,
                              pname + "=>" + pipeline.node(consumer).name);
      attach(consumer, s);
      branches.push_back(&s);
    }
    kernels_.push_back(std::make_unique<ForkKernel>(
        "fork_" + pname, trunk, std::move(branches), options_.burst));
    direct_out = &trunk;
  };

  wire(-1, pipeline.input, pipeline.input_bits, input_stream_);

  std::vector<Stream*> node_out(static_cast<std::size_t>(pipeline.size()),
                                nullptr);
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    wire(i, n.out, n.out_bits, node_out[static_cast<std::size_t>(i)]);
  }
  output_stream_ = node_out[static_cast<std::size_t>(pipeline.size() - 1)];
  QNN_CHECK(output_stream_ != nullptr, "output stream not wired");

  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    Stream* in = main_in[static_cast<std::size_t>(i)];
    Stream* out = node_out[static_cast<std::size_t>(i)];
    QNN_CHECK(in != nullptr && out != nullptr,
              "node " + n.name + " not fully wired");
    switch (n.kind) {
      case NodeKind::Conv:
        kernels_.push_back(std::make_unique<ConvKernel>(
            n, params.conv(n).weights, *in, *out, options_.burst));
        break;
      case NodeKind::MaxPool:
      case NodeKind::AvgPool:
        kernels_.push_back(
            std::make_unique<PoolKernel>(n, *in, *out, options_.burst));
        break;
      case NodeKind::BnAct:
        kernels_.push_back(std::make_unique<BnActKernel>(
            n, params.bnact(n).thresholds, *in, *out, options_.burst));
        break;
      case NodeKind::Add: {
        Stream* skip = skip_in[static_cast<std::size_t>(i)];
        QNN_CHECK(skip != nullptr, "add node " + n.name + " missing skip");
        kernels_.push_back(std::make_unique<AddKernel>(n, *in, *skip, *out,
                                                       options_.burst));
        break;
      }
    }
  }
}

StreamEngine::~StreamEngine() = default;

std::vector<IntTensor> StreamEngine::run(std::span<const IntTensor> images,
                                         RunStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const IntTensor& img : images) {
    QNN_CHECK(img.shape() == pipeline_.input,
              "image shape " + img.shape().str() + " != network input " +
                  pipeline_.input.str());
  }

  // The engine is reusable: each run starts from pristine streams and
  // kernels, even after a run that threw or was cancelled.
  abort_.store(false, std::memory_order_relaxed);
  for (auto& s : streams_) s->reset();
  for (auto& k : kernels_) k->reset();

  FeederTask feeder(images, *input_stream_);
  std::vector<IntTensor> outputs;
  outputs.reserve(images.size());
  CollectorTask collector(images.size(), pipeline_.output_shape(),
                          *output_stream_, outputs);

  std::vector<Kernel*> tasks;
  tasks.reserve(kernels_.size() + 2);
  tasks.push_back(&feeder);
  for (auto& k : kernels_) tasks.push_back(k.get());
  tasks.push_back(&collector);
  executor_->run(tasks, abort_);

  if (stats != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    stats->wall_seconds = elapsed.count();
    stats->images_per_second =
        elapsed.count() > 0.0
            ? static_cast<double>(images.size()) / elapsed.count()
            : 0.0;
    stats->values_streamed = 0;
    stats->stream_transactions = 0;
    stats->push_stalls = 0;
    stats->pop_stalls = 0;
    for (const auto& s : streams_) {
      stats->values_streamed += s->pushed();
      stats->stream_transactions += s->transactions();
      stats->push_stalls += s->push_stalls();
      stats->pop_stalls += s->pop_stalls();
    }
  }
  return outputs;
}

IntTensor StreamEngine::run_one(const IntTensor& image) {
  auto out = run(std::span<const IntTensor>(&image, 1));
  return std::move(out.front());
}

std::vector<std::pair<std::string, std::uint64_t>>
StreamEngine::stream_traffic() const {
  std::vector<std::pair<std::string, std::uint64_t>> traffic;
  traffic.reserve(streams_.size());
  for (const auto& s : streams_) {
    traffic.emplace_back(s->name(), s->pushed());
  }
  return traffic;
}

}  // namespace qnn
