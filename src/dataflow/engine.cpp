#include "dataflow/engine.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "plan/compiled_plan.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

/// Streams the batch into the pipeline input, one image tail per ring
/// transaction — the DMA side of the depth-first pixel order (§III-B1b).
class FeederTask final : public Kernel {
 public:
  FeederTask(std::span<const IntTensor> images, Stream& out)
      : Kernel("feeder"), images_(images), out_(out) {}

  StepResult step() override {
    bool progressed = false;
    while (img_ < images_.size()) {
      const std::span<const std::int32_t> flat = images_[img_].flat();
      const std::size_t n = out_.try_push_burst(flat.subspan(pos_));
      if (n == 0) {
        if (!stall_noted_) {
          stall_noted_ = true;
          out_.note_push_stall();
        }
        return progressed ? StepResult::kProgress : StepResult::kBlocked;
      }
      stall_noted_ = false;
      progressed = true;
      pos_ += n;
      if (pos_ == flat.size()) {
        pos_ = 0;
        ++img_;
      }
    }
    out_.close();
    return StepResult::kDone;
  }

  void bind_ready(ReadyHook* hook, int task) override {
    out_.bind_producer(hook, task);
  }

 private:
  std::span<const IntTensor> images_;
  Stream& out_;
  std::size_t img_ = 0;
  std::size_t pos_ = 0;
  bool stall_noted_ = false;
};

/// Pops the output stream directly into one tensor per image, then checks
/// the end-of-stream protocol (no trailing values).
class CollectorTask final : public Kernel {
 public:
  CollectorTask(std::size_t count, Shape shape, Stream& in,
                std::vector<IntTensor>& outputs)
      : Kernel("collector"),
        count_(count),
        shape_(shape),
        in_(in),
        outputs_(outputs) {}

  StepResult step() override {
    bool progressed = false;
    while (outputs_.size() < count_) {
      if (!open_) {
        cur_ = IntTensor(shape_);
        pos_ = 0;
        open_ = true;
      }
      const std::size_t n =
          in_.try_pop_burst(cur_.flat().subspan(pos_));
      if (n == 0) {
        QNN_CHECK(!in_.drained(), "output stream ended early");
        if (!stall_noted_) {
          stall_noted_ = true;
          in_.note_pop_stall();
        }
        return progressed ? StepResult::kProgress : StepResult::kBlocked;
      }
      stall_noted_ = false;
      progressed = true;
      pos_ += n;
      if (pos_ == static_cast<std::size_t>(cur_.size())) {
        outputs_.push_back(std::move(cur_));
        open_ = false;
      }
    }
    // All images collected; any further value is a protocol error.
    std::int32_t extra = 0;
    QNN_CHECK(in_.try_pop_burst({&extra, 1}) == 0,
              "trailing values on output");
    if (in_.drained()) return StepResult::kDone;
    return progressed ? StepResult::kProgress : StepResult::kBlocked;
  }

  void bind_ready(ReadyHook* hook, int task) override {
    in_.bind_consumer(hook, task);
  }

 private:
  std::size_t count_;
  Shape shape_;
  Stream& in_;
  std::vector<IntTensor>& outputs_;
  IntTensor cur_;
  std::size_t pos_ = 0;
  bool open_ = false;
  bool stall_noted_ = false;
};

}  // namespace

Stream& StreamEngine::make_stream(std::size_t capacity, int bits,
                                  std::string name) {
  streams_.push_back(
      std::make_unique<Stream>(capacity, bits, std::move(name)));
  streams_.back()->set_abort(&abort_);
  return *streams_.back();
}

StreamEngine::StreamEngine(const Pipeline& pipeline,
                           const NetworkParams& params, EngineOptions options)
    : pipeline_(pipeline), params_(params), options_(options) {
  QNN_CHECK(options_.burst >= 1, "burst size must be positive");
  if (options_.verify) {
    // The Maxeler toolchain rejects malformed kernel graphs at compile
    // time; this is our equivalent. Every defect the engine would hit as
    // a hang, crash or poisoned stream becomes a structured error here —
    // run it before validate() so failures carry QNN-Dxxx codes.
    enforce(verify_graph(pipeline, &params, options_), "StreamEngine");
  }
  pipeline_.validate();
  switch (options_.executor) {
    case ExecutorKind::kThreadPerKernel:
      executor_ = make_thread_per_kernel_executor();
      break;
    case ExecutorKind::kPooled:
      executor_ = make_pooled_executor(options_.pool_threads);
      break;
    case ExecutorKind::kReadyQueue:
      executor_ = make_ready_queue_executor(
          options_.pool_threads, options_.pin_threads, options_.pin_offset);
      break;
  }

  // All FIFO sizing lives in the plan layer (plan/fifo_plan.h) — the same
  // plan the analyzer proves deadlock-free is the one built here, stream
  // for stream, including the per-edge burst each kernel's input side
  // moves per ring transaction (adaptive row-sized by default, capped by
  // `burst` clamped to the smallest user FIFO — QNN-D302). A pre-built
  // CompiledPlan supplies its streams verbatim; otherwise the plan is
  // derived from the options on the spot.
  const FifoPlan plan = options_.plan != nullptr
                            ? options_.plan->fifos
                            : plan_fifos(pipeline, options_);

  // Input port streams of every node, filled as edges are created, with
  // the planned burst granularity of each edge.
  const auto node_count = static_cast<std::size_t>(pipeline.size());
  std::vector<Stream*> main_in(node_count, nullptr);
  std::vector<Stream*> skip_in(node_count, nullptr);
  std::vector<Stream*> node_out(node_count, nullptr);
  std::vector<std::size_t> main_burst(node_count, plan.burst);
  std::vector<std::size_t> skip_burst(node_count, plan.burst);

  auto producer_out = [&](int p) -> Stream*& {
    return p < 0 ? input_stream_ : node_out[static_cast<std::size_t>(p)];
  };
  auto attach = [&](const PlannedStream& ps, Stream& s) {
    if (ps.to_skip_port) {
      skip_in[static_cast<std::size_t>(ps.consumer)] = &s;
      skip_burst[static_cast<std::size_t>(ps.consumer)] = ps.burst;
    } else {
      main_in[static_cast<std::size_t>(ps.consumer)] = &s;
      main_burst[static_cast<std::size_t>(ps.consumer)] = ps.burst;
    }
  };

  const std::vector<PlannedStream>& planned = plan.streams;
  for (std::size_t idx = 0; idx < planned.size(); ++idx) {
    const PlannedStream& ps = planned[idx];
    Stream& s = make_stream(ps.capacity, ps.bits, ps.name);
    switch (ps.role) {
      case PlannedStream::Role::kOutput:
        producer_out(ps.producer) = &s;
        break;
      case PlannedStream::Role::kDirect:
        producer_out(ps.producer) = &s;
        attach(ps, s);
        break;
      case PlannedStream::Role::kTrunk: {
        producer_out(ps.producer) = &s;
        // The branches of this fork follow the trunk in plan order.
        std::vector<Stream*> branches;
        while (idx + 1 < planned.size() &&
               planned[idx + 1].role == PlannedStream::Role::kBranch) {
          ++idx;
          const PlannedStream& bs = planned[idx];
          Stream& b = make_stream(bs.capacity, bs.bits, bs.name);
          attach(bs, b);
          branches.push_back(&b);
        }
        const std::string pname =
            ps.producer < 0 ? "input" : pipeline.node(ps.producer).name;
        kernels_.push_back(std::make_unique<ForkKernel>(
            "fork_" + pname, s, std::move(branches), ps.burst));
        break;
      }
      case PlannedStream::Role::kBranch:
        QNN_CHECK(false, "fork branch without a trunk in the FIFO plan");
        break;
    }
  }

  output_stream_ = node_out[static_cast<std::size_t>(pipeline.size() - 1)];
  QNN_CHECK(output_stream_ != nullptr, "output stream not wired");

  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    Stream* in = main_in[static_cast<std::size_t>(i)];
    Stream* out = node_out[static_cast<std::size_t>(i)];
    QNN_CHECK(in != nullptr && out != nullptr,
              "node " + n.name + " not fully wired");
    const std::size_t burst = main_burst[static_cast<std::size_t>(i)];
    switch (n.kind) {
      case NodeKind::Conv:
        kernels_.push_back(std::make_unique<ConvKernel>(
            n, params.conv(n).weights, *in, *out, burst));
        break;
      case NodeKind::MaxPool:
      case NodeKind::AvgPool:
        kernels_.push_back(
            std::make_unique<PoolKernel>(n, *in, *out, burst));
        break;
      case NodeKind::BnAct:
        kernels_.push_back(std::make_unique<BnActKernel>(
            n, params.bnact(n).thresholds, *in, *out, burst));
        break;
      case NodeKind::Add: {
        Stream* skip = skip_in[static_cast<std::size_t>(i)];
        QNN_CHECK(skip != nullptr, "add node " + n.name + " missing skip");
        kernels_.push_back(std::make_unique<AddKernel>(
            n, *in, *skip, *out, burst,
            skip_burst[static_cast<std::size_t>(i)]));
        break;
      }
    }
  }

  // Fault-injection sites are registered in construction order (streams in
  // plan order, then fork + node kernels), which is deterministic per
  // graph — FaultEvent::target_index is an ordinal into this order.
  if (!options_.faults.empty()) {
    injector_ = std::make_unique<FaultInjector>(options_.faults,
                                                options_.fault_replica);
    for (auto& s : streams_) {
      s->set_fault(injector_->register_stream(s->name()));
    }
    for (auto& k : kernels_) {
      k->set_fault(injector_->register_kernel(k->name()));
    }
  }
}

StreamEngine::~StreamEngine() = default;

std::vector<IntTensor> StreamEngine::run(std::span<const IntTensor> images,
                                         RunStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const IntTensor& img : images) {
    QNN_CHECK(img.shape() == pipeline_.input,
              "image shape " + img.shape().str() + " != network input " +
                  pipeline_.input.str());
  }

  // The engine is reusable: each run starts from pristine streams and
  // kernels, even after a run that threw or was cancelled.
  abort_.store(false, std::memory_order_relaxed);
  for (auto& s : streams_) s->reset();
  for (auto& k : kernels_) k->reset();

  std::uint64_t fired_before = 0;
  if (injector_) {
    fired_before = injector_->fired();
    injector_->begin_run();
    if (injector_->crash_now()) {
      // Board lost before streaming anything: nothing is in flight, the
      // engine stays pristine for the next run.
      throw Error("injected fault: replica crash (run " +
                  std::to_string(injector_->runs_begun() - 1) + ")");
    }
  }

  FeederTask feeder(images, *input_stream_);
  std::vector<IntTensor> outputs;
  outputs.reserve(images.size());
  CollectorTask collector(images.size(), pipeline_.output_shape(),
                          *output_stream_, outputs);

  std::vector<Kernel*> tasks;
  tasks.reserve(kernels_.size() + 2);
  tasks.push_back(&feeder);
  for (auto& k : kernels_) tasks.push_back(k.get());
  tasks.push_back(&collector);
  executor_->run(tasks, abort_);

  if (stats != nullptr) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    stats->wall_seconds = elapsed.count();
    stats->images_per_second =
        elapsed.count() > 0.0
            ? static_cast<double>(images.size()) / elapsed.count()
            : 0.0;
    stats->values_streamed = 0;
    stats->stream_transactions = 0;
    stats->push_stalls = 0;
    stats->pop_stalls = 0;
    stats->faults_injected = injector_ ? injector_->fired() - fired_before : 0;
    for (const auto& s : streams_) {
      stats->values_streamed += s->pushed();
      stats->stream_transactions += s->transactions();
      stats->push_stalls += s->push_stalls();
      stats->pop_stalls += s->pop_stalls();
    }
  }
  return outputs;
}

IntTensor StreamEngine::run_one(const IntTensor& image) {
  auto out = run(std::span<const IntTensor>(&image, 1));
  return std::move(out.front());
}

std::vector<std::pair<std::string, std::uint64_t>>
StreamEngine::stream_traffic() const {
  std::vector<std::pair<std::string, std::uint64_t>> traffic;
  traffic.reserve(streams_.size());
  for (const auto& s : streams_) {
    traffic.emplace_back(s->name(), s->pushed());
  }
  return traffic;
}

}  // namespace qnn
