#include "train/qat.h"

#include <algorithm>
#include <cmath>

#include "nn/reference.h"

namespace qnn {
namespace {

constexpr float kBnEps = 1e-5f;

float sign_pm1(float w) { return w >= 0.0f ? 1.0f : -1.0f; }

}  // namespace

struct QatMlp::BatchCache {
  int batch = 0;
  // Per layer: input activations, pre-activations, normalized values and
  // quantized output codes, plus the batch statistics used.
  std::vector<std::vector<float>> x;      // [layer][batch*in]
  std::vector<std::vector<float>> a;      // [layer][batch*out]
  std::vector<std::vector<float>> xhat;   // [layer][batch*out]
  std::vector<std::vector<float>> y;      // [layer][batch*out]
  std::vector<std::vector<float>> mean;   // [layer][out]
  std::vector<std::vector<float>> var;    // [layer][out]
  std::vector<float> logits;              // [batch*classes]
};

QatMlp::QatMlp(int input_dim, int classes, QatConfig config)
    : config_(std::move(config)), input_dim_(input_dim), classes_(classes),
      rng_(config_.seed) {
  QNN_CHECK(input_dim >= 1 && classes >= 2, "bad network dimensions");
  QNN_CHECK(config_.act_bits >= 1 && config_.act_bits <= 8,
            "activation bits out of range");
  int in = input_dim;
  for (int h : config_.hidden) {
    QNN_CHECK(h >= 1, "hidden width must be positive");
    DenseLayer layer;
    layer.in = in;
    layer.out = h;
    layer.has_bn = true;
    layer.w.resize(static_cast<std::size_t>(in) * h);
    layer.vw.assign(layer.w.size(), 0.0f);
    for (auto& w : layer.w) w = 2.0f * rng_.next_float() - 1.0f;
    layer.gamma.assign(static_cast<std::size_t>(h), 1.0f);
    layer.beta.assign(static_cast<std::size_t>(h),
                      static_cast<float>(2.0));  // center of the code range
    layer.vgamma.assign(static_cast<std::size_t>(h), 0.0f);
    layer.vbeta.assign(static_cast<std::size_t>(h), 0.0f);
    layer.run_mean.assign(static_cast<std::size_t>(h), 0.0f);
    layer.run_var.assign(static_cast<std::size_t>(h), 1.0f);
    layers_.push_back(std::move(layer));
    in = h;
  }
  DenseLayer out_layer;
  out_layer.in = in;
  out_layer.out = classes;
  out_layer.has_bn = false;
  out_layer.w.resize(static_cast<std::size_t>(in) * classes);
  out_layer.vw.assign(out_layer.w.size(), 0.0f);
  for (auto& w : out_layer.w) w = 2.0f * rng_.next_float() - 1.0f;
  layers_.push_back(std::move(out_layer));
}

void QatMlp::forward(const std::vector<const std::vector<float>*>& batch,
                     BatchCache& cache, bool training) const {
  const int n = static_cast<int>(batch.size());
  const std::size_t num_layers = layers_.size();
  cache.batch = n;
  cache.x.assign(num_layers, {});
  cache.a.assign(num_layers, {});
  cache.xhat.assign(num_layers, {});
  cache.y.assign(num_layers, {});
  cache.mean.assign(num_layers, {});
  cache.var.assign(num_layers, {});

  std::vector<float> cur(static_cast<std::size_t>(n) * input_dim_);
  for (int b = 0; b < n; ++b) {
    QNN_CHECK(static_cast<int>(batch[static_cast<std::size_t>(b)]->size()) ==
                  input_dim_,
              "feature dimension mismatch");
    std::copy(batch[static_cast<std::size_t>(b)]->begin(),
              batch[static_cast<std::size_t>(b)]->end(),
              cur.begin() + static_cast<std::ptrdiff_t>(b) * input_dim_);
  }

  const double d = act_range();
  const int max_code = (1 << config_.act_bits) - 1;

  for (std::size_t l = 0; l < num_layers; ++l) {
    const DenseLayer& layer = layers_[l];
    cache.x[l] = cur;
    std::vector<float> a(static_cast<std::size_t>(n) * layer.out, 0.0f);
    for (int b = 0; b < n; ++b) {
      const float* xb = cur.data() + static_cast<std::ptrdiff_t>(b) * layer.in;
      float* ab = a.data() + static_cast<std::ptrdiff_t>(b) * layer.out;
      for (int j = 0; j < layer.out; ++j) {
        const float* wj =
            layer.w.data() + static_cast<std::ptrdiff_t>(j) * layer.in;
        float acc = 0.0f;
        for (int i = 0; i < layer.in; ++i) acc += sign_pm1(wj[i]) * xb[i];
        ab[j] = acc;
      }
    }
    cache.a[l] = a;

    if (!layer.has_bn) {
      cache.logits = std::move(a);
      break;
    }

    // Batch normalization: batch statistics while training, running
    // statistics for deployment-style evaluation.
    std::vector<float> mean(static_cast<std::size_t>(layer.out), 0.0f);
    std::vector<float> var(static_cast<std::size_t>(layer.out), 0.0f);
    if (training) {
      for (int j = 0; j < layer.out; ++j) {
        double m = 0.0;
        for (int b = 0; b < n; ++b) {
          m += a[static_cast<std::size_t>(b) * layer.out + j];
        }
        m /= n;
        double v = 0.0;
        for (int b = 0; b < n; ++b) {
          const double dlt =
              a[static_cast<std::size_t>(b) * layer.out + j] - m;
          v += dlt * dlt;
        }
        v /= n;
        mean[static_cast<std::size_t>(j)] = static_cast<float>(m);
        var[static_cast<std::size_t>(j)] = static_cast<float>(v);
      }
    } else {
      mean = layer.run_mean;
      var = layer.run_var;
    }
    cache.mean[l] = mean;
    cache.var[l] = var;

    std::vector<float> xhat(a.size());
    std::vector<float> y(a.size());
    std::vector<float> codes(a.size());
    for (int b = 0; b < n; ++b) {
      for (int j = 0; j < layer.out; ++j) {
        const std::size_t idx = static_cast<std::size_t>(b) * layer.out +
                                static_cast<std::size_t>(j);
        const float inv_sigma =
            1.0f / std::sqrt(var[static_cast<std::size_t>(j)] + kBnEps);
        xhat[idx] = (a[idx] - mean[static_cast<std::size_t>(j)]) * inv_sigma;
        y[idx] = layer.gamma[static_cast<std::size_t>(j)] * xhat[idx] +
                 layer.beta[static_cast<std::size_t>(j)];
        // The exact inference quantizer (quant/quantizer.h semantics).
        double q = std::floor(static_cast<double>(y[idx]) / d);
        q = std::clamp(q, 0.0, static_cast<double>(max_code));
        codes[idx] = static_cast<float>(q);
      }
    }
    cache.xhat[l] = std::move(xhat);
    cache.y[l] = std::move(y);
    cur = std::move(codes);
  }
}

double QatMlp::backward_and_step(const std::vector<int>& labels,
                                 BatchCache& cache) {
  const int n = cache.batch;
  const DenseLayer& out_layer = layers_.back();
  const float tau = 1.0f / std::sqrt(static_cast<float>(out_layer.in));

  // Softmax cross-entropy on temperature-scaled logits.
  double loss = 0.0;
  std::vector<float> dA(cache.logits.size());
  for (int b = 0; b < n; ++b) {
    const float* zb =
        cache.logits.data() + static_cast<std::ptrdiff_t>(b) * classes_;
    float zmax = -1e30f;
    for (int k = 0; k < classes_; ++k) zmax = std::max(zmax, zb[k] * tau);
    double denom = 0.0;
    for (int k = 0; k < classes_; ++k) {
      denom += std::exp(static_cast<double>(zb[k] * tau - zmax));
    }
    const int label = labels[static_cast<std::size_t>(b)];
    for (int k = 0; k < classes_; ++k) {
      const double p =
          std::exp(static_cast<double>(zb[k] * tau - zmax)) / denom;
      dA[static_cast<std::size_t>(b) * classes_ + static_cast<std::size_t>(k)] =
          static_cast<float>((p - (k == label ? 1.0 : 0.0)) * tau / n);
      if (k == label) loss += -std::log(std::max(p, 1e-12));
    }
  }
  loss /= n;

  const double d = act_range();
  const int levels = 1 << config_.act_bits;
  const float lr = static_cast<float>(config_.lr);
  const float mom = static_cast<float>(config_.momentum);

  // Walk layers from the output back to the input.
  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    DenseLayer& layer = layers_[static_cast<std::size_t>(l)];
    const std::vector<float>& x = cache.x[static_cast<std::size_t>(l)];

    // Gradient w.r.t. this layer's input and weights. STE through the
    // sign binarization: dW flows to the shadow float weight, dX uses the
    // binarized value.
    std::vector<float> dX(static_cast<std::size_t>(n) * layer.in, 0.0f);
    std::vector<float> dW(layer.w.size(), 0.0f);
    for (int b = 0; b < n; ++b) {
      const float* dab = dA.data() + static_cast<std::ptrdiff_t>(b) * layer.out;
      const float* xb = x.data() + static_cast<std::ptrdiff_t>(b) * layer.in;
      float* dxb = dX.data() + static_cast<std::ptrdiff_t>(b) * layer.in;
      for (int j = 0; j < layer.out; ++j) {
        const std::size_t row = static_cast<std::size_t>(j) * layer.in;
        const float g = dab[j];
        for (int i = 0; i < layer.in; ++i) {
          dW[row + static_cast<std::size_t>(i)] += g * xb[i];
          dxb[i] += g * sign_pm1(layer.w[row + static_cast<std::size_t>(i)]);
        }
      }
    }
    // SGD with momentum; shadow weights stay clipped to [-1, 1]
    // (BinaryConnect), keeping the sign function's STE region bounded.
    for (std::size_t widx = 0; widx < layer.w.size(); ++widx) {
      layer.vw[widx] = mom * layer.vw[widx] - lr * dW[widx];
      layer.w[widx] =
          std::clamp(layer.w[widx] + layer.vw[widx], -1.0f, 1.0f);
    }

    if (l == 0) break;

    // Propagate through the previous layer's activation quantizer (STE
    // with saturation mask) and its BatchNorm.
    DenseLayer& prev = layers_[static_cast<std::size_t>(l - 1)];
    const std::vector<float>& y = cache.y[static_cast<std::size_t>(l - 1)];
    const std::vector<float>& xhat =
        cache.xhat[static_cast<std::size_t>(l - 1)];
    const std::vector<float>& var =
        cache.var[static_cast<std::size_t>(l - 1)];

    std::vector<float> dY(dX.size());
    for (std::size_t i = 0; i < dX.size(); ++i) {
      const double r = static_cast<double>(y[i]) / d;
      const bool in_range = r >= 0.0 && r < static_cast<double>(levels);
      dY[i] = in_range ? static_cast<float>(dX[i] / d) : 0.0f;
    }

    // BatchNorm backward (batch statistics), producing dA for prev layer.
    std::vector<float> next_dA(dY.size());
    for (int j = 0; j < prev.out; ++j) {
      const float inv_sigma =
          1.0f / std::sqrt(var[static_cast<std::size_t>(j)] + kBnEps);
      double sum_dy = 0.0;
      double sum_dy_xhat = 0.0;
      for (int b = 0; b < n; ++b) {
        const std::size_t idx = static_cast<std::size_t>(b) * prev.out +
                                static_cast<std::size_t>(j);
        sum_dy += dY[idx];
        sum_dy_xhat += static_cast<double>(dY[idx]) * xhat[idx];
      }
      const float gamma = prev.gamma[static_cast<std::size_t>(j)];
      for (int b = 0; b < n; ++b) {
        const std::size_t idx = static_cast<std::size_t>(b) * prev.out +
                                static_cast<std::size_t>(j);
        const double term = n * static_cast<double>(dY[idx]) - sum_dy -
                            static_cast<double>(xhat[idx]) * sum_dy_xhat;
        next_dA[idx] =
            static_cast<float>(gamma * inv_sigma * term / n);
      }
      // Parameter updates for gamma/beta with momentum.
      prev.vgamma[static_cast<std::size_t>(j)] =
          mom * prev.vgamma[static_cast<std::size_t>(j)] -
          lr * static_cast<float>(sum_dy_xhat);
      prev.vbeta[static_cast<std::size_t>(j)] =
          mom * prev.vbeta[static_cast<std::size_t>(j)] -
          lr * static_cast<float>(sum_dy);
      prev.gamma[static_cast<std::size_t>(j)] +=
          prev.vgamma[static_cast<std::size_t>(j)];
      prev.beta[static_cast<std::size_t>(j)] +=
          prev.vbeta[static_cast<std::size_t>(j)];
    }
    dA = std::move(next_dA);
  }
  return loss;
}

double QatMlp::train_epoch(const LabeledDataset& data) {
  QNN_CHECK(data.dim == input_dim_, "dataset dimension mismatch");
  QNN_CHECK(data.classes <= classes_, "dataset has too many classes");
  const int n = data.size();
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng_.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }

  double total_loss = 0.0;
  int batches = 0;
  BatchCache cache;
  for (int start = 0; start < n; start += config_.batch_size) {
    const int end = std::min(n, start + config_.batch_size);
    std::vector<const std::vector<float>*> batch;
    std::vector<int> labels;
    for (int i = start; i < end; ++i) {
      const int idx = order[static_cast<std::size_t>(i)];
      batch.push_back(&data.features[static_cast<std::size_t>(idx)]);
      labels.push_back(data.labels[static_cast<std::size_t>(idx)]);
    }
    forward(batch, cache, /*training=*/true);
    // Update running statistics from the batch statistics just computed.
    const auto m = static_cast<float>(config_.bn_momentum);
    for (std::size_t l = 0; l + 1 < layers_.size(); ++l) {
      DenseLayer& layer = layers_[l];
      for (int j = 0; j < layer.out; ++j) {
        layer.run_mean[static_cast<std::size_t>(j)] =
            (1.0f - m) * layer.run_mean[static_cast<std::size_t>(j)] +
            m * cache.mean[l][static_cast<std::size_t>(j)];
        layer.run_var[static_cast<std::size_t>(j)] =
            (1.0f - m) * layer.run_var[static_cast<std::size_t>(j)] +
            m * cache.var[l][static_cast<std::size_t>(j)];
      }
    }
    total_loss += backward_and_step(labels, cache);
    ++batches;
  }
  return total_loss / std::max(1, batches);
}

double QatMlp::fit(const LabeledDataset& data) {
  double loss = 0.0;
  for (int e = 0; e < config_.epochs; ++e) loss = train_epoch(data);
  return loss;
}

double QatMlp::evaluate(const LabeledDataset& data) const {
  QNN_CHECK(data.dim == input_dim_, "dataset dimension mismatch");
  BatchCache cache;
  int correct = 0;
  for (int i = 0; i < data.size(); ++i) {
    std::vector<const std::vector<float>*> one{
        &data.features[static_cast<std::size_t>(i)]};
    forward(one, cache, /*training=*/false);
    int best = 0;
    for (int k = 1; k < classes_; ++k) {
      if (cache.logits[static_cast<std::size_t>(k)] >
          cache.logits[static_cast<std::size_t>(best)]) {
        best = k;
      }
    }
    correct += best == data.labels[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(correct) / data.size();
}

std::pair<Pipeline, NetworkParams> QatMlp::export_network() const {
  NetworkSpec spec;
  spec.name = "qat_mlp";
  spec.input = Shape{1, 1, input_dim_};
  spec.input_bits = 8;
  spec.act_bits = config_.act_bits;
  for (int h : config_.hidden) spec.dense(h);
  spec.dense(classes_, /*bn_act=*/false);
  Pipeline pipeline = expand(spec);

  NetworkParams params;
  for (const DenseLayer& layer : layers_) {
    WeightTensor w(FilterShape{layer.out, 1, layer.in});
    for (int o = 0; o < layer.out; ++o) {
      for (int i = 0; i < layer.in; ++i) {
        w.at(o, 0, 0, i) =
            layer.w[static_cast<std::size_t>(o) * layer.in +
                    static_cast<std::size_t>(i)];
      }
    }
    params.convs.push_back(ConvParams{FilterBank::binarize(w)});
    if (!layer.has_bn) continue;
    BnLayerParams bn(layer.out);
    for (int j = 0; j < layer.out; ++j) {
      BnParams& p = bn.at(j);
      p.gamma = layer.gamma[static_cast<std::size_t>(j)];
      p.mu = layer.run_mean[static_cast<std::size_t>(j)];
      p.inv_sigma = 1.0f / std::sqrt(
                               layer.run_var[static_cast<std::size_t>(j)] +
                               kBnEps);
      p.beta = layer.beta[static_cast<std::size_t>(j)];
    }
    BnActParams bp;
    bp.quantizer = ActQuantizer(config_.act_bits, act_range());
    bp.bn = std::move(bn);
    bp.thresholds = ThresholdLayer::fold(bp.bn, bp.quantizer);
    params.bnacts.push_back(std::move(bp));
  }
  QNN_CHECK(static_cast<int>(params.convs.size()) ==
                pipeline.num_conv_params,
            "export conv count mismatch");
  QNN_CHECK(static_cast<int>(params.bnacts.size()) ==
                pipeline.num_bnact_params,
            "export bnact count mismatch");
  return {std::move(pipeline), std::move(params)};
}

QatResult train_and_export(const LabeledDataset& train_set,
                           const LabeledDataset& test_set,
                           const QatConfig& config) {
  QatMlp mlp(train_set.dim, train_set.classes, config);
  QatResult result;
  result.final_loss = mlp.fit(train_set);
  result.train_accuracy = mlp.evaluate(test_set);

  const auto [pipeline, params] = mlp.export_network();
  const ReferenceExecutor exec(pipeline, params);
  int correct = 0;
  for (int i = 0; i < test_set.size(); ++i) {
    const IntTensor logits =
        exec.run(test_set.images[static_cast<std::size_t>(i)]);
    correct += ReferenceExecutor::argmax(logits) ==
               test_set.labels[static_cast<std::size_t>(i)];
  }
  result.exported_accuracy = static_cast<double>(correct) / test_set.size();
  return result;
}

}  // namespace qnn
