#include "train/qat_cnn.h"

#include <algorithm>
#include <cmath>

#include "io/synthetic.h"
#include "nn/reference.h"

namespace qnn {
namespace {

constexpr float kBnEps = 1e-5f;

float sign_pm1(float w) { return w >= 0.0f ? 1.0f : -1.0f; }

std::size_t at(const Shape& s, int y, int x, int c) {
  return static_cast<std::size_t>((static_cast<std::int64_t>(y) * s.w + x) *
                                      s.c +
                                  c);
}

std::size_t wat(const FilterShape& f, int o, int dy, int dx, int ci) {
  return static_cast<std::size_t>(
      ((static_cast<std::int64_t>(o) * f.k + dy) * f.k + dx) * f.in_c + ci);
}

using Maps = std::vector<std::vector<float>>;  // [batch][elems]

}  // namespace

ImageDataset make_pattern_task(int classes, int h, int w, int c,
                               int samples_per_class, std::uint64_t seed) {
  QNN_CHECK(classes >= 2 && samples_per_class >= 1, "bad task parameters");
  Rng rng(seed);
  ImageDataset ds;
  ds.classes = classes;
  ds.image = Shape{h, w, c};
  for (int k = 0; k < classes; ++k) {
    for (int s = 0; s < samples_per_class; ++s) {
      ds.images.push_back(synthetic_pattern_image(h, w, c, k, rng));
      ds.labels.push_back(k);
    }
  }
  for (int i = ds.size() - 1; i > 0; --i) {
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(ds.images[static_cast<std::size_t>(i)],
              ds.images[static_cast<std::size_t>(j)]);
    std::swap(ds.labels[static_cast<std::size_t>(i)],
              ds.labels[static_cast<std::size_t>(j)]);
  }
  return ds;
}

std::pair<ImageDataset, ImageDataset> split_dataset(const ImageDataset& data,
                                                    double train_fraction) {
  QNN_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)");
  const int cut =
      std::max(1, static_cast<int>(std::ceil(train_fraction * data.size())));
  QNN_CHECK(cut < data.size(), "split leaves an empty test set");
  ImageDataset train;
  ImageDataset test;
  train.classes = test.classes = data.classes;
  train.image = test.image = data.image;
  for (int i = 0; i < data.size(); ++i) {
    ImageDataset& dst = i < cut ? train : test;
    dst.images.push_back(data.images[static_cast<std::size_t>(i)]);
    dst.labels.push_back(data.labels[static_cast<std::size_t>(i)]);
  }
  return {std::move(train), std::move(test)};
}

struct QatCnn::Cache {
  int batch = 0;
  std::vector<Maps> x;        // [stage] input maps
  std::vector<Maps> a;        // conv stages: pre-activations
  std::vector<Maps> xhat;     // conv stages: normalized
  std::vector<Maps> y;        // conv stages: scaled+shifted
  std::vector<std::vector<float>> mean;  // [stage][channels]
  std::vector<std::vector<float>> var;
  std::vector<std::vector<std::vector<std::size_t>>> argmax;  // pool stages
  Maps logits;  // [batch][classes]
};

QatCnn::QatCnn(Shape input, int classes, QatCnnConfig config)
    : config_(std::move(config)), input_(input), classes_(classes),
      rng_(config_.seed) {
  QNN_CHECK(input.valid() && classes >= 2, "bad network dimensions");
  QNN_CHECK(config_.act_bits >= 1 && config_.act_bits <= 8,
            "activation bits out of range");
  Shape cur = input;
  for (const auto& st : config_.stages) {
    Stage stage;
    if (st.kind == QatCnnConfig::Stage::Conv) {
      QNN_CHECK(st.out_c >= 1, "conv stage needs output channels");
      stage.is_conv = true;
      ConvLayer& c = stage.conv;
      c.in = cur;
      c.out = conv_out_shape(cur, st.out_c, st.k, st.stride, st.pad);
      c.k = st.k;
      c.stride = st.stride;
      c.pad = st.pad;
      c.w.resize(static_cast<std::size_t>(
          FilterShape{st.out_c, st.k, cur.c}.total_weights()));
      c.vw.assign(c.w.size(), 0.0f);
      for (auto& w : c.w) w = 2.0f * rng_.next_float() - 1.0f;
      c.gamma.assign(static_cast<std::size_t>(st.out_c), 1.0f);
      c.beta.assign(static_cast<std::size_t>(st.out_c), 2.0f);
      c.vgamma.assign(static_cast<std::size_t>(st.out_c), 0.0f);
      c.vbeta.assign(static_cast<std::size_t>(st.out_c), 0.0f);
      c.run_mean.assign(static_cast<std::size_t>(st.out_c), 0.0f);
      c.run_var.assign(static_cast<std::size_t>(st.out_c), 1.0f);
      cur = c.out;
    } else {
      stage.is_conv = false;
      PoolLayer& p = stage.pool;
      p.in = cur;
      p.out = conv_out_shape(cur, cur.c, st.k, st.stride, 0);
      p.k = st.k;
      p.stride = st.stride;
      cur = p.out;
    }
    stages_.push_back(std::move(stage));
  }
  // Final classifier: a full-spatial conv without BatchNorm.
  QNN_CHECK(cur.h == cur.w, "classifier needs a square final map");
  Stage cls;
  cls.is_conv = true;
  ConvLayer& c = cls.conv;
  c.in = cur;
  c.out = Shape{1, 1, classes};
  c.k = cur.h;
  c.stride = 1;
  c.pad = 0;
  c.has_bn = false;
  c.w.resize(static_cast<std::size_t>(
      FilterShape{classes, cur.h, cur.c}.total_weights()));
  c.vw.assign(c.w.size(), 0.0f);
  for (auto& w : c.w) w = 2.0f * rng_.next_float() - 1.0f;
  stages_.push_back(std::move(cls));
}

void QatCnn::forward(const std::vector<const IntTensor*>& batch,
                     Cache& cache, bool training) const {
  const int n = static_cast<int>(batch.size());
  const std::size_t num = stages_.size();
  cache.batch = n;
  cache.x.assign(num, {});
  cache.a.assign(num, {});
  cache.xhat.assign(num, {});
  cache.y.assign(num, {});
  cache.mean.assign(num, {});
  cache.var.assign(num, {});
  cache.argmax.assign(num, {});

  Maps cur(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    const IntTensor& img = *batch[static_cast<std::size_t>(b)];
    QNN_CHECK(img.shape() == input_, "image shape mismatch");
    auto& m = cur[static_cast<std::size_t>(b)];
    m.resize(static_cast<std::size_t>(img.size()));
    for (std::int64_t i = 0; i < img.size(); ++i) {
      m[static_cast<std::size_t>(i)] = static_cast<float>(img[i]);
    }
  }

  const double d = act_range();
  const int max_code = (1 << config_.act_bits) - 1;

  for (std::size_t l = 0; l < num; ++l) {
    const Stage& stage = stages_[l];
    cache.x[l] = cur;
    if (!stage.is_conv) {
      const PoolLayer& p = stage.pool;
      Maps out(static_cast<std::size_t>(n));
      auto& arg = cache.argmax[l];
      arg.assign(static_cast<std::size_t>(n), {});
      for (int b = 0; b < n; ++b) {
        auto& om = out[static_cast<std::size_t>(b)];
        om.resize(static_cast<std::size_t>(p.out.elems()));
        auto& am = arg[static_cast<std::size_t>(b)];
        am.resize(om.size());
        const auto& im = cur[static_cast<std::size_t>(b)];
        for (int oy = 0; oy < p.out.h; ++oy) {
          for (int ox = 0; ox < p.out.w; ++ox) {
            for (int c = 0; c < p.out.c; ++c) {
              float best = -1e30f;
              std::size_t best_idx = 0;
              for (int dy = 0; dy < p.k; ++dy) {
                for (int dx = 0; dx < p.k; ++dx) {
                  const int iy = oy * p.stride + dy;
                  const int ix = ox * p.stride + dx;
                  if (iy >= p.in.h || ix >= p.in.w) continue;
                  const std::size_t idx = at(p.in, iy, ix, c);
                  if (im[idx] > best) {
                    best = im[idx];
                    best_idx = idx;
                  }
                }
              }
              const std::size_t oi = at(p.out, oy, ox, c);
              om[oi] = best;
              am[oi] = best_idx;
            }
          }
        }
      }
      cur = std::move(out);
      continue;
    }

    const ConvLayer& c = stage.conv;
    const FilterShape f{c.out.c, c.k, c.in.c};
    Maps a(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      const auto& im = cur[static_cast<std::size_t>(b)];
      auto& am = a[static_cast<std::size_t>(b)];
      am.assign(static_cast<std::size_t>(c.out.elems()), 0.0f);
      for (int oy = 0; oy < c.out.h; ++oy) {
        for (int ox = 0; ox < c.out.w; ++ox) {
          for (int o = 0; o < c.out.c; ++o) {
            float acc = 0.0f;
            for (int dy = 0; dy < c.k; ++dy) {
              const int iy = oy * c.stride + dy - c.pad;
              if (iy < 0 || iy >= c.in.h) continue;
              for (int dx = 0; dx < c.k; ++dx) {
                const int ix = ox * c.stride + dx - c.pad;
                if (ix < 0 || ix >= c.in.w) continue;
                for (int ci = 0; ci < c.in.c; ++ci) {
                  acc += sign_pm1(c.w[wat(f, o, dy, dx, ci)]) *
                         im[at(c.in, iy, ix, ci)];
                }
              }
            }
            am[at(c.out, oy, ox, o)] = acc;
          }
        }
      }
    }
    cache.a[l] = a;

    if (!c.has_bn) {
      cache.logits = std::move(a);
      break;
    }

    // BatchNorm over batch and spatial positions, per channel.
    std::vector<float> mean(static_cast<std::size_t>(c.out.c), 0.0f);
    std::vector<float> var(static_cast<std::size_t>(c.out.c), 0.0f);
    const double count =
        static_cast<double>(n) * c.out.h * c.out.w;
    if (training) {
      for (int ch = 0; ch < c.out.c; ++ch) {
        double m = 0.0;
        for (int b = 0; b < n; ++b) {
          const auto& am = a[static_cast<std::size_t>(b)];
          for (int yy = 0; yy < c.out.h; ++yy) {
            for (int xx = 0; xx < c.out.w; ++xx) {
              m += am[at(c.out, yy, xx, ch)];
            }
          }
        }
        m /= count;
        double v = 0.0;
        for (int b = 0; b < n; ++b) {
          const auto& am = a[static_cast<std::size_t>(b)];
          for (int yy = 0; yy < c.out.h; ++yy) {
            for (int xx = 0; xx < c.out.w; ++xx) {
              const double dlt = am[at(c.out, yy, xx, ch)] - m;
              v += dlt * dlt;
            }
          }
        }
        v /= count;
        mean[static_cast<std::size_t>(ch)] = static_cast<float>(m);
        var[static_cast<std::size_t>(ch)] = static_cast<float>(v);
      }
    } else {
      mean = c.run_mean;
      var = c.run_var;
    }
    cache.mean[l] = mean;
    cache.var[l] = var;

    Maps xhat(static_cast<std::size_t>(n));
    Maps y(static_cast<std::size_t>(n));
    Maps codes(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      const auto& am = a[static_cast<std::size_t>(b)];
      auto& xm = xhat[static_cast<std::size_t>(b)];
      auto& ym = y[static_cast<std::size_t>(b)];
      auto& cm = codes[static_cast<std::size_t>(b)];
      xm.resize(am.size());
      ym.resize(am.size());
      cm.resize(am.size());
      for (int yy = 0; yy < c.out.h; ++yy) {
        for (int xx = 0; xx < c.out.w; ++xx) {
          for (int ch = 0; ch < c.out.c; ++ch) {
            const std::size_t i = at(c.out, yy, xx, ch);
            const float inv =
                1.0f /
                std::sqrt(var[static_cast<std::size_t>(ch)] + kBnEps);
            xm[i] = (am[i] - mean[static_cast<std::size_t>(ch)]) * inv;
            ym[i] = c.gamma[static_cast<std::size_t>(ch)] * xm[i] +
                    c.beta[static_cast<std::size_t>(ch)];
            double q = std::floor(static_cast<double>(ym[i]) / d);
            cm[i] = static_cast<float>(
                std::clamp(q, 0.0, static_cast<double>(max_code)));
          }
        }
      }
    }
    cache.xhat[l] = std::move(xhat);
    cache.y[l] = std::move(y);
    cur = std::move(codes);
  }
}

double QatCnn::backward_and_step(const std::vector<int>& labels,
                                 Cache& cache) {
  const int n = cache.batch;
  const ConvLayer& cls = stages_.back().conv;
  const float tau =
      1.0f / std::sqrt(static_cast<float>(cls.k * cls.k * cls.in.c));

  double loss = 0.0;
  Maps dA(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) {
    const auto& z = cache.logits[static_cast<std::size_t>(b)];
    auto& g = dA[static_cast<std::size_t>(b)];
    g.resize(z.size());
    float zmax = -1e30f;
    for (float v : z) zmax = std::max(zmax, v * tau);
    double denom = 0.0;
    for (float v : z) denom += std::exp(static_cast<double>(v * tau - zmax));
    const int label = labels[static_cast<std::size_t>(b)];
    for (int k = 0; k < classes_; ++k) {
      const double p =
          std::exp(static_cast<double>(z[static_cast<std::size_t>(k)] * tau -
                                       zmax)) /
          denom;
      g[static_cast<std::size_t>(k)] =
          static_cast<float>((p - (k == label ? 1.0 : 0.0)) * tau / n);
      if (k == label) loss += -std::log(std::max(p, 1e-12));
    }
  }
  loss /= n;

  const double d = act_range();
  const int levels = 1 << config_.act_bits;
  const float lr = static_cast<float>(config_.lr);
  const float mom = static_cast<float>(config_.momentum);

  for (int l = static_cast<int>(stages_.size()) - 1; l >= 0; --l) {
    Stage& stage = stages_[static_cast<std::size_t>(l)];
    if (!stage.is_conv) {
      // Max-pool backward: route each gradient to its argmax source.
      const PoolLayer& p = stage.pool;
      Maps dX(static_cast<std::size_t>(n));
      for (int b = 0; b < n; ++b) {
        auto& dxm = dX[static_cast<std::size_t>(b)];
        dxm.assign(static_cast<std::size_t>(p.in.elems()), 0.0f);
        const auto& dam = dA[static_cast<std::size_t>(b)];
        const auto& arg =
            cache.argmax[static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(b)];
        for (std::size_t i = 0; i < dam.size(); ++i) {
          dxm[arg[i]] += dam[i];
        }
      }
      dA = std::move(dX);
      continue;
    }

    ConvLayer& c = stage.conv;
    const FilterShape f{c.out.c, c.k, c.in.c};
    const Maps& x = cache.x[static_cast<std::size_t>(l)];

    // For stages with BatchNorm + activation, the incoming gradient is
    // w.r.t. the output *codes*; pull it back through the quantizer (STE
    // with saturation mask) and BatchNorm to the pre-activations, updating
    // gamma/beta along the way.
    if (c.has_bn) {
      const Maps& y = cache.y[static_cast<std::size_t>(l)];
      const Maps& xhat = cache.xhat[static_cast<std::size_t>(l)];
      const auto& var = cache.var[static_cast<std::size_t>(l)];

      Maps dY(static_cast<std::size_t>(n));
      for (int b = 0; b < n; ++b) {
        const auto& dcm = dA[static_cast<std::size_t>(b)];
        const auto& ym = y[static_cast<std::size_t>(b)];
        auto& dym = dY[static_cast<std::size_t>(b)];
        dym.resize(dcm.size());
        for (std::size_t i = 0; i < dcm.size(); ++i) {
          const double r = static_cast<double>(ym[i]) / d;
          const bool in_range = r >= 0.0 && r < static_cast<double>(levels);
          dym[i] = in_range ? static_cast<float>(dcm[i] / d) : 0.0f;
        }
      }

      const double count = static_cast<double>(n) * c.out.h * c.out.w;
      Maps da(static_cast<std::size_t>(n));
      for (int b = 0; b < n; ++b) {
        da[static_cast<std::size_t>(b)].assign(
            static_cast<std::size_t>(c.out.elems()), 0.0f);
      }
      for (int ch = 0; ch < c.out.c; ++ch) {
        const float inv =
            1.0f / std::sqrt(var[static_cast<std::size_t>(ch)] + kBnEps);
        double sum_dy = 0.0;
        double sum_dy_xhat = 0.0;
        for (int b = 0; b < n; ++b) {
          const auto& dym = dY[static_cast<std::size_t>(b)];
          const auto& xm = xhat[static_cast<std::size_t>(b)];
          for (int yy = 0; yy < c.out.h; ++yy) {
            for (int xx = 0; xx < c.out.w; ++xx) {
              const std::size_t i = at(c.out, yy, xx, ch);
              sum_dy += dym[i];
              sum_dy_xhat += static_cast<double>(dym[i]) * xm[i];
            }
          }
        }
        const float gamma = c.gamma[static_cast<std::size_t>(ch)];
        for (int b = 0; b < n; ++b) {
          const auto& dym = dY[static_cast<std::size_t>(b)];
          const auto& xm = xhat[static_cast<std::size_t>(b)];
          auto& dm = da[static_cast<std::size_t>(b)];
          for (int yy = 0; yy < c.out.h; ++yy) {
            for (int xx = 0; xx < c.out.w; ++xx) {
              const std::size_t i = at(c.out, yy, xx, ch);
              const double term = count * static_cast<double>(dym[i]) -
                                  sum_dy -
                                  static_cast<double>(xm[i]) * sum_dy_xhat;
              dm[i] = static_cast<float>(gamma * inv * term / count);
            }
          }
        }
        c.vgamma[static_cast<std::size_t>(ch)] =
            mom * c.vgamma[static_cast<std::size_t>(ch)] -
            lr * static_cast<float>(sum_dy_xhat);
        c.vbeta[static_cast<std::size_t>(ch)] =
            mom * c.vbeta[static_cast<std::size_t>(ch)] -
            lr * static_cast<float>(sum_dy);
        c.gamma[static_cast<std::size_t>(ch)] +=
            c.vgamma[static_cast<std::size_t>(ch)];
        c.beta[static_cast<std::size_t>(ch)] +=
            c.vbeta[static_cast<std::size_t>(ch)];
      }
      dA = std::move(da);
    }

    // Conv backward: dW (STE through sign) and dX.
    std::vector<float> dW(c.w.size(), 0.0f);
    Maps dX(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      auto& dxm = dX[static_cast<std::size_t>(b)];
      dxm.assign(static_cast<std::size_t>(c.in.elems()), 0.0f);
      const auto& dam = dA[static_cast<std::size_t>(b)];
      const auto& xm = x[static_cast<std::size_t>(b)];
      for (int oy = 0; oy < c.out.h; ++oy) {
        for (int ox = 0; ox < c.out.w; ++ox) {
          for (int o = 0; o < c.out.c; ++o) {
            const float g = dam[at(c.out, oy, ox, o)];
            if (g == 0.0f) continue;
            for (int dy = 0; dy < c.k; ++dy) {
              const int iy = oy * c.stride + dy - c.pad;
              if (iy < 0 || iy >= c.in.h) continue;
              for (int dx = 0; dx < c.k; ++dx) {
                const int ix = ox * c.stride + dx - c.pad;
                if (ix < 0 || ix >= c.in.w) continue;
                for (int ci = 0; ci < c.in.c; ++ci) {
                  const std::size_t wi = wat(f, o, dy, dx, ci);
                  const std::size_t xi = at(c.in, iy, ix, ci);
                  dW[wi] += g * xm[xi];
                  dxm[xi] += g * sign_pm1(c.w[wi]);
                }
              }
            }
          }
        }
      }
    }
    for (std::size_t wi = 0; wi < c.w.size(); ++wi) {
      c.vw[wi] = mom * c.vw[wi] - lr * dW[wi];
      c.w[wi] = std::clamp(c.w[wi] + c.vw[wi], -1.0f, 1.0f);
    }
    if (l == 0) break;
    dA = std::move(dX);
  }
  return loss;
}

double QatCnn::train_epoch(const ImageDataset& data) {
  QNN_CHECK(data.image == input_, "dataset image shape mismatch");
  const int n = data.size();
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(order[static_cast<std::size_t>(i)],
              order[rng_.next_below(static_cast<std::uint64_t>(i) + 1)]);
  }

  double total = 0.0;
  int batches = 0;
  Cache cache;
  for (int start = 0; start < n; start += config_.batch_size) {
    const int end = std::min(n, start + config_.batch_size);
    std::vector<const IntTensor*> batch;
    std::vector<int> labels;
    for (int i = start; i < end; ++i) {
      const int idx = order[static_cast<std::size_t>(i)];
      batch.push_back(&data.images[static_cast<std::size_t>(idx)]);
      labels.push_back(data.labels[static_cast<std::size_t>(idx)]);
    }
    forward(batch, cache, /*training=*/true);
    const auto m = static_cast<float>(config_.bn_momentum);
    for (std::size_t l = 0; l < stages_.size(); ++l) {
      if (!stages_[l].is_conv || !stages_[l].conv.has_bn) continue;
      ConvLayer& c = stages_[l].conv;
      for (int ch = 0; ch < c.out.c; ++ch) {
        c.run_mean[static_cast<std::size_t>(ch)] =
            (1.0f - m) * c.run_mean[static_cast<std::size_t>(ch)] +
            m * cache.mean[l][static_cast<std::size_t>(ch)];
        c.run_var[static_cast<std::size_t>(ch)] =
            (1.0f - m) * c.run_var[static_cast<std::size_t>(ch)] +
            m * cache.var[l][static_cast<std::size_t>(ch)];
      }
    }
    total += backward_and_step(labels, cache);
    ++batches;
  }
  return total / std::max(1, batches);
}

double QatCnn::fit(const ImageDataset& data) {
  double loss = 0.0;
  for (int e = 0; e < config_.epochs; ++e) loss = train_epoch(data);
  return loss;
}

double QatCnn::evaluate(const ImageDataset& data) const {
  QNN_CHECK(data.image == input_, "dataset image shape mismatch");
  Cache cache;
  int correct = 0;
  for (int i = 0; i < data.size(); ++i) {
    std::vector<const IntTensor*> one{
        &data.images[static_cast<std::size_t>(i)]};
    forward(one, cache, /*training=*/false);
    const auto& z = cache.logits[0];
    int best = 0;
    for (int k = 1; k < classes_; ++k) {
      if (z[static_cast<std::size_t>(k)] >
          z[static_cast<std::size_t>(best)]) {
        best = k;
      }
    }
    correct += best == data.labels[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(correct) / data.size();
}

NetworkSpec QatCnn::export_spec() const {
  NetworkSpec spec;
  spec.name = "qat_cnn";
  spec.input = input_;
  spec.input_bits = 8;
  spec.act_bits = config_.act_bits;
  for (const auto& st : config_.stages) {
    if (st.kind == QatCnnConfig::Stage::Conv) {
      spec.conv(st.out_c, st.k, st.stride, st.pad);
    } else {
      spec.max_pool(st.k, st.stride);
    }
  }
  spec.dense(classes_, /*bn_act=*/false);
  return spec;
}

std::pair<Pipeline, NetworkParams> QatCnn::export_network() const {
  Pipeline pipeline = expand(export_spec());
  NetworkParams params;
  for (const Stage& stage : stages_) {
    if (!stage.is_conv) continue;
    const ConvLayer& c = stage.conv;
    const FilterShape f{c.out.c, c.k, c.in.c};
    WeightTensor w(f);
    for (int o = 0; o < f.out_c; ++o) {
      for (int dy = 0; dy < f.k; ++dy) {
        for (int dx = 0; dx < f.k; ++dx) {
          for (int ci = 0; ci < f.in_c; ++ci) {
            w.at(o, dy, dx, ci) = c.w[wat(f, o, dy, dx, ci)];
          }
        }
      }
    }
    params.convs.push_back(ConvParams{FilterBank::binarize(w)});
    if (!c.has_bn) continue;
    BnLayerParams bn(c.out.c);
    for (int ch = 0; ch < c.out.c; ++ch) {
      BnParams& p = bn.at(ch);
      p.gamma = c.gamma[static_cast<std::size_t>(ch)];
      p.mu = c.run_mean[static_cast<std::size_t>(ch)];
      p.inv_sigma =
          1.0f /
          std::sqrt(c.run_var[static_cast<std::size_t>(ch)] + kBnEps);
      p.beta = c.beta[static_cast<std::size_t>(ch)];
    }
    BnActParams bp;
    bp.quantizer = ActQuantizer(config_.act_bits, act_range());
    bp.bn = std::move(bn);
    bp.thresholds = ThresholdLayer::fold(bp.bn, bp.quantizer);
    params.bnacts.push_back(std::move(bp));
  }
  QNN_CHECK(static_cast<int>(params.convs.size()) ==
                pipeline.num_conv_params,
            "cnn export conv count mismatch");
  QNN_CHECK(static_cast<int>(params.bnacts.size()) ==
                pipeline.num_bnact_params,
            "cnn export bnact count mismatch");
  return {std::move(pipeline), std::move(params)};
}

QatCnnResult train_and_export_cnn(const ImageDataset& train,
                                  const ImageDataset& test, Shape input,
                                  const QatCnnConfig& config) {
  QatCnn cnn(input, train.classes, config);
  QatCnnResult result;
  result.final_loss = cnn.fit(train);
  result.train_accuracy = cnn.evaluate(test);
  const auto [pipeline, params] = cnn.export_network();
  const ReferenceExecutor exec(pipeline, params);
  int correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    const IntTensor logits =
        exec.run(test.images[static_cast<std::size_t>(i)]);
    correct += ReferenceExecutor::argmax(logits) ==
               test.labels[static_cast<std::size_t>(i)];
  }
  result.exported_accuracy = static_cast<double>(correct) / test.size();
  return result;
}

}  // namespace qnn
