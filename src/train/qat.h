// Quantization-aware training (QAT) with the straight-through estimator.
//
// The paper trains its QNNs with Hubara et al.'s method [18]: binarized
// (+-1) weights and uniform n-bit activations in the forward pass, with
// gradients passed "straight through" the non-differentiable quantizers.
// ImageNet-scale training is out of scope (DESIGN.md substitution table);
// this module provides the same algorithm at laptop scale so that
//
//  * the 1-bit vs 2-bit activation accuracy ordering — the basis of the
//    paper's 41.8% -> 51.03% AlexNet claim — can be reproduced on
//    synthetic tasks (bench_ablation_actbits), and
//  * a genuinely trained model can be exported, threshold-folded and run
//    bit-exactly on the streaming engine (examples/train_quantized).
//
// The training-time forward pass is the exact integer semantics of the
// inference stack: a = sign(W) . codes, then BatchNorm, then the uniform
// quantizer of quant/quantizer.h — so an exported model's float-path
// reference executor agrees with the training forward by construction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "io/synthetic.h"
#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

struct QatConfig {
  std::vector<int> hidden{32, 32};
  int act_bits = 2;
  int epochs = 40;
  int batch_size = 32;
  double lr = 0.02;
  double momentum = 0.9;
  double bn_momentum = 0.1;  // running-stat update rate
  std::uint64_t seed = 1;
};

/// A small fully connected QNN trained with STE; exportable to the
/// streaming inference stack.
class QatMlp {
 public:
  QatMlp(int input_dim, int classes, QatConfig config);

  /// One SGD pass over the dataset; returns mean cross-entropy loss.
  double train_epoch(const LabeledDataset& data);

  /// Run `config.epochs` passes; returns the final epoch's mean loss.
  double fit(const LabeledDataset& data);

  /// Classification accuracy using the training-time forward pass.
  [[nodiscard]] double evaluate(const LabeledDataset& data) const;

  /// Lower to the inference representation: packed sign weights + folded
  /// thresholds, ready for ReferenceExecutor / StreamEngine.
  [[nodiscard]] std::pair<Pipeline, NetworkParams> export_network() const;

  [[nodiscard]] const QatConfig& config() const { return config_; }

 private:
  struct DenseLayer {
    int in = 0;
    int out = 0;
    std::vector<float> w;          // shadow float weights, clipped to [-1,1]
    std::vector<float> vw;         // momentum buffer
    // BatchNorm (hidden layers only).
    std::vector<float> gamma, beta, vgamma, vbeta;
    std::vector<float> run_mean, run_var;
    bool has_bn = false;
  };

  struct BatchCache;  // forward intermediates for one minibatch

  void forward(const std::vector<const std::vector<float>*>& x,
               BatchCache& cache, bool training) const;
  double backward_and_step(const std::vector<int>& labels,
                           BatchCache& cache);

  [[nodiscard]] double act_range() const {
    return 4.0 / (1 << config_.act_bits);  // matches NetworkParams::random
  }

  QatConfig config_;
  int input_dim_;
  int classes_;
  std::vector<DenseLayer> layers_;  // hidden... + output (no bn on output)
  mutable Rng rng_;
};

/// Convenience: train a QatMlp and report exported-model accuracy computed
/// with the golden ReferenceExecutor (integer thresholds). Used by the
/// activation-bits ablation bench.
struct QatResult {
  double train_accuracy = 0.0;       // training-forward accuracy
  double exported_accuracy = 0.0;    // ReferenceExecutor accuracy
  double final_loss = 0.0;
};
[[nodiscard]] QatResult train_and_export(const LabeledDataset& train_set,
                                         const LabeledDataset& test_set,
                                         const QatConfig& config);

}  // namespace qnn
