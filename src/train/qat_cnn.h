// Convolutional quantization-aware training.
//
// Extends the STE trainer of train/qat.h to the full layer vocabulary the
// paper's networks use: binarized convolutions with folded BatchNorm +
// n-bit activations, max pooling, and a final dense classifier. Training
// forward semantics are the exact integer semantics of the inference
// stack, so the exported model is bit-exact on the reference executor and
// the streaming engine.
//
// Used for the image-domain side of the activation-bits ablation and as
// the "train a real CNN, deploy it on the dataflow engine" example.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/tensor.h"
#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

/// Labeled image classification task.
struct ImageDataset {
  int classes = 0;
  Shape image{};
  std::vector<IntTensor> images;  // 8-bit codes
  std::vector<int> labels;

  [[nodiscard]] int size() const {
    return static_cast<int>(labels.size());
  }
};

/// Stripe/checker pattern task built on synthetic_pattern_image: class k
/// determines stripe period and orientation; noise controls difficulty.
[[nodiscard]] ImageDataset make_pattern_task(int classes, int h, int w,
                                             int c, int samples_per_class,
                                             std::uint64_t seed);

[[nodiscard]] std::pair<ImageDataset, ImageDataset> split_dataset(
    const ImageDataset& data, double train_fraction);

struct QatCnnConfig {
  /// Trainable stage sequence; pools carry no parameters.
  struct Stage {
    enum Kind { Conv, MaxPool } kind = Conv;
    int out_c = 0;   // Conv only
    int k = 3;
    int stride = 1;
    int pad = 1;
  };
  static Stage conv(int out_c, int k = 3, int stride = 1, int pad = 1) {
    return Stage{Stage::Conv, out_c, k, stride, pad};
  }
  static Stage pool(int k = 2, int stride = 2) {
    return Stage{Stage::MaxPool, 0, k, stride, 0};
  }

  std::vector<Stage> stages{conv(8), pool(), conv(16), pool()};
  int act_bits = 2;
  int epochs = 30;
  int batch_size = 16;
  double lr = 0.01;
  double momentum = 0.9;
  double bn_momentum = 0.1;
  std::uint64_t seed = 1;
};

class QatCnn {
 public:
  QatCnn(Shape input, int classes, QatCnnConfig config);

  double train_epoch(const ImageDataset& data);
  double fit(const ImageDataset& data);
  [[nodiscard]] double evaluate(const ImageDataset& data) const;

  /// Lower to the streaming inference representation.
  [[nodiscard]] std::pair<Pipeline, NetworkParams> export_network() const;
  /// The NetworkSpec the export corresponds to (for serialization).
  [[nodiscard]] NetworkSpec export_spec() const;

  [[nodiscard]] const QatCnnConfig& config() const { return config_; }

 private:
  struct ConvLayer {
    Shape in{}, out{};
    int k = 1, stride = 1, pad = 0;
    bool has_bn = true;  // false only for the final classifier
    std::vector<float> w;   // [out_c][k][k][in_c], clipped to [-1,1]
    std::vector<float> vw;
    std::vector<float> gamma, beta, vgamma, vbeta;
    std::vector<float> run_mean, run_var;
  };
  struct PoolLayer {
    Shape in{}, out{};
    int k = 2, stride = 2;
  };
  struct Stage {
    bool is_conv = true;
    ConvLayer conv;
    PoolLayer pool;
  };
  struct Cache;

  void forward(const std::vector<const IntTensor*>& batch, Cache& cache,
               bool training) const;
  double backward_and_step(const std::vector<int>& labels, Cache& cache);

  [[nodiscard]] double act_range() const {
    return 4.0 / (1 << config_.act_bits);
  }

  QatCnnConfig config_;
  Shape input_{};
  int classes_;
  std::vector<Stage> stages_;  // convs & pools; last stage = classifier conv
  mutable Rng rng_;
};

/// Train, export, and measure exported accuracy with the golden executor.
struct QatCnnResult {
  double train_accuracy = 0.0;
  double exported_accuracy = 0.0;
  double final_loss = 0.0;
};
[[nodiscard]] QatCnnResult train_and_export_cnn(const ImageDataset& train,
                                                const ImageDataset& test,
                                                Shape input,
                                                const QatCnnConfig& config);

}  // namespace qnn
