// The three network architectures evaluated in the paper (§IV):
//
//  * ResNet-18 (Table I)  — 224x224 ImageNet classification, skip
//    connections carried as 16-bit streams.
//  * AlexNet              — five convolutions + three fully connected
//    layers, lowered to the all-convolutional form of §III-B4.
//  * VGG-like CNN         — the FINN-style topology ("three blocks of two
//    convolutions and one pooling layer, and three FC layers at the end"),
//    used for 32x32 .. 224x224 inputs in the scalability studies.
//
// All builders are parameterized by input size and activation bit width so
// the benchmark harness can sweep them (Figs 5-8).
#pragma once

#include "nn/network.h"

namespace qnn::models {

/// ResNet-18 exactly as in Table I of the paper.
[[nodiscard]] NetworkSpec resnet18(int input_size = 224, int classes = 1000,
                                   int act_bits = 2);

/// ResNet-34 (basic blocks, stage depths 3-4-6-3): the paper's §IV-B4
/// outlook — next-generation FPGAs "fit even bigger networks onto a
/// single FPGA" — needs a bigger network to project with.
[[nodiscard]] NetworkSpec resnet34(int input_size = 224, int classes = 1000,
                                   int act_bits = 2);

/// ResNet-18 with plain (non-residual) stacked convolutions — the skip
/// connection ablation network (§III-B5 / bench_ablation_skip).
[[nodiscard]] NetworkSpec resnet18_noskip(int input_size = 224,
                                          int classes = 1000,
                                          int act_bits = 2);

/// Quantized AlexNet (original filter counts: 96-256-384-384-256 + 3 FC).
[[nodiscard]] NetworkSpec alexnet(int input_size = 224, int classes = 1000,
                                  int act_bits = 2);

/// VGG-like CNN after Umuroglu et al. [29]: 3 x (conv, conv, pool) with
/// 64/128/256 filters, then three FC layers (512, 512, classes). For inputs
/// larger than 32x32 extra 2x2 poolings keep the final spatial extent <= 4
/// so FC cost stays input-size independent (see DESIGN.md).
[[nodiscard]] NetworkSpec vgg_like(int input_size = 32, int classes = 10,
                                   int act_bits = 2);

/// The exact FINN CNV topology from Umuroglu et al. [29]: *unpadded* 3x3
/// convolutions (64-64-pool-128-128-pool-256-256) followed by dense
/// 512-512-classes, fixed to 32x32 inputs. Used by the Table IV comparison
/// next to the paper's padded VGG-like variant.
[[nodiscard]] NetworkSpec finn_cnv(int classes = 10, int act_bits = 2);

/// Small network exercising every primitive node kind; used by tests and
/// the quickstart example. Input is `input_size` x `input_size` x 3.
[[nodiscard]] NetworkSpec tiny(int input_size = 12, int classes = 4,
                               int act_bits = 2);

}  // namespace qnn::models
