#include "models/zoo.h"

#include "core/error.h"

namespace qnn::models {
namespace {

/// Spatial extent after a k/stride/pad window op.
int after(int n, int k, int stride, int pad) {
  return conv_out_extent(n, k, stride, pad);
}

}  // namespace

NetworkSpec resnet18(int input_size, int classes, int act_bits) {
  QNN_CHECK(input_size >= 32, "ResNet-18 needs inputs of at least 32x32");
  NetworkSpec net;
  net.name = "resnet18_" + std::to_string(input_size);
  net.input = Shape{input_size, input_size, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  net.conv(64, 7, 2, 3);
  net.max_pool(3, 2, 1);
  net.residual(64, 1).residual(64, 1);
  net.residual(128, 2).residual(128, 1);
  net.residual(256, 2).residual(256, 1);
  net.residual(512, 2).residual(512, 1);
  net.avg_pool_global();
  net.dense(classes, /*bn_act=*/false);
  return net;
}

NetworkSpec resnet34(int input_size, int classes, int act_bits) {
  QNN_CHECK(input_size >= 32, "ResNet-34 needs inputs of at least 32x32");
  NetworkSpec net;
  net.name = "resnet34_" + std::to_string(input_size);
  net.input = Shape{input_size, input_size, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  net.conv(64, 7, 2, 3);
  net.max_pool(3, 2, 1);
  const struct {
    int c;
    int blocks;
  } stages[] = {{64, 3}, {128, 4}, {256, 6}, {512, 3}};
  for (std::size_t s = 0; s < 4; ++s) {
    for (int b = 0; b < stages[s].blocks; ++b) {
      net.residual(stages[s].c, s > 0 && b == 0 ? 2 : 1);
    }
  }
  net.avg_pool_global();
  net.dense(classes, /*bn_act=*/false);
  return net;
}

NetworkSpec resnet18_noskip(int input_size, int classes, int act_bits) {
  NetworkSpec net;
  net.name = "resnet18_noskip_" + std::to_string(input_size);
  net.input = Shape{input_size, input_size, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  net.conv(64, 7, 2, 3);
  net.max_pool(3, 2, 1);
  // Same convolution ladder as resnet18(), skip infrastructure removed.
  const struct {
    int c;
    int stride;
  } stages[] = {{64, 1},  {64, 1},  {128, 2}, {128, 1},
                {256, 2}, {256, 1}, {512, 2}, {512, 1}};
  for (const auto& s : stages) {
    net.conv(s.c, 3, s.stride, 1);
    net.conv(s.c, 3, 1, 1);
  }
  net.avg_pool_global();
  net.dense(classes, /*bn_act=*/false);
  return net;
}

NetworkSpec alexnet(int input_size, int classes, int act_bits) {
  QNN_CHECK(input_size >= 63, "AlexNet needs inputs of at least 63x63");
  NetworkSpec net;
  net.name = "alexnet_" + std::to_string(input_size);
  net.input = Shape{input_size, input_size, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  net.conv(96, 11, 4, 2);  // stride 4: the ~13x first-layer speedup, §III-B1
  net.max_pool(3, 2);
  net.conv(256, 5, 1, 2);
  net.max_pool(3, 2);
  net.conv(384, 3, 1, 1);
  net.conv(384, 3, 1, 1);
  net.conv(256, 3, 1, 1);
  net.max_pool(3, 2);
  net.dense(4096);
  net.dense(4096);
  net.dense(classes, /*bn_act=*/false);
  return net;
}

NetworkSpec vgg_like(int input_size, int classes, int act_bits) {
  QNN_CHECK(input_size >= 16, "VGG-like needs inputs of at least 16x16");
  NetworkSpec net;
  net.name = "vgg_like_" + std::to_string(input_size);
  net.input = Shape{input_size, input_size, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  int spatial = input_size;
  for (int filters : {64, 128, 256}) {
    net.conv(filters, 3, 1, 1);
    net.conv(filters, 3, 1, 1);
    net.max_pool(2, 2);
    spatial = after(spatial, 2, 2, 0);
  }
  // Larger inputs keep pooling down to a <=4x4 map so the first FC layer's
  // weight storage is input-size independent (DESIGN.md: this is what keeps
  // the Fig 6 resource growth small).
  while (spatial > 4) {
    net.max_pool(2, 2);
    spatial = after(spatial, 2, 2, 0);
  }
  net.dense(512);
  net.dense(512);
  net.dense(classes, /*bn_act=*/false);
  return net;
}

NetworkSpec finn_cnv(int classes, int act_bits) {
  NetworkSpec net;
  net.name = "finn_cnv";
  net.input = Shape{32, 32, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  net.conv(64, 3);   // 30x30 (valid convolutions, as in FINN)
  net.conv(64, 3);   // 28x28
  net.max_pool(2, 2);  // 14x14
  net.conv(128, 3);  // 12x12
  net.conv(128, 3);  // 10x10
  net.max_pool(2, 2);  // 5x5
  net.conv(256, 3);  // 3x3
  net.conv(256, 3);  // 1x1
  net.dense(512);
  net.dense(512);
  net.dense(classes, /*bn_act=*/false);
  return net;
}

NetworkSpec tiny(int input_size, int classes, int act_bits) {
  QNN_CHECK(input_size >= 8, "tiny network needs inputs of at least 8x8");
  NetworkSpec net;
  net.name = "tiny_" + std::to_string(input_size);
  net.input = Shape{input_size, input_size, 3};
  net.input_bits = 8;
  net.act_bits = act_bits;
  net.conv(8, 3, 1, 1);
  net.max_pool(2, 2);
  net.residual(8, 1);
  net.residual(16, 2);
  net.avg_pool_global();
  net.dense(classes, /*bn_act=*/false);
  return net;
}

}  // namespace qnn::models
