// PlanCache: a directory of serialized CompiledPlans keyed by fingerprint.
//
// One file per plan, named "<PlanKey::str()>.plan.json" (the key string is
// filesystem-safe by construction). Lookups are forgiving: a missing file,
// unreadable file, parse error, format-version mismatch, or a file whose
// embedded key disagrees with the requested one all report a MISS
// (std::nullopt) — a stale or corrupt cache must never break a cold start.
// Stores are atomic (write to a temp file, then rename) so a crashed writer
// cannot leave a half-written plan behind.
//
// The default directory comes from the QNN_PLAN_CACHE environment variable;
// when unset the cache is disabled and every lookup misses. DfeServer logs
// a serve::kPlanCacheHit event when a cold start loads a cached plan.
#pragma once

#include <optional>
#include <string>

#include "plan/compiled_plan.h"

namespace qnn {

class PlanCache {
 public:
  /// A cache over `dir`; empty `dir` = disabled (all lookups miss,
  /// stores are no-ops returning false).
  explicit PlanCache(std::string dir) : dir_(std::move(dir)) {}
  /// A cache over default_dir() (the QNN_PLAN_CACHE environment variable).
  PlanCache() : PlanCache(default_dir()) {}

  /// $QNN_PLAN_CACHE, or "" when unset.
  [[nodiscard]] static std::string default_dir();

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Where a plan with this fingerprint lives (whether or not it exists).
  [[nodiscard]] std::string path_for(const PlanKey& key) const;

  /// Load the plan for `key`; std::nullopt on any miss (see file comment).
  [[nodiscard]] std::optional<CompiledPlan> load(const PlanKey& key) const;

  /// Persist `plan` under its own fingerprint, creating the directory if
  /// needed. Returns false when disabled or the write failed.
  bool store(const CompiledPlan& plan) const;

 private:
  std::string dir_;
};

}  // namespace qnn
