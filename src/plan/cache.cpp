#include "plan/cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "plan/json.h"

namespace qnn {

namespace fs = std::filesystem;

std::string PlanCache::default_dir() {
  const char* env = std::getenv("QNN_PLAN_CACHE");
  return env != nullptr ? env : "";
}

std::string PlanCache::path_for(const PlanKey& key) const {
  return (fs::path(dir_) / (key.str() + ".plan.json")).string();
}

std::optional<CompiledPlan> PlanCache::load(const PlanKey& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    CompiledPlan plan = plan_from_json(text.str());
    // A file renamed onto the wrong fingerprint must not smuggle a
    // mismatched plan into the session.
    if (!(plan.key == key)) return std::nullopt;
    return plan;
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt or old-format entry: miss, never error
  }
}

bool PlanCache::store(const CompiledPlan& plan) const {
  if (!enabled()) return false;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return false;
  const std::string path = path_for(plan.key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << to_json(plan);
    if (!out) return false;
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace qnn
