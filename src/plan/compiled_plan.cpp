#include "plan/compiled_plan.h"

#include <thread>

#include "core/error.h"

namespace qnn {
namespace {

/// FNV-1a, 64-bit. Stable across platforms (explicit widths, no
/// endianness-dependent reinterpretation).
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  void mix_i(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
};

void mix_shape(Fnv1a& f, const Shape& s) {
  f.mix_i(s.h);
  f.mix_i(s.w);
  f.mix_i(s.c);
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xfU];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::uint64_t model_hash(const Pipeline& pipeline) {
  Fnv1a f;
  mix_shape(f, pipeline.input);
  f.mix_i(pipeline.input_bits);
  f.mix_i(pipeline.act_bits);
  f.mix_i(pipeline.size());
  for (const Node& n : pipeline.nodes) {
    f.mix_i(static_cast<std::int64_t>(n.kind));
    f.mix_i(n.main_from);
    f.mix_i(n.skip_from);
    mix_shape(f, n.in);
    mix_shape(f, n.out);
    f.mix_i(n.in_bits);
    f.mix_i(n.out_bits);
    f.mix_i(n.k);
    f.mix_i(n.stride);
    f.mix_i(n.pad);
    f.mix_i(n.param);
  }
  return f.h;
}

std::string machine_signature() {
#if defined(__x86_64__) || defined(_M_X64)
  const char* arch = "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  const char* arch = "aarch64";
#else
  const char* arch = "generic";
#endif
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  return std::string(arch) + "-" + std::to_string(cores) + "c";
}

std::string PlanKey::str() const {
  return "m" + hex64(model_hash) + "-" + machine + "-slo" +
         std::to_string(slo_us);
}

PlanKey plan_key(const Pipeline& pipeline, std::int64_t slo_us) {
  return PlanKey{model_hash(pipeline), machine_signature(), slo_us};
}

void CompiledPlan::apply_engine(EngineOptions& options) const {
  options.fifo_capacity = fifo_capacity;
  options.skip_slack = skip_slack;
  options.burst = burst;
  options.adaptive_burst = adaptive_burst;
  options.executor = executor;
  options.pool_threads = pool_threads;
  options.pin_threads = pin_threads;
  options.pin_offset = pin_offset;
}

void CompiledPlan::apply_sim(SimConfig& sim) const {
  if (sim.link_bursts.empty()) sim.link_bursts = link_bursts;
  if (sim.cut_after_nodes.empty()) sim.cut_after_nodes = cut_after_nodes;
}

void CompiledPlan::apply_partition(PartitionConfig& partition) const {
  if (partition.link_bursts.empty()) partition.link_bursts = link_bursts;
}

CompiledPlan compile_plan(const Pipeline& pipeline,
                          const EngineOptions& options, std::int64_t slo_us,
                          const std::string& backend) {
  CompiledPlan plan;
  plan.model = pipeline.name;
  plan.key = plan_key(pipeline, slo_us);
  plan.fifo_capacity = options.fifo_capacity;
  plan.skip_slack = options.skip_slack;
  plan.burst = options.burst;
  plan.adaptive_burst = options.adaptive_burst;
  plan.executor = options.executor;
  plan.pool_threads = options.pool_threads;
  plan.pin_threads = options.pin_threads;
  plan.pin_offset = options.pin_offset;
  plan.backend = backend;
  plan.fifos = plan_fifos(pipeline, options);
  for (const PlannedStream& ps : plan.fifos.streams) {
    if (ps.consumer < 0 || ps.burst == 0) continue;
    plan.link_bursts.push_back(
        SimConfig::EdgeBurst{ps.consumer, ps.to_skip_port, ps.burst});
  }
  return plan;
}

const char* to_string(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kThreadPerKernel:
      return "thread-per-kernel";
    case ExecutorKind::kPooled:
      return "pooled";
    case ExecutorKind::kReadyQueue:
      return "ready-queue";
  }
  return "unknown";
}

ExecutorKind executor_from_string(const std::string& name) {
  if (name == "thread-per-kernel") return ExecutorKind::kThreadPerKernel;
  if (name == "pooled") return ExecutorKind::kPooled;
  if (name == "ready-queue") return ExecutorKind::kReadyQueue;
  throw Error("unknown executor kind \"" + name +
              "\" (expected thread-per-kernel, pooled or ready-queue)");
}

}  // namespace qnn
