// FIFO plan: the single source of every stream the engine will wire.
//
// plan_fifos() decides, for a Pipeline + EngineOptions, every FIFO the
// StreamEngine creates — name, role, capacity, element width and per-edge
// burst — in the exact order the engine creates them. The paper's sizing
// rules live here and nowhere else:
//
//  * an edge feeding a window kernel gets the §III-B1b depth-first line
//    buffer I*(W_p*(K-1) + K);
//  * a skip-path edge into an adder holds one full feature map plus slack,
//    which subsumes the §III-B5 delay-compensation buffer for any lag of
//    the regular path;
//  * each edge's burst is one row (W*C) of the map it carries (adaptive
//    mode), capped by the plan-wide burst and its own ring.
//
// Consumers: the StreamEngine wires streams from the plan verbatim; the
// static analyzer (verify/graph_check.h) proves the same plan deadlock-
// free; the session layer carries the per-edge bursts into the cycle
// simulator's MaxRing serializer and the partitioner's wire pricing; and
// CompiledPlan (plan/compiled_plan.h) freezes the whole thing into a
// serializable artifact.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dataflow/engine.h"
#include "nn/pipeline.h"

namespace qnn {

/// One FIFO the engine will create for a given Pipeline + EngineOptions.
struct PlannedStream {
  enum class Role {
    kDirect,  // producer -> single consumer port
    kTrunk,   // producer -> fork (fan-out > 1)
    kBranch,  // fork -> one consumer port
    kOutput,  // terminal stream of a node without consumers
  };

  std::string name;      // identical to the engine's Stream name
  Role role = Role::kDirect;
  int producer = -1;     // node index; -1 = pipeline input
  int consumer = -1;     // node index; -1 for kTrunk / kOutput
  bool to_skip_port = false;  // consumer-side port (Add nodes only)
  std::size_t capacity = 0;   // values
  int bits = 0;               // declared element width
  /// Values the consumer moves per ring transaction on this edge. With
  /// EngineOptions::adaptive_burst it is one row (W·C) of the map the
  /// edge carries, clamped to the plan-wide cap and to the ring; without,
  /// it is the plan-wide burst on every edge. Consumed by the engine's
  /// kernel construction AND the D302/D303 capacity checks, so burst
  /// sizing has exactly one source.
  std::size_t burst = 0;
};

/// The complete FIFO plan of one engine instance: every stream in the
/// order the engine creates them, plus the effective burst cap.
struct FifoPlan {
  std::vector<PlannedStream> streams;
  /// Cap on per-edge bursts: EngineOptions::burst clamped to the user
  /// FIFO capacity so a transaction can never exceed the ring. Each
  /// edge's actual size is streams[i].burst.
  std::size_t burst = kDefaultBurst;
  bool burst_clamped = false;

  /// Sum of all planned capacities (host-memory footprint in values).
  [[nodiscard]] std::size_t total_capacity() const;
  /// The planned stream into `consumer`'s main or skip port, or nullptr.
  [[nodiscard]] const PlannedStream* find_edge(int consumer,
                                               bool to_skip_port) const;
};

/// The paper's depth-first line-buffer size (§III-B1b) for the input of a
/// window kernel, on the padded map: I * (W_p * (K-1) + K) values.
[[nodiscard]] std::size_t line_buffer_values(const Node& n);

/// Compute the FIFO plan StreamEngine will wire for these options. This is
/// the *only* place capacities are decided; every consumer takes the plan.
[[nodiscard]] FifoPlan plan_fifos(const Pipeline& pipeline,
                                  const EngineOptions& options = {});

}  // namespace qnn
