#include "plan/autotune.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "backend/backend.h"
#include "core/error.h"
#include "io/synthetic.h"
#include "sim/cycle_model.h"
#include "verify/graph_check.h"

namespace qnn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// EngineOptions for one grid point, derived from the defaults.
EngineOptions grid_options(ExecutorKind executor, std::size_t burst,
                           bool adaptive, std::size_t fifo_capacity,
                           unsigned pool_threads) {
  EngineOptions opts;
  opts.executor = executor;
  opts.burst = burst;
  opts.adaptive_burst = adaptive;
  opts.fifo_capacity = fifo_capacity;
  opts.pool_threads = pool_threads;
  return opts;
}

/// Same knobs the grid sweeps — used to drop duplicates of the default.
bool same_point(const EngineOptions& a, const EngineOptions& b) {
  return a.executor == b.executor && a.burst == b.burst &&
         a.adaptive_burst == b.adaptive_burst &&
         a.fifo_capacity == b.fifo_capacity &&
         a.pool_threads == b.pool_threads;
}

/// Cycle-model oracle: steady-state throughput with the plan's per-edge
/// bursts and cut carried into the MaxRing serializer.
double predict_ips(const Pipeline& pipeline, const CompiledPlan& plan) {
  SimConfig sim;
  plan.apply_sim(sim);
  return simulate(pipeline, sim).images_per_second(sim);
}

/// Timed runs of `images` on a freshly compiled session; best-of-repeats
/// throughput (the max discards one-sided scheduling interference, which
/// is all that differs between repeats on a quiet machine).
double calibrate_ips(const Backend& backend, const Pipeline& pipeline,
                     const NetworkParams& params, const CompiledPlan& plan,
                     const AutotuneConfig& config,
                     const std::vector<IntTensor>& images) {
  EngineOptions opts;
  plan.apply_engine(opts);
  opts.plan = &plan;  // plan outlives the session (stack of the caller)
  const auto session = backend.compile(pipeline, params, opts);
  (void)session->infer(images.front());  // warm-up, excluded from timing
  // Micro-batch size: an SLO-tuned plan is scored the way an SLO server
  // runs it — small batches, spin-up paid per run.
  std::size_t micro = static_cast<std::size_t>(
      std::max(0, config.calibration_micro_batch));
  if (micro == 0) micro = config.slo_us > 0 ? 4 : images.size();
  std::vector<std::vector<IntTensor>> chunks;  // sliced outside the timing
  for (std::size_t i = 0; i < images.size(); i += micro) {
    chunks.emplace_back(
        images.begin() + static_cast<std::ptrdiff_t>(i),
        images.begin() + static_cast<std::ptrdiff_t>(
                             std::min(images.size(), i + micro)));
  }
  double best = 0.0;
  for (int r = 0; r < std::max(1, config.calibration_repeats); ++r) {
    const auto start = Clock::now();
    for (const std::vector<IntTensor>& chunk : chunks) {
      (void)session->infer_batch(chunk);
    }
    const double elapsed = seconds_since(start);
    if (elapsed > 0) {
      best = std::max(best, static_cast<double>(images.size()) / elapsed);
    }
  }
  return best;
}

}  // namespace

AutotuneResult autotune(const Pipeline& pipeline, const NetworkParams& params,
                        const AutotuneConfig& config) {
  const auto start = Clock::now();
  const Backend& backend = backend_registry().at(config.backend);

  // Candidate 0: the default plan — what the engine would decide on its
  // own. It must verify; a model that fails with default options is not a
  // tuning problem.
  const EngineOptions default_opts;
  AutotuneCandidate def;
  def.plan =
      compile_plan(pipeline, default_opts, config.slo_us, config.backend);
  {
    EngineOptions verify_opts = default_opts;
    verify_opts.plan = &def.plan;
    enforce(verify_graph(pipeline, &params, verify_opts), "autotune");
  }
  def.verified = true;
  def.predicted_ips = predict_ips(pipeline, def.plan);
  def.plan.predicted_ips = def.predicted_ips;

  AutotuneResult result;
  result.candidates.push_back(def);

  // The grid. Every candidate is verified through verify/ before it is
  // allowed anywhere near a live run.
  std::vector<ExecutorKind> executors = {default_opts.executor};
  if (config.try_executors) {
    executors = {ExecutorKind::kReadyQueue, ExecutorKind::kPooled,
                 ExecutorKind::kThreadPerKernel};
  }
  std::vector<bool> adaptives = {default_opts.adaptive_burst};
  if (config.try_adaptive) adaptives = {true, false};

  std::vector<std::size_t> fifo_capacities = config.fifo_capacities;
  if (fifo_capacities.empty()) {
    fifo_capacities.push_back(default_opts.fifo_capacity);
  }
  std::vector<EngineOptions> grid;
  for (const ExecutorKind executor : executors) {
    // Worker-pool width is only meaningful for the pooled executor; 0 is
    // "one per hardware thread" (the default).
    std::vector<unsigned> pool_widths = {default_opts.pool_threads};
    if (executor == ExecutorKind::kPooled) {
      for (const unsigned w : config.pool_threads) {
        if (w != default_opts.pool_threads) pool_widths.push_back(w);
      }
    }
    for (const std::size_t burst : config.bursts) {
      for (const bool adaptive : adaptives) {
        for (const std::size_t fifo_capacity : fifo_capacities) {
          for (const unsigned width : pool_widths) {
            grid.push_back(grid_options(executor, burst, adaptive,
                                        fifo_capacity, width));
          }
        }
      }
    }
  }
  for (const EngineOptions& opts : grid) {
    if (static_cast<int>(result.candidates.size()) > config.max_candidates) {
      break;
    }
    if (same_point(opts, default_opts)) continue;
    AutotuneCandidate c;
    c.plan = compile_plan(pipeline, opts, config.slo_us, config.backend);
    EngineOptions verify_opts = opts;
    verify_opts.plan = &c.plan;
    const Report report = verify_graph(pipeline, &params, verify_opts);
    if (!report.ok()) {
      ++result.pruned;
      result.candidates.push_back(std::move(c));
      continue;
    }
    c.verified = true;
    c.predicted_ips = predict_ips(pipeline, c.plan);
    c.plan.predicted_ips = c.predicted_ips;
    result.candidates.push_back(std::move(c));
  }
  result.evaluated = static_cast<int>(std::count_if(
      result.candidates.begin(), result.candidates.end(),
      [](const AutotuneCandidate& c) { return c.verified; }));

  // Rank the verified non-default candidates by the cheap oracle. The DFE
  // cycle model cannot see the host executor knobs, so predictions often
  // tie — the live-calibration slots are then spread round-robin across
  // executor kinds instead of all probing whichever kind sorted first.
  std::vector<std::vector<std::size_t>> by_executor(executors.size());
  for (std::size_t i = 1; i < result.candidates.size(); ++i) {
    if (!result.candidates[i].verified) continue;
    const auto kind = result.candidates[i].plan.executor;
    for (std::size_t e = 0; e < executors.size(); ++e) {
      if (executors[e] == kind) {
        by_executor[e].push_back(i);
        break;
      }
    }
  }
  for (auto& bucket : by_executor) {
    std::stable_sort(bucket.begin(), bucket.end(),
                     [&](std::size_t a, std::size_t b) {
                       return result.candidates[a].predicted_ips >
                              result.candidates[b].predicted_ips;
                     });
  }
  std::vector<std::size_t> order;
  for (std::size_t round = 0;
       static_cast<int>(order.size()) < config.calibrate_top; ++round) {
    bool any = false;
    for (const auto& bucket : by_executor) {
      if (round >= bucket.size()) continue;
      any = true;
      order.push_back(bucket[round]);
      if (static_cast<int>(order.size()) >= config.calibrate_top) break;
    }
    if (!any) break;
  }

  std::size_t best_index = 0;  // the default, until strictly beaten
  if (config.live_calibration) {
    const std::vector<IntTensor> images = synthetic_batch(
        config.calibration_images, pipeline.input.h, pipeline.input.w,
        pipeline.input.c, config.seed);
    // The default is ALWAYS calibrated, budget or not: a baseline-free
    // result could report a winner that was never compared to anything.
    AutotuneCandidate& d = result.candidates[0];
    d.measured_ips =
        calibrate_ips(backend, pipeline, params, d.plan, config, images);
    result.default_ips = d.measured_ips;
    result.best_ips = d.measured_ips;
    for (const std::size_t i : order) {
      if (seconds_since(start) > config.time_budget_s) break;
      AutotuneCandidate& c = result.candidates[i];
      c.measured_ips =
          calibrate_ips(backend, pipeline, params, c.plan, config, images);
      if (c.measured_ips > result.best_ips) {
        result.best_ips = c.measured_ips;
        best_index = i;
      }
    }
  } else {
    result.default_ips = result.candidates[0].predicted_ips;
    result.best_ips = result.default_ips;
    for (const std::size_t i : order) {
      if (result.candidates[i].predicted_ips > result.best_ips) {
        result.best_ips = result.candidates[i].predicted_ips;
        best_index = i;
      }
    }
  }

  result.best = result.candidates[best_index].plan;
  result.best.calibrated_ips = result.candidates[best_index].measured_ips;
  return result;
}

}  // namespace qnn
