// Cost-aware pool sizing: derive a serving pool spec from backend costs.
//
// DfeServer pools used to be hand-picked ("2 engine + 1 reference + 1
// simulator"). This module derives a {backend, count} spec from what the
// registry already knows — each backend's tier and relative per-image cost
// (BackendInfo::relative_cost) — plus the operator's traffic model: target
// qps, the fraction of it carrying tight deadlines (which only kFast
// replicas may serve), and a headroom factor. serve_farm --auto-pool feeds
// the result straight into ServerConfig.
//
// The slice type is plan/'s own, NOT ServerConfig::PoolEntry: plan/ sits
// below serve/ in the layering and must not depend upward. Callers convert
// (a one-liner — the fields match by name).
#pragma once

#include <string>
#include <vector>

namespace qnn {

class BackendRegistry;

/// One homogeneous slice of a mixed pool.
struct PoolSlice {
  std::string backend;
  int count = 0;
};

struct PoolShapeConfig {
  /// Offered load the pool must sustain.
  double target_qps = 1000.0;
  /// Fraction of traffic with tight deadlines; only kFast replicas count
  /// toward serving it.
  double tight_fraction = 0.5;
  /// Measured (or calibrated) throughput of ONE relative_cost=1.0 replica,
  /// in qps. A backend with relative_cost r contributes base/r qps.
  double replica_qps = 500.0;
  /// Capacity safety margin (>= 1).
  double headroom = 1.25;
  /// Add one replica of the first kShadow backend for mirrored traffic.
  bool want_shadow = true;
  /// Upper bound on total non-shadow replicas (and each backend is also
  /// clamped to its own BackendInfo::max_devices).
  int max_replicas = 8;
};

/// Derive the pool spec. kFast backends are sized to the tight slice plus
/// their share of the rest; remaining loose traffic overflows onto kSlow
/// backends priced by relative_cost. Returns slices in serving-priority
/// order (fast, slow, shadow); every count >= 1 backend that appears.
/// Throws qnn::Error when the registry has no kFast backend or the config
/// is infeasible (non-positive qps).
[[nodiscard]] std::vector<PoolSlice> shape_pool(const PoolShapeConfig& config,
                                                const BackendRegistry& registry);

}  // namespace qnn
