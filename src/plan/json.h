// Versioned text serialization of CompiledPlan.
//
// The format is plain JSON written in a fixed field order with stable
// number formatting, so serialize(parse(serialize(p))) is byte-identical —
// the property the cache round-trip tests pin. The parser is a minimal
// recursive-descent JSON reader (objects, arrays, strings, numbers, bools)
// with no third-party dependency; it exists to read back what to_json
// wrote, not to accept arbitrary JSON dialects.
//
// Versioning policy (DESIGN.md §9): `version` is the first field written.
// plan_from_json() rejects any version other than kPlanFormatVersion with
// qnn::Error; PlanCache turns that rejection into a cache miss, so a
// format bump silently invalidates old cache entries instead of breaking
// cold starts.
#pragma once

#include <string>

#include "plan/compiled_plan.h"

namespace qnn {

/// Serialize a plan (deterministic field order and formatting).
[[nodiscard]] std::string to_json(const CompiledPlan& plan);

/// Parse a plan serialized by to_json. Throws qnn::Error on malformed
/// input, an unknown executor/role name, or a format-version mismatch.
[[nodiscard]] CompiledPlan plan_from_json(const std::string& text);

}  // namespace qnn
