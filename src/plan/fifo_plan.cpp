#include "plan/fifo_plan.h"

#include <algorithm>

#include "core/error.h"

namespace qnn {

std::size_t FifoPlan::total_capacity() const {
  std::size_t total = 0;
  for (const PlannedStream& s : streams) total += s.capacity;
  return total;
}

const PlannedStream* FifoPlan::find_edge(int consumer,
                                         bool to_skip_port) const {
  for (const PlannedStream& s : streams) {
    if (s.consumer == consumer && s.to_skip_port == to_skip_port &&
        (s.role == PlannedStream::Role::kDirect ||
         s.role == PlannedStream::Role::kBranch)) {
      return &s;
    }
  }
  return nullptr;
}

std::size_t line_buffer_values(const Node& n) {
  QNN_DCHECK(n.is_window_op(), "line buffer of a non-window kernel");
  const std::int64_t wp = n.in.w + 2 * n.pad;
  return static_cast<std::size_t>(static_cast<std::int64_t>(n.in.c) *
                                  (wp * (n.k - 1) + n.k));
}

FifoPlan plan_fifos(const Pipeline& pipeline, const EngineOptions& options) {
  FifoPlan plan;
  plan.burst_clamped =
      options.fifo_capacity != 0 && options.fifo_capacity < options.burst;
  plan.burst = std::max<std::size_t>(
      1, plan.burst_clamped ? options.fifo_capacity : options.burst);

  // Default depth for edges whose consumer needs no line buffer: enough
  // for double-buffered bursts so producer and consumer overlap.
  const std::size_t plain_capacity =
      options.fifo_capacity != 0
          ? options.fifo_capacity
          : std::max<std::size_t>(2 * options.burst, 64);

  // Mirrors StreamEngine wiring: one pass per producer (-1 = pipeline
  // input), consumers in node order with the main port attached first.
  auto plan_producer = [&](int p, const Shape& shape, int bits) {
    struct ConsumerPort {
      int node;
      bool skip;
    };
    std::vector<ConsumerPort> consumers;
    for (int j = 0; j < pipeline.size(); ++j) {
      const Node& n = pipeline.node(j);
      if (n.main_from == p) consumers.push_back({j, false});
      if (n.skip_from == p && p >= 0) consumers.push_back({j, true});
    }
    const std::string pname = p < 0 ? "input" : pipeline.node(p).name;

    auto capacity_for = [&](const ConsumerPort& port) -> std::size_t {
      const Node& n = pipeline.node(port.node);
      if (n.kind == NodeKind::Add && port.skip && n.main_from != p) {
        // The skip-path FIFO is sized to hold a full feature map plus
        // slack, whatever fifo_capacity says: functionally it subsumes
        // the delay-compensation buffer of §III-B5 (which only needs to
        // cover the regular path's *lag*, a prefix of the map).
        return static_cast<std::size_t>(shape.elems()) + options.skip_slack;
      }
      if (options.fifo_capacity != 0) return options.fifo_capacity;
      // Auto mode: a window kernel's input FIFO is its §III-B1b line
      // buffer; anything deeper buys nothing the scanner can use.
      if (n.is_window_op()) {
        return std::max(line_buffer_values(n), plain_capacity);
      }
      return plain_capacity;
    };

    if (consumers.empty()) {
      plan.streams.push_back(PlannedStream{pname + "->output",
                                           PlannedStream::Role::kOutput, p,
                                           -1, false, plain_capacity, bits});
      return;
    }
    if (consumers.size() == 1) {
      const ConsumerPort& c = consumers.front();
      plan.streams.push_back(PlannedStream{
          pname + "->" + pipeline.node(c.node).name,
          PlannedStream::Role::kDirect, p, c.node, c.skip, capacity_for(c),
          bits});
      return;
    }
    // Fan-out: producer -> fork trunk -> one branch per consumer port.
    plan.streams.push_back(PlannedStream{pname + "->fork",
                                         PlannedStream::Role::kTrunk, p, -1,
                                         false, plain_capacity, bits});
    for (const ConsumerPort& c : consumers) {
      plan.streams.push_back(PlannedStream{
          pname + "=>" + pipeline.node(c.node).name,
          PlannedStream::Role::kBranch, p, c.node, c.skip, capacity_for(c),
          bits});
    }
  };

  plan_producer(-1, pipeline.input, pipeline.input_bits);
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    plan_producer(i, n.out, n.out_bits);
  }

  // Per-edge burst sizing. Adaptive mode matches each edge's transaction
  // granularity to one row (W·C) of the map it carries — the §III-B1b
  // unit the window scanners ingest — so a thin late-stage edge is not
  // forced into one 256-value transfer per several images while a wide
  // early edge chops its rows into fragments. The plan-wide `burst` caps
  // every edge, and no edge may exceed its own ring.
  for (PlannedStream& ps : plan.streams) {
    if (!options.adaptive_burst) {
      ps.burst = plan.burst;
      continue;
    }
    const Shape& carried =
        ps.producer < 0 ? pipeline.input : pipeline.node(ps.producer).out;
    const auto row = static_cast<std::size_t>(carried.w) *
                     static_cast<std::size_t>(carried.c);
    ps.burst = std::max<std::size_t>(
        1, std::min({row, plan.burst, ps.capacity}));
  }
  return plan;
}

}  // namespace qnn
