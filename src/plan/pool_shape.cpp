#include "plan/pool_shape.h"

#include <algorithm>
#include <cmath>

#include "backend/backend.h"
#include "core/error.h"

namespace qnn {
namespace {

/// Replicas needed to serve `qps` at `per_replica` qps each (>= 1 when
/// there is any load at all).
int replicas_for(double qps, double per_replica) {
  if (qps <= 0) return 0;
  return std::max(1, static_cast<int>(std::ceil(qps / per_replica)));
}

}  // namespace

std::vector<PoolSlice> shape_pool(const PoolShapeConfig& config,
                                  const BackendRegistry& registry) {
  if (config.target_qps <= 0 || config.replica_qps <= 0) {
    throw Error("shape_pool: target_qps and replica_qps must be positive");
  }
  const double headroom = std::max(1.0, config.headroom);
  const double tight = std::clamp(config.tight_fraction, 0.0, 1.0);

  const Backend* fast = registry.first_of_tier(BackendTier::kFast);
  if (fast == nullptr) {
    throw Error("shape_pool: registry has no kFast backend");
  }
  const Backend* slow = registry.first_of_tier(BackendTier::kSlow);
  const Backend* shadow = registry.first_of_tier(BackendTier::kShadow);

  const auto per_replica = [&](const Backend& b) {
    return config.replica_qps / std::max(1e-9, b.info().relative_cost);
  };

  std::vector<PoolSlice> slices;
  int budget = std::max(1, config.max_replicas);

  // Tight traffic lives or dies on the fast tier, so the fast slice is
  // sized for it first; loose traffic rides along on whatever fast
  // capacity that leaves, with the remainder overflowing to the slow tier.
  const double demand = config.target_qps * headroom;
  const double tight_demand = demand * tight;
  int fast_count = replicas_for(std::max(tight_demand, demand * 0.5),
                                per_replica(*fast));
  fast_count = std::min({fast_count, budget, fast->info().max_devices});
  slices.push_back(PoolSlice{fast->name(), fast_count});
  budget -= fast_count;

  if (slow != nullptr && budget > 0) {
    const double fast_capacity =
        static_cast<double>(fast_count) * per_replica(*fast);
    const double overflow = demand - fast_capacity;
    int slow_count = replicas_for(overflow, per_replica(*slow));
    slow_count = std::min({slow_count, budget, slow->info().max_devices});
    if (slow_count > 0) {
      slices.push_back(PoolSlice{slow->name(), slow_count});
    }
  }

  if (config.want_shadow && shadow != nullptr) {
    slices.push_back(PoolSlice{shadow->name(), 1});
  }
  return slices;
}

}  // namespace qnn
