#include "plan/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/error.h"

namespace qnn {
namespace {

// ------------------------------------------------------------- writer

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* role_name(PlannedStream::Role role) {
  switch (role) {
    case PlannedStream::Role::kDirect:
      return "direct";
    case PlannedStream::Role::kTrunk:
      return "trunk";
    case PlannedStream::Role::kBranch:
      return "branch";
    case PlannedStream::Role::kOutput:
      return "output";
  }
  return "unknown";
}

PlannedStream::Role role_from_name(const std::string& name) {
  if (name == "direct") return PlannedStream::Role::kDirect;
  if (name == "trunk") return PlannedStream::Role::kTrunk;
  if (name == "branch") return PlannedStream::Role::kBranch;
  if (name == "output") return PlannedStream::Role::kOutput;
  throw Error("plan json: unknown stream role \"" + name + "\"");
}

std::string hash_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// --------------------------------------------------------------- parser

/// One parsed JSON value. Objects keep insertion order; lookups are
/// linear (plans are small).
struct JVal {
  enum class Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;

  [[nodiscard]] const JVal& at(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return v;
    }
    throw Error("plan json: missing field \"" + key + "\"");
  }
  [[nodiscard]] const std::string& as_str(const std::string& key) const {
    const JVal& v = at(key);
    if (v.kind != Kind::kStr) {
      throw Error("plan json: field \"" + key + "\" is not a string");
    }
    return v.str;
  }
  [[nodiscard]] double as_num(const std::string& key) const {
    const JVal& v = at(key);
    if (v.kind != Kind::kNum) {
      throw Error("plan json: field \"" + key + "\" is not a number");
    }
    return v.num;
  }
  [[nodiscard]] std::int64_t as_int(const std::string& key) const {
    return static_cast<std::int64_t>(as_num(key));
  }
  [[nodiscard]] std::size_t as_size(const std::string& key) const {
    const double v = as_num(key);
    if (v < 0) {
      throw Error("plan json: field \"" + key + "\" is negative");
    }
    return static_cast<std::size_t>(v);
  }
  [[nodiscard]] bool as_bool(const std::string& key) const {
    const JVal& v = at(key);
    if (v.kind != Kind::kBool) {
      throw Error("plan json: field \"" + key + "\" is not a bool");
    }
    return v.b;
  }
  [[nodiscard]] const std::vector<JVal>& as_arr(const std::string& key) const {
    const JVal& v = at(key);
    if (v.kind != Kind::kArr) {
      throw Error("plan json: field \"" + key + "\" is not an array");
    }
    return v.arr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JVal parse() {
    JVal v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("plan json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JVal value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JVal v;
      v.kind = JVal::Kind::kStr;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return JVal{};
    }
    return number();
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JVal boolean() {
    JVal v;
    v.kind = JVal::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.b = true;
    } else {
      literal("false");
      v.b = false;
    }
    return v;
  }

  JVal number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JVal v;
    v.kind = JVal::Kind::kNum;
    v.num = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad unicode escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A') + 10;
            } else {
              fail("bad unicode escape");
            }
          }
          // Plans only ever escape control bytes; reject the rest.
          if (code > 0xff) fail("unsupported unicode escape");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JVal object() {
    expect('{');
    JVal v;
    v.kind = JVal::Kind::kObj;
    if (try_consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      if (try_consume('}')) return v;
      skip_ws();
      expect(',');
    }
  }

  JVal array() {
    expect('[');
    JVal v;
    v.kind = JVal::Kind::kArr;
    if (try_consume(']')) return v;
    for (;;) {
      v.arr.push_back(value());
      if (try_consume(']')) return v;
      skip_ws();
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_hash(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) {
    throw Error("plan json: bad model hash \"" + hex + "\"");
  }
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v += static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v += static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      throw Error("plan json: bad model hash \"" + hex + "\"");
    }
  }
  return v;
}

}  // namespace

std::string to_json(const CompiledPlan& plan) {
  std::string o;
  o.reserve(1024 + 160 * plan.fifos.streams.size());
  o += "{\n";
  o += "  \"version\": " + std::to_string(plan.version) + ",\n";
  o += "  \"model\": ";
  write_escaped(o, plan.model);
  o += ",\n";
  o += "  \"key\": {\"model_hash\": \"" + hash_hex(plan.key.model_hash) +
       "\", \"machine\": ";
  write_escaped(o, plan.key.machine);
  o += ", \"slo_us\": " + std::to_string(plan.key.slo_us) + "},\n";
  o += "  \"fifo_capacity\": " + std::to_string(plan.fifo_capacity) + ",\n";
  o += "  \"skip_slack\": " + std::to_string(plan.skip_slack) + ",\n";
  o += "  \"burst\": " + std::to_string(plan.burst) + ",\n";
  o += std::string("  \"adaptive_burst\": ") +
       (plan.adaptive_burst ? "true" : "false") + ",\n";
  o += std::string("  \"executor\": \"") + to_string(plan.executor) + "\",\n";
  o += "  \"pool_threads\": " + std::to_string(plan.pool_threads) + ",\n";
  o += std::string("  \"pin_threads\": ") +
       (plan.pin_threads ? "true" : "false") + ",\n";
  o += "  \"pin_offset\": " + std::to_string(plan.pin_offset) + ",\n";
  o += "  \"backend\": ";
  write_escaped(o, plan.backend);
  o += ",\n";
  o += "  \"cut_after_nodes\": [";
  for (std::size_t i = 0; i < plan.cut_after_nodes.size(); ++i) {
    if (i != 0) o += ", ";
    o += std::to_string(plan.cut_after_nodes[i]);
  }
  o += "],\n";
  o += "  \"fifos\": {\"burst\": " + std::to_string(plan.fifos.burst) +
       ", \"burst_clamped\": " +
       (plan.fifos.burst_clamped ? "true" : "false") + ", \"streams\": [\n";
  for (std::size_t i = 0; i < plan.fifos.streams.size(); ++i) {
    const PlannedStream& s = plan.fifos.streams[i];
    o += "    {\"name\": ";
    write_escaped(o, s.name);
    o += std::string(", \"role\": \"") + role_name(s.role) + "\"";
    o += ", \"producer\": " + std::to_string(s.producer);
    o += ", \"consumer\": " + std::to_string(s.consumer);
    o += std::string(", \"skip\": ") + (s.to_skip_port ? "true" : "false");
    o += ", \"capacity\": " + std::to_string(s.capacity);
    o += ", \"bits\": " + std::to_string(s.bits);
    o += ", \"burst\": " + std::to_string(s.burst) + "}";
    if (i + 1 != plan.fifos.streams.size()) o += ",";
    o += "\n";
  }
  o += "  ]},\n";
  o += "  \"link_bursts\": [";
  for (std::size_t i = 0; i < plan.link_bursts.size(); ++i) {
    const SimConfig::EdgeBurst& e = plan.link_bursts[i];
    if (i != 0) o += ", ";
    o += "{\"consumer\": " + std::to_string(e.consumer) +
         std::string(", \"skip\": ") + (e.to_skip_port ? "true" : "false") +
         ", \"values\": " + std::to_string(e.values) + "}";
  }
  o += "],\n";
  o += "  \"predicted_ips\": " + fmt_double(plan.predicted_ips) + ",\n";
  o += "  \"calibrated_ips\": " + fmt_double(plan.calibrated_ips) + "\n";
  o += "}\n";
  return o;
}

CompiledPlan plan_from_json(const std::string& text) {
  const JVal root = Parser(text).parse();
  if (root.kind != JVal::Kind::kObj) {
    throw Error("plan json: top level is not an object");
  }
  CompiledPlan plan;
  plan.version = static_cast<int>(root.as_int("version"));
  if (plan.version != kPlanFormatVersion) {
    throw Error("plan json: format version " + std::to_string(plan.version) +
                " != supported " + std::to_string(kPlanFormatVersion));
  }
  plan.model = root.as_str("model");
  const JVal& key = root.at("key");
  plan.key.model_hash = parse_hash(key.as_str("model_hash"));
  plan.key.machine = key.as_str("machine");
  plan.key.slo_us = key.as_int("slo_us");
  plan.fifo_capacity = root.as_size("fifo_capacity");
  plan.skip_slack = root.as_size("skip_slack");
  plan.burst = root.as_size("burst");
  plan.adaptive_burst = root.as_bool("adaptive_burst");
  plan.executor = executor_from_string(root.as_str("executor"));
  plan.pool_threads = static_cast<unsigned>(root.as_size("pool_threads"));
  plan.pin_threads = root.as_bool("pin_threads");
  plan.pin_offset = static_cast<unsigned>(root.as_size("pin_offset"));
  plan.backend = root.as_str("backend");
  for (const JVal& v : root.as_arr("cut_after_nodes")) {
    plan.cut_after_nodes.push_back(static_cast<int>(v.num));
  }
  const JVal& fifos = root.at("fifos");
  plan.fifos.burst = fifos.as_size("burst");
  plan.fifos.burst_clamped = fifos.as_bool("burst_clamped");
  for (const JVal& v : fifos.as_arr("streams")) {
    PlannedStream s;
    s.name = v.as_str("name");
    s.role = role_from_name(v.as_str("role"));
    s.producer = static_cast<int>(v.as_int("producer"));
    s.consumer = static_cast<int>(v.as_int("consumer"));
    s.to_skip_port = v.as_bool("skip");
    s.capacity = v.as_size("capacity");
    s.bits = static_cast<int>(v.as_int("bits"));
    s.burst = v.as_size("burst");
    plan.fifos.streams.push_back(std::move(s));
  }
  for (const JVal& v : root.as_arr("link_bursts")) {
    SimConfig::EdgeBurst e;
    e.consumer = static_cast<int>(v.as_int("consumer"));
    e.to_skip_port = v.as_bool("skip");
    e.values = v.as_size("values");
    plan.link_bursts.push_back(e);
  }
  plan.predicted_ips = root.as_num("predicted_ips");
  plan.calibrated_ips = root.as_num("calibrated_ips");
  return plan;
}

}  // namespace qnn
