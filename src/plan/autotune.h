// Plan autotuner: search the compile-time knob space for a better plan.
//
// The paper tunes its streaming architecture by hand (§IV-B: burst sizing,
// buffer depths, one kernel graph per DFE). This driver automates the
// host-side analog as a small grid search over the CompiledPlan knobs —
// executor kind, plan-wide burst cap, adaptive per-edge bursts — with two
// oracles in sequence:
//
//   1. the sim/ cycle model prices each candidate's per-edge bursts and
//      partition cut (predicted_ips), ranking the grid cheaply;
//   2. a short live calibration run (backend compile + timed infer_batch
//      on synthetic images) decides among the top-ranked candidates,
//      because the executor knobs are invisible to the DFE cycle model.
//
// Every candidate is proved deadlock-free by verify/ BEFORE it may run:
// a candidate whose Report is not ok() is pruned, never executed. The
// default plan (exactly what the engine would decide on its own) is always
// candidate 0 and is always calibrated, and the winner must beat it
// STRICTLY on the measured metric — so the tuned plan never loses to the
// default on any reported metric, by construction. tools/check.sh TUNE=1
// asserts that property end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/params.h"
#include "nn/pipeline.h"
#include "plan/compiled_plan.h"

namespace qnn {

struct AutotuneConfig {
  /// Latency budget the plan is tuned for (PlanKey::slo_us); 0 = pure
  /// throughput tuning.
  std::int64_t slo_us = 0;
  /// Registered backend the winner is calibrated on (and recorded in
  /// CompiledPlan::backend).
  std::string backend = "engine";

  // ---- candidate grid ----------------------------------------------------
  /// Plan-wide burst caps to try (the default options' burst is always
  /// tried via candidate 0).
  std::vector<std::size_t> bursts = {64, 128, 256, 512};
  /// Uniform FIFO capacities to try alongside the auto line-buffer sizing
  /// (0). Deeper FIFOs let producers run further ahead — fewer blocking
  /// handoffs, which is what dominates small models on few cores.
  std::vector<std::size_t> fifo_capacities = {0, 4096};
  /// Sweep executor kinds (thread-per-kernel / pooled / ready-queue).
  bool try_executors = true;
  /// Worker-pool widths tried for the pooled executor (0 = one worker per
  /// hardware thread, the default). Extra workers can cover a worker that
  /// blocks on a FIFO handoff.
  std::vector<unsigned> pool_threads = {2, 4};
  /// Try both adaptive per-edge bursts and the flat plan-wide burst.
  bool try_adaptive = true;
  /// Hard cap on grid size after pruning duplicates.
  int max_candidates = 96;

  // ---- live calibration --------------------------------------------------
  /// Measure the top-ranked candidates on the real backend; without it the
  /// cycle-model prediction picks the winner (executor knobs then stay at
  /// the default, since the DFE model cannot see them).
  bool live_calibration = true;
  /// Candidates (beyond the default) that get a live run — best-predicted
  /// first, spread round-robin across executor kinds when the cycle model
  /// ties (it cannot see host executor knobs).
  int calibrate_top = 9;
  /// Images per timed repeat. The default keeps a repeat's window well
  /// above the OS scheduler tick on a fast model — short windows made the
  /// ranking a lottery on a 1-core box.
  int calibration_images = 64;
  /// Micro-batch size for the timed runs. 0 = derive: the whole image set
  /// in one infer_batch when slo_us == 0 (pure throughput), batches of 4
  /// when an SLO is set. A latency-SLO deployment serves small
  /// micro-batches, so every run pays the engine spin-up the executor
  /// knob exists to amortize — calibrating on one big batch is blind to
  /// exactly the cost that dominates that regime.
  int calibration_micro_batch = 0;
  /// Timed repeats per candidate; the BEST repeat is kept (scheduling
  /// interference only ever slows a run down).
  int calibration_repeats = 3;
  std::uint64_t seed = 7;

  /// Soft wall-clock budget: no NEW calibration run starts after this many
  /// seconds (the default plan is always calibrated first, so a tiny
  /// budget degrades to "default wins", never to an error).
  double time_budget_s = 30.0;
};

/// One evaluated point of the grid.
struct AutotuneCandidate {
  CompiledPlan plan;
  double predicted_ips = 0.0;  // cycle-model oracle
  double measured_ips = 0.0;   // live calibration; 0 = not measured
  bool verified = false;       // verify/ report was ok()
};

struct AutotuneResult {
  /// The winning plan (calibrated_ips/predicted_ips filled in). Equals the
  /// default plan unless some candidate beat it strictly.
  CompiledPlan best;
  double default_ips = 0.0;  // default plan on the deciding metric
  double best_ips = 0.0;     // winner on the same metric (>= default_ips)
  int evaluated = 0;         // candidates that passed verification
  int pruned = 0;            // candidates rejected by verify/
  std::vector<AutotuneCandidate> candidates;  // in evaluation order
};

/// Run the search. Throws qnn::Error only for setup failures (unknown
/// backend, pipeline that fails verification even with default options);
/// individual bad candidates are pruned, not fatal.
[[nodiscard]] AutotuneResult autotune(const Pipeline& pipeline,
                                      const NetworkParams& params,
                                      const AutotuneConfig& config = {});

}  // namespace qnn
