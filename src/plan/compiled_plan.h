// CompiledPlan: everything decided at compile time, frozen into one value.
//
// The design space of the paper — per-edge FIFO depths (§III-B1b), burst
// framing, the partition cut across MaxRing-linked DFEs (§III-B6) — plus
// the host-side execution knobs (executor kind, worker count, pinning) used
// to be re-derived ad hoc at four layers: the analyzer planned FIFOs, the
// session re-threaded bursts into the sim and partition configs, the engine
// re-read the same knobs, and the server hand-picked pool shapes. A
// CompiledPlan captures the whole decision once:
//
//   * the FIFO plan (plan/fifo_plan.h) the engine wires verbatim,
//   * per-edge bursts carried into the cycle simulator's MaxRing
//     serializer and the partitioner's wire pricing,
//   * executor kind + pool_threads / pin_threads / pin_offset,
//   * the partition cut and the backend that executes it,
//
// keyed by a stable fingerprint (model hash, machine signature, SLO) so a
// plan tuned once — by hand or by plan/autotune.h — can be persisted
// (plan/json.h, plan/cache.h) and reloaded on a server cold start.
//
// Consumption contract: EngineOptions::plan points at a CompiledPlan whose
// lifetime the caller owns (SessionConfig holds it by shared_ptr); the
// StreamEngine then wires the plan's FIFOs instead of re-deriving them,
// and verify/graph_check.h proves the SAME streams deadlock-free (a plan
// whose model hash does not match the pipeline fails QNN-D305).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/pipeline.h"
#include "partition/partitioner.h"
#include "plan/fifo_plan.h"
#include "sim/cycle_model.h"

namespace qnn {

/// Serialization format version (plan/json.h). Bump on any field change
/// that older readers would misinterpret; the cache treats a version
/// mismatch as a miss, never as an error (DESIGN.md §9).
inline constexpr int kPlanFormatVersion = 1;

/// Structural hash of a pipeline (FNV-1a over shapes, edges, widths and
/// window geometry; node *names* are excluded so a rename does not orphan
/// a tuned plan). Any edit that changes what the engine would execute
/// changes the hash.
[[nodiscard]] std::uint64_t model_hash(const Pipeline& pipeline);

/// Host signature a plan was tuned on: architecture + core count (e.g.
/// "x86_64-8c"). Plans do not transfer between machine shapes — the
/// executor/pinning knobs they freeze are core-count dependent.
[[nodiscard]] std::string machine_signature();

/// Stable cache fingerprint: (model hash, machine signature, SLO).
struct PlanKey {
  std::uint64_t model_hash = 0;
  std::string machine;
  /// Target per-request latency budget the plan was tuned for, in
  /// microseconds; 0 = tuned for throughput.
  std::int64_t slo_us = 0;

  /// Filesystem-safe fingerprint string, e.g. "m1a2b3c4-x86_64-8c-slo0".
  [[nodiscard]] std::string str() const;

  bool operator==(const PlanKey&) const = default;
};

/// Make the fingerprint of `pipeline` on this machine for `slo_us`.
[[nodiscard]] PlanKey plan_key(const Pipeline& pipeline,
                               std::int64_t slo_us = 0);

struct CompiledPlan {
  int version = kPlanFormatVersion;
  /// Display name of the network the plan was built from (not part of the
  /// fingerprint; key.model_hash is the identity).
  std::string model;
  PlanKey key;

  // ---- host engine knobs (EngineOptions mirror) --------------------------
  std::size_t fifo_capacity = 0;
  std::size_t skip_slack = 64;
  std::size_t burst = kDefaultBurst;
  bool adaptive_burst = true;
  ExecutorKind executor = ExecutorKind::kReadyQueue;
  unsigned pool_threads = 0;
  bool pin_threads = false;
  unsigned pin_offset = 0;

  // ---- substrate + partition ---------------------------------------------
  /// Registered backend (backend/backend.h) the plan was tuned against.
  std::string backend = "engine";
  /// Multi-DFE cut (§III-B6): node indices after which the pipeline is
  /// split onto the next DFE. Empty = let the partitioner choose.
  std::vector<int> cut_after_nodes;

  // ---- the frozen decisions ----------------------------------------------
  /// The FIFO plan the engine wires verbatim (EngineOptions::plan).
  FifoPlan fifos;
  /// Per-edge bursts for the sim's MaxRing serializer and the
  /// partitioner's framed wire pricing (derived from `fifos`).
  std::vector<SimConfig::EdgeBurst> link_bursts;

  // ---- provenance (plan/autotune.h) --------------------------------------
  double predicted_ips = 0.0;   // cycle-model oracle estimate
  double calibrated_ips = 0.0;  // short live calibration run; 0 = none

  [[nodiscard]] std::string fingerprint() const { return key.str(); }

  /// Does this plan describe `pipeline` (structural hash match)? A stale
  /// plan applied to an edited model fails verification with QNN-D305.
  [[nodiscard]] bool matches(const Pipeline& pipeline) const {
    return key.model_hash == model_hash(pipeline);
  }

  /// Copy the engine knobs into `options`. Does NOT set options.plan —
  /// the pointer's lifetime is the caller's contract (see file comment).
  void apply_engine(EngineOptions& options) const;
  /// Carry the planned bursts + cut into the cycle simulator's config.
  void apply_sim(SimConfig& sim) const;
  /// Carry the planned bursts into the partitioner's wire pricing.
  void apply_partition(PartitionConfig& partition) const;
};

/// Freeze the plan implied by `options` for `pipeline`: the FIFO plan, the
/// per-edge link bursts derived from it, the engine knobs, and the
/// fingerprint. This is the "default plan" — exactly what the engine would
/// decide on its own — and the autotuner's candidate 0.
[[nodiscard]] CompiledPlan compile_plan(const Pipeline& pipeline,
                                        const EngineOptions& options = {},
                                        std::int64_t slo_us = 0,
                                        const std::string& backend = "engine");

[[nodiscard]] const char* to_string(ExecutorKind kind);
/// Parse an executor name ("thread-per-kernel" / "pooled" / "ready-queue");
/// throws qnn::Error on anything else.
[[nodiscard]] ExecutorKind executor_from_string(const std::string& name);

}  // namespace qnn
