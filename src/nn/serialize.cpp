#include "nn/serialize.h"

#include <cstring>
#include <fstream>

namespace qnn {
namespace {

constexpr char kMagic[4] = {'Q', 'N', 'N', 'M'};
constexpr std::uint32_t kVersion = 1;

// Block tags.
enum : std::uint32_t {
  kTagConv = 1,
  kTagPool = 2,
  kTagResidual = 3,
  kTagDense = 4,
};

class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {
    QNN_CHECK(out_.good(), "cannot open " + path + " for writing");
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f32(float v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }
  void finish() { QNN_CHECK(out_.good(), "write failed"); }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    QNN_CHECK(in_.good(), "cannot open " + path);
  }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  float f32() { return get<float>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    QNN_CHECK(n <= (1u << 20), "unreasonable string length in file");
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  void raw(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    QNN_CHECK(in_.gcount() == static_cast<std::streamsize>(n),
              "truncated network file");
  }

 private:
  template <typename T>
  T get() {
    T v{};
    raw(&v, sizeof v);
    return v;
  }
  std::ifstream in_;
};

void write_spec(Writer& w, const NetworkSpec& spec) {
  w.str(spec.name);
  w.i32(spec.input.h);
  w.i32(spec.input.w);
  w.i32(spec.input.c);
  w.i32(spec.input_bits);
  w.i32(spec.act_bits);
  w.u32(static_cast<std::uint32_t>(spec.blocks.size()));
  for (const BlockSpec& b : spec.blocks) {
    std::visit(
        [&w](const auto& blk) {
          using T = std::decay_t<decltype(blk)>;
          if constexpr (std::is_same_v<T, ConvBlockSpec>) {
            w.u32(kTagConv);
            w.i32(blk.out_c);
            w.i32(blk.k);
            w.i32(blk.stride);
            w.i32(blk.pad);
            w.u32(blk.bn_act ? 1 : 0);
          } else if constexpr (std::is_same_v<T, PoolBlockSpec>) {
            w.u32(kTagPool);
            w.u32(blk.kind == PoolKind::Max ? 0 : 1);
            w.i32(blk.k);
            w.i32(blk.stride);
            w.i32(blk.pad);
            w.u32(blk.global ? 1 : 0);
          } else if constexpr (std::is_same_v<T, ResidualBlockSpec>) {
            w.u32(kTagResidual);
            w.i32(blk.out_c);
            w.i32(blk.stride);
          } else {
            static_assert(std::is_same_v<T, DenseBlockSpec>);
            w.u32(kTagDense);
            w.i32(blk.units);
            w.u32(blk.bn_act ? 1 : 0);
          }
        },
        b);
  }
}

NetworkSpec read_spec(Reader& r) {
  NetworkSpec spec;
  spec.name = r.str();
  spec.input.h = r.i32();
  spec.input.w = r.i32();
  spec.input.c = r.i32();
  spec.input_bits = r.i32();
  spec.act_bits = r.i32();
  const std::uint32_t blocks = r.u32();
  QNN_CHECK(blocks <= 4096, "unreasonable block count");
  for (std::uint32_t i = 0; i < blocks; ++i) {
    switch (r.u32()) {
      case kTagConv: {
        ConvBlockSpec b;
        b.out_c = r.i32();
        b.k = r.i32();
        b.stride = r.i32();
        b.pad = r.i32();
        b.bn_act = r.u32() != 0;
        spec.blocks.emplace_back(b);
        break;
      }
      case kTagPool: {
        PoolBlockSpec b;
        b.kind = r.u32() == 0 ? PoolKind::Max : PoolKind::Avg;
        b.k = r.i32();
        b.stride = r.i32();
        b.pad = r.i32();
        b.global = r.u32() != 0;
        spec.blocks.emplace_back(b);
        break;
      }
      case kTagResidual: {
        ResidualBlockSpec b;
        b.out_c = r.i32();
        b.stride = r.i32();
        spec.blocks.emplace_back(b);
        break;
      }
      case kTagDense: {
        DenseBlockSpec b;
        b.units = r.i32();
        b.bn_act = r.u32() != 0;
        spec.blocks.emplace_back(b);
        break;
      }
      default:
        throw Error("unknown block tag in network file");
    }
  }
  return spec;
}

}  // namespace

void save_network(const std::string& path, const NetworkSpec& spec,
                  const NetworkParams& params) {
  // Validate coherence before touching the disk.
  const Pipeline pipeline = expand(spec);
  QNN_CHECK(static_cast<int>(params.convs.size()) ==
                pipeline.num_conv_params,
            "params do not match spec (conv banks)");
  QNN_CHECK(static_cast<int>(params.bnacts.size()) ==
                pipeline.num_bnact_params,
            "params do not match spec (bnact banks)");

  Writer w(path);
  w.raw(kMagic, sizeof kMagic);
  w.u32(kVersion);
  write_spec(w, spec);

  w.u32(static_cast<std::uint32_t>(params.convs.size()));
  for (const ConvParams& c : params.convs) {
    const FilterShape& f = c.weights.shape();
    w.i32(f.out_c);
    w.i32(f.k);
    w.i32(f.in_c);
    for (int o = 0; o < f.out_c; ++o) {
      const BitVector& filter = c.weights.filter(o);
      for (std::int64_t word = 0; word < filter.words(); ++word) {
        w.u64(filter.word(word));
      }
    }
  }

  w.u32(static_cast<std::uint32_t>(params.bnacts.size()));
  for (const BnActParams& b : params.bnacts) {
    w.i32(b.bn.channels());
    w.i32(b.quantizer.bits());
    w.f64(b.quantizer.range_size());
    for (int c = 0; c < b.bn.channels(); ++c) {
      const BnParams& p = b.bn.at(c);
      w.f32(p.gamma);
      w.f32(p.mu);
      w.f32(p.inv_sigma);
      w.f32(p.beta);
    }
  }
  w.finish();
}

LoadedNetwork load_network(const std::string& path) {
  Reader r(path);
  char magic[4];
  r.raw(magic, sizeof magic);
  QNN_CHECK(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
            path + " is not a QNN network file");
  const std::uint32_t version = r.u32();
  QNN_CHECK(version == kVersion,
            "unsupported network file version " + std::to_string(version));

  LoadedNetwork net;
  net.spec = read_spec(r);
  net.pipeline = expand(net.spec);  // validates shapes and edges

  const std::uint32_t convs = r.u32();
  QNN_CHECK(static_cast<int>(convs) == net.pipeline.num_conv_params,
            "conv bank count does not match the stored spec");
  for (std::uint32_t i = 0; i < convs; ++i) {
    FilterShape f;
    f.out_c = r.i32();
    f.k = r.i32();
    f.in_c = r.i32();
    QNN_CHECK(f.valid(), "invalid filter shape in file");
    FilterBank bank(f);
    for (int o = 0; o < f.out_c; ++o) {
      BitVector& filter = bank.filter(o);
      for (std::int64_t word = 0; word < filter.words(); ++word) {
        filter.word(word) = r.u64();
      }
      // Enforce the tail-bits-zero invariant against corrupt input.
      if (filter.bits() % kWordBits != 0) {
        const Word tail_mask =
            low_mask(static_cast<int>(filter.bits() % kWordBits));
        QNN_CHECK((filter.word(filter.words() - 1) & ~tail_mask) == 0,
                  "corrupt filter tail bits in file");
      }
    }
    net.params.convs.push_back(ConvParams{std::move(bank)});
  }

  const std::uint32_t bnacts = r.u32();
  QNN_CHECK(static_cast<int>(bnacts) == net.pipeline.num_bnact_params,
            "bnact bank count does not match the stored spec");
  for (std::uint32_t i = 0; i < bnacts; ++i) {
    const int channels = r.i32();
    QNN_CHECK(channels > 0, "invalid bnact channel count in file");
    const int bits = r.i32();
    const double d = r.f64();
    BnActParams b;
    b.quantizer = ActQuantizer(bits, d);
    BnLayerParams bn(channels);
    for (int c = 0; c < channels; ++c) {
      BnParams& p = bn.at(c);
      p.gamma = r.f32();
      p.mu = r.f32();
      p.inv_sigma = r.f32();
      p.beta = r.f32();
    }
    b.bn = std::move(bn);
    net.params.bnacts.push_back(std::move(b));
  }
  // Single source of truth for folding: rebuild thresholds on load.
  net.params.refold();

  // Final cross-check: every bank matches its node's geometry.
  for (int i = 0; i < net.pipeline.size(); ++i) {
    const Node& n = net.pipeline.node(i);
    if (n.kind == NodeKind::Conv) {
      QNN_CHECK(net.params.conv(n).weights.shape() == n.filter_shape(),
                "stored conv bank does not match node " + n.name);
    } else if (n.kind == NodeKind::BnAct) {
      QNN_CHECK(net.params.bnact(n).bn.channels() == n.in.c,
                "stored bnact bank does not match node " + n.name);
    }
  }
  return net;
}

}  // namespace qnn
