#include "nn/params.h"

#include <cmath>

namespace qnn {
namespace {

/// Rough standard deviation of the values carried on node i's output
/// stream under random +-1 weights and spread activation codes. Only used
/// to scale generated BatchNorm parameters so codes are non-degenerate.
double estimate_sigma(const Pipeline& p, int i) {
  if (i < 0) {
    const double m = static_cast<double>((1 << p.input_bits) - 1);
    return m / std::sqrt(12.0);  // uniform code spread
  }
  const Node& n = p.node(i);
  switch (n.kind) {
    case NodeKind::Conv: {
      const double window =
          static_cast<double>(n.k) * n.k * n.in.c;
      const double m = static_cast<double>((1 << n.in_bits) - 1);
      // Sum of `window` independent terms (+-1 weight times code in
      // [0, m]): variance per term ~ E[code^2] ~ m^2 / 3.
      return std::sqrt(window) * m / std::sqrt(3.0);
    }
    case NodeKind::Add: {
      const double a = estimate_sigma(p, n.main_from);
      const double b = estimate_sigma(p, n.skip_from);
      return std::sqrt(a * a + b * b);
    }
    case NodeKind::MaxPool:
      return estimate_sigma(p, n.main_from);
    case NodeKind::AvgPool: {
      // Window sum of codes.
      return estimate_sigma(p, n.main_from) * n.k;
    }
    case NodeKind::BnAct: {
      const double m = static_cast<double>((1 << n.out_bits) - 1);
      return m / std::sqrt(12.0);
    }
  }
  return 1.0;
}

}  // namespace

NetworkParams NetworkParams::random(const Pipeline& pipeline,
                                    std::uint64_t seed) {
  Rng rng(seed);
  NetworkParams params;
  params.convs.reserve(static_cast<std::size_t>(pipeline.num_conv_params));
  params.bnacts.reserve(static_cast<std::size_t>(pipeline.num_bnact_params));

  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    if (n.kind == NodeKind::Conv) {
      params.convs.push_back(
          ConvParams{FilterBank::random(n.filter_shape(), rng)});
    } else if (n.kind == NodeKind::BnAct) {
      const double sigma = std::max(1.0, estimate_sigma(pipeline, n.main_from));
      const int levels = 1 << (pipeline.act_bits);
      // Thresholds at alpha*d (alpha = 1..levels-1) should straddle the
      // normalized distribution ~N(beta, gamma): put them on [~0, ~4]
      // around beta ~ 2.
      const double d = 4.0 / levels;
      BnLayerParams bn(n.in.c);
      for (int c = 0; c < n.in.c; ++c) {
        BnParams& q = bn.at(c);
        q.gamma = 0.7f + 0.6f * rng.next_float();
        q.inv_sigma = static_cast<float>(1.0 / sigma);
        q.mu = static_cast<float>(sigma * 0.6 * (rng.next_double() - 0.5));
        q.beta = static_cast<float>(2.0 + 0.5 * (rng.next_double() - 0.5));
      }
      BnActParams bp;
      bp.quantizer = ActQuantizer(pipeline.act_bits, d);
      bp.bn = std::move(bn);
      bp.thresholds = ThresholdLayer::fold(bp.bn, bp.quantizer);
      params.bnacts.push_back(std::move(bp));
    }
  }
  QNN_CHECK(static_cast<int>(params.convs.size()) ==
                pipeline.num_conv_params,
            "conv parameter count mismatch");
  QNN_CHECK(static_cast<int>(params.bnacts.size()) ==
                pipeline.num_bnact_params,
            "bnact parameter count mismatch");
  return params;
}

void NetworkParams::refold() {
  for (auto& b : bnacts) {
    b.thresholds = ThresholdLayer::fold(b.bn, b.quantizer);
  }
}

}  // namespace qnn
