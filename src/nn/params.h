// Network parameters: packed binarized weights and folded thresholds.
//
// Matches the deployment flow of §III-B: float weights and BatchNorm
// parameters are produced on the host (by training or, for performance
// experiments, by a seeded generator), then binarized/folded once before
// inference starts and loaded into the per-layer caches.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/pipeline.h"
#include "quant/binarize.h"
#include "quant/threshold.h"

namespace qnn {

struct ConvParams {
  FilterBank weights;
};

struct BnActParams {
  BnLayerParams bn;          // unfolded source parameters (float, host side)
  ActQuantizer quantizer;    // uniform n-bit activation
  ThresholdLayer thresholds; // folded hardware form
};

/// All parameters of one lowered network, indexed by Node::param.
struct NetworkParams {
  std::vector<ConvParams> convs;
  std::vector<BnActParams> bnacts;

  /// Deterministic, distribution-shaped random parameters: weights are
  /// uniform sign bits; BatchNorm parameters are scaled so that activation
  /// codes of every layer are non-degenerate (codes spread over all levels).
  /// Used by every performance experiment — dataflow timing and resource
  /// usage are weight-value independent (DESIGN.md substitution table).
  static NetworkParams random(const Pipeline& pipeline, std::uint64_t seed);

  /// Fold/refresh thresholds from the float bn parameters.
  void refold();

  [[nodiscard]] const ConvParams& conv(const Node& n) const {
    QNN_DCHECK(n.kind == NodeKind::Conv, "node is not a convolution");
    QNN_DCHECK(n.param >= 0 &&
                   n.param < static_cast<int>(convs.size()),
               "conv param index out of range");
    return convs[static_cast<std::size_t>(n.param)];
  }
  [[nodiscard]] const BnActParams& bnact(const Node& n) const {
    QNN_DCHECK(n.kind == NodeKind::BnAct, "node is not a bnact");
    QNN_DCHECK(n.param >= 0 &&
                   n.param < static_cast<int>(bnacts.size()),
               "bnact param index out of range");
    return bnacts[static_cast<std::size_t>(n.param)];
  }
};

}  // namespace qnn
