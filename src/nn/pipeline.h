// Primitive streaming pipeline: the lowered form every engine consumes.
//
// expand() lowers a NetworkSpec into a topologically ordered list of
// primitive nodes (Conv, MaxPool, AvgPool, BnAct, Add). The list is a chain
// with optional skip edges — exactly the topology the paper's streaming
// architecture supports (§III-B5): residual blocks fork a 16-bit
// non-quantized stream around two convolutions and re-join with an adder.
//
// The same Pipeline drives:
//   * the golden reference executor   (nn/reference.h)
//   * the threaded dataflow engine    (dataflow/engine.h)
//   * the cycle-level simulator       (sim/cycle_model.h)
//   * the FPGA resource model         (fpga/resource_model.h)
//   * the multi-DFE partitioner       (partition/partitioner.h)
#pragma once

#include <string>
#include <vector>

#include "core/shape.h"
#include "nn/network.h"

namespace qnn {

enum class NodeKind { Conv, MaxPool, AvgPool, BnAct, Add };

[[nodiscard]] const char* node_kind_name(NodeKind k);

/// One primitive streaming kernel.
struct Node {
  NodeKind kind{};
  std::string name;

  /// Producer of the main input stream: node index, or -1 for the pipeline
  /// input. Always < own index (topological order).
  int main_from = -1;
  /// Add only: producer of the skip input stream (buffered 16-bit path).
  int skip_from = -1;

  Shape in{};   // shape of the main input stream
  Shape out{};  // shape of the output stream

  int in_bits = 0;   // element width of the main input stream
  int out_bits = 0;  // element width of the output stream

  // Window parameters (Conv / MaxPool / AvgPool).
  int k = 0;
  int stride = 1;
  int pad = 0;

  /// Parameter bank index: Conv -> NetworkParams::convs,
  /// BnAct -> NetworkParams::bnacts. -1 for parameterless nodes.
  int param = -1;

  [[nodiscard]] bool is_window_op() const {
    return kind == NodeKind::Conv || kind == NodeKind::MaxPool ||
           kind == NodeKind::AvgPool;
  }
  [[nodiscard]] FilterShape filter_shape() const {
    QNN_DCHECK(kind == NodeKind::Conv, "not a convolution");
    return FilterShape{out.c, k, in.c};
  }
};

/// Lowered network. `nodes` is topologically ordered; the last node's
/// output is the network output (class logits for classifiers).
struct Pipeline {
  std::string name;
  Shape input{};
  int input_bits = 8;
  int act_bits = 2;
  std::vector<Node> nodes;
  int num_conv_params = 0;
  int num_bnact_params = 0;

  [[nodiscard]] int size() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] const Node& node(int i) const {
    QNN_DCHECK(i >= 0 && i < size(), "node index out of range");
    return nodes[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Shape output_shape() const {
    QNN_CHECK(!nodes.empty(), "empty pipeline");
    return nodes.back().out;
  }

  /// Indices of nodes consuming node i's output (main or skip edges).
  [[nodiscard]] std::vector<int> consumers(int i) const;

  /// Total binarized weight bits across all convolutions.
  [[nodiscard]] std::int64_t total_weight_bits() const;

  /// Throws if shapes, edges, or topological order are inconsistent.
  void validate() const;
};

/// Bits required to represent any pre-activation sum of a conv node with
/// the given window size and unsigned input width, as a signed integer.
[[nodiscard]] int preact_bits(std::int64_t window_values, int in_bits);

/// Lower a NetworkSpec to its primitive pipeline.
[[nodiscard]] Pipeline expand(const NetworkSpec& spec);

}  // namespace qnn
