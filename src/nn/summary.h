// Human-readable pipeline summaries (the "model.summary()" of the stack).
#pragma once

#include <string>

#include "nn/pipeline.h"

namespace qnn {

/// Multi-line table: one row per kernel with shapes, stream widths, window
/// geometry and parameter counts, followed by totals.
[[nodiscard]] std::string summarize(const Pipeline& pipeline);

/// One-line digest: "<name>: N kernels, M weight bits, HxWxC -> H'xW'xC'".
[[nodiscard]] std::string digest(const Pipeline& pipeline);

}  // namespace qnn
