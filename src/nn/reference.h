// Golden reference executor for lowered pipelines.
//
// Executes a Pipeline layer-by-layer with plain integer loops, independent
// of the packed XNOR-popcount datapath and of the streaming engine; both are
// tested for bit-exact agreement against this executor.
//
// Two BnAct modes:
//   * Threshold — the folded integer-threshold staircase (the hardware path)
//   * FloatPath — float BatchNorm followed by the uniform quantizer
// Agreement between the two modes validates the threshold folding itself.
#pragma once

#include <vector>

#include "core/tensor.h"
#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

enum class BnActMode { Threshold, FloatPath };

class ReferenceExecutor {
 public:
  ReferenceExecutor(const Pipeline& pipeline, const NetworkParams& params,
                    BnActMode mode = BnActMode::Threshold);

  /// Run the full pipeline; returns the final node's output tensor.
  [[nodiscard]] IntTensor run(const IntTensor& input) const;

  /// Run and keep every node's output (kernel-level test oracle).
  [[nodiscard]] std::vector<IntTensor> run_all(const IntTensor& input) const;

  /// Index of the maximum logit, lowest index wins ties.
  [[nodiscard]] static int argmax(const IntTensor& logits);

 private:
  [[nodiscard]] IntTensor eval_node(const Node& n, const IntTensor& main,
                                    const IntTensor* skip) const;
  [[nodiscard]] IntTensor eval_conv(const Node& n,
                                    const IntTensor& in) const;
  [[nodiscard]] IntTensor eval_pool(const Node& n,
                                    const IntTensor& in) const;
  [[nodiscard]] IntTensor eval_bnact(const Node& n,
                                     const IntTensor& in) const;

  const Pipeline& pipeline_;
  const NetworkParams& params_;
  BnActMode mode_;
};

}  // namespace qnn
