#include "nn/reference.h"

#include <algorithm>

#include "core/parallel.h"

namespace qnn {

ReferenceExecutor::ReferenceExecutor(const Pipeline& pipeline,
                                     const NetworkParams& params,
                                     BnActMode mode)
    : pipeline_(pipeline), params_(params), mode_(mode) {
  pipeline_.validate();
  QNN_CHECK(static_cast<int>(params.convs.size()) ==
                pipeline.num_conv_params,
            "parameter bank does not match pipeline (convs)");
  QNN_CHECK(static_cast<int>(params.bnacts.size()) ==
                pipeline.num_bnact_params,
            "parameter bank does not match pipeline (bnacts)");
}

IntTensor ReferenceExecutor::eval_conv(const Node& n,
                                       const IntTensor& in) const {
  const FilterBank& fb = params_.conv(n).weights;
  IntTensor out(n.out);
  parallel_for(n.out.h, [&](std::int64_t y0, std::int64_t y1) {
    for (int oy = static_cast<int>(y0); oy < static_cast<int>(y1); ++oy) {
      for (int ox = 0; ox < n.out.w; ++ox) {
        for (int o = 0; o < n.out.c; ++o) {
          std::int64_t acc = 0;
          for (int dy = 0; dy < n.k; ++dy) {
            const int iy = oy * n.stride + dy - n.pad;
            if (iy < 0 || iy >= n.in.h) continue;  // pad code 0: no effect
            for (int dx = 0; dx < n.k; ++dx) {
              const int ix = ox * n.stride + dx - n.pad;
              if (ix < 0 || ix >= n.in.w) continue;
              for (int ci = 0; ci < n.in.c; ++ci) {
                acc += static_cast<std::int64_t>(
                           fb.signed_weight(o, dy, dx, ci)) *
                       in.at(iy, ix, ci);
              }
            }
          }
          out.at(oy, ox, o) = static_cast<std::int32_t>(acc);
        }
      }
    }
  });
  return out;
}

IntTensor ReferenceExecutor::eval_pool(const Node& n,
                                       const IntTensor& in) const {
  IntTensor out(n.out);
  const bool is_max = n.kind == NodeKind::MaxPool;
  for (int oy = 0; oy < n.out.h; ++oy) {
    for (int ox = 0; ox < n.out.w; ++ox) {
      for (int c = 0; c < n.out.c; ++c) {
        // Codes are unsigned, and padded positions hold the lowest code
        // (the analog of the paper's -1 padding), so 0 is a correct
        // identity for max and sum alike.
        std::int32_t best = 0;
        std::int64_t sum = 0;
        for (int dy = 0; dy < n.k; ++dy) {
          const int iy = oy * n.stride + dy - n.pad;
          if (iy < 0 || iy >= n.in.h) continue;
          for (int dx = 0; dx < n.k; ++dx) {
            const int ix = ox * n.stride + dx - n.pad;
            if (ix < 0 || ix >= n.in.w) continue;
            const std::int32_t v = in.at(iy, ix, c);
            QNN_DCHECK(v >= 0, "pooling expects unsigned activation codes");
            best = std::max(best, v);
            sum += v;
          }
        }
        out.at(oy, ox, c) =
            is_max ? best : static_cast<std::int32_t>(sum);
      }
    }
  }
  return out;
}

IntTensor ReferenceExecutor::eval_bnact(const Node& n,
                                        const IntTensor& in) const {
  const BnActParams& bp = params_.bnact(n);
  QNN_CHECK(bp.thresholds.channels() == n.in.c,
            "threshold bank channel mismatch");
  IntTensor out(n.out);
  for (int y = 0; y < n.in.h; ++y) {
    for (int x = 0; x < n.in.w; ++x) {
      for (int c = 0; c < n.in.c; ++c) {
        const std::int32_t a = in.at(y, x, c);
        std::int32_t code;
        if (mode_ == BnActMode::Threshold) {
          code = bp.thresholds.at(c).eval(a);
        } else {
          code = bp.quantizer.code(bp.bn.at(c).apply(a));
        }
        out.at(y, x, c) = code;
      }
    }
  }
  return out;
}

IntTensor ReferenceExecutor::eval_node(const Node& n, const IntTensor& main,
                                       const IntTensor* skip) const {
  switch (n.kind) {
    case NodeKind::Conv:
      return eval_conv(n, main);
    case NodeKind::MaxPool:
    case NodeKind::AvgPool:
      return eval_pool(n, main);
    case NodeKind::BnAct:
      return eval_bnact(n, main);
    case NodeKind::Add: {
      QNN_CHECK(skip != nullptr, "Add node without skip operand");
      QNN_CHECK(skip->shape() == main.shape(), "Add operand shape mismatch");
      IntTensor out(n.out);
      for (std::int64_t i = 0; i < out.size(); ++i) {
        out[i] = main[i] + (*skip)[i];
      }
      return out;
    }
  }
  throw Error("unreachable node kind");
}

std::vector<IntTensor> ReferenceExecutor::run_all(
    const IntTensor& input) const {
  QNN_CHECK(input.shape() == pipeline_.input,
            "input shape " + input.shape().str() + " != network input " +
                pipeline_.input.str());
  std::vector<IntTensor> outputs;
  outputs.reserve(static_cast<std::size_t>(pipeline_.size()));
  for (int i = 0; i < pipeline_.size(); ++i) {
    const Node& n = pipeline_.node(i);
    const IntTensor& main =
        n.main_from < 0 ? input
                        : outputs[static_cast<std::size_t>(n.main_from)];
    const IntTensor* skip =
        n.skip_from < 0 ? nullptr
                        : &outputs[static_cast<std::size_t>(n.skip_from)];
    outputs.push_back(eval_node(n, main, skip));
  }
  return outputs;
}

IntTensor ReferenceExecutor::run(const IntTensor& input) const {
  auto all = run_all(input);
  return std::move(all.back());
}

int ReferenceExecutor::argmax(const IntTensor& logits) {
  QNN_CHECK(logits.size() > 0, "empty logits");
  int best = 0;
  for (std::int64_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace qnn
