#include "nn/summary.h"

#include <sstream>

#include "io/table.h"

namespace qnn {

std::string summarize(const Pipeline& pipeline) {
  pipeline.validate();
  Table t({"#", "kernel", "in", "out", "bits", "window", "weights",
           "skip from"});
  std::int64_t total_weights = 0;
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    std::string window = "-";
    std::string weights = "-";
    if (n.is_window_op()) {
      window = std::to_string(n.k) + "x" + std::to_string(n.k) + " s" +
               std::to_string(n.stride) + " p" + std::to_string(n.pad);
    }
    if (n.kind == NodeKind::Conv) {
      const std::int64_t w = n.filter_shape().total_weights();
      total_weights += w;
      weights = std::to_string(w);
    }
    t.add_row({std::to_string(i), n.name, n.in.str(), n.out.str(),
               std::to_string(n.in_bits) + "->" + std::to_string(n.out_bits),
               window, weights,
               n.skip_from >= 0
                   ? pipeline.node(n.skip_from).name
                   : "-"});
  }
  std::ostringstream os;
  os << pipeline.name << " (input " << pipeline.input.str() << " @ "
     << pipeline.input_bits << "-bit, activations " << pipeline.act_bits
     << "-bit)\n";
  t.print(os);
  os << "total: " << pipeline.size() << " kernels, " << total_weights
     << " binarized weight bits ("
     << (total_weights + 8 * 1024 - 1) / (8 * 1024) << " KiB)\n";
  return os.str();
}

std::string digest(const Pipeline& pipeline) {
  std::ostringstream os;
  os << pipeline.name << ": " << pipeline.size() << " kernels, "
     << pipeline.total_weight_bits() << " weight bits, "
     << pipeline.input.str() << " -> " << pipeline.output_shape().str();
  return os.str();
}

}  // namespace qnn
