#include "nn/pipeline.h"

#include <algorithm>
#include <bit>

namespace qnn {

const char* node_kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::Conv:
      return "conv";
    case NodeKind::MaxPool:
      return "maxpool";
    case NodeKind::AvgPool:
      return "avgpool";
    case NodeKind::BnAct:
      return "bnact";
    case NodeKind::Add:
      return "add";
  }
  return "?";
}

std::vector<int> Pipeline::consumers(int i) const {
  std::vector<int> out;
  for (int j = i + 1; j < size(); ++j) {
    if (nodes[static_cast<std::size_t>(j)].main_from == i ||
        nodes[static_cast<std::size_t>(j)].skip_from == i) {
      out.push_back(j);
    }
  }
  return out;
}

std::int64_t Pipeline::total_weight_bits() const {
  std::int64_t total = 0;
  for (const auto& n : nodes) {
    if (n.kind == NodeKind::Conv) total += n.filter_shape().total_weights();
  }
  return total;
}

void Pipeline::validate() const {
  QNN_CHECK(!nodes.empty(), "empty pipeline");
  for (int i = 0; i < size(); ++i) {
    const Node& n = nodes[static_cast<std::size_t>(i)];
    QNN_CHECK(n.main_from >= -1 && n.main_from < i,
              "node " + n.name + ": main edge breaks topological order");
    const Shape& src_shape =
        n.main_from < 0 ? input
                        : nodes[static_cast<std::size_t>(n.main_from)].out;
    QNN_CHECK(n.in == src_shape,
              "node " + n.name + ": input shape " + n.in.str() +
                  " != producer output " + src_shape.str());
    if (n.kind == NodeKind::Add) {
      QNN_CHECK(n.skip_from >= 0 && n.skip_from < i,
                "node " + n.name + ": skip edge breaks topological order");
      const Shape& skip_shape =
          nodes[static_cast<std::size_t>(n.skip_from)].out;
      QNN_CHECK(skip_shape == n.in,
                "node " + n.name + ": skip shape " + skip_shape.str() +
                    " != main shape " + n.in.str());
      QNN_CHECK(n.out == n.in, "Add must preserve shape");
    } else {
      QNN_CHECK(n.skip_from == -1, "only Add nodes take skip inputs");
    }
    if (n.is_window_op()) {
      QNN_CHECK(n.out == conv_out_shape(n.in, n.out.c, n.k, n.stride, n.pad),
                "node " + n.name + ": window output shape mismatch");
    }
    QNN_CHECK(n.in_bits >= 1 && n.out_bits >= 1,
              "node " + n.name + ": stream widths unset");
  }
}

int preact_bits(std::int64_t window_values, int in_bits) {
  QNN_CHECK(window_values > 0 && in_bits >= 1 && in_bits <= 16,
            "bad pre-activation width query");
  const auto max_abs = static_cast<std::uint64_t>(window_values) *
                       ((std::uint64_t{1} << in_bits) - 1);
  return static_cast<int>(std::bit_width(max_abs)) + 1;  // + sign bit
}

namespace {

/// Incremental pipeline builder holding the running stream state.
class Expander {
 public:
  explicit Expander(const NetworkSpec& spec) : spec_(spec) {
    p_.name = spec.name;
    p_.input = spec.input;
    p_.input_bits = spec.input_bits;
    p_.act_bits = spec.act_bits;
    cur_ = spec.input;
    cur_bits_ = spec.input_bits;
  }

  Pipeline run() {
    QNN_CHECK(spec_.input.valid(), "network input shape invalid");
    QNN_CHECK(spec_.input_bits >= 1 && spec_.input_bits <= 8,
              "input bits out of range");
    QNN_CHECK(spec_.act_bits >= 1 && spec_.act_bits <= 8,
              "activation bits out of range");
    QNN_CHECK(!spec_.blocks.empty(), "network has no blocks");
    for (const BlockSpec& b : spec_.blocks) {
      std::visit([this](const auto& blk) { emit_block(blk); }, b);
    }
    p_.num_conv_params = conv_params_;
    p_.num_bnact_params = bnact_params_;
    p_.validate();
    return std::move(p_);
  }

 private:
  int push(Node n) {
    n.name = std::string(node_kind_name(n.kind)) + "_" +
             std::to_string(p_.size());
    p_.nodes.push_back(std::move(n));
    return p_.size() - 1;
  }

  /// Emit a convolution reading stream `from` with shape/bits as tracked;
  /// returns the node index. Does not advance the carried stream state.
  int emit_conv(int from, const Shape& in, int in_bits, int out_c, int k,
                int stride, int pad) {
    Node n;
    n.kind = NodeKind::Conv;
    n.main_from = from;
    n.in = in;
    n.out = conv_out_shape(in, out_c, k, stride, pad);
    n.in_bits = in_bits;
    n.out_bits = preact_bits(static_cast<std::int64_t>(k) * k * in.c, in_bits);
    n.k = k;
    n.stride = stride;
    n.pad = pad;
    n.param = conv_params_++;
    return push(n);
  }

  int emit_bnact(int from, const Shape& shape, int in_bits) {
    Node n;
    n.kind = NodeKind::BnAct;
    n.main_from = from;
    n.in = shape;
    n.out = shape;
    n.in_bits = in_bits;
    n.out_bits = spec_.act_bits;
    n.param = bnact_params_++;
    return push(n);
  }

  /// If the carried stream is a 16-bit pre-activation (end of a residual
  /// chain), quantize it so downstream kernels see activation codes.
  void quantize_carry() {
    if (!carry_is_preact_) return;
    prev_ = emit_bnact(prev_, cur_, cur_bits_);
    cur_bits_ = spec_.act_bits;
    carry_is_preact_ = false;
  }

  void emit_block(const ConvBlockSpec& b) {
    quantize_carry();
    prev_ = emit_conv(prev_, cur_, cur_bits_, b.out_c, b.k, b.stride, b.pad);
    cur_ = p_.nodes.back().out;
    cur_bits_ = p_.nodes.back().out_bits;
    if (b.bn_act) {
      prev_ = emit_bnact(prev_, cur_, cur_bits_);
      cur_bits_ = spec_.act_bits;
    } else {
      carry_is_preact_ = true;
    }
  }

  void emit_block(const PoolBlockSpec& b) {
    quantize_carry();
    Node n;
    n.kind = b.kind == PoolKind::Max ? NodeKind::MaxPool : NodeKind::AvgPool;
    n.main_from = prev_;
    n.in = cur_;
    n.in_bits = cur_bits_;
    if (b.global) {
      QNN_CHECK(cur_.h == cur_.w, "global pool requires square maps");
      n.k = cur_.h;
      n.stride = 1;
      n.pad = 0;
    } else {
      n.k = b.k;
      n.stride = b.stride;
      n.pad = b.pad;
    }
    n.out = conv_out_shape(cur_, cur_.c, n.k, n.stride, n.pad);
    if (n.kind == NodeKind::MaxPool) {
      n.out_bits = cur_bits_;
    } else {
      // Average pooling is implemented as an integer window sum; the 1/k^2
      // scale is argmax-invariant and is folded away (see DESIGN.md).
      const auto max_sum = static_cast<std::uint64_t>(n.k) * n.k *
                           ((std::uint64_t{1} << cur_bits_) - 1);
      n.out_bits = static_cast<int>(std::bit_width(max_sum));
    }
    prev_ = push(n);
    cur_ = p_.nodes.back().out;
    cur_bits_ = p_.nodes.back().out_bits;
  }

  void emit_block(const DenseBlockSpec& b) {
    quantize_carry();
    QNN_CHECK(cur_.h == cur_.w, "dense lowering requires square maps");
    emit_block(ConvBlockSpec{b.units, cur_.h, 1, 0, b.bn_act});
  }

  void emit_block(const ResidualBlockSpec& b) {
    // Entering stream: either activation codes (first block after a pool)
    // or the 16-bit pre-activation accumulator of the previous block. The
    // skip connection taps the accumulator when available (§III-B5: "skip
    // connections are 16-bit integers which accumulate non-quantized
    // outputs of convolutions"); for the first block it taps the codes.
    const int preact_idx = prev_;
    const Shape in_shape = cur_;
    quantize_carry();
    const int q_idx = prev_;
    const int q_bits = cur_bits_;

    const bool need_proj = b.stride != 1 || in_shape.c != b.out_c;
    int shortcut_idx;
    if (need_proj) {
      shortcut_idx =
          emit_conv(q_idx, in_shape, q_bits, b.out_c, 1, b.stride, 0);
    } else {
      shortcut_idx = preact_idx >= 0 && preact_idx != q_idx ? preact_idx
                                                            : q_idx;
    }
    const Shape short_shape =
        shortcut_idx < 0 ? p_.input
                         : p_.nodes[static_cast<std::size_t>(shortcut_idx)].out;
    const int short_bits =
        shortcut_idx < 0
            ? p_.input_bits
            : p_.nodes[static_cast<std::size_t>(shortcut_idx)].out_bits;

    const int t1 =
        emit_conv(q_idx, in_shape, q_bits, b.out_c, 3, b.stride, 1);
    const Shape mid = p_.nodes[static_cast<std::size_t>(t1)].out;
    const int q2 = emit_bnact(
        t1, mid, p_.nodes[static_cast<std::size_t>(t1)].out_bits);
    const int t2 = emit_conv(q2, mid, spec_.act_bits, b.out_c, 3, 1, 1);
    // By value: push(add) below may reallocate p_.nodes, and out_shape is
    // read again (cur_) after that push.
    const Shape out_shape = p_.nodes[static_cast<std::size_t>(t2)].out;
    QNN_CHECK(out_shape == short_shape,
              "residual skip/main shape mismatch: " + out_shape.str() +
                  " vs " + short_shape.str());

    Node add;
    add.kind = NodeKind::Add;
    add.main_from = t2;
    add.skip_from = shortcut_idx;
    add.in = out_shape;
    add.out = out_shape;
    add.in_bits = p_.nodes[static_cast<std::size_t>(t2)].out_bits;
    add.out_bits = std::max(add.in_bits, short_bits) + 1;
    prev_ = push(add);
    cur_ = out_shape;
    cur_bits_ = p_.nodes.back().out_bits;
    carry_is_preact_ = true;
  }

  const NetworkSpec& spec_;
  Pipeline p_;
  Shape cur_{};
  int cur_bits_ = 8;
  int prev_ = -1;
  bool carry_is_preact_ = false;
  int conv_params_ = 0;
  int bnact_params_ = 0;
};

}  // namespace

Pipeline expand(const NetworkSpec& spec) { return Expander(spec).run(); }

}  // namespace qnn
