// Network serialization: the host-side parameter store of §III-B.
//
// "All the pre-trained weights and normalization parameters are stored on
// the CPU side ... loaded into their dedicated caches only once, before
// inference of images starts." This module persists a NetworkSpec together
// with its NetworkParams (packed sign weights + float BatchNorm parameters
// + quantizer) in a versioned little-endian binary container, and rebuilds
// the folded integer thresholds on load so the stored form stays minimal
// and the fold logic has a single source of truth.
//
// Format (QNNM, version 1):
//   magic "QNNM" | u32 version
//   spec:   name | input shape | input_bits | act_bits | blocks
//   params: conv banks (filter shape + packed words)
//           bnact banks (channels, quantizer bits + range, per-channel
//                        gamma/mu/inv_sigma/beta)
#pragma once

#include <string>

#include "nn/params.h"
#include "nn/pipeline.h"

namespace qnn {

struct LoadedNetwork {
  NetworkSpec spec;
  Pipeline pipeline;   // expand(spec), validated
  NetworkParams params;  // thresholds already folded
};

/// Persist a network description and its parameters.
void save_network(const std::string& path, const NetworkSpec& spec,
                  const NetworkParams& params);

/// Load, validate and refold. Throws qnn::Error on malformed input.
[[nodiscard]] LoadedNetwork load_network(const std::string& path);

}  // namespace qnn
