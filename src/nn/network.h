// High-level network description: the user-facing builder API.
//
// Mirrors the paper's observation that "since each layer is represented in
// the DFE Manager by a single function call, the building of the network is
// similar to the process of building in high level frameworks" (§III-B):
// a NetworkSpec is a sequence of block declarations which expand() lowers
// into the primitive streaming pipeline (see pipeline.h).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "core/shape.h"

namespace qnn {

/// Convolution block; if `bn_act` is set, a folded BatchNorm + n-bit
/// activation follows the convolution (the common case).
struct ConvBlockSpec {
  int out_c = 0;
  int k = 3;
  int stride = 1;
  int pad = 0;
  bool bn_act = true;
};

enum class PoolKind { Max, Avg };

struct PoolBlockSpec {
  PoolKind kind = PoolKind::Max;
  int k = 2;
  int stride = 2;
  int pad = 0;
  bool global = false;  // pool the whole remaining spatial extent
};

/// One ResNet basic block: two 3x3 convolutions plus a skip connection
/// carried as 16-bit non-quantized accumulator values (§III-B5). A stride
/// of 2 downsamples; the skip path then uses a 1x1 strided projection
/// convolution (standard ResNet option B; the paper does not detail its
/// downsampling shortcut, see DESIGN.md).
struct ResidualBlockSpec {
  int out_c = 0;
  int stride = 1;
};

/// Fully connected layer, lowered to a convolution whose kernel covers the
/// entire remaining spatial extent (the all-convolutional trick of §III-B4).
struct DenseBlockSpec {
  int units = 0;
  bool bn_act = true;
};

using BlockSpec =
    std::variant<ConvBlockSpec, PoolBlockSpec, ResidualBlockSpec,
                 DenseBlockSpec>;

/// Whole-network specification. Build with the fluent helpers, then lower
/// with expand() (pipeline.h) to obtain shapes, parameters, and kernels.
struct NetworkSpec {
  std::string name = "net";
  Shape input{};       // H x W x C image
  int input_bits = 8;  // image pixels are 8-bit unsigned
  int act_bits = 2;    // activation code width (the paper's choice: 2)
  std::vector<BlockSpec> blocks;

  NetworkSpec& conv(int out_c, int k, int stride = 1, int pad = 0,
                    bool bn_act = true) {
    blocks.push_back(ConvBlockSpec{out_c, k, stride, pad, bn_act});
    return *this;
  }
  NetworkSpec& max_pool(int k, int stride, int pad = 0) {
    blocks.push_back(PoolBlockSpec{PoolKind::Max, k, stride, pad, false});
    return *this;
  }
  NetworkSpec& avg_pool_global() {
    blocks.push_back(PoolBlockSpec{PoolKind::Avg, 0, 1, 0, true});
    return *this;
  }
  NetworkSpec& residual(int out_c, int stride = 1) {
    blocks.push_back(ResidualBlockSpec{out_c, stride});
    return *this;
  }
  NetworkSpec& dense(int units, bool bn_act = true) {
    blocks.push_back(DenseBlockSpec{units, bn_act});
    return *this;
  }
};

}  // namespace qnn
