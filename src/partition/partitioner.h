// Multi-DFE partitioning (§III-B6).
//
// The kernel chain is cut into contiguous segments, one per DFE, connected
// in the daisy-chain (MaxRing) order of the Maxeler MPC-X node. A cut is
// legal anywhere: activation streams and 16-bit skip streams alike cross
// the link, serialized value by value (the paper's link arithmetic: one
// 2-bit value per 105 MHz clock needs 210 Mbps, far below the multi-Gbps
// MaxRing), so splitting costs almost nothing as long as every crossing
// stream's aggregate rate stays below link capacity.
//
// Two planners are provided:
//  * partition()          — greedy first-fit in chain order
//  * partition_optimal()  — DP over contiguous segments minimizing the DFE
//                           count, tie-broken by the peak utilization
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fpga/resource_model.h"
#include "sim/cycle_model.h"

namespace qnn {

struct PartitionConfig {
  FpgaDevice device = stratix_v_5sgsd8();
  ResourceCosts costs{};
  /// Maximum fraction of each resource class usable per DFE (place-and-
  /// route headroom).
  double fill = 0.85;
  /// DFEs available in the node (MPC-X: 8 MAX4 DFEs).
  int max_dfes = 8;
  /// DFE-to-DFE link rate ("can be set to rates of up to several Gbps").
  double link_gbps = 4.0;
  /// Fabric clock used to convert cycles to seconds.
  double clock_hz = 105e6;
  /// Link word width (bits per link clock) used to price MaxRing framing;
  /// matches SimConfig::link_bits_per_cycle (4 Gbps / 105 MHz ~ 38).
  int link_bits_per_cycle = 38;
  /// Planned per-edge bursts carried across cuts (the session layer fills
  /// this from the plan/ FIFO plan, PlannedStream::burst). A crossing
  /// stream with a planned burst is priced as framed transfers — each
  /// frame rounded up to whole link words — matching the sim/ MaxRing
  /// serializer; without one the raw payload rate is used (legacy).
  std::vector<SimConfig::EdgeBurst> link_bursts;
  /// Per-link health derating in [0, 1], indexed by MaxRing link ordinal
  /// (link k connects DFE k to k+1). Missing entries mean 1.0 (healthy);
  /// 0 marks a dead link, making any cut over it infeasible. Populated
  /// from a FaultPlan by apply_link_faults (fault/apply.h).
  std::vector<double> link_health;

  /// Effective capacity of link `link` after health derating.
  [[nodiscard]] double link_capacity_mbps(std::size_t link) const {
    const double health =
        link < link_health.size()
            ? std::clamp(link_health[link], 0.0, 1.0)
            : 1.0;
    return link_gbps * 1000.0 * health;
  }
};

/// One crossing stream at a cut.
struct CrossingStream {
  std::string name;
  std::int64_t values_per_image = 0;
  int bits = 0;
  /// Planned burst (values per MaxRing frame) carried across the cut from
  /// the plan/ FIFO plan; 0 = no plan (priced as raw payload).
  std::size_t burst = 0;

  /// Raw payload rate, ignoring link framing.
  [[nodiscard]] double mbps(double images_per_second) const {
    return static_cast<double>(values_per_image) * bits *
           images_per_second / 1e6;
  }

  /// Wire rate including MaxRing framing: values ship in frames of
  /// `burst` values, each frame rounded up to whole `link_bits_per_cycle`
  /// words (the sim/ serializer's cost). With no planned burst this
  /// degenerates to the raw payload rate — the legacy pricing.
  [[nodiscard]] double wire_mbps(double images_per_second,
                                 int link_bits_per_cycle) const {
    if (burst == 0 || link_bits_per_cycle <= 0 || values_per_image <= 0) {
      return mbps(images_per_second);
    }
    const auto b = static_cast<std::int64_t>(burst);
    const std::int64_t w = link_bits_per_cycle;
    const std::int64_t full_frames = values_per_image / b;
    const std::int64_t rem_values = values_per_image % b;
    auto frame_bits = [&](std::int64_t values) {
      return (values * bits + w - 1) / w * w;  // ceil to whole link words
    };
    const std::int64_t wire_bits =
        full_frames * frame_bits(b) +
        (rem_values > 0 ? frame_bits(rem_values) : 0);
    return static_cast<double>(wire_bits) * images_per_second / 1e6;
  }
};

/// The link between DFE k and DFE k+1.
struct CutInfo {
  int after_node = -1;  // cut lies between after_node and after_node + 1
  std::vector<CrossingStream> streams;
  double required_mbps = 0.0;
  bool feasible = true;
};

struct DfeAssignment {
  int first_node = 0;
  int last_node = 0;  // inclusive
  double luts = 0.0;
  double ffs = 0.0;
  int bram_blocks = 0;
  double utilization = 0.0;  // binding resource fraction of the device
};

struct PartitionResult {
  std::vector<DfeAssignment> dfes;
  std::vector<CutInfo> cuts;  // size = dfes.size() - 1
  double images_per_second = 0.0;
  /// Slowdown from link serialization: 1.0 when every cut is feasible,
  /// otherwise the worst required/capacity ratio.
  double link_slowdown = 1.0;

  [[nodiscard]] int num_dfes() const {
    return static_cast<int>(dfes.size());
  }
  [[nodiscard]] bool feasible() const {
    for (const auto& c : cuts) {
      if (!c.feasible) return false;
    }
    return true;
  }
  [[nodiscard]] double max_utilization() const;
};

/// Streams crossing a cut placed after `after_node`, with per-image
/// volume. When `bursts` is supplied, each stream is annotated with its
/// planned per-edge burst (CrossingStream::burst) so link pricing can use
/// the framed wire rate.
[[nodiscard]] std::vector<CrossingStream> crossing_streams(
    const Pipeline& pipeline, int after_node,
    const std::vector<SimConfig::EdgeBurst>* bursts = nullptr);

/// Greedy first-fit chain partition.
[[nodiscard]] PartitionResult partition(const Pipeline& pipeline,
                                        const PartitionConfig& config = {});

/// Optimal chain partition: fewest DFEs, then lowest peak utilization.
[[nodiscard]] PartitionResult partition_optimal(
    const Pipeline& pipeline, const PartitionConfig& config = {});

}  // namespace qnn
