#include "partition/partitioner.h"

#include <algorithm>
#include <limits>

namespace qnn {
namespace {

struct SegmentSums {
  std::vector<double> luts;   // prefix sums, size n+1
  std::vector<double> ffs;
  std::vector<std::int64_t> bram;
};

SegmentSums prefix_sums(const NetworkResources& res) {
  SegmentSums s;
  const std::size_t n = res.nodes.size();
  s.luts.assign(n + 1, 0.0);
  s.ffs.assign(n + 1, 0.0);
  s.bram.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    s.luts[i + 1] = s.luts[i] + res.nodes[i].luts;
    s.ffs[i + 1] = s.ffs[i] + res.nodes[i].ffs;
    s.bram[i + 1] = s.bram[i] + res.nodes[i].bram_blocks;
  }
  return s;
}

/// Binding-resource utilization of nodes [i, j] on one device.
double segment_utilization(const SegmentSums& s, int i, int j,
                           const FpgaDevice& dev) {
  const double lut = (s.luts[static_cast<std::size_t>(j + 1)] -
                      s.luts[static_cast<std::size_t>(i)]) /
                     static_cast<double>(dev.luts);
  const double ff = (s.ffs[static_cast<std::size_t>(j + 1)] -
                     s.ffs[static_cast<std::size_t>(i)]) /
                    static_cast<double>(dev.ffs);
  const double bram =
      static_cast<double>(s.bram[static_cast<std::size_t>(j + 1)] -
                          s.bram[static_cast<std::size_t>(i)]) /
      static_cast<double>(dev.bram_blocks);
  return std::max({lut, ff, bram});
}

SimConfig sim_config_for(const PartitionConfig& cfg) {
  SimConfig sc;
  sc.datapath_bits = cfg.costs.datapath_bits;
  sc.weight_cache_capacity_bits = cfg.costs.weight_cache_capacity_bits;
  sc.clock_hz = cfg.clock_hz;
  return sc;
}

PartitionResult assemble(const Pipeline& pipeline,
                         const PartitionConfig& cfg, const SegmentSums& sums,
                         const std::vector<std::pair<int, int>>& segments) {
  PartitionResult result;
  const double fps =
      cfg.clock_hz /
      static_cast<double>(
          analytic_bottleneck_cycles(pipeline, sim_config_for(cfg)));
  result.images_per_second = fps;

  for (const auto& [first, last] : segments) {
    DfeAssignment a;
    a.first_node = first;
    a.last_node = last;
    a.luts = sums.luts[static_cast<std::size_t>(last + 1)] -
             sums.luts[static_cast<std::size_t>(first)];
    a.ffs = sums.ffs[static_cast<std::size_t>(last + 1)] -
            sums.ffs[static_cast<std::size_t>(first)];
    a.bram_blocks =
        static_cast<int>(sums.bram[static_cast<std::size_t>(last + 1)] -
                         sums.bram[static_cast<std::size_t>(first)]);
    a.utilization = segment_utilization(sums, first, last, cfg.device);
    result.dfes.push_back(a);
  }

  for (std::size_t k = 0; k + 1 < segments.size(); ++k) {
    // Per-link capacity: health derating (injected faults, degraded
    // links) can shrink — or zero — individual MaxRing hops.
    const double capacity_mbps = cfg.link_capacity_mbps(k);
    CutInfo cut;
    cut.after_node = segments[k].second;
    cut.streams =
        crossing_streams(pipeline, cut.after_node, &cfg.link_bursts);
    for (const auto& s : cut.streams) {
      cut.required_mbps += s.wire_mbps(fps, cfg.link_bits_per_cycle);
    }
    if (capacity_mbps <= 0.0) {
      cut.feasible = false;
      result.link_slowdown = std::numeric_limits<double>::infinity();
    } else {
      cut.feasible = cut.required_mbps <= capacity_mbps;
      result.link_slowdown =
          std::max(result.link_slowdown, cut.required_mbps / capacity_mbps);
    }
    result.cuts.push_back(std::move(cut));
  }
  result.link_slowdown = std::max(result.link_slowdown, 1.0);
  return result;
}

}  // namespace

double PartitionResult::max_utilization() const {
  double best = 0.0;
  for (const auto& d : dfes) best = std::max(best, d.utilization);
  return best;
}

std::vector<CrossingStream> crossing_streams(
    const Pipeline& pipeline, int after_node,
    const std::vector<SimConfig::EdgeBurst>* bursts) {
  QNN_CHECK(after_node >= 0 && after_node + 1 < pipeline.size(),
            "cut position out of range");
  std::vector<CrossingStream> out;
  for (int j = after_node + 1; j < pipeline.size(); ++j) {
    const Node& n = pipeline.node(j);
    bool skip_port = false;  // main_from first, then skip_from
    for (int src : {n.main_from, n.skip_from}) {
      const bool to_skip = skip_port;
      skip_port = true;
      if (src < 0 || src > after_node) continue;
      const Node& producer = pipeline.node(src);
      CrossingStream s{producer.name + "->" + n.name, producer.out.elems(),
                       producer.out_bits};
      if (bursts != nullptr) {
        for (const SimConfig::EdgeBurst& e : *bursts) {
          if (e.consumer == j && e.to_skip_port == to_skip) {
            s.burst = e.values;
            break;
          }
        }
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

PartitionResult partition(const Pipeline& pipeline,
                          const PartitionConfig& config) {
  pipeline.validate();
  const NetworkResources res = estimate_resources(pipeline, config.costs);
  const SegmentSums sums = prefix_sums(res);

  std::vector<std::pair<int, int>> segments;
  int first = 0;
  for (int j = 0; j < pipeline.size(); ++j) {
    if (segment_utilization(sums, first, j, config.device) > config.fill) {
      QNN_CHECK(j > first, "kernel " + pipeline.node(j).name +
                               " alone exceeds one device");
      segments.emplace_back(first, j - 1);
      first = j;
    }
  }
  segments.emplace_back(first, pipeline.size() - 1);
  QNN_CHECK(static_cast<int>(segments.size()) <= config.max_dfes,
            "network needs more DFEs than the node provides");
  return assemble(pipeline, config, sums, segments);
}

PartitionResult partition_optimal(const Pipeline& pipeline,
                                  const PartitionConfig& config) {
  pipeline.validate();
  const NetworkResources res = estimate_resources(pipeline, config.costs);
  const SegmentSums sums = prefix_sums(res);
  const int n = pipeline.size();

  struct Best {
    int dfes = std::numeric_limits<int>::max();
    double peak = std::numeric_limits<double>::infinity();
    int cut = -1;  // first node of the final segment
  };
  // best[j]: optimal plan for nodes [0, j-1]. Seeded through a
  // null-checked data pointer: gcc 12's -Wnull-dereference misreads
  // operator[] on the fresh vector as a possibly-null access.
  std::vector<Best> best(static_cast<std::size_t>(n) + 1);
  Best* const seed = best.data();
  QNN_CHECK(seed != nullptr, "partition DP table allocation failed");
  seed[0] = Best{0, 0.0, -1};
  for (int j = 1; j <= n; ++j) {
    for (int i = j - 1; i >= 0; --i) {
      const double util = segment_utilization(sums, i, j - 1, config.device);
      if (util > config.fill) break;  // longer segments only grow
      const Best& prev = best[static_cast<std::size_t>(i)];
      if (prev.dfes == std::numeric_limits<int>::max()) continue;
      const int dfes = prev.dfes + 1;
      const double peak = std::max(prev.peak, util);
      Best& cur = best[static_cast<std::size_t>(j)];
      if (dfes < cur.dfes || (dfes == cur.dfes && peak < cur.peak)) {
        cur = Best{dfes, peak, i};
      }
    }
  }
  const Best& final = best[static_cast<std::size_t>(n)];
  QNN_CHECK(final.dfes != std::numeric_limits<int>::max(),
            "no feasible partition: some kernel exceeds one device");
  QNN_CHECK(final.dfes <= config.max_dfes,
            "network needs more DFEs than the node provides");

  std::vector<std::pair<int, int>> segments;
  int j = n;
  while (j > 0) {
    const int i = best[static_cast<std::size_t>(j)].cut;
    segments.emplace_back(i, j - 1);
    j = i;
  }
  std::reverse(segments.begin(), segments.end());
  return assemble(pipeline, config, sums, segments);
}

}  // namespace qnn
