// Deterministic concurrency model checker (loom/relacy-style) for the
// lock-free stream/scheduler protocols.
//
// The protocol templates (dataflow/ring_core.h, dataflow/ready_protocol.h)
// perform every atomic operation through the Sync seam (dataflow/sync.h).
// This header provides the checker side of that seam: ModelSync routes
// each load, store, RMW and fence into a Model, which runs the protocol
// code on *virtual threads* (ucontext fibers, all on one OS thread) and
// explores the interleavings by depth-first search with replay.
//
// Memory model. Sequential consistency alone would miss the bugs the
// protocol's fences exist to prevent, so the Model implements a
// release/acquire machine with vector clocks:
//
//   * every atomic location keeps its full store history; a store is
//     stamped with the writer's clock and, when releasing, snapshots the
//     writer's whole vector clock;
//   * a load may return ANY store that is (a) not older than a store the
//     thread has already read from that location (coherence) and (b) not
//     older than a store the thread is causally aware of (its clock
//     covers the store's stamp). Reading a stale-but-admissible store is
//     a nondeterministic choice the explorer branches on;
//   * an acquire load of a release store joins the reader's clock with
//     the store's snapshot (happens-before edge);
//   * RMWs (CAS, fetch_add) always read the newest store — C++ atomicity;
//   * seq_cst fences join bidirectionally with a global SC clock. Fences
//     are totally ordered by execution, so two Dekker-paired fences
//     guarantee that at least one side observes the other's prior stores
//     — exactly the property wake()/drive() rely on.
//
// Approximations, stated: modification order equals execution order
// (standard in dynamic checkers), compare_exchange_weak never fails
// spuriously, and non-atomic payload memory is not race-checked (all
// fibers share one address space; TSan covers payload publication). The
// checker verifies the *index/wake protocol*, which is where lost-wakeup
// and deadlock bugs live.
//
// Exploration. Each scheduling point picks one runnable fiber; each load
// with several admissible stores forks on the value. The search is
// reduced by (a) sleep sets — a thread explored at a state is not
// re-explored from sibling branches until a dependent operation wakes it
// (DPOR-style, sound w.r.t. Mazurkiewicz-trace equivalence) — and
// bounded by (b) a preemption budget (CHESS-style: voluntary switches at
// blocking points are free, involuntary preemptions are counted) plus an
// execution/step budget. Results therefore read "exhaustive within the
// stated preemption bound", which is the bound the mc tests pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <ucontext.h>

namespace qnn::mc {

inline constexpr int kMaxThreads = 8;

/// Fixed-width vector clock over virtual threads.
struct VClock {
  std::uint32_t c[kMaxThreads] = {};

  void join(const VClock& o) {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
  [[nodiscard]] bool covers(int thread, std::uint32_t stamp) const {
    return c[thread] >= stamp;
  }
};

enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kCas,
  kFetchAdd,
  kFence,
  kQueuePush,
  kQueuePop,
};

[[nodiscard]] const char* op_name(OpKind k);

/// How one execution of the scenario ended.
enum class RunOutcome : std::uint8_t {
  kFinished,    // every fiber returned
  kDeadlock,    // no fiber runnable, at least one blocked — lost wakeup
  kFailed,      // the harness flagged a property violation mid-run
  kStepBudget,  // per-execution step cap hit (livelock suspect)
  kPruned,      // redundant interleaving cut by the sleep set
};

class Model {
 public:
  Model();
  ~Model();

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// The model an execution is running under; ModelSync's atomics resolve
  /// through this. Only one Model is ever active (single OS thread).
  [[nodiscard]] static Model* current();

  // ---- per-execution setup (called by the harness each execution) -------

  /// Register an atomic location with its initial value. The initial
  /// store is visible to every fiber.
  int new_location(std::uint64_t initial);
  /// Attach a debug name used in violation traces ("pipe0.head", ...).
  void name_location(int loc, std::string name);
  [[nodiscard]] int location_count() const;

  /// A mutex+condvar style task queue: push/pop are single visible ops
  /// with lock semantics (each op joins and updates the queue's clock),
  /// and a pop on an empty queue blocks the fiber until a push arrives —
  /// an *ideal* parking lot. The production parking lot is timed (its
  /// timeouts mask lost notifies by design), so the checker excludes the
  /// backstop: any quiescent state with work remaining is a genuine
  /// protocol bug, not a scheduling accident.
  int create_queue(std::string name);
  /// Seed a queue before fibers start (no visible op, no clock effect).
  void queue_seed(int queue, std::int64_t v);

  /// Register a fiber. Bodies run when explore_one() is called.
  void add_thread(std::function<void()> body);

  /// Flag a harness-level property violation; the execution stops at the
  /// next scheduling point and is reported with its trace.
  void fail(std::string what);

  // ---- operations (called through ModelSync from protocol code) ---------

  std::uint64_t op_load(int loc, bool acquire);
  void op_store(int loc, std::uint64_t v, bool release);
  bool op_cas(int loc, std::uint64_t& expected, std::uint64_t desired);
  std::uint64_t op_fetch_add(int loc, std::uint64_t delta);
  void op_fence_seq_cst();
  void op_queue_push(int queue, std::int64_t v);
  [[nodiscard]] std::int64_t op_queue_pop(int queue);

  // ---- exploration ------------------------------------------------------

  struct Budget {
    int preemption_bound = 3;          // involuntary switches per execution
    std::uint64_t max_executions = 200000;
    std::uint64_t max_steps = 20000;   // visible ops per execution
    std::uint64_t max_millis = 0;      // 0 = no wall-clock cap
    bool sleep_sets = true;            // DPOR-style sibling pruning
    bool stop_on_first = true;         // stop exploring after a violation
  };

  struct Stats {
    std::uint64_t executions = 0;  // complete interleavings run
    std::uint64_t pruned = 0;      // cut by the sleep set
    std::uint64_t transitions = 0; // visible ops executed, total
    std::uint64_t max_depth = 0;   // deepest decision stack
    bool budget_exhausted = false; // executions/wall-clock cap hit
    bool complete = false;         // decision tree fully explored
  };

  struct Violation {
    std::string what;   // property + detail, first line is the headline
    std::string trace;  // one executed op per line
  };

  /// Explore the scenario: `setup` is invoked once per execution on a
  /// fresh model state and must register locations/queues/fibers;
  /// `verdict` is invoked after each complete execution to check final-
  /// state properties (return a non-empty string to flag a violation).
  struct Result {
    Stats stats;
    std::vector<Violation> violations;
    [[nodiscard]] bool ok() const { return violations.empty(); }
  };
  Result explore(const Budget& budget, const std::function<void()>& setup,
                 const std::function<std::string()>& verdict);

  /// Deterministic single execution (first-choice schedule); used by the
  /// harness smoke paths and the CLI's --trace mode.
  RunOutcome run_once(const std::function<void()>& setup, std::string* trace);

 private:
  struct Store {
    std::uint64_t value = 0;
    int writer = -1;          // -1: initial store, covered by everyone
    std::uint32_t stamp = 0;  // writer's clock at the store
    bool release = false;
    VClock clock;             // writer snapshot (meaningful when release)
  };
  struct Location {
    std::string name;
    std::vector<Store> history;
    bool is_queue = false;
    VClock queue_clock;            // lock-style clock for queues
    std::deque<std::int64_t> q;   // queue payload
  };
  struct PendingOp {
    OpKind kind = OpKind::kLoad;
    int loc = -1;
    std::uint64_t arg0 = 0;  // store value / CAS desired / fetch_add delta
    std::uint64_t arg1 = 0;  // CAS expected
    bool ordered = false;    // acquire (loads) / release (stores)
    // results, filled by the scheduler before the fiber resumes:
    std::uint64_t result = 0;
    bool flag = false;       // CAS success
  };
  enum class FiberState : std::uint8_t {
    kRunnable,
    kBlocked,   // parked on an empty queue
    kFinished,
  };
  struct Fiber {
    ucontext_t ctx = {};      // portable fallback context
    void* sp = nullptr;       // fast-path saved stack pointer (x86-64)
    std::unique_ptr<char[]> stack;
    FiberState state = FiberState::kRunnable;
    PendingOp op;
    VClock clock;
    std::vector<std::uint32_t> coherence;  // per location: min readable idx
    int blocked_on = -1;                   // queue id when kBlocked
    std::function<void()> body;
  };
  struct Decision {
    bool schedule = false;  // schedule node vs load-value node
    int chosen = 0;
    int num = 0;
    int chosen_thread = -1;   // schedule nodes: fiber picked at `chosen`
    std::uint32_t explored = 0;  // schedule nodes: fiber mask already done
  };
  struct TraceOp {
    std::int8_t tid;
    OpKind kind;
    std::int16_t loc;
    std::uint64_t value;
    std::uint64_t result;
    bool flag;
  };

  static void trampoline();

  void reset_execution();
  RunOutcome run_execution();
  void schedule_loop();
  int pick_fiber();
  void execute_pending(int tid);
  int choose(bool schedule_node, int num, int chosen_thread_hint);
  [[nodiscard]] bool backtrack();
  [[nodiscard]] bool dependent(const PendingOp& a, const PendingOp& b) const;
  void yield_op(const PendingOp& op);  // fiber side: publish op + swap out
  void record(int tid, const PendingOp& op);
  [[nodiscard]] std::string format_trace() const;
  [[nodiscard]] std::uint32_t min_readable(const Fiber& f, int loc) const;

  // execution state (reset per execution)
  std::vector<Location> locs_;
  std::vector<Fiber> fibers_;
  VClock sc_clock_;
  int running_ = -1;       // fiber currently holding the CPU (-1: scheduler)
  int last_ran_ = -1;      // previous scheduled fiber (preemption counting)
  int preemptions_ = 0;
  std::uint32_t cur_sleep_ = 0;  // sleep-set fiber mask along this path
  std::uint64_t steps_ = 0;
  std::string failure_;
  std::vector<TraceOp> trace_;
  ucontext_t sched_ctx_ = {};  // portable fallback
  void* sched_sp_ = nullptr;   // fast-path saved stack pointer (x86-64)

  // exploration state (persists across executions of one explore())
  std::vector<Decision> stack_;
  std::size_t depth_ = 0;
  Budget budget_;
  bool deterministic_ = false;  // run_once: always take the first choice

  static Model* current_;
};

/// The checker-side Sync policy (see dataflow/sync.h for the contract).
/// Values are encoded through uint64_t; T must be integral, bool or enum.
struct ModelSync {
  template <class T>
  class Atomic {
   public:
    Atomic() : loc_(Model::current()->new_location(0)) {}
    explicit Atomic(T v)
        : loc_(Model::current()->new_location(encode(v))) {}

    [[nodiscard]] T load(std::memory_order order) const {
      return decode(Model::current()->op_load(loc_, wants_acquire(order)));
    }
    void store(T v, std::memory_order order) {
      Model::current()->op_store(loc_, encode(v), wants_release(order));
    }
    bool compare_exchange_strong(T& expected, T desired, std::memory_order) {
      std::uint64_t e = encode(expected);
      const bool ok = Model::current()->op_cas(loc_, e, encode(desired));
      if (!ok) expected = decode(e);
      return ok;
    }
    bool compare_exchange_weak(T& expected, T desired,
                               std::memory_order order) {
      // The model never fails spuriously (strong ⊂ weak behaviours).
      return compare_exchange_strong(expected, desired, order);
    }
    T fetch_add(T delta, std::memory_order) {
      return decode(Model::current()->op_fetch_add(loc_, encode(delta)));
    }

    [[nodiscard]] int loc() const { return loc_; }

   private:
    static std::uint64_t encode(T v) { return static_cast<std::uint64_t>(v); }
    static T decode(std::uint64_t v) { return static_cast<T>(v); }
    static bool wants_acquire(std::memory_order o) {
      return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
             o == std::memory_order_seq_cst;
    }
    static bool wants_release(std::memory_order o) {
      return o == std::memory_order_release || o == std::memory_order_acq_rel ||
             o == std::memory_order_seq_cst;
    }

    int loc_;
  };

  static void fence_seq_cst() { Model::current()->op_fence_seq_cst(); }
  static void cpu_relax() {}
};

}  // namespace qnn::mc
