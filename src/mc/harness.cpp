#include "mc/harness.h"

#include <memory>
#include <sstream>
#include <vector>

#include "dataflow/ring_core.h"

namespace qnn::mc {
namespace {

/// Per-execution scenario state. Fibers capture it via shared_ptr; locals
/// on fiber stacks stay trivially destructible (an execution cut short by
/// a violation frees fiber stacks without unwinding them).
template <class Mutations>
struct State {
  struct Pipe {
    std::unique_ptr<RingCore<ModelSync>> ring;
    std::vector<int> buf;  // payload slots (plain memory; see model.h)
    int produced = 0;
    int consumed = 0;
    int next = 0;  // next value the consumer must observe
  };

  struct Hook final : public ReadyHook {
    State* st = nullptr;
    void wake(int task) override {
      st->proto.wake(task, [this](int t) {
        Model::current()->op_queue_push(st->queue, t);
      });
    }
  };

  explicit State(const Scenario& s)
      : scenario(s), proto(static_cast<std::size_t>(2 * s.pipes)) {}

  Scenario scenario;
  ReadyProtocol<ModelSync, Mutations> proto;
  std::vector<Pipe> pipes;
  std::vector<char> running;  // double-run detector (plain memory)
  int remaining = 0;
  int queue = -1;
  Hook hook;

  // Task t in [0, pipes) produces into pipe t; task pipes + p consumes
  // from pipe p — the same topological producer/consumer split the
  // engine's task list has.
  ProtoStep step_task(int t) {
    Model& m = *Model::current();
    if (running[static_cast<std::size_t>(t)] != 0) {
      m.fail("double-run: task " + std::to_string(t) +
             " stepped by two workers at once");
      return ProtoStep::kDone;
    }
    running[static_cast<std::size_t>(t)] = 1;
    const ProtoStep r = do_step(m, t);
    running[static_cast<std::size_t>(t)] = 0;
    return r;
  }

  ProtoStep do_step(Model& m, int t) {
    const int n = scenario.pipes;
    if (t < n) {  // producer
      Pipe& p = pipes[static_cast<std::size_t>(t)];
      const RingWindow w = p.ring->push_window(1);
      if (w.count == 0) return ProtoStep::kBlocked;
      p.buf[w.start & p.ring->mask()] = p.produced;
      p.ring->commit_push(w, 1);
      if (++p.produced == scenario.values) {
        p.ring->close();
        return ProtoStep::kDone;
      }
      return ProtoStep::kProgress;
    }
    // consumer
    Pipe& p = pipes[static_cast<std::size_t>(t - n)];
    const RingWindow w = p.ring->pop_window(1);
    if (w.count == 0) {
      return p.ring->drained() ? ProtoStep::kDone : ProtoStep::kBlocked;
    }
    const int v = p.buf[w.start & p.ring->mask()];
    if (v != p.next) {
      m.fail("value integrity: pipe " + std::to_string(t - n) + " popped " +
             std::to_string(v) + ", expected " + std::to_string(p.next));
      return ProtoStep::kDone;
    }
    ++p.next;
    ++p.consumed;
    p.ring->commit_pop(w, 1);
    return ProtoStep::kProgress;
  }

  void worker() {
    Model& m = *Model::current();
    for (;;) {
      const std::int64_t v = m.op_queue_pop(queue);
      if (v < 0) return;  // stop sentinel
      const int t = static_cast<int>(v);
      if (!proto.claim(t)) continue;
      const DriveResult r = proto.drive(t, [this, t] { return step_task(t); });
      if (r == DriveResult::kCompleted && --remaining == 0) {
        for (int w = 0; w < scenario.workers; ++w) {
          m.op_queue_push(queue, -1);
        }
      }
    }
  }
};

template <class Mutations>
Model::Result run(const Scenario& s) {
  using St = State<Mutations>;
  // The verdict closure outlives each execution's state; the slot always
  // points at the current execution's.
  auto slot = std::make_shared<std::shared_ptr<St>>();

  auto setup = [slot, s]() {
    Model& m = *Model::current();
    auto st = std::make_shared<St>(s);
    *slot = st;

    // ReadyProtocol's slots are locations [0, 2*pipes); name them.
    for (int t = 0; t < 2 * s.pipes; ++t) {
      m.name_location(t, "task" + std::to_string(t) + ".state");
    }
    st->pipes.resize(static_cast<std::size_t>(s.pipes));
    for (int p = 0; p < s.pipes; ++p) {
      auto& pipe = st->pipes[static_cast<std::size_t>(p)];
      const int before = m.location_count();
      pipe.ring = std::make_unique<RingCore<ModelSync>>(
          static_cast<std::size_t>(s.capacity));
      m.name_location(before, "pipe" + std::to_string(p) + ".head");
      m.name_location(before + 1, "pipe" + std::to_string(p) + ".tail");
      m.name_location(before + 2, "pipe" + std::to_string(p) + ".closed");
      pipe.buf.assign(pipe.ring->ring_size(), -1);
      pipe.ring->bind_producer(&st->hook, p);
      pipe.ring->bind_consumer(&st->hook, s.pipes + p);
    }
    st->hook.st = st.get();
    st->running.assign(static_cast<std::size_t>(2 * s.pipes), 0);
    st->remaining = 2 * s.pipes;
    st->queue = m.create_queue("runq");
    // Initial population: every task starts kReady and queued, as the
    // production scheduler seeds its deques before workers start.
    for (int t = 0; t < 2 * s.pipes; ++t) m.queue_seed(st->queue, t);
    for (int w = 0; w < s.workers; ++w) {
      auto keep = st;  // fiber body owns the state
      m.add_thread([keep] { keep->worker(); });
    }
  };

  auto verdict = [slot]() -> std::string {
    const St& st = **slot;
    std::ostringstream os;
    if (st.remaining != 0) {
      os << st.remaining << " task(s) unfinished:";
      for (int t = 0; t < 2 * st.scenario.pipes; ++t) {
        if (st.proto.peek(t) != TaskState::kDone) {
          os << ' ' << (t < st.scenario.pipes ? "producer" : "consumer")
             << t << "=in-flight";
        }
      }
      return os.str();
    }
    for (int p = 0; p < st.scenario.pipes; ++p) {
      const auto& pipe = st.pipes[static_cast<std::size_t>(p)];
      if (pipe.produced != st.scenario.values ||
          pipe.consumed != st.scenario.values) {
        os << "value integrity: pipe " << p << " pushed " << pipe.produced
           << ", popped " << pipe.consumed << " of " << st.scenario.values;
        return os.str();
      }
    }
    return "";
  };

  Model model;
  return model.explore(s.budget, setup, verdict);
}

}  // namespace

Model::Result check_protocol(const Scenario& s) {
  return run<NoProtocolMutations>(s);
}

template <class Mutations>
Model::Result check_protocol_mutated(const Scenario& s) {
  return run<Mutations>(s);
}

template Model::Result check_protocol_mutated<NoProtocolMutations>(
    const Scenario&);
template Model::Result check_protocol_mutated<MutSkipWakeFence>(
    const Scenario&);
template Model::Result check_protocol_mutated<MutSkipRestep>(const Scenario&);
template Model::Result check_protocol_mutated<MutDropNotify>(const Scenario&);

std::string describe(const Scenario& s) {
  std::ostringstream os;
  os << s.pipes << " producer(s) x " << s.pipes << " consumer(s), "
     << s.workers << " workers, " << s.values << " values, capacity "
     << s.capacity << ", preemption bound " << s.budget.preemption_bound;
  return os.str();
}

void to_report(const Scenario& s, const Model::Result& result,
               Report& report) {
  for (const Model::Violation& v : result.violations) {
    const char* code = diag::kProtoDeadlock;
    if (v.what.find("double-run") != std::string::npos) {
      code = diag::kProtoDoubleRun;
    } else if (v.what.find("value integrity") != std::string::npos) {
      code = diag::kProtoLinearize;
    }
    report.error(code, -1, "mc", v.what + "\n" + v.trace);
  }
  if (result.stats.budget_exhausted) {
    report.warn(diag::kProtoBudget, -1, "mc",
                "exploration budget exhausted after " +
                    std::to_string(result.stats.executions) +
                    " interleavings (" + describe(s) +
                    "): verdict holds only for the explored prefix");
  }
  if (result.ok()) {
    std::ostringstream os;
    os << "explored " << result.stats.executions << " interleavings ("
       << result.stats.pruned << " pruned, "
       << (result.stats.complete ? "complete" : "bounded") << ", "
       << describe(s)
       << "): no lost wakeup, no deadlock, no double-run, streams "
          "linearizable";
    report.info(diag::kProtoExplored, -1, "mc", os.str());
  }
}

}  // namespace qnn::mc
