// Scenario harness: the scheduler/stream protocol under the model checker.
//
// The scenario is a miniature but faithful instance of the production
// execution stack, built from the SAME templates production runs:
//
//   * `pipes` producer->stream->consumer pairs, each stream a
//     RingCore<ModelSync> (the exact index/wake protocol Stream uses,
//     minus the payload/fault machinery);
//   * one ReadyProtocol<ModelSync, Mutations> holding a task per kernel —
//     the exact state machine ReadyQueueScheduler drives;
//   * `workers` virtual worker fibers sharing one ideal task queue
//     (pop-or-park with no lost notifies and no timeouts — see
//     Model::create_queue). Production's per-worker deques, stealing and
//     timed parking are performance structure on top of the same
//     protocol; the timed park in particular would *mask* lost wakeups,
//     which is exactly what the checker must not do.
//
// Checked properties, reported as QNN-D6xx through verify/Report:
//   D601  no deadlock / lost wakeup: a quiescent state with unfinished
//         tasks (and no livelock past the step bound);
//   D602  no double-run: a task is never stepped by two workers at once;
//   D603  counter linearizability: every pushed value is popped exactly
//         once, in order, per stream;
//   D604  (warning) exploration budget exhausted before the tree was;
//   D605  (info) exploration statistics for the proof record.
//
// The Mutations parameter wires ready_protocol.h's broken variants into
// otherwise identical scenarios: each removed ingredient (wake fence,
// fenced re-step, mid-run notify) must be CAUGHT as a violation — the
// checker's own regression suite.
#pragma once

#include <string>

#include "dataflow/ready_protocol.h"
#include "mc/model.h"
#include "verify/report.h"

namespace qnn::mc {

/// Broken protocol variants (see NoProtocolMutations in ready_protocol.h).
struct MutSkipWakeFence {
  static constexpr bool kSkipWakeFence = true;
  static constexpr bool kSkipFencedRestep = false;
  static constexpr bool kDropNotify = false;
};
struct MutSkipRestep {
  static constexpr bool kSkipWakeFence = false;
  static constexpr bool kSkipFencedRestep = true;
  static constexpr bool kDropNotify = false;
};
struct MutDropNotify {
  static constexpr bool kSkipWakeFence = false;
  static constexpr bool kSkipFencedRestep = false;
  static constexpr bool kDropNotify = true;
};

struct Scenario {
  int pipes = 1;     // producer task + stream + consumer task per pipe
  int workers = 2;   // virtual worker fibers (tasks migrate between them)
  int values = 2;    // values pushed per stream
  int capacity = 1;  // ring capacity (1 forces full/empty blocking)
  Model::Budget budget;
};

/// Explore the scenario with the production protocol (no mutations).
[[nodiscard]] Model::Result check_protocol(const Scenario& s);

/// Explore the scenario with a broken protocol variant; a sound checker
/// must return at least one violation for each mutation.
template <class Mutations>
[[nodiscard]] Model::Result check_protocol_mutated(const Scenario& s);

extern template Model::Result check_protocol_mutated<NoProtocolMutations>(
    const Scenario&);
extern template Model::Result check_protocol_mutated<MutSkipWakeFence>(
    const Scenario&);
extern template Model::Result check_protocol_mutated<MutSkipRestep>(
    const Scenario&);
extern template Model::Result check_protocol_mutated<MutDropNotify>(
    const Scenario&);

/// Map an exploration result onto the analyzer report (QNN-D601..D605).
void to_report(const Scenario& s, const Model::Result& result, Report& report);

/// One-line scenario description for logs and reports.
[[nodiscard]] std::string describe(const Scenario& s);

}  // namespace qnn::mc
