#include "mc/model.h"

#include <chrono>
#include <cstring>
#include <sstream>

#include "core/error.h"

namespace qnn::mc {

Model* Model::current_ = nullptr;

Model* Model::current() {
  QNN_CHECK(current_ != nullptr, "no active mc::Model");
  return current_;
}

Model::Model() = default;
Model::~Model() {
  if (current_ == this) current_ = nullptr;
}

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kCas: return "cas";
    case OpKind::kFetchAdd: return "fetch_add";
    case OpKind::kFence: return "fence";
    case OpKind::kQueuePush: return "qpush";
    case OpKind::kQueuePop: return "qpop";
  }
  return "?";
}

// ---------------------------------------------------------------- fibers
//
// On x86-64 the context switch is a hand-rolled callee-saved-register
// swap (~20 ns) — the explorer performs two switches per visible op, and
// ucontext's swapcontext carries a sigprocmask syscall that would
// dominate the whole search. Elsewhere we fall back to ucontext.

#if defined(__x86_64__)
extern "C" void qnn_mc_switch(void** save_sp, void* load_sp);
// System V: rbp/rbx/r12-r15 are callee-saved; everything else is dead
// across the call. The fiber stack is seeded so the first switch "pops"
// six zeros and returns into the trampoline.
asm(R"(
.text
.globl qnn_mc_switch
.type qnn_mc_switch,@function
qnn_mc_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size qnn_mc_switch,.-qnn_mc_switch
)");
#endif

namespace {
constexpr std::size_t kStackSize = 256 * 1024;
}

void Model::trampoline() {
  Model* m = current_;
  const int tid = m->running_;
  m->fibers_[static_cast<std::size_t>(tid)].body();
  Fiber& f = m->fibers_[static_cast<std::size_t>(tid)];
  f.state = FiberState::kFinished;
  // Switch back to the scheduler; this fiber never resumes.
#if defined(__x86_64__)
  for (;;) qnn_mc_switch(&f.sp, m->sched_sp_);
#else
  for (;;) swapcontext(&f.ctx, &m->sched_ctx_);
#endif
}

void Model::add_thread(std::function<void()> body) {
  QNN_CHECK(fibers_.size() < static_cast<std::size_t>(kMaxThreads),
            "mc: too many virtual threads");
  Fiber f;
  f.body = std::move(body);
  // Default-init (NOT make_unique): zeroing 256 KiB per fiber per
  // execution would dominate the whole search.
  f.stack = std::unique_ptr<char[]>(new char[kStackSize]);
#if defined(__x86_64__)
  // Seed the stack: [ret -> trampoline] below an address ≡ 8 (mod 16) so
  // the trampoline starts with the post-call alignment the ABI expects,
  // then six zeroed callee-saved slots for the first restore.
  auto top = reinterpret_cast<std::uintptr_t>(f.stack.get()) + kStackSize;
  top &= ~std::uintptr_t{15};
  top -= 8;  // ≡ 8 (mod 16)
  auto* slots = reinterpret_cast<std::uint64_t*>(top) - 7;
  for (int i = 0; i < 6; ++i) slots[i] = 0;
  slots[6] = reinterpret_cast<std::uint64_t>(&Model::trampoline);
  f.sp = slots;
#else
  getcontext(&f.ctx);
  f.ctx.uc_stack.ss_sp = f.stack.get();
  f.ctx.uc_stack.ss_size = kStackSize;
  f.ctx.uc_link = &sched_ctx_;
  makecontext(&f.ctx, reinterpret_cast<void (*)()>(&Model::trampoline), 0);
#endif
  fibers_.push_back(std::move(f));
}

// ------------------------------------------------------------- locations

int Model::new_location(std::uint64_t initial) {
  Location loc;
  loc.name = "loc" + std::to_string(locs_.size());
  loc.history.push_back(Store{initial, -1, 0, true, VClock{}});
  locs_.push_back(std::move(loc));
  return static_cast<int>(locs_.size()) - 1;
}

void Model::name_location(int loc, std::string name) {
  locs_[static_cast<std::size_t>(loc)].name = std::move(name);
}

int Model::location_count() const { return static_cast<int>(locs_.size()); }

int Model::create_queue(std::string name) {
  const int id = new_location(0);
  Location& loc = locs_[static_cast<std::size_t>(id)];
  loc.is_queue = true;
  loc.name = std::move(name);
  return id;
}

void Model::queue_seed(int queue, std::int64_t v) {
  locs_[static_cast<std::size_t>(queue)].q.push_back(v);
}

void Model::fail(std::string what) {
  if (failure_.empty()) failure_ = std::move(what);
}

// ---------------------------------------------------- fiber-side op entry

void Model::yield_op(const PendingOp& op) {
  Fiber& f = fibers_[static_cast<std::size_t>(running_)];
  f.op = op;
#if defined(__x86_64__)
  qnn_mc_switch(&f.sp, sched_sp_);
#else
  swapcontext(&f.ctx, &sched_ctx_);
#endif
}

std::uint64_t Model::op_load(int loc, bool acquire) {
  if (running_ < 0) {
    // Scheduler-context read (setup or verdict closures): no fiber to
    // yield, no interleaving to explore — return the newest store.
    return locs_[static_cast<std::size_t>(loc)].history.back().value;
  }
  PendingOp op;
  op.kind = OpKind::kLoad;
  op.loc = loc;
  op.ordered = acquire;
  yield_op(op);
  return fibers_[static_cast<std::size_t>(running_)].op.result;
}

void Model::op_store(int loc, std::uint64_t v, bool release) {
  PendingOp op;
  op.kind = OpKind::kStore;
  op.loc = loc;
  op.arg0 = v;
  op.ordered = release;
  yield_op(op);
}

bool Model::op_cas(int loc, std::uint64_t& expected, std::uint64_t desired) {
  PendingOp op;
  op.kind = OpKind::kCas;
  op.loc = loc;
  op.arg0 = desired;
  op.arg1 = expected;
  yield_op(op);
  const PendingOp& done = fibers_[static_cast<std::size_t>(running_)].op;
  if (!done.flag) expected = done.result;
  return done.flag;
}

std::uint64_t Model::op_fetch_add(int loc, std::uint64_t delta) {
  PendingOp op;
  op.kind = OpKind::kFetchAdd;
  op.loc = loc;
  op.arg0 = delta;
  yield_op(op);
  return fibers_[static_cast<std::size_t>(running_)].op.result;
}

void Model::op_fence_seq_cst() {
  PendingOp op;
  op.kind = OpKind::kFence;
  yield_op(op);
}

void Model::op_queue_push(int queue, std::int64_t v) {
  PendingOp op;
  op.kind = OpKind::kQueuePush;
  op.loc = queue;
  op.arg0 = static_cast<std::uint64_t>(v);
  yield_op(op);
}

std::int64_t Model::op_queue_pop(int queue) {
  PendingOp op;
  op.kind = OpKind::kQueuePop;
  op.loc = queue;
  yield_op(op);
  return static_cast<std::int64_t>(
      fibers_[static_cast<std::size_t>(running_)].op.result);
}

// ------------------------------------------------- scheduler-side execute

std::uint32_t Model::min_readable(const Fiber& f, int loc) const {
  const Location& l = locs_[static_cast<std::size_t>(loc)];
  std::uint32_t lo = f.coherence.size() > static_cast<std::size_t>(loc)
                         ? f.coherence[static_cast<std::size_t>(loc)]
                         : 0;
  // Newest store the fiber is causally aware of: it may not read older.
  for (std::uint32_t i = static_cast<std::uint32_t>(l.history.size()); i > lo;
       --i) {
    const Store& s = l.history[i - 1];
    if (s.writer < 0 || f.clock.covers(s.writer, s.stamp)) {
      lo = i - 1;
      break;
    }
  }
  return lo;
}

void Model::execute_pending(int tid) {
  Fiber& f = fibers_[static_cast<std::size_t>(tid)];
  PendingOp& op = f.op;
  if (op.loc >= 0 && f.coherence.size() < locs_.size()) {
    f.coherence.resize(locs_.size(), 0);
  }
  Location* l =
      op.loc >= 0 ? &locs_[static_cast<std::size_t>(op.loc)] : nullptr;
  switch (op.kind) {
    case OpKind::kLoad: {
      const std::uint32_t lo = min_readable(f, op.loc);
      const std::uint32_t hi =
          static_cast<std::uint32_t>(l->history.size()) - 1;
      std::uint32_t pick = hi;
      if (hi > lo) {
        // Choice 0 reads the newest store, so the first execution is the
        // "intuitive" one and stale reads branch off it.
        const int idx = choose(false, static_cast<int>(hi - lo) + 1, -1);
        pick = hi - static_cast<std::uint32_t>(idx);
      }
      const Store& s = l->history[pick];
      if (f.coherence[static_cast<std::size_t>(op.loc)] < pick) {
        f.coherence[static_cast<std::size_t>(op.loc)] = pick;
      }
      if (op.ordered && s.release) f.clock.join(s.clock);
      op.result = s.value;
      break;
    }
    case OpKind::kStore: {
      f.clock.c[tid] += 1;
      Store s;
      s.value = op.arg0;
      s.writer = tid;
      s.stamp = f.clock.c[tid];
      s.release = op.ordered;
      s.clock = f.clock;
      l->history.push_back(s);
      f.coherence[static_cast<std::size_t>(op.loc)] =
          static_cast<std::uint32_t>(l->history.size()) - 1;
      break;
    }
    case OpKind::kCas:
    case OpKind::kFetchAdd: {
      // RMWs read the newest store (C++ atomicity) with acq_rel ordering
      // — the only ordering the protocol templates use on RMWs.
      const std::uint32_t last =
          static_cast<std::uint32_t>(l->history.size()) - 1;
      const Store& prev = l->history[last];
      f.coherence[static_cast<std::size_t>(op.loc)] = last;
      if (prev.release) f.clock.join(prev.clock);
      op.result = prev.value;
      const bool write =
          op.kind == OpKind::kFetchAdd || prev.value == op.arg1;
      op.flag = write && op.kind == OpKind::kCas;
      if (write) {
        f.clock.c[tid] += 1;
        Store s;
        s.value = op.kind == OpKind::kCas ? op.arg0 : prev.value + op.arg0;
        s.writer = tid;
        s.stamp = f.clock.c[tid];
        s.release = true;
        s.clock = f.clock;
        l->history.push_back(s);
        f.coherence[static_cast<std::size_t>(op.loc)] = last + 1;
      }
      break;
    }
    case OpKind::kFence: {
      f.clock.join(sc_clock_);
      sc_clock_.join(f.clock);
      break;
    }
    case OpKind::kQueuePush: {
      // Lock semantics: every queue op joins and updates the queue clock,
      // exactly the happens-before a mutex-protected deque provides.
      f.clock.c[tid] += 1;
      f.clock.join(l->queue_clock);
      l->queue_clock.join(f.clock);
      l->q.push_back(static_cast<std::int64_t>(op.arg0));
      for (Fiber& g : fibers_) {
        if (g.state == FiberState::kBlocked && g.blocked_on == op.loc) {
          g.state = FiberState::kRunnable;
          g.blocked_on = -1;
        }
      }
      break;
    }
    case OpKind::kQueuePop: {
      // pick_fiber() blocks empty-queue poppers eagerly, so the queue is
      // non-empty here.
      f.clock.c[tid] += 1;
      f.clock.join(l->queue_clock);
      l->queue_clock.join(f.clock);
      op.result = static_cast<std::uint64_t>(l->q.front());
      l->q.pop_front();
      break;
    }
  }
  record(tid, op);
}

// --------------------------------------------------------------- explore

bool Model::dependent(const PendingOp& a, const PendingOp& b) const {
  // Fences only touch (own clock, SC clock): they commute with everything
  // except other fences. Two loads commute; anything else on one location
  // conflicts.
  if (a.kind == OpKind::kFence || b.kind == OpKind::kFence) {
    return a.kind == b.kind;
  }
  if (a.loc != b.loc) return false;
  return !(a.kind == OpKind::kLoad && b.kind == OpKind::kLoad);
}

int Model::choose(bool schedule_node, int num, int chosen_thread_hint) {
  if (deterministic_ || num <= 1) return 0;
  if (depth_ < stack_.size()) {
    Decision& d = stack_[depth_];
    QNN_CHECK(d.num == num && d.schedule == schedule_node,
              "mc: nondeterministic replay (decision shape changed)");
    ++depth_;
    return d.chosen;
  }
  Decision d;
  d.schedule = schedule_node;
  d.chosen = 0;
  d.num = num;
  d.chosen_thread = chosen_thread_hint;
  stack_.push_back(d);
  ++depth_;
  return 0;
}

int Model::pick_fiber() {
  // Eagerly park fibers whose next op cannot proceed (pop on an empty
  // queue): scheduling one would only discover it must block.
  for (std::size_t i = 0; i < fibers_.size(); ++i) {
    Fiber& f = fibers_[i];
    if (f.state == FiberState::kRunnable && f.op.kind == OpKind::kQueuePop &&
        locs_[static_cast<std::size_t>(f.op.loc)].q.empty()) {
      f.state = FiberState::kBlocked;
      f.blocked_on = f.op.loc;
    }
  }

  int runnable[kMaxThreads];
  int n = 0;
  const bool prev_runnable =
      last_ran_ >= 0 &&
      fibers_[static_cast<std::size_t>(last_ran_)].state ==
          FiberState::kRunnable;
  if (prev_runnable) runnable[n++] = last_ran_;  // continuation first
  bool any_blocked = false;
  for (int i = 0; i < static_cast<int>(fibers_.size()); ++i) {
    const Fiber& f = fibers_[static_cast<std::size_t>(i)];
    if (f.state == FiberState::kBlocked) any_blocked = true;
    if (f.state != FiberState::kRunnable || i == last_ran_) continue;
    runnable[n++] = i;
  }
  if (n == 0) return any_blocked ? -1 : -2;  // -1 deadlock, -2 finished

  int cands[kMaxThreads];
  int nc = 0;
  if (prev_runnable && preemptions_ >= budget_.preemption_bound) {
    cands[nc++] = last_ran_;  // out of preemptions: must continue
  } else if (budget_.sleep_sets) {
    for (int i = 0; i < n; ++i) {
      if ((cur_sleep_ & (1u << runnable[i])) == 0) cands[nc++] = runnable[i];
    }
    if (nc == 0) return -3;  // everything enabled is asleep: redundant path
  } else {
    for (int i = 0; i < n; ++i) cands[nc++] = runnable[i];
  }

  const int idx = choose(true, nc, cands[0]);
  const int tid = cands[idx];
  if (!deterministic_ && nc > 1) {
    stack_[depth_ - 1].chosen_thread = tid;
  }

  // Sleep-set maintenance: siblings explored at this node sleep in this
  // subtree until an op dependent with theirs executes.
  if (budget_.sleep_sets) {
    if (!deterministic_ && nc > 1) {
      cur_sleep_ |= stack_[depth_ - 1].explored;
    }
    cur_sleep_ &= ~(1u << tid);
    const PendingOp& executed = fibers_[static_cast<std::size_t>(tid)].op;
    for (int i = 0; i < static_cast<int>(fibers_.size()); ++i) {
      if ((cur_sleep_ & (1u << i)) != 0 &&
          dependent(fibers_[static_cast<std::size_t>(i)].op, executed)) {
        cur_sleep_ &= ~(1u << i);
      }
    }
  }

  if (prev_runnable && tid != last_ran_) ++preemptions_;
  return tid;
}

RunOutcome Model::run_execution() {
  current_ = this;
  // Start every fiber: each runs deterministic plain code up to its first
  // visible op (or completion).
  for (int i = 0; i < static_cast<int>(fibers_.size()); ++i) {
    Fiber& f = fibers_[static_cast<std::size_t>(i)];
    running_ = i;
#if defined(__x86_64__)
    qnn_mc_switch(&sched_sp_, f.sp);
#else
    swapcontext(&sched_ctx_, &f.ctx);
#endif
  }
  running_ = -1;

  for (;;) {
    if (!failure_.empty()) return RunOutcome::kFailed;
    if (steps_ >= budget_.max_steps) return RunOutcome::kStepBudget;
    const int tid = pick_fiber();
    if (tid == -2) return RunOutcome::kFinished;
    if (tid == -1) return RunOutcome::kDeadlock;
    if (tid == -3) return RunOutcome::kPruned;
    last_ran_ = tid;
    ++steps_;
    execute_pending(tid);
    Fiber& f = fibers_[static_cast<std::size_t>(tid)];
    if (f.state != FiberState::kRunnable) continue;  // parked by its own op
    running_ = tid;
#if defined(__x86_64__)
    qnn_mc_switch(&sched_sp_, f.sp);
#else
    swapcontext(&sched_ctx_, &f.ctx);
#endif
    running_ = -1;
  }
}

void Model::reset_execution() {
  locs_.clear();
  fibers_.clear();
  sc_clock_ = VClock{};
  running_ = -1;
  last_ran_ = -1;
  preemptions_ = 0;
  cur_sleep_ = 0;
  steps_ = 0;
  failure_.clear();
  trace_.clear();
}

bool Model::backtrack() {
  while (!stack_.empty()) {
    Decision& d = stack_.back();
    if (d.schedule && d.chosen_thread >= 0) {
      d.explored |= 1u << d.chosen_thread;
    }
    if (d.chosen + 1 < d.num) {
      ++d.chosen;
      d.chosen_thread = -1;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

Model::Result Model::explore(const Budget& budget,
                             const std::function<void()>& setup,
                             const std::function<std::string()>& verdict) {
  Result res;
  budget_ = budget;
  deterministic_ = false;
  stack_.clear();
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    if (res.stats.executions + res.stats.pruned >= budget.max_executions) {
      res.stats.budget_exhausted = true;
      break;
    }
    if (budget.max_millis != 0) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      if (static_cast<std::uint64_t>(ms) >= budget.max_millis) {
        res.stats.budget_exhausted = true;
        break;
      }
    }
    depth_ = 0;
    reset_execution();
    current_ = this;
    setup();
    const RunOutcome out = run_execution();
    res.stats.transitions += steps_;
    if (stack_.size() > res.stats.max_depth) {
      res.stats.max_depth = stack_.size();
    }
    if (out == RunOutcome::kPruned) {
      ++res.stats.pruned;
    } else {
      ++res.stats.executions;
      std::string what;
      switch (out) {
        case RunOutcome::kDeadlock: {
          std::ostringstream os;
          os << "deadlock (lost wakeup): no fiber runnable after " << steps_
             << " ops;";
          for (std::size_t i = 0; i < fibers_.size(); ++i) {
            if (fibers_[i].state == FiberState::kBlocked) {
              os << " t" << i << " parked on "
                 << locs_[static_cast<std::size_t>(fibers_[i].blocked_on)]
                        .name;
            }
          }
          const std::string detail = verdict();
          what = os.str();
          if (!detail.empty()) what += "; " + detail;
          break;
        }
        case RunOutcome::kFailed:
          what = failure_;
          break;
        case RunOutcome::kStepBudget:
          what = "step budget exceeded after " +
                 std::to_string(steps_) + " ops (livelock suspect)";
          break;
        case RunOutcome::kFinished:
          what = verdict();
          break;
        case RunOutcome::kPruned:
          break;
      }
      if (!what.empty()) {
        res.violations.push_back({std::move(what), format_trace()});
        if (budget.stop_on_first) break;
      }
    }
    if (!backtrack()) {
      res.stats.complete = true;
      break;
    }
  }
  return res;
}

RunOutcome Model::run_once(const std::function<void()>& setup,
                           std::string* trace) {
  budget_ = Budget{};
  deterministic_ = true;
  depth_ = 0;
  reset_execution();
  current_ = this;
  setup();
  const RunOutcome out = run_execution();
  if (trace != nullptr) *trace = format_trace();
  deterministic_ = false;
  return out;
}

// ----------------------------------------------------------------- trace

void Model::record(int tid, const PendingOp& op) {
  TraceOp t;
  t.tid = static_cast<std::int8_t>(tid);
  t.kind = op.kind;
  t.loc = static_cast<std::int16_t>(op.loc);
  t.value = op.arg0;
  t.result = op.result;
  t.flag = op.flag;
  trace_.push_back(t);
}

std::string Model::format_trace() const {
  std::ostringstream os;
  for (const TraceOp& t : trace_) {
    os << "  t" << static_cast<int>(t.tid) << ' ' << op_name(t.kind);
    if (t.loc >= 0) os << ' ' << locs_[static_cast<std::size_t>(t.loc)].name;
    switch (t.kind) {
      case OpKind::kLoad:
        os << " -> " << t.result;
        break;
      case OpKind::kStore:
        os << " = " << t.value;
        break;
      case OpKind::kCas:
        os << " ->" << t.value << (t.flag ? " ok" : " fail")
           << " (was " << t.result << ")";
        break;
      case OpKind::kFetchAdd:
        os << " +" << t.value << " (was " << t.result << ")";
        break;
      case OpKind::kQueuePush:
        os << " = " << static_cast<std::int64_t>(t.value);
        break;
      case OpKind::kQueuePop:
        os << " -> " << static_cast<std::int64_t>(t.result);
        break;
      case OpKind::kFence:
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qnn::mc
