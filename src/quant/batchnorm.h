// Inference-time batch normalization parameters (per channel).
//
// Using the paper's notation (§III-B3): for neuron k with pre-activation a_k
// and parameters Theta_k = (gamma_k, mu_k, i_k, B_k),
//
//   BatchNorm(a_k, Theta_k) = gamma_k * (a_k - mu_k) * i_k + B_k
//
// where i_k is the reciprocal of the running standard deviation.
#pragma once

#include <vector>

#include "core/error.h"

namespace qnn {

struct BnParams {
  float gamma = 1.0f;
  float mu = 0.0f;
  float inv_sigma = 1.0f;  // i_k
  float beta = 0.0f;       // B_k

  /// Affine slope s = gamma * i. BatchNorm(a) = s*a + intercept().
  [[nodiscard]] double slope() const {
    return static_cast<double>(gamma) * inv_sigma;
  }
  [[nodiscard]] double intercept() const {
    return static_cast<double>(beta) -
           static_cast<double>(gamma) * mu * inv_sigma;
  }
  [[nodiscard]] double apply(double a) const {
    return slope() * a + intercept();
  }
};

/// Per-output-channel BatchNorm parameter bank for one layer. The hardware
/// stores 2*O folded parameters (§III-B1a); this holds the unfolded source.
class BnLayerParams {
 public:
  BnLayerParams() = default;
  explicit BnLayerParams(int channels) : params_(channels) {
    QNN_CHECK(channels > 0, "channel count must be positive");
  }
  explicit BnLayerParams(std::vector<BnParams> params)
      : params_(std::move(params)) {
    QNN_CHECK(!params_.empty(), "empty BatchNorm bank");
  }

  [[nodiscard]] int channels() const {
    return static_cast<int>(params_.size());
  }
  [[nodiscard]] BnParams& at(int c) {
    QNN_DCHECK(c >= 0 && c < channels(), "channel out of range");
    return params_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const BnParams& at(int c) const {
    QNN_DCHECK(c >= 0 && c < channels(), "channel out of range");
    return params_[static_cast<std::size_t>(c)];
  }

 private:
  std::vector<BnParams> params_;
};

}  // namespace qnn
