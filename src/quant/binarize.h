// Weight binarization: 32-bit float weights -> packed 1-bit sign weights.
//
// As in §III-B1a, all weights arrive as 32-bit floats and are transformed on
// load into a 1-bit representation with the Sign function. One weight-cache
// entry holds the K*K*I bits of a single filter, laid out depth-first
// (dy, dx, ci with ci fastest) to match the depth-first feature-map scan, and
// the cache has O entries.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bitvector.h"
#include "core/rng.h"
#include "core/shape.h"

namespace qnn {

/// Dense float filter bank, layout [o][dy][dx][ci] (ci fastest).
class WeightTensor {
 public:
  WeightTensor() = default;
  explicit WeightTensor(FilterShape shape, float fill = 0.0f)
      : shape_(shape),
        data_(static_cast<std::size_t>(shape.total_weights()), fill) {
    QNN_CHECK(shape.valid(), "invalid filter shape");
  }

  [[nodiscard]] const FilterShape& shape() const { return shape_; }

  [[nodiscard]] float& at(int o, int dy, int dx, int ci) {
    return data_[flat(o, dy, dx, ci)];
  }
  [[nodiscard]] float at(int o, int dy, int dx, int ci) const {
    return data_[flat(o, dy, dx, ci)];
  }

  [[nodiscard]] std::vector<float>& raw() { return data_; }
  [[nodiscard]] const std::vector<float>& raw() const { return data_; }

 private:
  [[nodiscard]] std::size_t flat(int o, int dy, int dx, int ci) const {
    QNN_DCHECK(o >= 0 && o < shape_.out_c && dy >= 0 && dy < shape_.k &&
                   dx >= 0 && dx < shape_.k && ci >= 0 && ci < shape_.in_c,
               "weight index out of range");
    return static_cast<std::size_t>(
        ((static_cast<std::int64_t>(o) * shape_.k + dy) * shape_.k + dx) *
            shape_.in_c +
        ci);
  }

  FilterShape shape_;
  std::vector<float> data_;
};

/// Binarized filter bank: O packed sign-bit vectors of K*K*I bits each.
class FilterBank {
 public:
  FilterBank() = default;
  explicit FilterBank(FilterShape shape) : shape_(shape) {
    QNN_CHECK(shape.valid(), "invalid filter shape");
    filters_.assign(static_cast<std::size_t>(shape.out_c),
                    BitVector(shape.weights_per_filter()));
  }

  /// Sign-binarize a float bank: w >= 0 maps to +1 (bit 1), w < 0 to -1.
  static FilterBank binarize(const WeightTensor& w) {
    FilterBank fb(w.shape());
    const auto& s = w.shape();
    for (int o = 0; o < s.out_c; ++o) {
      std::int64_t i = 0;
      for (int dy = 0; dy < s.k; ++dy) {
        for (int dx = 0; dx < s.k; ++dx) {
          for (int ci = 0; ci < s.in_c; ++ci, ++i) {
            fb.filter(o).set(i, w.at(o, dy, dx, ci) >= 0.0f);
          }
        }
      }
    }
    return fb;
  }

  /// Deterministic random bank for performance experiments (weight values do
  /// not affect dataflow timing; see DESIGN.md substitution table).
  static FilterBank random(FilterShape shape, Rng& rng) {
    FilterBank fb(shape);
    for (int o = 0; o < shape.out_c; ++o) {
      auto& f = fb.filter(o);
      for (std::int64_t w = 0; w < f.words(); ++w) {
        f.word(w) = rng.next_u64();
      }
      // Restore the tail-bits-zero invariant of BitVector.
      const std::int64_t nbits = f.bits();
      if (nbits % kWordBits != 0) {
        f.word(f.words() - 1) &= low_mask(static_cast<int>(nbits % kWordBits));
      }
    }
    return fb;
  }

  [[nodiscard]] const FilterShape& shape() const { return shape_; }
  [[nodiscard]] BitVector& filter(int o) {
    QNN_DCHECK(o >= 0 && o < shape_.out_c, "filter index out of range");
    return filters_[static_cast<std::size_t>(o)];
  }
  [[nodiscard]] const BitVector& filter(int o) const {
    QNN_DCHECK(o >= 0 && o < shape_.out_c, "filter index out of range");
    return filters_[static_cast<std::size_t>(o)];
  }

  /// Signed weight value (+1/-1) at (o, dy, dx, ci) — test/reference access.
  [[nodiscard]] int signed_weight(int o, int dy, int dx, int ci) const {
    const std::int64_t i =
        (static_cast<std::int64_t>(dy) * shape_.k + dx) * shape_.in_c + ci;
    return filter(o).get(i) ? +1 : -1;
  }

 private:
  FilterShape shape_;
  std::vector<BitVector> filters_;
};

}  // namespace qnn
