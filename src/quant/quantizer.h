// Uniform n-bit activation quantizer (§III-B3).
//
// The quantizer divides the normalized-value axis into 2^n equally sized
// ranges of width d with endpoints at alpha*d (alpha = 1 .. 2^n - 1) and
// maps each range to one unsigned output code:
//
//   code(y) = clamp(floor(y / d), 0, 2^n - 1)
//
// Negative normalized values land in code 0, so the quantizer subsumes the
// rectifying behaviour of a BNN sign activation (code 0 plays the role the
// paper's -1 plays in pure binary networks).
#pragma once

#include <cmath>
#include <cstdint>

#include "core/error.h"

namespace qnn {

class ActQuantizer {
 public:
  ActQuantizer() = default;
  ActQuantizer(int bits, double range_size)
      : bits_(bits), d_(range_size) {
    QNN_CHECK(bits >= 1 && bits <= 8, "activation bits out of range [1,8]");
    QNN_CHECK(range_size > 0.0, "range size d must be positive");
  }

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] double range_size() const { return d_; }
  [[nodiscard]] int levels() const { return 1 << bits_; }
  [[nodiscard]] std::int32_t max_code() const { return levels() - 1; }

  /// Quantize a normalized (post-BatchNorm) value to an unsigned code.
  [[nodiscard]] std::int32_t code(double y) const {
    if (y < d_) return 0;  // covers all negative values too
    const double q = std::floor(y / d_);
    if (q >= static_cast<double>(max_code())) return max_code();
    return static_cast<std::int32_t>(q);
  }

  /// Representative (midpoint) value of a code, used by the float reference
  /// path and by training to de-quantize.
  [[nodiscard]] double midpoint(std::int32_t c) const {
    QNN_DCHECK(c >= 0 && c <= max_code(), "code out of range");
    return (static_cast<double>(c) + 0.5) * d_;
  }

 private:
  int bits_ = 2;
  double d_ = 1.0;
};

}  // namespace qnn
