// Folded BatchNorm + n-bit activation: the threshold unit of §III-B3.
//
// Following FINN's observation extended to multi-bit activations, the
// composition  code = Quantize(BatchNorm(a))  over integer pre-activations a
// is a monotone staircase. It is fully determined by two per-channel
// parameters — tau_k = mu_k - B_k/(gamma_k * i_k) (the zero crossing) and
// Delta_k = d / (gamma_k * i_k) (the pre-activation step between adjacent
// endpoints) — from which the 2^n - 1 integer comparison thresholds
// T_alpha = tau + alpha * Delta are derived. The hardware evaluates the code
// with an n-deep binary search (an n-input comparator + 2^n -> 1 mux).
//
// This module performs the folding and provides a bit-exact software
// evaluation used both by the golden reference executor and the dataflow
// kernels, so the two engines agree by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/batchnorm.h"
#include "quant/quantizer.h"

namespace qnn {

/// The paper's two-parameter hardware representation (stored per channel as
/// a single 64-bit word: two 32-bit fixed-point values, §III-B1a).
struct TwoParamForm {
  double tau = 0.0;    // pre-activation value where BatchNorm output is 0
  double delta = 0.0;  // pre-activation step between adjacent endpoints

  friend bool operator==(const TwoParamForm&, const TwoParamForm&) = default;
};

/// Per-channel folded threshold activation over integer pre-activations.
class ThresholdActivation {
 public:
  ThresholdActivation() = default;

  /// Fold BatchNorm parameters and a uniform quantizer into thresholds.
  static ThresholdActivation fold(const BnParams& bn, const ActQuantizer& q);

  /// Rebuild from the two-parameter hardware form (sign of the BatchNorm
  /// slope must be supplied as it is implicit in Delta's sign).
  static ThresholdActivation from_two_param(const TwoParamForm& tp, int bits);

  /// Evaluate the folded staircase on an integer pre-activation.
  [[nodiscard]] std::int32_t eval(std::int32_t a) const;

  /// Evaluate via explicit binary search over the threshold array — the
  /// literal hardware algorithm (§III-B3). Bit-identical to eval().
  [[nodiscard]] std::int32_t eval_binary_search(std::int32_t a) const;

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] bool is_constant() const { return sign_ == 0; }
  [[nodiscard]] std::int32_t constant_code() const { return constant_code_; }
  /// Ascending thresholds in the (sign-adjusted) comparison domain.
  [[nodiscard]] const std::vector<std::int32_t>& thresholds() const {
    return thresholds_;
  }
  [[nodiscard]] int sign() const { return sign_; }

  /// Export the two-parameter form (tau, Delta) the hardware would store.
  [[nodiscard]] TwoParamForm two_param() const { return two_param_; }

  friend bool operator==(const ThresholdActivation&,
                         const ThresholdActivation&) = default;

 private:
  int bits_ = 2;
  // sign = +1: code = #{alpha : a >= T_alpha}
  // sign = -1: same with a replaced by -a (negative BatchNorm slope)
  // sign =  0: code is constant (degenerate zero slope)
  int sign_ = 0;
  std::int32_t constant_code_ = 0;
  std::vector<std::int32_t> thresholds_;  // ascending, size 2^bits - 1
  TwoParamForm two_param_;
};

/// Folded thresholds for every output channel of one layer.
class ThresholdLayer {
 public:
  ThresholdLayer() = default;
  static ThresholdLayer fold(const BnLayerParams& bn, const ActQuantizer& q);

  [[nodiscard]] int channels() const {
    return static_cast<int>(per_channel_.size());
  }
  [[nodiscard]] const ThresholdActivation& at(int c) const {
    QNN_DCHECK(c >= 0 && c < channels(), "channel out of range");
    return per_channel_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] int bits() const {
    return per_channel_.empty() ? 0 : per_channel_.front().bits();
  }

  void push_back(ThresholdActivation t) {
    per_channel_.push_back(std::move(t));
  }

 private:
  std::vector<ThresholdActivation> per_channel_;
};

}  // namespace qnn
