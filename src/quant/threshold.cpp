#include "quant/threshold.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qnn {
namespace {

/// Saturating ceil(x) -> int32. Pre-activations of any layer we build are
/// bounded by K*K*I * max_code (< 2^21), so saturation only normalizes
/// pathological BatchNorm parameters in property tests.
std::int32_t ceil_to_i32(double x) {
  const double c = std::ceil(x);
  if (c >= static_cast<double>(std::numeric_limits<std::int32_t>::max())) {
    return std::numeric_limits<std::int32_t>::max();
  }
  if (c <= static_cast<double>(std::numeric_limits<std::int32_t>::min())) {
    return std::numeric_limits<std::int32_t>::min();
  }
  return static_cast<std::int32_t>(c);
}

}  // namespace

ThresholdActivation ThresholdActivation::fold(const BnParams& bn,
                                              const ActQuantizer& q) {
  ThresholdActivation t;
  t.bits_ = q.bits();
  const double s = bn.slope();
  const double c = bn.intercept();
  const double d = q.range_size();
  const int m = q.max_code();  // number of endpoints = 2^n - 1

  if (s == 0.0) {
    t.sign_ = 0;
    t.constant_code_ = q.code(c);
    t.two_param_ = TwoParamForm{0.0, 0.0};
    return t;
  }

  t.two_param_ = TwoParamForm{-c / s, d / s};
  t.sign_ = s > 0.0 ? +1 : -1;
  t.thresholds_.reserve(static_cast<std::size_t>(m));
  for (int alpha = 1; alpha <= m; ++alpha) {
    // Endpoint in the pre-activation domain: t_alpha = tau + alpha*Delta.
    const double x = (alpha * d - c) / s;
    // code counts satisfied comparisons:
    //   s > 0:  y >= alpha*d  <=>  a >= ceil(x)
    //   s < 0:  y >= alpha*d  <=>  a <= x  <=>  (-a) >= ceil(-x)
    t.thresholds_.push_back(t.sign_ > 0 ? ceil_to_i32(x) : ceil_to_i32(-x));
  }
  // Floating-point rounding can only produce ties, never inversions, but we
  // normalize defensively: the staircase must be monotone.
  std::sort(t.thresholds_.begin(), t.thresholds_.end());
  return t;
}

ThresholdActivation ThresholdActivation::from_two_param(
    const TwoParamForm& tp, int bits) {
  QNN_CHECK(tp.delta != 0.0,
            "degenerate two-parameter form (zero Delta) is not invertible");
  ThresholdActivation t;
  t.bits_ = bits;
  t.two_param_ = tp;
  t.sign_ = tp.delta > 0.0 ? +1 : -1;
  const int m = (1 << bits) - 1;
  t.thresholds_.reserve(static_cast<std::size_t>(m));
  for (int alpha = 1; alpha <= m; ++alpha) {
    const double x = tp.tau + alpha * tp.delta;
    t.thresholds_.push_back(t.sign_ > 0 ? ceil_to_i32(x) : ceil_to_i32(-x));
  }
  std::sort(t.thresholds_.begin(), t.thresholds_.end());
  return t;
}

std::int32_t ThresholdActivation::eval(std::int32_t a) const {
  if (sign_ == 0) return constant_code_;
  const std::int32_t v = sign_ > 0 ? a : -a;
  const auto it =
      std::upper_bound(thresholds_.begin(), thresholds_.end(), v);
  return static_cast<std::int32_t>(it - thresholds_.begin());
}

std::int32_t ThresholdActivation::eval_binary_search(std::int32_t a) const {
  if (sign_ == 0) return constant_code_;
  const std::int32_t v = sign_ > 0 ? a : -a;
  // The hardware form: n comparison levels narrowing 2^n ranges to one.
  int lo = 0;
  int hi = static_cast<int>(thresholds_.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (v >= thresholds_[static_cast<std::size_t>(mid)]) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ThresholdLayer ThresholdLayer::fold(const BnLayerParams& bn,
                                    const ActQuantizer& q) {
  ThresholdLayer layer;
  for (int c = 0; c < bn.channels(); ++c) {
    layer.push_back(ThresholdActivation::fold(bn.at(c), q));
  }
  return layer;
}

}  // namespace qnn
