#include "perfmodel/fpga_estimate.h"

#include <algorithm>

namespace qnn {

double dfe_power_w(const DfeBoard& board, double utilization) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return board.idle_power_w +
         u * (board.max_power_w - board.idle_power_w);
}

FpgaRunEstimate estimate_fpga(const Pipeline& pipeline,
                              const SimConfig& sim_config,
                              const PartitionConfig& partition_config,
                              const DfeBoard& board, bool run_cycle_sim) {
  FpgaRunEstimate est;
  est.partition = partition_optimal(pipeline, partition_config);
  est.num_dfes = est.partition.num_dfes();

  if (run_cycle_sim) {
    const SimResult sim = simulate(pipeline, sim_config, 2);
    est.clocks_per_image = sim.steady_interval;
  } else {
    est.clocks_per_image = analytic_bottleneck_cycles(pipeline, sim_config);
  }
  // Link serialization never throttles the paper's workloads, but the
  // partitioner reports a slowdown factor if a cut were oversubscribed.
  est.seconds_per_image = static_cast<double>(est.clocks_per_image) /
                          sim_config.clock_hz * est.partition.link_slowdown;
  est.images_per_second = 1.0 / est.seconds_per_image;

  est.power_w = 0.0;
  for (const auto& dfe : est.partition.dfes) {
    est.power_w += dfe_power_w(board, dfe.utilization);
  }
  est.energy_per_image_j = est.power_w * est.seconds_per_image;
  return est;
}

}  // namespace qnn
