// End-to-end DFE estimate: runtime (cycle simulator), DFE count
// (partitioner), board power and per-image energy — the FPGA side of
// Figs 5, 7 and 8 and Tables III/IV.
//
// Board power follows the measurement-anchored envelope of the MAX4 board:
// P = idle + utilization * (max - idle) per DFE, summed over the DFEs the
// partitioner allocates. The paper reports 12 W for the VGG-like design on
// one DFE (Table IVa) and notes that AlexNet's power rises because three
// DFEs are needed (§IV-B1).
#pragma once

#include "partition/partitioner.h"
#include "sim/cycle_model.h"

namespace qnn {

struct FpgaRunEstimate {
  int num_dfes = 0;
  double seconds_per_image = 0.0;
  double images_per_second = 0.0;
  double power_w = 0.0;            // whole multi-DFE system
  double energy_per_image_j = 0.0;
  std::uint64_t clocks_per_image = 0;
  PartitionResult partition;
};

/// Board power of one DFE at the given fabric utilization.
[[nodiscard]] double dfe_power_w(const DfeBoard& board, double utilization);

/// Full estimate. When `run_cycle_sim` is false the analytic bottleneck is
/// used instead of the cycle-by-cycle simulation (fast path for sweeps;
/// both agree to within a few percent on the paper's networks).
[[nodiscard]] FpgaRunEstimate estimate_fpga(
    const Pipeline& pipeline, const SimConfig& sim_config = {},
    const PartitionConfig& partition_config = {},
    const DfeBoard& board = max4_maia(), bool run_cycle_sim = true);

}  // namespace qnn
