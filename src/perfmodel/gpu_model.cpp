#include "perfmodel/gpu_model.h"

#include <algorithm>
#include <cmath>

namespace qnn {

double GpuSpec::efficiency(int batch) const {
  QNN_CHECK(batch >= 1, "batch must be positive");
  // Rises from the batch-1 value toward the large-batch ceiling; the
  // square root keeps the knee in the 16-64 range, as observed for cuDNN.
  return peak_efficiency -
         (peak_efficiency - batch1_efficiency) / std::sqrt(batch);
}

GpuSpec tesla_p100() {
  GpuSpec g;
  g.name = "Tesla P100";
  g.cuda_cores = 3584;
  g.core_clock_ghz = 1.480;
  g.fp32_tflops = 10.6;
  g.mem_bw_gbps = 549.0;  // 12 GB HBM2 variant
  g.tdp_w = 250.0;
  g.idle_w = 31.0;
  return g;
}

GpuSpec gtx1080() {
  GpuSpec g;
  g.name = "GTX 1080";
  g.cuda_cores = 2560;
  g.core_clock_ghz = 1.733;
  g.fp32_tflops = 8.87;
  g.mem_bw_gbps = 320.0;
  g.tdp_w = 180.0;
  g.idle_w = 10.0;
  return g;
}

GpuRunEstimate estimate_gpu(const Pipeline& pipeline, const GpuSpec& gpu,
                            int batch) {
  pipeline.validate();
  QNN_CHECK(batch >= 1, "batch must be positive");
  GpuRunEstimate est;
  const double peak_flops =
      gpu.fp32_tflops * 1e12 * gpu.efficiency(batch);
  const double bw = gpu.mem_bw_gbps * 1e9 * gpu.mem_efficiency;

  double total = 0.0;
  for (int i = 0; i < pipeline.size(); ++i) {
    const Node& n = pipeline.node(i);
    // cuDNN launches one kernel per convolution and pooling layer; the
    // element-wise BatchNorm/activation/add work is folded into the
    // neighbouring layer's traffic (negligible next to conv cost).
    if (n.kind == NodeKind::BnAct || n.kind == NodeKind::Add) continue;

    GpuLayerTime layer;
    layer.name = n.name;
    double weight_bytes = 0.0;
    if (n.kind == NodeKind::Conv) {
      const double macs = static_cast<double>(n.out.elems()) * n.k * n.k *
                          n.in.c;
      layer.flops = 2.0 * macs;
      weight_bytes =
          static_cast<double>(n.filter_shape().total_weights()) * 4.0;
    }
    // float32 activations in and out, per image.
    const double act_bytes =
        4.0 * static_cast<double>(n.in.elems() + n.out.elems());
    layer.bytes = weight_bytes + act_bytes * batch;

    const double compute_s = layer.flops * batch / peak_flops;
    const double memory_s = layer.bytes / bw;
    const double body = std::max(compute_s, memory_s);
    layer.bound = compute_s >= memory_s ? GpuBound::Compute
                                        : GpuBound::Memory;
    if (gpu.launch_overhead_s > body) layer.bound = GpuBound::Launch;
    layer.seconds = gpu.launch_overhead_s + body;
    total += layer.seconds;
    ++est.launches;
    est.layers.push_back(std::move(layer));
  }

  est.seconds_per_image = total / batch;
  est.power_w = gpu.inference_power_w();
  est.energy_per_image_j = est.power_w * est.seconds_per_image;
  return est;
}

}  // namespace qnn
