// GPU baseline runtime model (the comparison side of Figs 5, 7, 8).
//
// The paper's GPU baseline runs Hubara et al.'s QNN code on Theano with
// cuDNN — i.e., float32 kernels executed layer by layer: "Since each layer
// waits until the previous one finishes, twice as many layers would take
// twice more time, even if GPU resources are not fully utilized" (§IV-B2).
// We model exactly that: per layer, a kernel-launch overhead plus a
// roofline term max(FLOPs / effective-peak, bytes / effective-bandwidth),
// summed over the layer sequence. No overlap between layers — the
// structural disadvantage the streaming architecture exploits.
//
// Published specs (Table IIa) anchor the peaks; two free constants — the
// batch-1 efficiency and the per-layer launch overhead — are calibrated so
// the model reproduces the paper's reported GPU-vs-DFE ratios (12% DFE win
// at 32x32; DFE ~4x slower on ImageNet; ResNet +42.5% over AlexNet on GPU).
//
// Batch scaling follows the paper's observation that GPUs process 128-256
// inputs "with very small inference time degradation": launches and weight
// traffic amortize across the batch and arithmetic efficiency rises toward
// its large-batch peak.
#pragma once

#include <string>
#include <vector>

#include "nn/pipeline.h"

namespace qnn {

struct GpuSpec {
  std::string name;
  int cuda_cores = 0;
  double core_clock_ghz = 0.0;   // Table IIa
  double fp32_tflops = 0.0;      // peak single-precision throughput
  double mem_bw_gbps = 0.0;      // peak memory bandwidth
  double tdp_w = 0.0;
  double idle_w = 0.0;

  // Model constants (see header comment).
  double launch_overhead_s = 60e-6;  // per launched kernel (Theano + cuDNN)
  double batch1_efficiency = 0.20;   // fraction of peak FLOPs at batch 1
  double peak_efficiency = 0.65;     // large-batch ceiling
  double mem_efficiency = 0.70;      // achievable fraction of peak BW
  double activity_factor = 0.70;     // inference power = idle+af*(tdp-idle)

  [[nodiscard]] double inference_power_w() const {
    return idle_w + activity_factor * (tdp_w - idle_w);
  }
  /// Arithmetic efficiency at a given batch size.
  [[nodiscard]] double efficiency(int batch) const;
};

/// Nvidia Tesla P100 12GB (Pascal, 3584 cores @ 1480 MHz).
[[nodiscard]] GpuSpec tesla_p100();
/// Nvidia GeForce GTX 1080 (Pascal, 2560 cores @ 1733 MHz).
[[nodiscard]] GpuSpec gtx1080();

enum class GpuBound { Compute, Memory, Launch };

struct GpuLayerTime {
  std::string name;
  double seconds = 0.0;  // per batch, launch included
  double flops = 0.0;    // per image
  double bytes = 0.0;    // per batch (weights once, activations per image)
  GpuBound bound = GpuBound::Compute;
};

struct GpuRunEstimate {
  double seconds_per_image = 0.0;
  double power_w = 0.0;
  double energy_per_image_j = 0.0;
  int launches = 0;
  std::vector<GpuLayerTime> layers;
};

/// Layer-sequential runtime/power/energy estimate for one network.
[[nodiscard]] GpuRunEstimate estimate_gpu(const Pipeline& pipeline,
                                          const GpuSpec& gpu, int batch = 1);

}  // namespace qnn
