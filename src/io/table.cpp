#include "io/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.h"

namespace qnn {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  QNN_CHECK(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  QNN_CHECK(cells.size() == columns_.size(),
            "row has " + std::to_string(cells.size()) + " cells, table has " +
                std::to_string(columns_.size()) + " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(std::int64_t v) { return std::to_string(v); }

const std::string& Table::cell(int row, int col) const {
  QNN_CHECK(row >= 0 && row < rows() && col >= 0 && col < columns(),
            "cell index out of range");
  return rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << "\n";
  };
  line(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(width[c], '-') + (c + 1 < columns_.size() ? "  " : "");
  }
  os << rule << "\n";
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto csv_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << "\n";
  };
  csv_line(columns_);
  for (const auto& row : rows_) csv_line(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  print_csv(out);
  return out.good();
}

}  // namespace qnn
