#include "io/ppm.h"

#include <fstream>
#include <vector>

namespace qnn {

void write_ppm(const std::string& path, const IntTensor& image) {
  const Shape& s = image.shape();
  QNN_CHECK(s.c == 3, "PPM requires 3 channels, got " + s.str());
  std::ofstream out(path, std::ios::binary);
  QNN_CHECK(out.good(), "cannot open " + path + " for writing");
  out << "P6\n" << s.w << " " << s.h << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(s.w) * 3);
  for (int y = 0; y < s.h; ++y) {
    for (int x = 0; x < s.w; ++x) {
      for (int c = 0; c < 3; ++c) {
        const std::int32_t v = image.at(y, x, c);
        QNN_CHECK(v >= 0 && v <= 255, "pixel out of 8-bit range");
        row[static_cast<std::size_t>(x) * 3 + static_cast<std::size_t>(c)] =
            static_cast<unsigned char>(v);
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  QNN_CHECK(out.good(), "write to " + path + " failed");
}

IntTensor read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QNN_CHECK(in.good(), "cannot open " + path);
  std::string magic;
  in >> magic;
  QNN_CHECK(magic == "P6", path + " is not a binary PPM (P6)");
  // Skip whitespace and comment lines between header tokens.
  auto next_int = [&]() -> int {
    while (true) {
      int ch = in.peek();
      if (ch == '#') {
        std::string comment;
        std::getline(in, comment);
      } else if (std::isspace(ch)) {
        in.get();
      } else {
        break;
      }
    }
    int value = 0;
    in >> value;
    QNN_CHECK(in.good(), "truncated PPM header in " + path);
    return value;
  };
  const int w = next_int();
  const int h = next_int();
  const int maxval = next_int();
  QNN_CHECK(w > 0 && h > 0, "bad PPM dimensions");
  QNN_CHECK(maxval == 255, "only 8-bit PPM supported");
  in.get();  // single whitespace after maxval

  IntTensor image(Shape{h, w, 3});
  std::vector<unsigned char> row(static_cast<std::size_t>(w) * 3);
  for (int y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    QNN_CHECK(in.gcount() == static_cast<std::streamsize>(row.size()),
              "truncated PPM payload in " + path);
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < 3; ++c) {
        image.at(y, x, c) = row[static_cast<std::size_t>(x) * 3 +
                                static_cast<std::size_t>(c)];
      }
    }
  }
  return image;
}

}  // namespace qnn
