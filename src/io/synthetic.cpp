#include "io/synthetic.h"

#include <algorithm>
#include <cmath>

namespace qnn {

IntTensor synthetic_pattern_image(int h, int w, int c, int pattern_class,
                                  Rng& rng) {
  QNN_CHECK(pattern_class >= 0, "negative pattern class");
  IntTensor t(Shape{h, w, c});
  const int period = pattern_class + 2;
  const bool diagonal = pattern_class % 2 == 1;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int phase = diagonal ? (x + y) : (pattern_class % 4 < 2 ? x : y);
      const int base = (phase / period) % 2 == 0 ? 200 : 55;
      for (int ch = 0; ch < c; ++ch) {
        const int noise = static_cast<int>(rng.next_below(41)) - 20;
        t.at(y, x, ch) = std::clamp(base + noise, 0, 255);
      }
    }
  }
  return t;
}

std::vector<IntTensor> synthetic_batch(int n, int h, int w, int c,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IntTensor> batch;
  batch.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    batch.push_back(synthetic_image(h, w, c, rng));
  }
  return batch;
}

LabeledDataset make_cluster_task(int classes, int dim, int samples_per_class,
                                 double spread, std::uint64_t seed) {
  QNN_CHECK(classes >= 2 && dim >= 1 && samples_per_class >= 1,
            "bad cluster task parameters");
  Rng rng(seed);
  LabeledDataset ds;
  ds.classes = classes;
  ds.dim = dim;

  // Class centers drawn on the 8-bit scale, kept away from the borders so
  // the quantization to codes does not clip cluster structure.
  std::vector<std::vector<float>> centers(
      static_cast<std::size_t>(classes));
  for (auto& center : centers) {
    center.resize(static_cast<std::size_t>(dim));
    for (auto& v : center) v = 48.0f + 160.0f * rng.next_float();
  }

  for (int k = 0; k < classes; ++k) {
    for (int s = 0; s < samples_per_class; ++s) {
      std::vector<float> x(static_cast<std::size_t>(dim));
      IntTensor img(Shape{1, 1, dim});
      for (int d = 0; d < dim; ++d) {
        const float v =
            centers[static_cast<std::size_t>(k)][static_cast<std::size_t>(d)] +
            static_cast<float>(spread) * rng.next_gaussian();
        const float clipped = std::clamp(v, 0.0f, 255.0f);
        const auto code = static_cast<std::int32_t>(std::lround(clipped));
        x[static_cast<std::size_t>(d)] = static_cast<float>(code);
        img.at(0, 0, d) = code;
      }
      ds.features.push_back(std::move(x));
      ds.images.push_back(std::move(img));
      ds.labels.push_back(k);
    }
  }
  // Deterministic shuffle so batches are class-mixed.
  for (int i = ds.size() - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(i) + 1));
    std::swap(ds.features[static_cast<std::size_t>(i)],
              ds.features[static_cast<std::size_t>(j)]);
    std::swap(ds.images[static_cast<std::size_t>(i)],
              ds.images[static_cast<std::size_t>(j)]);
    std::swap(ds.labels[static_cast<std::size_t>(i)],
              ds.labels[static_cast<std::size_t>(j)]);
  }
  return ds;
}

std::pair<LabeledDataset, LabeledDataset> split_dataset(
    const LabeledDataset& data, double train_fraction) {
  QNN_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)");
  const int n = data.size();
  const int cut = std::max(
      1, static_cast<int>(std::ceil(train_fraction * n)));
  QNN_CHECK(cut < n, "split leaves an empty test set");
  LabeledDataset train;
  LabeledDataset test;
  train.classes = test.classes = data.classes;
  train.dim = test.dim = data.dim;
  for (int i = 0; i < n; ++i) {
    LabeledDataset& dst = i < cut ? train : test;
    dst.features.push_back(data.features[static_cast<std::size_t>(i)]);
    dst.images.push_back(data.images[static_cast<std::size_t>(i)]);
    dst.labels.push_back(data.labels[static_cast<std::size_t>(i)]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace qnn
