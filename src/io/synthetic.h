// Deterministic synthetic inputs.
//
// The paper evaluates on CIFAR-10 (32x32), STL-10 (96x96, resized 144x144)
// and ImageNet (224x224). Streaming-inference timing and resource usage are
// input-data independent, so correctly shaped synthetic images exercise the
// identical code paths (DESIGN.md substitution table). For the training
// ablation, labeled Gaussian-cluster tasks provide a classification problem
// learnable by a small quantized network.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/tensor.h"

namespace qnn {

/// Uniformly random 8-bit image of the given geometry.
[[nodiscard]] inline IntTensor synthetic_image(int h, int w, int c,
                                               Rng& rng) {
  IntTensor t(Shape{h, w, c});
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.next_below(256));
  }
  return t;
}

/// Structured image: class-dependent stripe pattern plus noise. Class k
/// paints stripes with period (k + 2) along a k-dependent orientation.
[[nodiscard]] IntTensor synthetic_pattern_image(int h, int w, int c,
                                                int pattern_class, Rng& rng);

/// A batch of random images sharing one geometry.
[[nodiscard]] std::vector<IntTensor> synthetic_batch(int n, int h, int w,
                                                     int c,
                                                     std::uint64_t seed);

/// Labeled feature-vector classification task: `classes` Gaussian clusters
/// in `dim` dimensions, quantized to 8-bit codes so the task can be fed to
/// the integer inference pipeline unchanged.
struct LabeledDataset {
  int classes = 0;
  int dim = 0;
  std::vector<std::vector<float>> features;    // float view for training
  std::vector<IntTensor> images;               // 1 x 1 x dim 8-bit codes
  std::vector<int> labels;

  [[nodiscard]] int size() const {
    return static_cast<int>(labels.size());
  }
};

/// Build a cluster task; `spread` controls difficulty (larger = harder).
[[nodiscard]] LabeledDataset make_cluster_task(int classes, int dim,
                                               int samples_per_class,
                                               double spread,
                                               std::uint64_t seed);

/// Deterministic train/test split: the first ceil(frac * n) samples (the
/// dataset is already shuffled) become the training set.
[[nodiscard]] std::pair<LabeledDataset, LabeledDataset> split_dataset(
    const LabeledDataset& data, double train_fraction);

}  // namespace qnn
