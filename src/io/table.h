// Result-table formatting for the benchmark harness: every bench prints
// the rows/series of the paper table or figure it regenerates, in an
// aligned text table, and can also emit CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qnn {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Add one row; the cell count must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string integer(std::int64_t v);

  /// Aligned human-readable rendering.
  void print(std::ostream& os) const;
  /// Comma-separated rendering (header + rows).
  void print_csv(std::ostream& os) const;
  /// Write the CSV form to a file; returns false if the file cannot open.
  bool save_csv(const std::string& path) const;

  [[nodiscard]] int rows() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int columns() const {
    return static_cast<int>(columns_.size());
  }
  [[nodiscard]] const std::string& cell(int row, int col) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qnn
