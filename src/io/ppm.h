// Minimal binary PPM (P6) image I/O for 8-bit RGB tensors.
#pragma once

#include <string>

#include "core/tensor.h"

namespace qnn {

/// Write an HxWx3 tensor of 8-bit codes as a binary PPM file.
void write_ppm(const std::string& path, const IntTensor& image);

/// Read a binary PPM file into an HxWx3 tensor of 8-bit codes.
[[nodiscard]] IntTensor read_ppm(const std::string& path);

}  // namespace qnn
