// §IV-B4 scalability analysis:
//  * theoretical clocks-per-picture vs the cycle simulation (the paper's
//    ResNet-18 estimate is ~1.85e6 clocks, matching 16.1 ms @105 MHz);
//  * the Stratix 10 projection (5x clock -> 3-4 ms per image);
//  * frames-per-second for every workload (§V claims >60 fps everywhere);
//  * host StreamEngine transport/executor ablation: scalar vs burst
//    streams crossed with thread-per-kernel vs pooled execution, written
//    to BENCH_dataflow.json. Acceptance bar: burst+pooled reaches >= 2x
//    the pre-refactor scalar thread-per-kernel configuration.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "dataflow/engine.h"
#include "fpga/resource_model.h"
#include "io/synthetic.h"
#include "perfmodel/fpga_estimate.h"
#include "sim/cycle_model.h"

int main() {
  using namespace qnn;
  bench::heading("Scalability — clocks per picture and fps (§IV-B4, §V)",
                 "Analytic bottleneck vs cycle simulation; fps at the "
                 "105 MHz Stratix V clock.");

  Table t({"workload", "analytic clocks", "simulated clocks", "ms @105MHz",
           "fps", ">60fps"});
  for (const auto& w : bench::paper_workloads()) {
    const Pipeline p = expand(w.spec);
    const SimConfig cfg;
    const auto analytic = analytic_bottleneck_cycles(p, cfg);
    const SimResult sim = simulate(p, cfg, 2);
    t.add_row({w.label, Table::integer(static_cast<std::int64_t>(analytic)),
               Table::integer(static_cast<std::int64_t>(sim.steady_interval)),
               Table::num(sim.ms_per_image(cfg)),
               Table::num(sim.images_per_second(cfg), 1),
               sim.images_per_second(cfg) > 60.0 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\npaper: ResNet-18 ~1.85e6 clocks/picture, 16.1 ms "
               "measured @105 MHz.\n";

  bench::heading("Stratix 10 projection (§IV-B4)",
                 "5x fabric clock; the projection must also 'fit even "
                 "bigger networks onto a single FPGA' — shown with "
                 "ResNet-34.");
  Table s({"network", "device", "ms/img", "fps", "devices needed"});
  for (const auto& spec : {models::resnet18(224, 1000, 2),
                           models::resnet34(224, 1000, 2)}) {
    const Pipeline p = expand(spec);
    const auto r = estimate_resources(p);
    for (const FpgaDevice& dev :
         {stratix_v_5sgsd8(), stratix_10_projection()}) {
      SimConfig cfg;
      cfg.clock_hz = dev.clock_hz;
      const SimResult sim = simulate(p, cfg, 2);
      s.add_row({spec.name, dev.name, Table::num(sim.ms_per_image(cfg)),
                 Table::num(sim.images_per_second(cfg), 1),
                 Table::integer(r.devices_needed(dev))});
    }
  }
  s.print(std::cout);
  std::cout << "\npaper: Stratix 10 would reach 3-4 ms per image and fit "
               "bigger networks on one FPGA.\n";

  bench::heading("Interval growth with input size (VGG-like)",
                 "Streaming throughput scales with the pixel count.");
  Table g({"input", "clocks/img", "ms", "ratio vs 32"});
  std::uint64_t base = 0;
  for (int size : {32, 64, 96, 144, 224}) {
    const SimConfig cfg;
    const SimResult sim =
        simulate(expand(models::vgg_like(size, 10, 2)), cfg, 2);
    if (base == 0) base = sim.steady_interval;
    g.add_row({std::to_string(size),
               Table::integer(static_cast<std::int64_t>(sim.steady_interval)),
               Table::num(sim.ms_per_image(cfg)),
               Table::num(static_cast<double>(sim.steady_interval) /
                              static_cast<double>(base),
                          2)});
  }
  g.print(std::cout);

  bench::heading("Host dataflow engine — transport and executor ablation",
                 "per-image (serving-style) images/s of the software "
                 "StreamEngine: scalar vs burst stream transport crossed "
                 "with thread-per-kernel vs pooled cooperative execution. "
                 "Each run() carries one image, as in the inference server; "
                 "thread-per-kernel pays one OS thread spawn per kernel per "
                 "run, the pooled executor pays one. Acceptance bar: "
                 "burst+pooled >= 2x the scalar thread-per-kernel baseline "
                 "(the pre-refactor engine).");

  const NetworkSpec dspec = models::tiny(8, 4, 2);
  const Pipeline dp = expand(dspec);
  const NetworkParams dparams = NetworkParams::random(dp, 91);
  // Pre-split into single-image batches so the timed loop measures only
  // run() itself — the same request shape bench_serving drives.
  std::vector<std::vector<IntTensor>> drequests;
  for (const IntTensor& img : synthetic_batch(8, 8, 8, 3, 92)) {
    drequests.push_back({img});
  }
  constexpr int kReps = 8;

  struct EngineConfig {
    const char* label;
    ExecutorKind kind;
    std::size_t burst;
    std::size_t fifo;  // 0 = auto (§III-B1b line buffers)
  };
  const EngineConfig configs[] = {
      // The pre-refactor engine: one value per ring transaction, one OS
      // thread per kernel, flat 4096-deep FIFOs.
      {"scalar, thread-per-kernel (baseline)",
       ExecutorKind::kThreadPerKernel, 1, 4096},
      {"scalar, pooled", ExecutorKind::kPooled, 1, 0},
      {"burst 256, thread-per-kernel", ExecutorKind::kThreadPerKernel, 256,
       0},
      {"burst 256, pooled", ExecutorKind::kPooled, 256, 0},
  };
  Table d({"configuration", "images/s", "speedup", "values/txn",
           "push stalls", "pop stalls"});
  std::ostringstream dj;
  dj << "{\n  \"workload\": \"" << dspec.name << "\",\n  \"images\": "
     << drequests.size() * kReps << ",\n  \"configs\": [\n";
  double baseline_ips = 0.0;
  double burst_pooled_ips = 0.0;
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    const EngineConfig& cfg = configs[i];
    EngineOptions opt;
    opt.executor = cfg.kind;
    opt.burst = cfg.burst;
    opt.fifo_capacity = cfg.fifo;
    StreamEngine engine(dp, dparams, opt);
    (void)engine.run(drequests.front());  // warm-up, untimed
    std::uint64_t values = 0;
    std::uint64_t txns = 0;
    std::uint64_t push_stalls = 0;
    std::uint64_t pop_stalls = 0;
    int images = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& request : drequests) {
        StreamEngine::RunStats st;
        (void)engine.run(request, &st);
        values += st.values_streamed;
        txns += st.stream_transactions;
        push_stalls += st.push_stalls;
        pop_stalls += st.pop_stalls;
        ++images;
      }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    const double ips = images / elapsed.count();
    if (i == 0) baseline_ips = ips;
    if (cfg.kind == ExecutorKind::kPooled && cfg.burst > 1) {
      burst_pooled_ips = ips;
    }
    const double speedup = baseline_ips > 0.0 ? ips / baseline_ips : 0.0;
    const double occupancy =
        txns > 0 ? static_cast<double>(values) / static_cast<double>(txns)
                 : 0.0;
    d.add_row({cfg.label, Table::num(ips, 2), Table::num(speedup, 2),
               Table::num(occupancy, 1),
               Table::integer(static_cast<std::int64_t>(push_stalls)),
               Table::integer(static_cast<std::int64_t>(pop_stalls))});
    dj << "    {\"label\": \"" << cfg.label << "\", \"executor\": \""
       << (cfg.kind == ExecutorKind::kPooled ? "pooled" : "thread") << "\""
       << ", \"burst\": " << cfg.burst << ", \"images_per_second\": " << ips
       << ", \"speedup\": " << speedup
       << ", \"mean_burst_occupancy\": " << occupancy
       << ", \"push_stalls\": " << push_stalls
       << ", \"pop_stalls\": " << pop_stalls << "}"
       << (i + 1 < std::size(configs) ? "," : "") << "\n";
  }
  bench::emit(d, "bench_dataflow");
  const double bar =
      baseline_ips > 0.0 ? burst_pooled_ips / baseline_ips : 0.0;
  dj << "  ],\n  \"burst_pooled_speedup\": " << bar << "\n}\n";
  std::cout << "\nburst+pooled speedup vs scalar thread-per-kernel: "
            << Table::num(bar, 2) << "x (acceptance bar: >= 2x)\n\n"
            << dj.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_dataflow.json";
  std::ofstream jf(json_path);
  if (jf && (jf << dj.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return bar >= 2.0 ? 0 : 1;
}
