// §IV-B4 scalability analysis:
//  * theoretical clocks-per-picture vs the cycle simulation (the paper's
//    ResNet-18 estimate is ~1.85e6 clocks, matching 16.1 ms @105 MHz);
//  * the Stratix 10 projection (5x clock -> 3-4 ms per image);
//  * frames-per-second for every workload (§V claims >60 fps everywhere).
#include <iostream>

#include "bench_util.h"
#include "fpga/resource_model.h"
#include "perfmodel/fpga_estimate.h"
#include "sim/cycle_model.h"

int main() {
  using namespace qnn;
  bench::heading("Scalability — clocks per picture and fps (§IV-B4, §V)",
                 "Analytic bottleneck vs cycle simulation; fps at the "
                 "105 MHz Stratix V clock.");

  Table t({"workload", "analytic clocks", "simulated clocks", "ms @105MHz",
           "fps", ">60fps"});
  for (const auto& w : bench::paper_workloads()) {
    const Pipeline p = expand(w.spec);
    const SimConfig cfg;
    const auto analytic = analytic_bottleneck_cycles(p, cfg);
    const SimResult sim = simulate(p, cfg, 2);
    t.add_row({w.label, Table::integer(static_cast<std::int64_t>(analytic)),
               Table::integer(static_cast<std::int64_t>(sim.steady_interval)),
               Table::num(sim.ms_per_image(cfg)),
               Table::num(sim.images_per_second(cfg), 1),
               sim.images_per_second(cfg) > 60.0 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\npaper: ResNet-18 ~1.85e6 clocks/picture, 16.1 ms "
               "measured @105 MHz.\n";

  bench::heading("Stratix 10 projection (§IV-B4)",
                 "5x fabric clock; the projection must also 'fit even "
                 "bigger networks onto a single FPGA' — shown with "
                 "ResNet-34.");
  Table s({"network", "device", "ms/img", "fps", "devices needed"});
  for (const auto& spec : {models::resnet18(224, 1000, 2),
                           models::resnet34(224, 1000, 2)}) {
    const Pipeline p = expand(spec);
    const auto r = estimate_resources(p);
    for (const FpgaDevice& dev :
         {stratix_v_5sgsd8(), stratix_10_projection()}) {
      SimConfig cfg;
      cfg.clock_hz = dev.clock_hz;
      const SimResult sim = simulate(p, cfg, 2);
      s.add_row({spec.name, dev.name, Table::num(sim.ms_per_image(cfg)),
                 Table::num(sim.images_per_second(cfg), 1),
                 Table::integer(r.devices_needed(dev))});
    }
  }
  s.print(std::cout);
  std::cout << "\npaper: Stratix 10 would reach 3-4 ms per image and fit "
               "bigger networks on one FPGA.\n";

  bench::heading("Interval growth with input size (VGG-like)",
                 "Streaming throughput scales with the pixel count.");
  Table g({"input", "clocks/img", "ms", "ratio vs 32"});
  std::uint64_t base = 0;
  for (int size : {32, 64, 96, 144, 224}) {
    const SimConfig cfg;
    const SimResult sim =
        simulate(expand(models::vgg_like(size, 10, 2)), cfg, 2);
    if (base == 0) base = sim.steady_interval;
    g.add_row({std::to_string(size),
               Table::integer(static_cast<std::int64_t>(sim.steady_interval)),
               Table::num(sim.ms_per_image(cfg)),
               Table::num(static_cast<double>(sim.steady_interval) /
                              static_cast<double>(base),
                          2)});
  }
  g.print(std::cout);
  return 0;
}
