// Ablation: activation bit width vs accuracy.
//
// The paper's accuracy argument (§I, §III-B): 2-bit activations instead of
// 1-bit raise quantized AlexNet's ImageNet top-1 from 41.8% to 51.03%,
// at a modest hardware cost. ImageNet training is out of scope (DESIGN.md
// substitution table); this bench reproduces the *ordering and shape* of
// that claim with the same STE training algorithm on synthetic
// classification tasks, and pairs each accuracy with the hardware cost of
// the corresponding VGG-like design from the resource model.
#include <iostream>

#include "bench_util.h"
#include "fpga/resource_model.h"
#include "train/qat.h"
#include "train/qat_cnn.h"

int main() {
  using namespace qnn;
  bench::heading("Activation bit-width ablation",
                 "STE-trained QNNs on synthetic 8-class cluster tasks "
                 "(3 seeds averaged); accuracy via the integer-threshold "
                 "reference executor on the exported model.");

  Table t({"act bits", "accuracy (mean)", "accuracy (min..max)",
           "VGG32 LUT", "VGG32 FF", "VGG32 BRAM Kbit"});
  const std::uint64_t data_seeds[] = {7, 19, 31};
  double prev_mean = 0.0;
  for (int bits : {1, 2, 3, 4}) {
    double sum = 0.0;
    double lo = 1.0;
    double hi = 0.0;
    for (std::uint64_t seed : data_seeds) {
      const auto all = make_cluster_task(8, 12, 150, 45.0, seed);
      const auto [train, test] = split_dataset(all, 0.7);
      QatConfig cfg;
      cfg.act_bits = bits;
      cfg.epochs = 50;
      cfg.seed = 11 + seed;
      const double acc =
          train_and_export(train, test, cfg).exported_accuracy;
      sum += acc;
      lo = std::min(lo, acc);
      hi = std::max(hi, acc);
    }
    const double mean = sum / 3.0;
    const NetworkResources r =
        estimate_resources(expand(models::vgg_like(32, 10, bits)));
    t.add_row({Table::integer(bits), Table::num(100.0 * mean, 1) + "%",
               Table::num(100.0 * lo, 1) + ".." + Table::num(100.0 * hi, 1),
               Table::integer(static_cast<std::int64_t>(r.luts)),
               Table::integer(static_cast<std::int64_t>(r.ffs)),
               Table::integer(static_cast<std::int64_t>(r.bram_kbits()))});
    if (bits == 2) {
      std::cout << "1-bit -> 2-bit accuracy gain: +"
                << Table::num(100.0 * (mean - prev_mean), 1)
                << " points (paper, AlexNet/ImageNet: 41.8% -> 51.03%)\n\n";
    }
    prev_mean = mean;
  }
  t.print(std::cout);
  std::cout << "\nReading: the 1->2 bit step buys the large accuracy jump; "
               "further bits\ngive diminishing returns at growing fabric "
               "cost — the paper's chosen\noperating point (1-bit weights, "
               "2-bit activations) sits at the knee.\n";

  bench::heading("Convolutional counterpart",
                 "The same STE algorithm on a CNN (conv-pool-conv-pool + "
                 "classifier) over 12x12 stripe-pattern images, 2 seeds.");
  Table c({"act bits", "CNN accuracy (mean)", "exported == trained"});
  for (int bits : {1, 2, 3}) {
    double sum = 0.0;
    bool exact = true;
    for (std::uint64_t seed : {7ull, 23ull}) {
      const auto all = make_pattern_task(4, 12, 12, 1, 60, seed);
      const auto [train, test] = split_dataset(all, 0.75);
      QatCnnConfig cfg;
      cfg.act_bits = bits;
      cfg.epochs = 20;
      cfg.seed = 3 + seed;
      const auto r = train_and_export_cnn(train, test, train.image, cfg);
      sum += r.exported_accuracy;
      exact &= std::abs(r.exported_accuracy - r.train_accuracy) < 1e-9;
    }
    c.add_row({Table::integer(bits), Table::num(100.0 * sum / 2.0, 1) + "%",
               exact ? "yes" : "NO"});
  }
  c.print(std::cout);
  return 0;
}
