// Figure 6: resource utilization of the VGG-like architecture for
// different input sizes, shown as change from the 32x32 baseline.
//
// §IV-B4: "increasing the size of input from 32x32 to 96x96 increases the
// resource utilization by approximately 5% for all types of resources."
#include <iostream>

#include "bench_util.h"
#include "fpga/resource_model.h"

int main() {
  using namespace qnn;
  bench::heading("Figure 6 — VGG-like resources vs input size",
                 "Change from the 32x32 baseline, absolute and in "
                 "percentage points of the Stratix V 5SGSD8.");

  const FpgaDevice dev = stratix_v_5sgsd8();
  const NetworkResources base =
      estimate_resources(expand(models::vgg_like(32, 10, 2)));

  Table t({"input", "LUT", "FF", "BRAM Kbit", "dLUT %", "dFF %",
           "dBRAM %", "dLUT pts", "dFF pts", "dBRAM pts", "fits 1 DFE"});
  for (int size : {32, 64, 96, 144, 224}) {
    const NetworkResources r =
        estimate_resources(expand(models::vgg_like(size, 10, 2)));
    const double dlut = 100.0 * (r.luts - base.luts) / base.luts;
    const double dff = 100.0 * (r.ffs - base.ffs) / base.ffs;
    const double dbram =
        100.0 * (r.bram_kbits() - base.bram_kbits()) / base.bram_kbits();
    t.add_row({std::to_string(size) + "x" + std::to_string(size),
               Table::integer(static_cast<std::int64_t>(r.luts)),
               Table::integer(static_cast<std::int64_t>(r.ffs)),
               Table::integer(static_cast<std::int64_t>(r.bram_kbits())),
               Table::num(dlut, 1), Table::num(dff, 1),
               Table::num(dbram, 1),
               Table::num(100.0 * (r.luts - base.luts) /
                              static_cast<double>(dev.luts), 1),
               Table::num(100.0 * (r.ffs - base.ffs) /
                              static_cast<double>(dev.ffs), 1),
               Table::num(100.0 *
                              (r.bram_blocks - base.bram_blocks) /
                              dev.bram_blocks,
                          1),
               r.devices_needed(dev) == 1 ? "yes" : "no"});
  }
  qnn::bench::emit(t, "fig6_resources");
  std::cout << "\npaper: 32->96 costs ~5 percentage points of the device "
               "per resource class;\nall sizes up to 144x144 fit a single "
               "FPGA (§V).\n";
  return 0;
}
