// Shared helpers for the benchmark harness. Every bench regenerates one
// table or figure from the paper's evaluation section and prints the same
// rows/series the paper reports, with the paper's own numbers alongside
// where the text states them (marked "paper"). Our side always comes from
// the models — never from hard-coded constants.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "io/table.h"
#include "models/zoo.h"
#include "nn/pipeline.h"

namespace qnn::bench {

inline void heading(const std::string& title, const std::string& subtitle) {
  std::cout << "\n=== " << title << " ===\n" << subtitle << "\n\n";
}

/// Print the table; when QNN_CSV_DIR is set, also save it as
/// $QNN_CSV_DIR/<name>.csv for plotting.
inline void emit(const Table& t, const std::string& name) {
  t.print(std::cout);
  const char* dir = std::getenv("QNN_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  if (t.save_csv(path)) {
    std::cout << "(csv written to " << path << ")\n";
  } else {
    std::cout << "(could not write " << path << ")\n";
  }
}

/// The paper's five evaluation workloads (§IV-B1 / Fig 5).
struct Workload {
  std::string label;
  std::string dataset;
  NetworkSpec spec;
};

inline std::vector<Workload> paper_workloads() {
  return {
      {"VGG-like 32x32", "CIFAR-10", models::vgg_like(32, 10, 2)},
      {"VGG-like 96x96", "STL-10", models::vgg_like(96, 10, 2)},
      {"VGG-like 144x144", "STL-10 resized", models::vgg_like(144, 10, 2)},
      {"AlexNet 224x224", "ImageNet", models::alexnet(224, 1000, 2)},
      {"ResNet-18 224x224", "ImageNet", models::resnet18(224, 1000, 2)},
  };
}

}  // namespace qnn::bench
