// Figure 8: energy consumption of a single-picture inference (Joules).
//
// Paper claims: "up to 20x better for FPGAs" on single-DFE workloads, and
// lower than GPUs even when several DFEs are used. Note the paper's §I
// ratios (5x less power, 4x slower) bound the multi-DFE energy advantage
// at ~1.25x by arithmetic — see EXPERIMENTS.md for the discussion.
#include <iostream>

#include "bench_util.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"

int main() {
  using namespace qnn;
  bench::heading("Figure 8 — energy per inference (mJ)",
                 "Energy = power x runtime, per single image (batch 1).");

  Table t({"workload", "DFE mJ", "P100 mJ", "GTX1080 mJ", "P100/DFE",
           "GTX/DFE"});
  for (const auto& w : bench::paper_workloads()) {
    const Pipeline p = expand(w.spec);
    const auto dfe = estimate_fpga(p);
    const auto p100 = estimate_gpu(p, tesla_p100());
    const auto g1080 = estimate_gpu(p, gtx1080());
    t.add_row(
        {w.label, Table::num(1e3 * dfe.energy_per_image_j, 1),
         Table::num(1e3 * p100.energy_per_image_j, 1),
         Table::num(1e3 * g1080.energy_per_image_j, 1),
         Table::num(p100.energy_per_image_j / dfe.energy_per_image_j, 2),
         Table::num(g1080.energy_per_image_j / dfe.energy_per_image_j, 2)});
  }
  qnn::bench::emit(t, "fig8_energy");
  std::cout << "\npaper: up to 20x less energy on a single DFE; advantage "
               "shrinks on multi-DFE networks.\n";
  return 0;
}
