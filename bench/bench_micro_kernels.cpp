// Microbenchmarks (google-benchmark) of the hot computational primitives:
// the XNOR-popcount datapath vs a scalar reference, the folded threshold
// activation vs the float BatchNorm + quantizer path, the window scanner,
// the SPSC stream, and a small end-to-end streaming inference.
//
// After the google-benchmark suite, main() runs the host-executor
// ablation: round-robin pooled vs ready-queue vs ready-queue + pinned
// workers at equal thread counts, on a shallow (8-kernel) and a deep
// (>= 50-kernel) chain. Results land in BENCH_executor.json (honouring
// QNN_CSV_DIR like the other benches) and the exit code enforces the
// acceptance bars, so `PERF=1 tools/check.sh` can gate on it. Pass
// `--benchmark_filter=__none__` to skip the microbenchmarks and run the
// ablation alone.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/bitplanes.h"
#include "core/simd/vec_ops.h"
#include "dataflow/engine.h"
#include "dataflow/kernels.h"
#include "dataflow/window_scanner.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "quant/threshold.h"

namespace qnn {
namespace {

void BM_Pm1DotPacked(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  BitVector a(n);
  BitVector b(n);
  for (std::int64_t i = 0; i < n; ++i) {
    a.set(i, rng.next_bool());
    b.set(i, rng.next_bool());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.pm1_dot(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Pm1DotPacked)->Arg(576)->Arg(4608)->Arg(9216);

void BM_Pm1DotScalarReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::int8_t> w(n);
  std::vector<std::int32_t> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.next_bool() ? 1 : -1;
    x[i] = static_cast<std::int32_t>(rng.next_below(4));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_pm1_dot(w, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Pm1DotScalarReference)->Arg(576)->Arg(4608)->Arg(9216);

void BM_BitPlaneDot2Bit(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(2);
  BitVector w(n);
  BitPlaneWindow win(n, 2);
  for (std::int64_t i = 0; i < n; ++i) {
    w.set(i, rng.next_bool());
    win.set(i, static_cast<std::uint32_t>(rng.next_below(4)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(win.dot(w));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitPlaneDot2Bit)->Arg(576)->Arg(4608)->Arg(9216);

void BM_ThresholdEval(benchmark::State& state) {
  BnParams bn;
  bn.gamma = 1.2f;
  bn.mu = 40.0f;
  bn.inv_sigma = 0.01f;
  bn.beta = 2.0f;
  const ActQuantizer q(static_cast<int>(state.range(0)), 1.0);
  const auto t = ThresholdActivation::fold(bn, q);
  std::int32_t a = -5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.eval_binary_search(a));
    a = a < 5000 ? a + 7 : -5000;
  }
}
BENCHMARK(BM_ThresholdEval)->Arg(1)->Arg(2)->Arg(4);

void BM_FloatBnActPath(benchmark::State& state) {
  BnParams bn;
  bn.gamma = 1.2f;
  bn.mu = 40.0f;
  bn.inv_sigma = 0.01f;
  bn.beta = 2.0f;
  const ActQuantizer q(static_cast<int>(state.range(0)), 1.0);
  std::int32_t a = -5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.code(bn.apply(a)));
    a = a < 5000 ? a + 7 : -5000;
  }
}
BENCHMARK(BM_FloatBnActPath)->Arg(1)->Arg(2)->Arg(4);

void BM_WindowScanner(benchmark::State& state) {
  const Shape in{32, 32, 64};
  Rng rng(3);
  IntTensor img(in);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::int32_t>(rng.next_below(4));
  }
  std::vector<std::int32_t> window(
      static_cast<std::size_t>(3 * 3 * in.c));
  for (auto _ : state) {
    WindowScanner s(in, 3, 1, 1);
    std::int64_t next = 0;
    while (!s.done()) {
      const std::int32_t v = s.next_is_padding() ? 0 : img[next++];
      const auto completed = s.advance(v);
      if (completed) {
        s.window(*completed, window);
        benchmark::DoNotOptimize(window.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * img.size());
}
BENCHMARK(BM_WindowScanner);

void BM_StreamThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Stream s(1024, 16, "bench");
    const std::int64_t n = 1 << 18;
    state.ResumeTiming();
    std::thread consumer([&] {
      std::int32_t v;
      while (s.pop(v)) benchmark::DoNotOptimize(v);
    });
    for (std::int32_t i = 0; i < n; ++i) s.push(i);
    s.close();
    consumer.join();
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_StreamThroughput)->Unit(benchmark::kMillisecond);

void BM_StreamingEngineTiny(benchmark::State& state) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 99);
  StreamEngine engine(p, params);
  Rng rng(4);
  IntTensor img(p.input);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::int32_t>(rng.next_below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_one(img));
  }
}
BENCHMARK(BM_StreamingEngineTiny)->Unit(benchmark::kMillisecond);

void BM_ReferenceExecutorTiny(benchmark::State& state) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 99);
  const ReferenceExecutor exec(p, params);
  Rng rng(4);
  IntTensor img(p.input);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::int32_t>(rng.next_below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.run(img));
  }
}
BENCHMARK(BM_ReferenceExecutorTiny)->Unit(benchmark::kMillisecond);

}  // namespace

// ---- executor ablation --------------------------------------------------

namespace {

/// A straight chain of `convs` (conv + bnact) pairs plus a dense head:
/// 2*convs + 1 + (bn_act ? 1 : 0) kernels once expanded. convs=3 with a
/// bn-act head gives the shallow 8-kernel chain; convs=26 without gives
/// the deep 53-kernel chain where a round-robin sweep wastes whole passes
/// stepping blocked tasks.
NetworkSpec ablation_chain(const char* name, int convs, bool dense_bn) {
  NetworkSpec spec;
  spec.name = name;
  spec.input = Shape{8, 8, 2};
  for (int i = 0; i < convs; ++i) spec.conv(2, 3, 1, 1);
  spec.dense(3, dense_bn);
  return spec;
}

struct AblationConfig {
  const char* label;
  ExecutorKind kind;
  bool pin;
};

/// Images/second for one (chain, executor) cell. Every config sees the
/// same requests, the same thread count, and the same (adaptive) burst
/// plan — the executor is the only variable.
double ablation_ips(const Pipeline& p, const NetworkParams& params,
                    const AblationConfig& cfg, unsigned threads,
                    const std::vector<std::vector<IntTensor>>& requests,
                    int reps) {
  EngineOptions opt;
  opt.executor = cfg.kind;
  opt.pool_threads = threads;
  opt.pin_threads = cfg.pin;
  StreamEngine engine(p, params, opt);
  (void)engine.run(requests.front());  // warm-up, untimed
  int images = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const auto& request : requests) {
      (void)engine.run(request);
      images += static_cast<int>(request.size());
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  return images / elapsed.count();
}

}  // namespace

int run_executor_ablation() {
  constexpr int kReps = 6;
  const AblationConfig configs[] = {
      {"pooled round-robin", ExecutorKind::kPooled, false},
      {"ready-queue", ExecutorKind::kReadyQueue, false},
      {"ready-queue + pinned", ExecutorKind::kReadyQueue, true},
  };
  struct Chain {
    const char* name;
    NetworkSpec spec;
  };
  const Chain chains[] = {
      {"shallow", ablation_chain("shallow_chain", 3, true)},
      {"deep", ablation_chain("deep_chain", 26, false)},
  };

  std::ostringstream js;
  js << "{\n  \"chains\": [\n";
  double shallow_ratio = 0.0;
  double deep_ratio = 0.0;
  std::cout << "\nexecutor ablation (thread-per-kernel pools, adaptive "
               "bursts)\n";
  for (std::size_t c = 0; c < std::size(chains); ++c) {
    const Chain& chain = chains[c];
    const Pipeline p = expand(chain.spec);
    const NetworkParams params = NetworkParams::random(p, 7);
    // Pool size = task count (kernels + feeder + collector): the natural
    // host configuration for a dataflow graph, and the one the pre-burst
    // engine shipped with (thread-per-kernel). Both executors get the
    // same count.
    const unsigned threads = static_cast<unsigned>(p.size()) + 2;
    Rng rng(11);
    // Serving-shaped requests: one image per run() call, as the serve/
    // replicas issue them. This exposes the per-run host overhead (the
    // pooled sweep re-spawns its workers every run; the ready-queue
    // executor parks a persistent pool) on top of steady-state
    // scheduling.
    std::vector<std::vector<IntTensor>> requests;
    for (int i = 0; i < 4; ++i) {
      IntTensor img(p.input);
      for (std::int64_t j = 0; j < img.size(); ++j) {
        img[j] = static_cast<std::int32_t>(
            rng.next_below(1u << chain.spec.input_bits));
      }
      requests.push_back({std::move(img)});
    }
    js << "    {\"chain\": \"" << chain.name
       << "\", \"kernels\": " << p.size() << ", \"threads\": " << threads
       << ", \"configs\": [\n";
    double pooled_ips = 0.0;
    double ready_ips = 0.0;
    for (std::size_t i = 0; i < std::size(configs); ++i) {
      const AblationConfig& cfg = configs[i];
      const double ips =
          ablation_ips(p, params, cfg, threads, requests, kReps);
      if (cfg.kind == ExecutorKind::kPooled) pooled_ips = ips;
      if (cfg.kind == ExecutorKind::kReadyQueue && !cfg.pin) {
        ready_ips = ips;
      }
      const double speedup = pooled_ips > 0.0 ? ips / pooled_ips : 0.0;
      std::cout << "  " << chain.name << " (" << p.size() << " kernels, "
                << threads << " threads), " << cfg.label << ": " << ips
                << " images/s (" << speedup << "x vs pooled)\n";
      js << "      {\"label\": \"" << cfg.label << "\", \"pinned\": "
         << (cfg.pin ? "true" : "false")
         << ", \"images_per_second\": " << ips
         << ", \"speedup_vs_pooled\": " << speedup << "}"
         << (i + 1 < std::size(configs) ? "," : "") << "\n";
    }
    js << "    ]}" << (c + 1 < std::size(chains) ? "," : "") << "\n";
    const double ratio = pooled_ips > 0.0 ? ready_ips / pooled_ips : 0.0;
    if (c == 0) {
      shallow_ratio = ratio;
    } else {
      deep_ratio = ratio;
    }
  }
  js << "  ],\n  \"shallow_ready_vs_pooled\": " << shallow_ratio
     << ",\n  \"deep_ready_vs_pooled\": " << deep_ratio << "\n}\n";
  std::cout << "ready-queue vs pooled: shallow " << shallow_ratio
            << "x (bar: >= 0.95), deep " << deep_ratio
            << "x (bar: >= 1.5)\n"
            << js.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_executor.json";
  std::ofstream jf(json_path);
  if (jf && (jf << js.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return shallow_ratio >= 0.95 && deep_ratio >= 1.5 ? 0 : 1;
}

// ---- conv datapath ablation ---------------------------------------------

namespace {

/// Images/second through a single ConvKernel driven cooperatively on one
/// thread (push burst / step / drain), so the measurement isolates the conv
/// inner datapath with no executor or thread-scheduling noise.
double conv_datapath_ips(const Node& n, const FilterBank& fb,
                         const std::vector<std::int32_t>& img, int images) {
  Stream sin(8192, 16, "abl_in");
  Stream sout(8192, 32, "abl_out");
  ConvKernel kernel(n, fb, sin, sout);
  const std::int64_t out_per_image = n.out.elems();
  std::vector<std::int32_t> sink(4096);
  const auto t0 = std::chrono::steady_clock::now();
  int fed_images = 0;
  std::size_t fed_pos = 0;
  std::int64_t got = 0;
  while (got < out_per_image * images) {
    if (fed_images < images) {
      fed_pos += sin.try_push_burst(
          std::span<const std::int32_t>(img).subspan(fed_pos));
      if (fed_pos == img.size()) {
        fed_pos = 0;
        if (++fed_images == images) sin.close();
      }
    }
    (void)kernel.step_checked();
    got += static_cast<std::int64_t>(sout.try_pop_burst(sink));
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  return images / elapsed.count();
}

}  // namespace

/// Three-arm ablation of the conv inner datapath — scalar per-window
/// re-pack vs packed incremental line buffers (scalar word loop) vs packed
/// + widest SIMD — per activation width. Writes BENCH_kernels.json and
/// enforces the acceptance bar on the geomean packed+SIMD speedup.
int run_conv_datapath_ablation() {
  constexpr int kImages = 8;
  // A mid-network conv at paper scale: 3x3x64 -> 64 puts 576 bits (9
  // words) in each bit-plane window, enough for the word-granular inner
  // loop to matter. Tiny-channel layers are covered by the test suite.
  const Shape in{16, 16, 64};
  const int out_c = 64;
  const int bits_list[] = {1, 2, 8};

  const simd::Level best = simd::available_levels().back();
  // >= 3x with AVX2-or-wider popcount hardware; >= 2x from packing alone.
  const double bar = best >= simd::Level::kAvx2 ? 3.0 : 2.0;

  struct Arm {
    const char* label;
    ConvDatapath dp;
    simd::Level level;
  };
  const Arm arms[] = {
      {"scalar-pack", ConvDatapath::kScalarPack, simd::Level::kScalar},
      {"packed", ConvDatapath::kPacked, simd::Level::kScalar},
      {"packed+simd", ConvDatapath::kPacked, best},
  };

  std::cout << "\nconv datapath ablation (single kernel, cooperative "
               "single-thread drive; host best simd: "
            << simd::level_name(best) << ")\n";
  std::ostringstream js;
  js << "{\n  \"host_best_simd\": \"" << simd::level_name(best)
     << "\",\n  \"bar\": " << bar << ",\n  \"cells\": [\n";
  double log_sum = 0.0;
  for (std::size_t b = 0; b < std::size(bits_list); ++b) {
    const int bits = bits_list[b];
    Node n;
    n.kind = NodeKind::Conv;
    n.name = "abl_conv";
    n.in = in;
    n.out = conv_out_shape(in, out_c, 3, 1, 1);
    n.in_bits = bits;
    n.out_bits = preact_bits(std::int64_t{3} * 3 * in.c, bits);
    n.k = 3;
    n.stride = 1;
    n.pad = 1;
    n.param = 0;
    Rng rng(21 + static_cast<std::uint64_t>(bits));
    const FilterBank fb = FilterBank::random(n.filter_shape(), rng);
    std::vector<std::int32_t> img(static_cast<std::size_t>(in.elems()));
    for (auto& v : img) {
      v = static_cast<std::int32_t>(rng.next_below(std::uint64_t{1} << bits));
    }
    double ips[3] = {0.0, 0.0, 0.0};
    for (std::size_t a = 0; a < std::size(arms); ++a) {
      set_conv_datapath(arms[a].dp);
      simd::set_level(arms[a].level);
      (void)conv_datapath_ips(n, fb, img, 2);  // warm-up, untimed
      ips[a] = conv_datapath_ips(n, fb, img, kImages);
      std::cout << "  in_bits=" << bits << ", " << arms[a].label << ": "
                << ips[a] << " images/s\n";
    }
    const double packed_ratio = ips[1] / ips[0];
    const double simd_ratio = ips[2] / ips[0];
    log_sum += std::log(simd_ratio);
    js << "    {\"in_bits\": " << bits << ", \"scalar_pack_ips\": " << ips[0]
       << ", \"packed_scalar_ips\": " << ips[1]
       << ", \"packed_simd_ips\": " << ips[2]
       << ", \"packed_vs_scalarpack\": " << packed_ratio
       << ", \"simd_vs_scalarpack\": " << simd_ratio << "}"
       << (b + 1 < std::size(bits_list) ? "," : "") << "\n";
  }
  set_conv_datapath(ConvDatapath::kPacked);
  simd::set_level(std::nullopt);
  const double geomean =
      std::exp(log_sum / static_cast<double>(std::size(bits_list)));
  const bool pass = geomean >= bar;
  js << "  ],\n  \"geomean_simd_vs_scalarpack\": " << geomean
     << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::cout << "packed+simd vs scalar-pack geomean: " << geomean
            << "x (bar: >= " << bar << ")\n"
            << js.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_kernels.json";
  std::ofstream jf(json_path);
  if (jf && (jf << js.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return pass ? 0 : 1;
}

}  // namespace qnn

int main(int argc, char** argv) {
  // --conv-datapath-only: skip the microbenchmarks and the executor
  // ablation, run just the conv datapath ablation (PERF=1 tools/check.sh
  // replays its committed BENCH_kernels.json baseline against this).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--conv-datapath-only") == 0) {
      return qnn::run_conv_datapath_ablation();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return qnn::run_executor_ablation();
}
