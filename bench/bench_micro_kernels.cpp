// Microbenchmarks (google-benchmark) of the hot computational primitives:
// the XNOR-popcount datapath vs a scalar reference, the folded threshold
// activation vs the float BatchNorm + quantizer path, the window scanner,
// the SPSC stream, and a small end-to-end streaming inference.
#include <benchmark/benchmark.h>

#include "core/bitplanes.h"
#include "dataflow/engine.h"
#include "dataflow/window_scanner.h"
#include "models/zoo.h"
#include "nn/reference.h"
#include "quant/threshold.h"

namespace qnn {
namespace {

void BM_Pm1DotPacked(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  BitVector a(n);
  BitVector b(n);
  for (std::int64_t i = 0; i < n; ++i) {
    a.set(i, rng.next_bool());
    b.set(i, rng.next_bool());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.pm1_dot(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Pm1DotPacked)->Arg(576)->Arg(4608)->Arg(9216);

void BM_Pm1DotScalarReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::int8_t> w(n);
  std::vector<std::int32_t> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = rng.next_bool() ? 1 : -1;
    x[i] = static_cast<std::int32_t>(rng.next_below(4));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_pm1_dot(w, x));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Pm1DotScalarReference)->Arg(576)->Arg(4608)->Arg(9216);

void BM_BitPlaneDot2Bit(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(2);
  BitVector w(n);
  BitPlaneWindow win(n, 2);
  for (std::int64_t i = 0; i < n; ++i) {
    w.set(i, rng.next_bool());
    win.set(i, static_cast<std::uint32_t>(rng.next_below(4)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(win.dot(w));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitPlaneDot2Bit)->Arg(576)->Arg(4608)->Arg(9216);

void BM_ThresholdEval(benchmark::State& state) {
  BnParams bn;
  bn.gamma = 1.2f;
  bn.mu = 40.0f;
  bn.inv_sigma = 0.01f;
  bn.beta = 2.0f;
  const ActQuantizer q(static_cast<int>(state.range(0)), 1.0);
  const auto t = ThresholdActivation::fold(bn, q);
  std::int32_t a = -5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.eval_binary_search(a));
    a = a < 5000 ? a + 7 : -5000;
  }
}
BENCHMARK(BM_ThresholdEval)->Arg(1)->Arg(2)->Arg(4);

void BM_FloatBnActPath(benchmark::State& state) {
  BnParams bn;
  bn.gamma = 1.2f;
  bn.mu = 40.0f;
  bn.inv_sigma = 0.01f;
  bn.beta = 2.0f;
  const ActQuantizer q(static_cast<int>(state.range(0)), 1.0);
  std::int32_t a = -5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.code(bn.apply(a)));
    a = a < 5000 ? a + 7 : -5000;
  }
}
BENCHMARK(BM_FloatBnActPath)->Arg(1)->Arg(2)->Arg(4);

void BM_WindowScanner(benchmark::State& state) {
  const Shape in{32, 32, 64};
  Rng rng(3);
  IntTensor img(in);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::int32_t>(rng.next_below(4));
  }
  std::vector<std::int32_t> window(
      static_cast<std::size_t>(3 * 3 * in.c));
  for (auto _ : state) {
    WindowScanner s(in, 3, 1, 1);
    std::int64_t next = 0;
    while (!s.done()) {
      const std::int32_t v = s.next_is_padding() ? 0 : img[next++];
      const auto completed = s.advance(v);
      if (completed) {
        s.window(*completed, window);
        benchmark::DoNotOptimize(window.data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * img.size());
}
BENCHMARK(BM_WindowScanner);

void BM_StreamThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Stream s(1024, 16, "bench");
    const std::int64_t n = 1 << 18;
    state.ResumeTiming();
    std::thread consumer([&] {
      std::int32_t v;
      while (s.pop(v)) benchmark::DoNotOptimize(v);
    });
    for (std::int32_t i = 0; i < n; ++i) s.push(i);
    s.close();
    consumer.join();
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_StreamThroughput)->Unit(benchmark::kMillisecond);

void BM_StreamingEngineTiny(benchmark::State& state) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 99);
  StreamEngine engine(p, params);
  Rng rng(4);
  IntTensor img(p.input);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::int32_t>(rng.next_below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_one(img));
  }
}
BENCHMARK(BM_StreamingEngineTiny)->Unit(benchmark::kMillisecond);

void BM_ReferenceExecutorTiny(benchmark::State& state) {
  const Pipeline p = expand(models::tiny(12, 4, 2));
  const NetworkParams params = NetworkParams::random(p, 99);
  const ReferenceExecutor exec(p, params);
  Rng rng(4);
  IntTensor img(p.input);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::int32_t>(rng.next_below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.run(img));
  }
}
BENCHMARK(BM_ReferenceExecutorTiny)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qnn

BENCHMARK_MAIN();
