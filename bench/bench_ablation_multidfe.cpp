// Ablation: multi-DFE scale-out (§III-B6).
//
// "Since our architecture comprises independent kernels and the Maxeler
// platform allows data to directly flow from DFE to DFE, the workload can
// be divided into multiple DFEs with very small performance degradation."
// This bench forces 1..N-way splits of the paper networks (by shrinking
// the per-DFE fill budget) and reports every cut's link bandwidth against
// the MaxRing capacity.
#include <iostream>

#include "bench_util.h"
#include "partition/partitioner.h"
#include "sim/cycle_model.h"

int main() {
  using namespace qnn;
  bench::heading("Multi-DFE scale-out ablation (§III-B6)",
                 "Forced splits via shrinking per-DFE fill; link rate per "
                 "cut vs the multi-Gbps MaxRing.");

  for (const auto& name : {"resnet18", "alexnet"}) {
    const NetworkSpec spec = std::string(name) == "resnet18"
                                 ? models::resnet18(224, 1000, 2)
                                 : models::alexnet(224, 1000, 2);
    const Pipeline p = expand(spec);
    std::cout << spec.name << ":\n";
    Table t({"fill", "DFEs", "peak util", "worst cut Mbps", "capacity Mbps",
             "slowdown"});
    for (double fill : {0.85, 0.60, 0.40, 0.25, 0.15}) {
      PartitionConfig cfg;
      cfg.fill = fill;
      PartitionResult r;
      try {
        r = partition_optimal(p, cfg);
      } catch (const Error&) {
        t.add_row({Table::num(fill, 2), "-", "-", "-", "-",
                   "infeasible (kernel > device budget)"});
        continue;
      }
      double worst = 0.0;
      for (const auto& c : r.cuts) worst = std::max(worst, c.required_mbps);
      t.add_row({Table::num(fill, 2), Table::integer(r.num_dfes()),
                 Table::num(r.max_utilization(), 2), Table::num(worst, 1),
                 Table::num(cfg.link_gbps * 1000.0, 0),
                 Table::num(r.link_slowdown, 4)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: even aggressive splits keep every cut far below "
               "link capacity\n(slowdown 1.0000) — the paper's 'almost "
               "without a performance drop'.\nThe paper's own example: a "
               "2-bit stream at one value per 105 MHz clock\nneeds 210 "
               "Mbps.\n";

  bench::heading("Cycle-simulated validation",
                 "The same cuts replayed inside the cycle simulator with "
                 "MaxRing serialization (38 bits per 105 MHz clock).");
  Table s({"network", "solo clocks/img", "partitioned clocks/img", "delta"});
  for (const auto& name : {"resnet18", "alexnet"}) {
    const NetworkSpec spec = std::string(name) == "resnet18"
                                 ? models::resnet18(224, 1000, 2)
                                 : models::alexnet(224, 1000, 2);
    const Pipeline p = expand(spec);
    const SimConfig base;
    const std::uint64_t solo = simulate(p, base, 2).steady_interval;
    SimConfig cut = base;
    for (const auto& c : partition_optimal(p).cuts) {
      cut.cut_after_nodes.push_back(c.after_node);
    }
    const std::uint64_t split = simulate(p, cut, 2).steady_interval;
    s.add_row({spec.name,
               Table::integer(static_cast<std::int64_t>(solo)),
               Table::integer(static_cast<std::int64_t>(split)),
               Table::num(100.0 * (static_cast<double>(split) /
                                       static_cast<double>(solo) - 1.0),
                          2) +
                   "%"});
  }
  s.print(std::cout);
  return 0;
}
