// Figure 5: runtime comparison of the streaming DFE architecture against
// GPUs (Tesla P100, GTX 1080) across input sizes 32x32 .. 224x224.
//
// DFE times come from the cycle-level simulator at the 105 MHz fabric
// clock; GPU times from the layer-sequential roofline model (batch 1, the
// paper's real-time setting). Paper anchor points: VGG-like 32x32 took
// 0.8 ms on the DFE and was 12% faster than the GPU (Table IVa, §IV-B1);
// AlexNet/ResNet-18 took 13.7/16.1 ms (Table III).
#include <iostream>

#include "bench_util.h"
#include "perfmodel/fpga_estimate.h"
#include "perfmodel/gpu_model.h"

int main() {
  using namespace qnn;
  bench::heading("Figure 5 — runtime per image (ms)",
                 "DFE: cycle simulator @105 MHz; GPUs: layer-sequential "
                 "roofline, batch 1.");

  Table t({"workload", "dataset", "DFE ms", "DFEs", "P100 ms", "GTX1080 ms",
           "DFE/P100", "paper DFE ms"});
  const char* paper_dfe[] = {"0.8", "-", "-", "13.7", "16.1"};
  int row = 0;
  for (const auto& w : bench::paper_workloads()) {
    const Pipeline p = expand(w.spec);
    const auto dfe = estimate_fpga(p);
    const auto p100 = estimate_gpu(p, tesla_p100());
    const auto g1080 = estimate_gpu(p, gtx1080());
    t.add_row({w.label, w.dataset,
               Table::num(1e3 * dfe.seconds_per_image),
               Table::integer(dfe.num_dfes),
               Table::num(1e3 * p100.seconds_per_image),
               Table::num(1e3 * g1080.seconds_per_image),
               Table::num(dfe.seconds_per_image / p100.seconds_per_image),
               paper_dfe[row++]});
  }
  qnn::bench::emit(t, "fig5_runtime");

  std::cout << "\nShape checks: DFE faster than both GPUs at 32x32 (paper: "
               "12% faster);\nGPUs win at larger inputs; ResNet-18 ~4x "
               "slower on DFE than P100 (paper: 4x).\n";

  bench::heading("GPU minibatch scaling (§IV-B1 remark)",
                 "GPUs amortize launches and weight traffic over batches; "
                 "the DFE processes single images in real time.");
  Table b({"batch", "ResNet-18 P100 ms/img", "speedup vs batch 1"});
  const Pipeline res = expand(models::resnet18(224, 1000, 2));
  const double t1 = estimate_gpu(res, tesla_p100(), 1).seconds_per_image;
  for (int batch : {1, 8, 32, 128, 256}) {
    const double tb = estimate_gpu(res, tesla_p100(), batch).seconds_per_image;
    b.add_row({Table::integer(batch), Table::num(1e3 * tb),
               Table::num(t1 / tb)});
  }
  qnn::bench::emit(b, "fig5_gpu_batch");
  return 0;
}
