// Table IV: comparison with FINN (Umuroglu et al. [29]) on the 32x32
// VGG-like network. FINN's published numbers (Zynq-7000 fabric, 1-bit
// activations, inputs resident on chip) are literature constants; our side
// comes from the calibrated models. The paper's reading: FINN is faster and
// lower power, this architecture trades that for 2-bit accuracy (+4.1%)
// and scalability to large inputs and multi-FPGA systems.
#include <iostream>

#include "bench_util.h"
#include "fpga/resource_model.h"
#include "perfmodel/fpga_estimate.h"

int main() {
  using namespace qnn;
  bench::heading("Table IV — comparison with FINN at 32x32",
                 "FINN column: published values from Umuroglu et al. "
                 "(different FPGA vendor; trends only, as in the paper).");

  const Pipeline p = expand(models::vgg_like(32, 10, 2));
  const auto dfe = estimate_fpga(p);
  const auto res = estimate_resources(p);

  Table a({"metric", "FINN (paper)", "this work (model)", "paper DFE"});
  a.add_row({"Time (ms)", "0.0456", Table::num(1e3 * dfe.seconds_per_image, 2),
             "0.8"});
  a.add_row({"Power (W)", "3.6", Table::num(dfe.power_w, 1), "12"});
  a.add_row({"Accuracy", "80.1% (1-bit act)", "2-bit activations",
             "84.2%"});
  a.print(std::cout);
  std::cout << "\n(The +4.1% accuracy gap is a training-time property of "
               "2-bit vs 1-bit activations;\nsee bench_ablation_actbits for "
               "the reproduced ordering.)\n";

  Table b({"resource", "FINN (paper)", "this work (model)", "paper DFE"});
  b.add_row({"LUT", "46253",
             Table::integer(static_cast<std::int64_t>(res.luts)), "133887"});
  b.add_row({"BRAM (Kbit)", "6696",
             Table::integer(static_cast<std::int64_t>(res.bram_kbits())),
             "11020"});
  b.add_row({"FF", "-",
             Table::integer(static_cast<std::int64_t>(res.ffs)), "278501"});
  std::cout << "\n";
  b.print(std::cout);

  bench::heading("Topology cross-check: padded VGG-like vs exact FINN CNV",
                 "The paper's VGG-like network is 'based on' FINN's CNV; "
                 "both lowered through this stack for comparison.");
  const Pipeline cnv = expand(models::finn_cnv(10, 2));
  const auto cnv_res = estimate_resources(cnv);
  const auto cnv_dfe = estimate_fpga(cnv);
  Table c({"network", "LUT", "FF", "BRAM Kbit", "DFE ms"});
  c.add_row({"VGG-like (padded, paper)",
             Table::integer(static_cast<std::int64_t>(res.luts)),
             Table::integer(static_cast<std::int64_t>(res.ffs)),
             Table::integer(static_cast<std::int64_t>(res.bram_kbits())),
             Table::num(1e3 * dfe.seconds_per_image)});
  c.add_row({"FINN CNV (unpadded)",
             Table::integer(static_cast<std::int64_t>(cnv_res.luts)),
             Table::integer(static_cast<std::int64_t>(cnv_res.ffs)),
             Table::integer(static_cast<std::int64_t>(cnv_res.bram_kbits())),
             Table::num(1e3 * cnv_dfe.seconds_per_image)});
  c.print(std::cout);
  return 0;
}
