// Serving-layer benchmark: throughput and latency of DfeServer versus
// replica count and micro-batching, plus behavior at the overload cliff.
//
// The paper's pipeline only delivers its throughput while it is kept full
// (§III-B); this bench quantifies how much the serving layer contributes:
// the same closed-loop load is driven at a single unbatched replica (the
// naive DfeSession::infer() deployment) and at replica farms with dynamic
// micro-batching. Replicas are pinned to the thread-per-kernel executor —
// the hardware-faithful board model, where every kernel is concurrently
// live and each run() pays the full pipeline spin-up that micro-batching
// exists to amortize. The acceptance bar for the serving subsystem is the
// "4 replicas + batching" row reaching >= 2x the single-replica-unbatched
// throughput under that engine. A final row runs the farm on the default
// pooled engine, whose per-run cost is one worker spawn instead of one
// per kernel: the engine now does most of the amortizing itself, which is
// why its unbatched baseline sits far above the board model's. A final
// open-loop Poisson run pushes a small server past saturation to show
// admission control rejecting instead of queuing without bound.
//
// Output: the usual table (CSV via QNN_CSV_DIR) plus a JSON block on
// stdout for scripted consumption.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "fault/fault.h"
#include "io/synthetic.h"
#include "serve/load_generator.h"
#include "serve/server.h"

namespace qnn {
namespace {

struct Scenario {
  std::string label;
  int replicas;
  int max_batch;
  ExecutorKind engine = ExecutorKind::kThreadPerKernel;
};

int run() {
  bench::heading("Serving throughput/latency",
                 "closed-loop load vs. replica count and micro-batching; "
                 "open-loop Poisson overload at the end");

  const NetworkSpec spec = models::tiny(8, 4, 2);
  const Pipeline pipeline = expand(spec);
  const NetworkParams params = NetworkParams::random(pipeline, 80);
  SessionConfig session_config;
  session_config.fast_estimate = true;
  const std::vector<IntTensor> images = synthetic_batch(8, 8, 8, 3, 81);

  constexpr int kClients = 64;
  constexpr int kRequestsPerClient = 8;
  const std::vector<Scenario> scenarios = {
      {"1 replica, unbatched", 1, 1},
      {"1 replica, batch 16", 1, 16},
      {"4 replicas, unbatched", 4, 1},
      {"4 replicas, batch 16", 4, 16},
      {"4 replicas, batch 16, pooled engine", 4, 16, ExecutorKind::kPooled},
  };

  Table t({"configuration", "replicas", "max_batch", "qps", "p50 us",
           "p95 us", "p99 us", "mean batch", "speedup"});
  std::ostringstream json;
  json << "{\n  \"scenarios\": [\n";
  double baseline_qps = 0.0;
  double farm_qps = 0.0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    ServerConfig cfg;
    cfg.replicas = sc.replicas;
    cfg.max_batch = sc.max_batch;
    cfg.batch_timeout_us = 5000;
    cfg.queue_capacity = 1024;
    session_config.engine.executor = sc.engine;
    DfeServer server(spec, params, cfg, session_config);
    LoadGenerator gen(server, images);
    const LoadResult r = gen.closed_loop(kClients, kRequestsPerClient);
    server.stop();
    const double batch_mean = server.metrics().snapshot().mean_batch_size();
    if (i == 0) baseline_qps = r.achieved_qps;
    if (sc.replicas == 4 && sc.max_batch > 1 &&
        sc.engine == ExecutorKind::kThreadPerKernel) {
      farm_qps = r.achieved_qps;
    }
    const double speedup =
        baseline_qps > 0.0 ? r.achieved_qps / baseline_qps : 0.0;
    t.add_row({sc.label, Table::integer(sc.replicas),
               Table::integer(sc.max_batch), Table::num(r.achieved_qps, 1),
               Table::num(r.p50_us, 0), Table::num(r.p95_us, 0),
               Table::num(r.p99_us, 0), Table::num(batch_mean, 2),
               Table::num(speedup, 2)});
    json << "    {\"label\": \"" << sc.label
         << "\", \"replicas\": " << sc.replicas << ", \"executor\": \""
         << (sc.engine == ExecutorKind::kPooled ? "pooled" : "thread")
         << "\", \"max_batch\": " << sc.max_batch
         << ", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
         << ", \"p95_us\": " << r.p95_us << ", \"p99_us\": " << r.p99_us
         << ", \"mean_batch\": " << batch_mean << ", \"speedup\": " << speedup
         << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  bench::emit(t, "bench_serving");
  const double speedup =
      baseline_qps > 0.0 ? farm_qps / baseline_qps : 0.0;
  std::cout << "\nfarm speedup (4 replicas + batching vs 1 unbatched, "
               "board-model engine): "
            << Table::num(speedup, 2) << "x (acceptance bar: >= 2x)\n";

  // Overload: a deliberately small server under an open-loop Poisson flood
  // on the default (pooled) engine.
  session_config.engine = {};
  ServerConfig small;
  small.replicas = 1;
  small.max_batch = 4;
  small.batch_timeout_us = 500;
  small.queue_capacity = 8;
  small.default_deadline_us = 50000;
  DfeServer server(spec, params, small, session_config);
  LoadGenerator gen(server, images);
  const LoadResult overload =
      gen.open_loop(/*rate_qps=*/4000.0, /*total_requests=*/400, /*seed=*/82);
  server.stop();
  std::cout << "\noverload (open loop, 4000 qps offered at a 1-replica, "
               "8-deep-queue server):\n  "
            << overload.str() << "\n\n"
            << server.metrics_report();

  const MetricsSnapshot s = server.metrics().snapshot();
  json << "  ],\n  \"farm_speedup\": " << speedup
       << ",\n  \"overload\": {\"offered\": " << overload.offered
       << ", \"ok\": " << overload.ok
       << ", \"rejected_overload\": " << s.rejected_overload
       << ", \"rejected_deadline\": " << s.rejected_deadline
       << ", \"e2e_p50_us\": " << server.metrics().end_to_end().percentile(50)
       << ", \"e2e_p95_us\": " << server.metrics().end_to_end().percentile(95)
       << ", \"e2e_p99_us\": " << server.metrics().end_to_end().percentile(99)
       << "}\n}\n";
  std::cout << "\n" << json.str();

  // Robustness ablation: the identical 4-replica farm, healthy versus with
  // replica 0 permanently wedged by an injected kernel hang. The healing
  // stack (watchdog budget cancel -> retry on another replica -> quarantine
  // -> brownout) must keep steady-state throughput at >= 70% of the healthy
  // baseline — the farm degrades to 3/4 capacity instead of collapsing.
  bench::heading("Robustness ablation",
                 "closed-loop load at a healthy 4-replica farm vs the same "
                 "farm with 1 replica hung by fault injection");
  Table rt({"configuration", "qps", "p50 us", "p99 us", "retries",
            "cancels", "quarantines", "replica 0"});
  double healthy_qps = 0.0;
  double faulted_qps = 0.0;
  std::ostringstream rj;
  rj << "{\n  \"scenarios\": [\n";
  for (const bool faulted : {false, true}) {
    SessionConfig sc = session_config;
    if (faulted) {
      FaultEvent hang =
          FaultPlan::kernel_hang("", /*run=*/0, /*step=*/0);
      hang.target_index = 0;
      hang.replica = 0;
      hang.last_run = 1'000'000'000;  // wedged for the whole bench
      sc.engine.faults.add(hang);
    }
    ServerConfig cfg;
    cfg.replicas = 4;
    cfg.max_batch = 8;
    cfg.batch_timeout_us = 1000;
    cfg.queue_capacity = 1024;
    cfg.run_budget_us = 20'000;
    cfg.watchdog_period_us = 500;
    cfg.quarantine_after = 1;
    cfg.max_retries = 3;
    cfg.retry_backoff_us = 100;
    DfeServer farm(spec, params, cfg, sc);
    LoadGenerator load(farm, images);
    // Warm-up discovers the wedged replica (budget cancel + quarantine)
    // before the measured window, so the run below is steady state.
    (void)load.closed_loop(/*clients=*/8, /*requests_per_client=*/4);
    const LoadResult r =
        load.closed_loop(/*clients=*/32, /*requests_per_client=*/8);
    farm.stop();
    const MetricsSnapshot m = farm.metrics().snapshot();
    const char* replica0 = to_string(farm.replica_health(0));
    (faulted ? faulted_qps : healthy_qps) = r.achieved_qps;
    rt.add_row({faulted ? "1-of-4 replicas hung" : "healthy baseline",
                Table::num(r.achieved_qps, 1), Table::num(r.p50_us, 0),
                Table::num(r.p99_us, 0), Table::integer(m.retries),
                Table::integer(m.watchdog_budget_cancels +
                               m.watchdog_deadline_cancels),
                Table::integer(m.quarantines), replica0});
    rj << "    {\"label\": \""
       << (faulted ? "1-of-4 replicas hung" : "healthy baseline")
       << "\", \"qps\": " << r.achieved_qps << ", \"p50_us\": " << r.p50_us
       << ", \"p99_us\": " << r.p99_us << ", \"ok\": " << r.ok
       << ", \"errors\": " << r.errors << ", \"retries\": " << m.retries
       << ", \"watchdog_cancels\": "
       << (m.watchdog_budget_cancels + m.watchdog_deadline_cancels)
       << ", \"quarantines\": " << m.quarantines
       << ", \"brownout_entries\": " << m.brownout_entries
       << ", \"replica0_health\": \"" << replica0 << "\"}"
       << (faulted ? "" : ",") << "\n";
  }
  bench::emit(rt, "bench_robustness");
  const double ratio = healthy_qps > 0.0 ? faulted_qps / healthy_qps : 0.0;
  rj << "  ],\n  \"degraded_over_healthy\": " << ratio << "\n}\n";
  std::cout << "\ndegraded/healthy throughput: " << Table::num(ratio, 2)
            << " (acceptance bar: >= 0.70)\n\n"
            << rj.str();
  const char* csv_dir = std::getenv("QNN_CSV_DIR");
  const std::string json_path =
      (csv_dir != nullptr ? std::string(csv_dir) + "/" : std::string()) +
      "BENCH_robustness.json";
  std::ofstream jf(json_path);
  if (jf && (jf << rj.str())) {
    std::cout << "(json written to " << json_path << ")\n";
  }
  return speedup >= 2.0 && ratio >= 0.70 ? 0 : 1;
}

}  // namespace
}  // namespace qnn

int main() { return qnn::run(); }
